//! Adaptive prefetch control on a phase-shifting workload.
//!
//! The paper fixes BO's parameters offline; this walkthrough shows the
//! `bosim-adapt` control loop closing at runtime instead. We run the
//! phase-shifting synthetic workload — sequential streams (prefetch
//! heaven), a huge random gather (prefetch poison that still trains an
//! offset learner), and a pointer chase — three times:
//!
//! 1. statically with no L2 prefetch,
//! 2. statically with an aggressive fixed offset,
//! 3. adaptively, with a tournament policy that samples both of those
//!    arms every few epochs, runs the IPC winner, and re-explores the
//!    moment an epoch's IPC says the phase has changed.
//!
//! The adaptive run should beat *both* statics, and its epoch log shows
//! why: the active prefetcher flips at the phase boundaries.
//!
//! Run with: `cargo run --release -p bosim-bench --example adaptive_phases`

use bosim::adapt::{AdaptConfig, TournamentSpec};
use bosim::{prefetchers, SimConfig, System};
use bosim_trace::suite;
use bosim_types::PageSize;

fn main() {
    let base = SimConfig {
        page: PageSize::M4,
        warmup_instructions: 20_000,
        measure_instructions: 180_000,
        ..Default::default()
    };
    let bench = suite::phase_shift();

    let ipc_none = System::new(&base.clone().with_prefetcher(prefetchers::none()), &bench)
        .run()
        .ipc();
    let ipc_off8 = System::new(&base.clone().with_prefetcher(prefetchers::fixed(8)), &bench)
        .run()
        .ipc();

    // The adaptive arm: epoch telemetry every 8k cycles feeds a
    // tournament between the two static configurations above.
    let mut tournament = TournamentSpec::new(["offset-8", "none"]);
    tournament.exploit_epochs = 10;
    let mut adaptive_cfg = base.with_prefetcher(prefetchers::none());
    adaptive_cfg.adapt = Some(AdaptConfig::new(tournament).epoch_cycles(8_000));
    let adaptive = System::new(&adaptive_cfg, &bench).run();

    println!("static no-prefetch : IPC {ipc_none:.4}");
    println!("static offset-8    : IPC {ipc_off8:.4}");
    println!("adaptive tournament: IPC {:.4}", adaptive.ipc());
    println!();

    let telemetry = adaptive.adapt.expect("adaptive run records telemetry");
    println!("epoch history ({} epochs):", telemetry.epochs.len());
    println!("{}", telemetry.table());
    telemetry.check_invariants().expect("telemetry consistent");
}
