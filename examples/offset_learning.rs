//! Watch a learning phase in detail: scores accumulating per offset and
//! the effect of BADSCORE throttling on random traffic (§4.1, §4.3).
//!
//! Run with: `cargo run --release -p bosim-bench --example offset_learning`

use best_offset::{AccessOutcome, BestOffsetPrefetcher, L2Access, L2Prefetcher};
use bosim_types::{mix64, LineAddr, PageSize};

fn drive(bo: &mut BestOffsetPrefetcher, lines: impl Iterator<Item = u64>) {
    let mut reqs = Vec::new();
    for l in lines {
        reqs.clear();
        bo.on_access(
            L2Access {
                line: LineAddr(l),
                outcome: AccessOutcome::Miss,
            },
            &mut reqs,
        );
        for &r in &reqs {
            bo.on_fill(r, true);
        }
        // The demand fill itself also reaches the L2 (when prefetch is
        // off, BO records every fetched line with D = 0, §4.3).
        bo.on_fill(LineAddr(l), false);
    }
}

fn top_scores(bo: &BestOffsetPrefetcher) -> Vec<(i64, u32)> {
    let mut pairs: Vec<(i64, u32)> = bo
        .config()
        .offsets
        .iter()
        .zip(bo.scores().iter().copied())
        .collect();
    pairs.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    pairs.truncate(5);
    pairs
}

fn main() {
    // Phase 1: a +2-line stride stream. Offsets that are multiples of 2
    // accumulate score; the best one becomes D.
    let mut bo = BestOffsetPrefetcher::with_defaults(PageSize::M4);
    let mut line = 0u64;
    for round in 0..6 {
        drive(
            &mut bo,
            (0..2_000).map(|_| {
                line += 2;
                line
            }),
        );
        println!(
            "round {}: D = {:>3} on = {:>5} top scores {:?}",
            round,
            bo.current_offset(),
            bo.is_prefetching(),
            top_scores(&bo)
        );
    }
    assert_eq!(bo.current_offset() % 2, 0);

    // Phase 2: purely random lines. No offset scores above BADSCORE, so
    // prefetch turns off -- but learning continues.
    let mut x = 42u64;
    // Enough accesses for the in-progress mixed phase to finish AND a
    // full clean phase of random traffic (ROUNDMAX * 52 accesses).
    drive(
        &mut bo,
        (0..52 * 220).map(|_| {
            x = x.wrapping_add(1);
            mix64(x) >> 24
        }),
    );
    println!(
        "after random traffic: prefetching = {} (phases: {:?})",
        bo.is_prefetching(),
        bo.stats()
    );
    assert!(!bo.is_prefetching(), "BADSCORE throttling must fire");

    // Phase 3: the stream returns; prefetch re-enables.
    drive(&mut bo, (0..52 * 60).map(|i| 1_000_000 + i * 2));
    println!(
        "after the stream returns: prefetching = {}, D = {}",
        bo.is_prefetching(),
        bo.current_offset()
    );
    assert!(bo.is_prefetching());
}
