//! Multi-level prefetcher shootout: place prefetchers at any
//! combination of the three `PrefetchSite`s — the DL1 (l1), the
//! private L2 (l2) and the shared L3 (l3) — and compare the stacks.
//!
//! Sites are addressed with site-qualified registry names
//! (`l1:stride`, `l2:bo`, `l3:next-line`; a bare name means the L2
//! site). Every arm below is just a list of those names; add your own
//! stack with `BOSIM_EXTRA_STACKS='l2:sbp+l3:offset-4;l2:ampm'`
//! (stacks separated by `;`, sites within a stack by `+`).
//!
//! After the grid, the example prints each stack's per-site telemetry
//! (issued / fills / useful / unused-evicted per site) for one
//! streaming benchmark — the raw counters behind the speedups.
//!
//! Run with: `cargo run --release -p bosim-bench --example multilevel_shootout`

use bosim::{SimConfig, System};
use bosim_bench::Experiment;
use bosim_trace::suite;

/// Builds a configuration from a `+`-separated stack of site-qualified
/// names, starting from an empty L1 site so a stack lists exactly the
/// prefetchers it wants.
fn stack(spec: &str) -> SimConfig {
    let mut b = SimConfig::builder().no_l1_prefetcher();
    for name in spec.split('+').filter(|s| !s.trim().is_empty()) {
        b = b.site(name.trim()).unwrap_or_else(|e| panic!("{e}"));
    }
    b.build().unwrap_or_else(|e| panic!("{e}"))
}

fn main() {
    let mut stacks: Vec<String> = [
        "l2:next-line",                 // L2 next-line alone (L1 ablated)
        "l1:stride+l2:next-line",       // the Table 1 baseline machine
        "l1:stride+l2:bo",              // the paper's headline config
        "l1:stride+l2:bo+l3:next-line", // + an L3 site
        "l1:stride+l2:bo+l3:offset-8",  // deeper L3 lookahead
        "l2:bo+l3:next-line",           // L1 ablated, L3 kept
    ]
    .map(String::from)
    .to_vec();
    if let Ok(extra) = std::env::var("BOSIM_EXTRA_STACKS") {
        stacks.extend(
            extra
                .split(';')
                .filter(|s| !s.trim().is_empty())
                .map(|s| s.trim().to_string()),
        );
    }

    let base = SimConfig::builder()
        .warmup(100_000)
        .instructions(400_000)
        .build()
        .expect("Table 1 defaults are valid");
    let mut e = Experiment::new(
        "multilevel_shootout",
        "Multi-level stacks: speedup over the next-line baseline",
    )
    .benchmark_ids(&["429", "433", "462", "470", "471"]);
    for s in &stacks {
        let cfg = SimConfig {
            warmup_instructions: base.warmup_instructions,
            measure_instructions: base.measure_instructions,
            ..stack(s)
        };
        e = e.arm_vs(s.clone(), cfg, base.clone());
    }
    e.run_and_emit();

    // Per-site telemetry on one streaming benchmark: what each site
    // actually did.
    println!("\n# per-site telemetry on 462.libquantum-like");
    println!("stack\tsite\tissued\tfills\tuseful\tunused");
    let bench = suite::benchmark("462").expect("exists");
    for s in &stacks {
        let cfg = SimConfig {
            warmup_instructions: 50_000,
            measure_instructions: 200_000,
            ..stack(s)
        };
        let r = System::new(&cfg, &bench).run();
        r.check_site_invariants().unwrap_or_else(|e| panic!("{e}"));
        println!("{s}\tl1\t{}\t-\t-\t-", r.core.l1_prefetches);
        for (site, t) in [("l2", &r.l2_site), ("l3", &r.l3_site)] {
            println!(
                "{s}\t{site}\t{}\t{}\t{}\t{}",
                t.issued, t.prefetch_fills, t.useful, t.unused_evicted
            );
        }
    }
}
