//! Full-system run: one benchmark through the complete Table 1 machine
//! (OoO core, TLBs, TAGE, L1/L2/L3, fill queues, DDR3) with next-line vs
//! Best-Offset L2 prefetching.
//!
//! Run with: `cargo run --release -p bosim-bench --example full_system [id]`

use bosim::{prefetchers, SimConfig, System};
use bosim_trace::suite;

fn main() {
    let id = std::env::args().nth(1).unwrap_or_else(|| "470".to_string());
    let spec =
        suite::benchmark(&id).unwrap_or_else(|| panic!("unknown benchmark {id} (try 400..483)"));
    println!("benchmark: {}", spec.name);

    let mut results = Vec::new();
    for (name, kind) in [
        ("next-line", prefetchers::next_line()),
        ("BO", prefetchers::bo_default()),
    ] {
        let cfg = SimConfig::builder()
            .warmup(200_000)
            .instructions(1_000_000)
            .prefetcher(kind)
            .build()
            .expect("Table 1 defaults are valid");
        let res = System::new(&cfg, &spec).run();
        println!(
            "{name:>10}: IPC {:.3} | DL1 miss/ki {:.1} | L2 miss/ki {:.1} | DRAM acc/ki {:.1} | prefetches issued {}",
            res.ipc(),
            res.core.dl1_misses as f64 * 1000.0 / res.instructions as f64,
            res.uncore.l2_misses as f64 * 1000.0 / res.instructions as f64,
            res.dram_accesses_per_ki(),
            res.uncore.l2_prefetches_issued,
        );
        results.push(res);
    }
    println!(
        "BO speedup over next-line: {:.3}",
        results[1].ipc() / results[0].ipc()
    );
}
