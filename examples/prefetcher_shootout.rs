//! Compare every L2 prefetcher in the repo (none, next-line, fixed D=5,
//! SBP, BO) on a selection of benchmarks — a miniature of the paper's
//! whole evaluation.
//!
//! Run with: `cargo run --release -p bosim --example prefetcher_shootout`

use bosim::{run_jobs, Job, L2PrefetcherKind, SimConfig};
use bosim_stats::{geometric_mean, Align, Table};
use bosim_trace::suite;

fn main() {
    let ids = ["429", "433", "459", "462", "470", "471"];
    let variants = [
        ("none", L2PrefetcherKind::None),
        ("next-line", L2PrefetcherKind::NextLine),
        ("D=5", L2PrefetcherKind::Fixed(5)),
        ("SBP", L2PrefetcherKind::Sbp(Default::default())),
        ("AMPM", L2PrefetcherKind::Ampm(Default::default())),
        ("BO", L2PrefetcherKind::Bo(Default::default())),
    ];
    let mut jobs = Vec::new();
    for id in &ids {
        let bench = suite::benchmark(id).expect("known id");
        for (_, kind) in &variants {
            jobs.push(Job {
                bench: bench.clone(),
                config: SimConfig {
                    warmup_instructions: 100_000,
                    measure_instructions: 400_000,
                    ..Default::default()
                }
                .with_prefetcher(kind.clone()),
            });
        }
    }
    let results = run_jobs(&jobs, bosim::default_threads());

    let mut header = vec!["benchmark".to_string()];
    header.extend(variants.iter().map(|(n, _)| format!("{n} IPC")));
    let mut t = Table::new(header);
    t.align(
        std::iter::once(Align::Left).chain(std::iter::repeat(Align::Right).take(variants.len())),
    );
    let mut per_variant_speedups = vec![Vec::new(); variants.len()];
    for (bi, id) in ids.iter().enumerate() {
        let row_res = &results[bi * variants.len()..(bi + 1) * variants.len()];
        let mut cells = vec![id.to_string()];
        for (vi, r) in row_res.iter().enumerate() {
            cells.push(format!("{:.3}", r.ipc()));
            // Speedup vs the next-line baseline (index 1).
            per_variant_speedups[vi].push(r.ipc() / row_res[1].ipc());
        }
        t.row(cells);
    }
    let mut gm_cells = vec!["GM speedup vs next-line".to_string()];
    for sp in &per_variant_speedups {
        gm_cells.push(format!("{:.3}", geometric_mean(sp.iter().copied()).unwrap()));
    }
    t.row(gm_cells);
    println!("{t}");
}
