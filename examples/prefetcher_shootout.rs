//! Compare every L2 prefetcher in the repo (none, next-line, fixed D=5,
//! SBP, AMPM, BO) on a selection of benchmarks — a miniature of the
//! paper's whole evaluation, expressed as one `Experiment`.
//!
//! Extra prefetchers can be pulled from the open registry by name:
//! `BOSIM_EXTRA_PREFETCHERS=offset-12,offset-32` adds two more arms
//! without touching this file.
//!
//! Run with: `cargo run --release -p bosim-bench --example prefetcher_shootout`

use bosim::{prefetchers, registry, PrefetcherHandle, SimConfig};
use bosim_bench::Experiment;

fn main() {
    let base = SimConfig::builder()
        .warmup(100_000)
        .instructions(400_000)
        .build()
        .expect("Table 1 defaults are valid");
    let mut variants: Vec<(String, PrefetcherHandle)> = vec![
        ("none".into(), prefetchers::none()),
        ("D=5".into(), prefetchers::fixed(5)),
        ("SBP".into(), prefetchers::sbp_default()),
        ("AMPM".into(), prefetchers::ampm_default()),
        ("BO".into(), prefetchers::bo_default()),
    ];
    if let Ok(extra) = std::env::var("BOSIM_EXTRA_PREFETCHERS") {
        for name in extra.split(',').filter(|s| !s.trim().is_empty()) {
            // `resolve` (not `lookup`) so a malformed family name like
            // `offset-0` dies with the registry's diagnosis, not a
            // generic "unknown prefetcher".
            let handle = registry().resolve(name).unwrap_or_else(|e| panic!("{e}"));
            variants.push((handle.name(), handle));
        }
    }
    let mut e = Experiment::new(
        "prefetcher_shootout",
        "Prefetcher shootout: speedup over the next-line baseline",
    )
    .benchmark_ids(&["429", "433", "459", "462", "470", "471"]);
    for (label, handle) in variants {
        e = e.arm_vs(label, base.clone().with_prefetcher(handle), base.clone());
    }
    e.run_and_emit();
}
