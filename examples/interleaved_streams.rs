//! The §3.3 worked example: two interleaved streams with different
//! periods (2 and 3 lines) can both be prefetched perfectly with an
//! offset that is a multiple of 6 — and BO finds one.
//!
//! Run with: `cargo run --release -p bosim-bench --example interleaved_streams`

use best_offset::{AccessOutcome, BestOffsetPrefetcher, L2Access, L2Prefetcher};
use bosim_types::{LineAddr, PageSize};

fn main() {
    let mut bo = BestOffsetPrefetcher::with_defaults(PageSize::M4);
    let mut reqs = Vec::new();

    // S1: 101010... (period 2 lines), S2: 110110... (period 3 lines,
    // strides 1,2). Different memory regions, interleaved accesses.
    let mut s1 = 0u64; // region A
    let mut s2 = 1 << 30; // region B
    let mut s2_step = 0;
    let access = |bo: &mut BestOffsetPrefetcher, reqs: &mut Vec<LineAddr>, line: u64| {
        reqs.clear();
        bo.on_access(
            L2Access {
                line: LineAddr(line),
                outcome: AccessOutcome::Miss,
            },
            reqs,
        );
        for &r in reqs.iter() {
            bo.on_fill(r, true);
        }
    };
    for i in 0..300_000u64 {
        access(&mut bo, &mut reqs, s1);
        // Mild scrambling, as observed on real machines (§3.1): without
        // it the 52-entry offset round-robin locks each candidate to one
        // of the two perfectly alternating streams.
        if i % 7 == 0 {
            s1 += 2;
            access(&mut bo, &mut reqs, s1);
        }
        access(&mut bo, &mut reqs, s2);
        s1 += 2;
        s2 += if s2_step == 0 { 1 } else { 2 };
        s2_step = (s2_step + 1) % 2;
    }

    let d = bo.current_offset();
    println!("learned offset D = {d}");
    println!("multiple of 6 (lcm of both periods): {}", d % 6 == 0);
    println!("stats: {:?}", bo.stats());
    assert!(bo.is_prefetching());
    assert_eq!(d % 6, 0, "offset must serve both streams (multiple of 6)");
}
