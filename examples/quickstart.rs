//! Quickstart: drive a Best-Offset prefetcher by hand.
//!
//! The BO prefetcher observes L2 read accesses (misses and prefetched
//! hits) and completed prefetch fills; everything else in the repo exists
//! to generate those two event streams realistically. This example feeds
//! it a strided access pattern directly and watches it learn the offset.
//!
//! Run with: `cargo run --release -p bosim-bench --example quickstart`

use best_offset::{AccessOutcome, BestOffsetPrefetcher, L2Access, L2Prefetcher};
use bosim_types::{LineAddr, PageSize};

fn main() {
    let mut bo = BestOffsetPrefetcher::with_defaults(PageSize::M4);
    let mut requests = Vec::new();

    // A program streaming through memory with a stride of +3 lines
    // (e.g. a 192-byte record per loop iteration).
    let mut line = 1_000u64;
    for access in 0..200_000u64 {
        requests.clear();
        bo.on_access(
            L2Access {
                line: LineAddr(line),
                outcome: AccessOutcome::Miss,
            },
            &mut requests,
        );
        // Pretend every prefetch completes in time: the line is inserted
        // into the L2 still flagged as a prefetch, so BO records its base
        // address (Y - D) in the recent-requests table.
        for &l in &requests {
            bo.on_fill(l, true);
        }
        line += 3;
        if access % 50_000 == 0 {
            println!(
                "after {:>6} accesses: D = {:>3}, prefetching = {}",
                access,
                bo.current_offset(),
                bo.is_prefetching()
            );
        }
    }
    println!(
        "final offset D = {} (multiple of the stride period 3: {})",
        bo.current_offset(),
        bo.current_offset() % 3 == 0
    );
    println!("stats: {:?}", bo.stats());
    assert_eq!(bo.current_offset() % 3, 0);
}
