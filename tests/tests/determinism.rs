//! End-to-end determinism: the same `SimConfig` must produce
//! byte-identical report JSON on every run — across the threaded
//! `Experiment` grid, adaptive epoch telemetry, and file-backed
//! ChampSim ingestion. This is the dynamic counterpart of the
//! `bosim-lint` D-rules: the lint bans the usual sources of
//! nondeterminism statically, this test pins the observable output.

use bosim::adapt::{AdaptConfig, TournamentSpec};
use bosim::{prefetchers, SimConfig};
use bosim_bench::Experiment;
use bosim_trace::{capture, champsim, suite, BenchmarkSpec, ExternalSpec, TraceFormat};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bosim_determ_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn tiny(cfg: SimConfig) -> SimConfig {
    SimConfig {
        warmup_instructions: 5_000,
        measure_instructions: 25_000,
        ..cfg
    }
}

/// Builds and runs the synthetic grid, returning the pretty-printed
/// report JSON — the exact bytes `Report::write_json` would persist.
fn synthetic_report_json() -> String {
    let base = tiny(SimConfig::default());
    let mut adaptive = tiny(SimConfig::default());
    adaptive.adapt =
        Some(AdaptConfig::new(TournamentSpec::new(["offset-8", "none"])).epoch_cycles(4_000));
    Experiment::new("determinism_synth", "byte-stable synthetic grid")
        .benchmarks(vec![
            suite::benchmark("462").expect("suite has 462"),
            suite::benchmark("433").expect("suite has 433"),
        ])
        .arm(
            "BO",
            base.clone().with_prefetcher(prefetchers::bo_default()),
        )
        .arm("none", base.clone().with_prefetcher(prefetchers::none()))
        .arm("adaptive", adaptive)
        .run()
        .expect("synthetic grid runs")
        .to_json()
        .to_pretty()
}

#[test]
fn synthetic_grid_report_is_byte_identical_across_runs() {
    let first = synthetic_report_json();
    let second = synthetic_report_json();
    assert!(
        first == second,
        "synthetic report JSON diverged across runs"
    );
    // The grid exercised what it claims to: per-run counters and the
    // adaptive telemetry block are present in the pinned bytes.
    assert!(first.contains("\"l2_prefetches_issued\""), "{first}");
    assert!(first.contains("\"adapt\""), "{first}");
    assert!(first.contains("\"epoch\""), "{first}");
}

#[test]
fn champsim_ingestion_report_is_byte_identical_across_runs() {
    let dir = scratch("champsim");
    let path = dir.join("libq.champsim");
    let uops = capture(&mut suite::benchmark("462").unwrap().build(), 60_000);
    std::fs::write(&path, champsim::encode(&uops)).unwrap();

    let report = |path: &PathBuf| -> String {
        let bench =
            BenchmarkSpec::from_trace(ExternalSpec::new(path, TraceFormat::ChampSim).named("libq"));
        let base = tiny(SimConfig::default());
        Experiment::new("determinism_ingest", "byte-stable ingested grid")
            .benchmarks(vec![bench])
            .arm_vs(
                "BO",
                base.clone().with_prefetcher(prefetchers::bo_default()),
                base.clone().with_prefetcher(prefetchers::none()),
            )
            .run()
            .expect("file-backed grid runs")
            .to_json()
            .to_pretty()
    };
    let first = report(&path);
    let second = report(&path);
    assert!(first == second, "ingested report JSON diverged across runs");
    assert!(first.contains("\"libq\""), "{first}");
    let _ = std::fs::remove_dir_all(&dir);
}
