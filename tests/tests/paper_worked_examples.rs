//! End-to-end checks of the worked examples in §3 of the paper, driven
//! through the public `best-offset` API.

use best_offset::{AccessOutcome, BestOffsetPrefetcher, L2Access, L2Prefetcher};
use bosim_types::{LineAddr, PageSize};

fn drive_pattern(bo: &mut BestOffsetPrefetcher, strides: &[u64], laps: usize) {
    let mut reqs = Vec::new();
    let mut line = 4096u64;
    for _ in 0..laps {
        for &s in strides {
            reqs.clear();
            bo.on_access(
                L2Access {
                    line: LineAddr(line),
                    outcome: AccessOutcome::Miss,
                },
                &mut reqs,
            );
            for &r in &reqs {
                bo.on_fill(r, true);
            }
            line += s;
        }
    }
}

/// §3.1: a sequential stream is covered by any positive offset; BO keeps
/// prefetching with some offset ≥ 1.
#[test]
fn example_1_sequential_stream() {
    let mut bo = BestOffsetPrefetcher::with_defaults(PageSize::M4);
    drive_pattern(&mut bo, &[1], 120_000);
    assert!(bo.is_prefetching());
    assert!(bo.current_offset() >= 1);
    assert!(bo.stats().phases > 0);
}

/// §3.2: a +96-byte stride (line pattern 110110...) is covered perfectly
/// by a multiple of 3.
#[test]
fn example_2_strided_stream() {
    let mut bo = BestOffsetPrefetcher::with_defaults(PageSize::M4);
    // Line strides alternate 1, 2 (two lines touched per 3-line period).
    drive_pattern(&mut bo, &[1, 2], 80_000);
    assert!(bo.is_prefetching());
    assert_eq!(
        bo.current_offset() % 3,
        0,
        "offset {} is not a multiple of the period",
        bo.current_offset()
    );
}

/// §3.3: interleaved period-2 and period-3 streams are both covered by a
/// multiple of 6.
#[test]
fn example_3_interleaved_streams() {
    let mut bo = BestOffsetPrefetcher::with_defaults(PageSize::M4);
    let mut reqs = Vec::new();
    let mut s1 = 0u64;
    let mut s2 = 1u64 << 32;
    let mut s2_phase = 0;
    let access = |bo: &mut BestOffsetPrefetcher, reqs: &mut Vec<LineAddr>, line: u64| {
        reqs.clear();
        bo.on_access(
            L2Access {
                line: LineAddr(line),
                outcome: AccessOutcome::Miss,
            },
            reqs,
        );
        for &r in reqs.iter() {
            bo.on_fill(r, true);
        }
    };
    for i in 0..250_000u64 {
        access(&mut bo, &mut reqs, s1);
        // Mild scrambling (as on real machines, §3.1): occasionally two
        // S1 accesses arrive back-to-back, so the offset-list round-robin
        // does not lock each candidate offset to one stream.
        if i % 7 == 0 {
            s1 += 2;
            access(&mut bo, &mut reqs, s1);
        }
        access(&mut bo, &mut reqs, s2);
        s1 += 2;
        s2 += [1, 2][s2_phase];
        s2_phase ^= 1;
    }
    assert!(bo.is_prefetching());
    assert_eq!(
        bo.current_offset() % 6,
        0,
        "offset {} cannot serve both streams",
        bo.current_offset()
    );
}
