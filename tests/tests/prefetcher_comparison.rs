//! Cross-prefetcher behaviour on the key benchmarks of the evaluation.

use bosim::{prefetchers, SimConfig, System};
use bosim_trace::suite;
use bosim_types::PageSize;

fn run(id: &str, kind: bosim::PrefetcherHandle, page: PageSize) -> bosim::SimResult {
    let spec = suite::benchmark(id).expect("known benchmark");
    let cfg = SimConfig {
        // BO needs a couple of learning phases before its offset settles,
        // so the window must be long enough (§4.1: up to ROUNDMAX * 52
        // eligible accesses per phase).
        warmup_instructions: 150_000,
        measure_instructions: 400_000,
        ..SimConfig::baseline(page, 1)
    }
    .with_prefetcher(kind);
    System::new(&cfg, &spec).run()
}

/// Figure 6 headline: BO beats next-line on the stride-pattern
/// benchmarks that need timeliness (lbm-like, milc-like with 4MB pages).
#[test]
fn bo_beats_next_line_on_stride_benchmarks() {
    for id in ["470", "433"] {
        let nl = run(id, prefetchers::next_line(), PageSize::M4);
        let bo = run(id, prefetchers::bo_default(), PageSize::M4);
        assert!(
            bo.ipc() > nl.ipc() * 1.02,
            "{id}: BO {} vs next-line {}",
            bo.ipc(),
            nl.ipc()
        );
    }
}

/// Offset prefetching is useless on a pure pointer chase; BO must not
/// slow it down much (throttling keeps useless prefetches rare).
#[test]
fn bo_harmless_on_pointer_chase() {
    let nl = run("429", prefetchers::next_line(), PageSize::K4);
    let bo = run("429", prefetchers::bo_default(), PageSize::K4);
    assert!(
        bo.ipc() > nl.ipc() * 0.93,
        "BO {} vs next-line {}",
        bo.ipc(),
        nl.ipc()
    );
}

/// Fixed-offset D=5 is the paper's best fixed offset on lbm-like
/// workloads (Figure 8: peaks at multiples of 5): it must beat D=4.
#[test]
fn lbm_prefers_multiples_of_5() {
    let d4 = run("470", prefetchers::fixed(4), PageSize::M4);
    let d5 = run("470", prefetchers::fixed(5), PageSize::M4);
    let d10 = run("470", prefetchers::fixed(10), PageSize::M4);
    assert!(
        d5.ipc() > d4.ipc() * 1.1,
        "D=5 {} vs D=4 {}",
        d5.ipc(),
        d4.ipc()
    );
    assert!(
        d10.ipc() > d4.ipc() * 1.1,
        "D=10 {} vs D=4 {}",
        d10.ipc(),
        d4.ipc()
    );
}

/// milc-like only rewards offsets that are multiples of 32 (Figure 8).
#[test]
fn milc_prefers_multiples_of_32() {
    let d31 = run("433", prefetchers::fixed(31), PageSize::M4);
    let d32 = run("433", prefetchers::fixed(32), PageSize::M4);
    assert!(
        d32.ipc() > d31.ipc() * 1.05,
        "D=32 {} vs D=31 {}",
        d32.ipc(),
        d31.ipc()
    );
}

/// SBP also beats plain next-line on easy streams (it is a good
/// prefetcher; BO's edge is timeliness, not correctness).
#[test]
fn sbp_beats_next_line_on_streams() {
    let nl = run("462", prefetchers::next_line(), PageSize::M4);
    let sbp = run("462", prefetchers::sbp_default(), PageSize::M4);
    assert!(
        sbp.ipc() > nl.ipc(),
        "SBP {} vs next-line {}",
        sbp.ipc(),
        nl.ipc()
    );
}
