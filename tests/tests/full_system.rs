//! Full-system integration tests across all crates.

use bosim::{prefetchers, SimConfig, System};
use bosim_trace::suite;
use bosim_types::PageSize;

fn quick(page: PageSize, cores: usize) -> SimConfig {
    SimConfig {
        warmup_instructions: 10_000,
        measure_instructions: 40_000,
        ..SimConfig::baseline(page, cores)
    }
}

/// All six §5 baseline configurations run and produce sane IPCs.
#[test]
fn six_baselines_smoke() {
    let spec = suite::benchmark("456").expect("exists");
    for page in [PageSize::K4, PageSize::M4] {
        for cores in [1usize, 2, 4] {
            let res = System::new(&quick(page, cores), &spec).run();
            assert!(
                res.ipc() > 0.01 && res.ipc() < 8.0,
                "{page:?}/{cores}: IPC {}",
                res.ipc()
            );
        }
    }
}

/// The same configuration twice gives bit-identical results.
#[test]
fn determinism() {
    let spec = suite::benchmark("470").expect("exists");
    let cfg = quick(PageSize::K4, 1).with_prefetcher(prefetchers::bo_default());
    let a = System::new(&cfg, &spec).run();
    let b = System::new(&cfg, &spec).run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.uncore, b.uncore);
    assert_eq!(a.dram, b.dram);
}

/// Activity on other cores reduces core-0 IPC (the §5.1 observation).
#[test]
fn thrasher_cores_hurt_core0() {
    let spec = suite::benchmark("462").expect("exists");
    let solo = System::new(&quick(PageSize::K4, 1), &spec).run();
    let shared = System::new(&quick(PageSize::K4, 4), &spec).run();
    assert!(
        shared.ipc() < solo.ipc(),
        "4-core {} vs 1-core {}",
        shared.ipc(),
        solo.ipc()
    );
}

/// Superpages help TLB-bound workloads (the §5.1 observation that IPC is
/// generally higher with 4MB pages).
#[test]
fn superpages_do_not_hurt_streams() {
    let spec = suite::benchmark("410").expect("exists");
    let small = System::new(&quick(PageSize::K4, 1), &spec).run();
    let big = System::new(&quick(PageSize::M4, 1), &spec).run();
    assert!(
        big.ipc() > small.ipc() * 0.95,
        "4MB {} vs 4KB {}",
        big.ipc(),
        small.ipc()
    );
}

/// Disabling the L2 prefetcher hurts streaming benchmarks (Figure 5).
#[test]
fn next_line_helps_streams() {
    let spec = suite::benchmark("437").expect("exists");
    let with = System::new(&quick(PageSize::K4, 1), &spec).run();
    let without = System::new(
        &quick(PageSize::K4, 1).with_prefetcher(prefetchers::none()),
        &spec,
    )
    .run();
    assert!(
        with.ipc() > without.ipc(),
        "next-line {} vs none {}",
        with.ipc(),
        without.ipc()
    );
}

/// The prefetchers do not change architectural work: instruction and
/// load/store counts in the measured window are identical across
/// prefetcher configurations.
#[test]
fn prefetchers_do_not_change_architectural_counts() {
    let spec = suite::benchmark("433").expect("exists");
    let base = System::new(&quick(PageSize::M4, 1), &spec).run();
    let bo = System::new(
        &quick(PageSize::M4, 1).with_prefetcher(prefetchers::bo_default()),
        &spec,
    )
    .run();
    assert_eq!(base.instructions, bo.instructions);
    assert_eq!(base.core.stores, bo.core.stores);
    assert_eq!(base.core.branches, bo.core.branches);
}
