//! Observability end-to-end: the cycle-domain event trace, the epoch
//! metric series and the Perfetto export are deterministic pure
//! functions of simulated state — identical across reruns, inert when
//! disabled — and the exported JSON is structurally valid trace-event
//! format.

use bosim::{prefetchers, SimConfig, SimResult, System};
use bosim_obs::{perfetto, EventKind, ObsConfig, ObsSite};
use bosim_stats::Json;
use bosim_trace::suite;

fn run(cfg: &SimConfig, bench_id: &str) -> SimResult {
    let bench = suite::benchmark(bench_id).expect("benchmark exists");
    System::new(cfg, &bench).run()
}

/// A fully instrumented three-site stack, short enough for CI but long
/// enough to cross several 5k-cycle epochs and BO learning phases.
fn instrumented() -> SimConfig {
    SimConfig {
        warmup_instructions: 10_000,
        measure_instructions: 40_000,
        l1_prefetcher: Some(prefetchers::stride_default()),
        l2_prefetcher: prefetchers::bo_default(),
        l3_prefetcher: Some(prefetchers::next_line()),
        seed: 0xB05EED,
        obs: ObsConfig {
            events: true,
            epochs: true,
            epoch_cycles: 5_000,
            profile: true,
            ..ObsConfig::default()
        },
        ..Default::default()
    }
}

#[test]
fn event_trace_and_epoch_series_are_identical_across_reruns() {
    let cfg = instrumented();
    let a = run(&cfg, "462");
    let b = run(&cfg, "462");
    // `SimResult` equality covers the event stream and the epoch rows
    // (the host profile is excluded by design).
    assert_eq!(a, b, "instrumented rerun diverged");
    let obs = a.obs.expect("observability report attached");
    assert!(!obs.events.is_empty(), "no events recorded");
    assert!(!obs.epochs.is_empty(), "no epoch rows collected");
    assert!(obs.profile.0.is_some(), "no host profile attached");
    assert_eq!(
        obs.epochs_jsonl(),
        b.obs.expect("rerun report").epochs_jsonl(),
        "epoch JSONL diverged"
    );
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let mut plain = instrumented();
    plain.obs = ObsConfig::default();
    let baseline = run(&plain, "429");
    assert!(baseline.obs.is_none(), "disabled run must carry no report");
    let mut traced = run(&instrumented(), "429");
    assert!(traced.obs.is_some());
    // With the report stripped, every simulated counter must be
    // bit-identical: observability observes, it never steers.
    traced.obs = None;
    assert_eq!(baseline, traced, "tracing changed simulated state");
}

#[test]
fn the_event_stream_covers_the_prefetch_lifecycle() {
    // Long enough for a full BO learning phase to close (~100k
    // instructions on the streaming benchmark), so `phase_end` fires.
    let mut cfg = instrumented();
    cfg.measure_instructions = 100_000;
    let obs = run(&cfg, "462").obs.expect("report");
    let has = |name: &str| obs.events.iter().any(|e| e.kind.name() == name);
    for name in [
        "prefetch_issued",
        "fill_queued",
        "prefetch_fill",
        "first_hit",
        "round_end",
        "phase_end",
        "epoch_end",
    ] {
        assert!(has(name), "no {name} event in {} events", obs.events.len());
    }
    // The BO phase-end snapshot carries the full score table.
    let snapshot = obs.events.iter().find_map(|e| match &e.kind {
        EventKind::PhaseEnd { scores, .. } => Some(scores),
        _ => None,
    });
    assert!(
        snapshot.is_some_and(|s| !s.is_empty()),
        "phase_end without a score-table snapshot"
    );
    // All three cache sites (plus the sys track) produce events under
    // the l1:stride + l2:bo + l3:next-line stack.
    for site in [ObsSite::Sys, ObsSite::L1d, ObsSite::L2, ObsSite::L3] {
        assert!(
            obs.events.iter().any(|e| e.site == site),
            "no events on the {site} track"
        );
    }
    // Cycle stamps never decrease per site track — events are recorded
    // in simulation order.
    let mut last = 0;
    for e in obs.events.iter().filter(|e| e.site == ObsSite::L2) {
        assert!(e.cycle >= last, "L2 event stream not cycle-ordered");
        last = e.cycle;
    }
}

#[test]
fn the_recorder_is_bounded_and_keeps_the_first_events() {
    let mut small = instrumented();
    small.obs.max_events = 100;
    small.obs.profile = false;
    let full = run(&instrumented(), "462").obs.expect("report");
    let capped = run(&small, "462").obs.expect("report");
    assert_eq!(capped.events.len(), 100, "capacity not enforced");
    assert!(capped.dropped_events > 0, "nothing counted as dropped");
    // Keep-first: the capped log is a prefix of the unbounded one, so
    // overflowing traces stay byte-comparable.
    assert_eq!(capped.events[..], full.events[..100]);
    assert_eq!(
        capped.events.len() as u64 + capped.dropped_events,
        full.events.len() as u64 + full.dropped_events,
        "total observed events must not depend on the capacity"
    );
}

#[test]
fn epoch_stream_file_matches_the_in_memory_series() {
    let path = std::env::temp_dir().join(format!("bosim_obs_epochs_{}.jsonl", std::process::id()));
    let mut cfg = instrumented();
    cfg.obs.epoch_stream = Some(path.clone());
    let obs = run(&cfg, "433").obs.expect("report");
    let streamed = std::fs::read_to_string(&path).expect("stream file written");
    let _ = std::fs::remove_file(&path);
    assert!(!obs.epochs.is_empty());
    assert_eq!(
        streamed,
        obs.epochs_jsonl(),
        "streamed rows diverge from the collected series"
    );
    // Every line is a self-contained JSON object with the metric keys.
    for line in streamed.lines() {
        let row = Json::parse(line).expect("stream line parses");
        for key in [
            "epoch",
            "ipc",
            "accuracy",
            "coverage",
            "lateness",
            "occupancy",
        ] {
            assert!(row.get(key).is_some(), "epoch row missing {key}: {line}");
        }
    }
}

#[test]
fn perfetto_export_is_structurally_valid_trace_event_json() {
    let obs = run(&instrumented(), "462").obs.expect("report");
    let doc = perfetto::trace_json(&obs, "obs test");
    // Round-trip through the hand-rolled parser: the export must be a
    // single well-formed JSON document.
    let parsed = Json::parse(&doc.to_string()).expect("export parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph string");
        assert!(e.get("name").is_some_and(|n| n.as_str().is_some()));
        if ph != "M" {
            for key in ["ts", "pid", "tid"] {
                assert!(
                    e.get(key).is_some_and(Json::is_number),
                    "non-metadata event missing numeric {key}"
                );
            }
        }
    }
    let text = doc.to_string();
    // Simulation instants, epoch counter tracks and the host-profile
    // process all land in the export.
    assert!(text.contains(r#""ph":"i""#), "no instant events");
    assert!(text.contains(r#""epoch ipc""#), "no epoch counters");
    assert!(text.contains(r#""bosim host profile""#), "no profile track");
}
