//! Golden-stats invariance: the optimized hot path (indexed queues,
//! subsystem skipping, system-loop fast-forwarding) must produce
//! *bit-identical* `SimResult`s — instructions, cycles, every core,
//! uncore and DRAM counter — to the naive path (linear CAM scans, full
//! per-cycle polling, no skipping) for fixed seeds across the synthetic
//! suite. The optimizations are pure wall-clock wins; any counter drift
//! here is a simulation bug, not a performance trade-off.

use bosim::{prefetchers, PrefetcherHandle, SimConfig, SimResult, System};
use bosim_trace::suite;
use bosim_types::PageSize;

fn run(cfg: &SimConfig, bench_id: &str) -> SimResult {
    let bench = suite::benchmark(bench_id).expect("benchmark exists");
    System::new(cfg, &bench).run()
}

fn assert_invariant(base: SimConfig, bench_id: &str) {
    let mut naive = base.clone();
    naive.fast_forward = false;
    naive.naive_hot_path = true;
    let mut optimized = base;
    optimized.fast_forward = true;
    optimized.naive_hot_path = false;
    let a = run(&naive, bench_id);
    let b = run(&optimized, bench_id);
    assert_eq!(
        a, b,
        "{bench_id} [{}]: optimized hot path diverged from naive",
        b.config
    );
}

fn quick(prefetcher: PrefetcherHandle, seed: u64) -> SimConfig {
    SimConfig {
        warmup_instructions: 10_000,
        measure_instructions: 40_000,
        l2_prefetcher: prefetcher,
        seed,
        ..Default::default()
    }
}

/// A behaviour-diverse slice of the suite: streaming, pointer-chasing,
/// mixed, compute-bound and store-heavy benchmarks.
const BENCHES: &[&str] = &["462", "429", "433", "444", "470", "401"];

#[test]
fn golden_stats_across_the_suite() {
    for id in BENCHES {
        assert_invariant(quick(prefetchers::next_line(), 0xB05EED), id);
    }
}

#[test]
fn golden_stats_with_bo_prefetcher() {
    for id in &["462", "429"] {
        assert_invariant(quick(prefetchers::bo_default(), 0xB05EED), id);
    }
}

#[test]
fn golden_stats_second_seed() {
    for id in &["433", "471"] {
        assert_invariant(quick(prefetchers::next_line(), 0x0005_EED2), id);
    }
}

/// The adaptive-control path must not break the invariance: epoch
/// boundaries are processed before the tick of the cycle they fire on,
/// and a fast-forward skip only jumps provably idle cycles, so the
/// policy sees identical feedback and issues identical directives in
/// both modes — including the full per-epoch telemetry (`SimResult`'s
/// `PartialEq` covers `adapt`).
#[test]
fn golden_stats_adaptive_runs() {
    use bosim::adapt::{policies, AdaptConfig};
    let mut tournament = quick(prefetchers::bo_default(), 0xB05EED);
    tournament.page = PageSize::M4;
    tournament.adapt =
        Some(AdaptConfig::new(policies::tournament(["offset-8", "none"])).epoch_cycles(5_000));
    assert_invariant(tournament, "phase");

    let mut governor = quick(prefetchers::bo_default(), 0xB05EED);
    governor.adapt = Some(AdaptConfig::new(policies::degree_governor()).epoch_cycles(5_000));
    assert_invariant(governor, "462");
}

/// Multi-level prefetcher stacks must preserve the invariance too: the
/// new L3 prefetch site (its own lowest-priority queue, tag checks,
/// DRAM issue) and the registry-resolved L1 site introduce no
/// mode-dependent behaviour. The full l1:stride + l2:bo + l3:next-line
/// stack of the ISSUE's acceptance arm is pinned here, plus an
/// L1-ablated variant exercising the empty-site path.
#[test]
fn golden_stats_multilevel_sites() {
    let mut full = quick(prefetchers::bo_default(), 0xB05EED);
    full.l1_prefetcher = Some(prefetchers::stride_default());
    full.l3_prefetcher = Some(prefetchers::next_line());
    assert_invariant(full, "462");

    let mut no_l1 = quick(prefetchers::next_line(), 0xB05EED);
    no_l1.l1_prefetcher = None;
    no_l1.l3_prefetcher = Some(prefetchers::fixed(4));
    assert_invariant(no_l1, "429");
}

/// File-backed external traces must preserve the invariance too, with
/// trace sampling in play: the ingestion path (ChampSim decode + µop
/// lowering) and the `SampledSource` wrapper are deterministic pure
/// functions of the file, so naive and fast-forward replays of the same
/// trace under the same warm-up sampling plan stay bit-identical.
#[test]
fn golden_stats_file_backed_trace_with_sampling() {
    use bosim_trace::{capture, champsim, BenchmarkSpec, ExternalSpec, SampleSpec, TraceFormat};
    let path = std::env::temp_dir().join(format!(
        "bosim_golden_external_{}.champsim",
        std::process::id()
    ));
    let uops = capture(&mut suite::benchmark("462").unwrap().build(), 100_000);
    std::fs::write(&path, champsim::encode(&uops)).unwrap();
    let bench = BenchmarkSpec::from_trace(
        ExternalSpec::new(&path, TraceFormat::ChampSim).named("462-file"),
    );
    let base = SimConfig {
        sample: Some(SampleSpec::periodic(10_000, 20_000, 30_000)),
        ..quick(prefetchers::bo_default(), 0xB05EED)
    };
    let mut naive = base.clone();
    naive.fast_forward = false;
    naive.naive_hot_path = true;
    let a = System::new(&naive, &bench).run();
    let b = System::new(&base, &bench).run();
    assert_eq!(a, b, "file-backed replay diverged between hot paths");
    let _ = std::fs::remove_file(&path);
}

/// Observability must not break the invariance — with event tracing,
/// epoch snapshots and host profiling all enabled, the naive and
/// fast-forwarding loops must produce bit-identical `SimResult`s
/// *including* the event stream and the epoch series (`SimResult`'s
/// `PartialEq` covers `obs`; only the wall-clock profile is excluded).
/// Epoch boundaries are processed before the boundary cycle's tick and
/// fast-forward skips only provably idle cycles, so every event lands
/// on the same cycle in both modes.
#[test]
fn golden_stats_with_tracing_enabled() {
    use bosim_obs::ObsConfig;
    let obs = ObsConfig {
        events: true,
        epochs: true,
        epoch_cycles: 5_000,
        profile: true,
        ..ObsConfig::default()
    };

    let mut traced = quick(prefetchers::bo_default(), 0xB05EED);
    traced.l1_prefetcher = Some(prefetchers::stride_default());
    traced.l3_prefetcher = Some(prefetchers::next_line());
    traced.obs = obs.clone();
    assert_invariant(traced, "462");

    // Tracing combined with adaptive control: directive and epoch
    // events ride on top of the adapt machinery without perturbing it.
    use bosim::adapt::{policies, AdaptConfig};
    let mut adaptive = quick(prefetchers::bo_default(), 0xB05EED);
    adaptive.adapt = Some(AdaptConfig::new(policies::degree_governor()).epoch_cycles(5_000));
    adaptive.obs = obs;
    assert_invariant(adaptive, "429");
}

#[test]
fn golden_stats_multicore_large_pages() {
    let cfg = SimConfig {
        active_cores: 2,
        page: PageSize::M4,
        warmup_instructions: 5_000,
        measure_instructions: 20_000,
        ..Default::default()
    };
    assert_invariant(cfg, "470");
}

/// Four active cores under the event-wheel loop: maximum interleaving
/// of per-core posts, mid-cycle fill wake-ups and uncore re-posting,
/// with the shared L3 and DRAM fairness machinery fully engaged.
#[test]
fn golden_stats_four_cores() {
    let cfg = SimConfig {
        active_cores: 4,
        warmup_instructions: 5_000,
        measure_instructions: 15_000,
        ..Default::default()
    };
    assert_invariant(cfg, "429");
}

/// Runs `base` serially (`tick_threads: 1`) and with 2 and 4 tick
/// threads, asserting bit-identical `SimResult`s: the parallel
/// rendezvous must be invisible in every simulated counter.
fn assert_parallel_identical(base: SimConfig, bench_id: &str) {
    let mut serial = base.clone();
    serial.tick_threads = 1;
    let a = run(&serial, bench_id);
    for threads in [2, 4] {
        let mut par = base.clone();
        par.tick_threads = threads;
        let b = run(&par, bench_id);
        assert_eq!(
            a, b,
            "{bench_id}: tick_threads={threads} diverged from the serial loop"
        );
    }
}

/// Parallel core ticking is a pure wall-clock lever: worker threads
/// only accumulate per-core effects, and the main thread replays them
/// in fixed core-ID order, so thread count never shows up in results.
#[test]
fn parallel_tick_matches_serial_multicore() {
    let cfg = SimConfig {
        active_cores: 4,
        warmup_instructions: 5_000,
        measure_instructions: 15_000,
        ..Default::default()
    };
    assert_parallel_identical(cfg, "470");
}

/// Parallel ticking under adaptive epochs and full tracing: segment
/// stops must land exactly on epoch boundaries, and observability
/// events from worker-ticked cores must merge into the shared log in
/// the same order the serial loop produces.
#[test]
fn parallel_tick_matches_serial_with_adapt_and_tracing() {
    use bosim::adapt::{policies, AdaptConfig};
    use bosim_obs::ObsConfig;
    let mut cfg = SimConfig {
        active_cores: 2,
        warmup_instructions: 5_000,
        measure_instructions: 15_000,
        ..Default::default()
    };
    cfg.adapt = Some(AdaptConfig::new(policies::degree_governor()).epoch_cycles(5_000));
    cfg.obs = ObsConfig {
        events: true,
        epochs: true,
        epoch_cycles: 5_000,
        ..ObsConfig::default()
    };
    assert_parallel_identical(cfg, "429");
}

#[test]
fn golden_stats_no_prefetch_small_l3_queue() {
    // Small L3 fill queue: exercises the stall/retry paths under
    // back-pressure, where the bugfixed bookkeeping matters most.
    let cfg = SimConfig {
        l3_fill_queue: 2,
        l2_fill_queue: 4,
        l2_prefetcher: prefetchers::none(),
        warmup_instructions: 5_000,
        measure_instructions: 20_000,
        ..Default::default()
    };
    assert_invariant(cfg, "429");
}
