//! Trace-layer and statistics integration.

use bosim_stats::geometric_mean;
use bosim_trace::{capture, file, suite};

/// Every benchmark generator is deterministic across builds.
#[test]
fn all_generators_deterministic() {
    for spec in suite::suite() {
        let a = capture(&mut spec.build(), 2_000);
        let b = capture(&mut spec.build(), 2_000);
        assert_eq!(a, b, "{}", spec.name);
    }
}

/// Binary trace files round-trip for every benchmark.
#[test]
fn trace_file_roundtrip_all() {
    for spec in suite::suite().into_iter().take(8) {
        let uops = capture(&mut spec.build(), 1_000);
        let bytes = file::encode(&uops);
        let back = file::decode(&bytes).expect("decode");
        assert_eq!(uops, back, "{}", spec.name);
    }
}

/// A replayed trace prefix produces exactly the generator's µops.
#[test]
fn replay_matches_generator() {
    let spec = suite::benchmark("459").expect("exists");
    let uops = capture(&mut spec.build(), 3_000);
    let mut replay = bosim_trace::ReplaySource::new("459-replay", uops.clone());
    let replayed = capture(&mut replay, 3_000);
    assert_eq!(uops, replayed);
}

/// The GM the harnesses print matches the library's summary math.
#[test]
fn geomean_sanity() {
    let gm = geometric_mean([1.1, 0.9, 1.2, 1.0]).expect("non-empty");
    assert!(gm > 0.9 && gm < 1.2);
}
