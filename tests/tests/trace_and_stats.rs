//! Trace-layer and statistics integration.

use bosim_stats::geometric_mean;
use bosim_trace::{analyze, capture, file, suite};

/// Every benchmark generator is deterministic across builds.
#[test]
fn all_generators_deterministic() {
    for spec in suite::suite() {
        let a = capture(&mut spec.build(), 2_000);
        let b = capture(&mut spec.build(), 2_000);
        assert_eq!(a, b, "{}", spec.name);
    }
}

/// Binary trace files round-trip for every benchmark.
#[test]
fn trace_file_roundtrip_all() {
    for spec in suite::suite().into_iter().take(8) {
        let uops = capture(&mut spec.build(), 1_000);
        let bytes = file::encode(&uops);
        let back = file::decode(&bytes).expect("decode");
        assert_eq!(uops, back, "{}", spec.name);
    }
}

/// `Schedule::Phased` traces survive the binary file format bit-exactly
/// and `analyze::summarize` sees the phase structure: the phase-shift
/// workload's stream phase walks a compact sequential footprint, then
/// the gather phase scatters over a DRAM-sized region — the per-window
/// summaries must show that shift, and the schedule must loop back to
/// the stream kernel afterwards.
#[test]
fn phased_trace_roundtrips_and_shows_footprint_shift() {
    use bosim_trace::synth::layout;

    let spec = suite::phase_shift();
    assert!(
        matches!(spec.schedule, bosim_trace::Schedule::Phased(_)),
        "phase-shift must use a phased schedule"
    );
    let uops = capture(&mut spec.build(), 150_000);

    // Round-trip through the binary trace file format.
    let bytes = file::encode(&uops);
    let back = file::decode(&bytes).expect("decode");
    assert_eq!(uops, back, "phased trace must round-trip bit-exactly");

    // Kernel data regions are 64GB apart (layout::data_base), so the
    // first access at/above kernel 1's base is the first phase switch.
    let k1_base = layout::data_base(1);
    let switch = uops
        .iter()
        .position(|u| u.mem.is_some_and(|m| m.vaddr.0 >= k1_base))
        .expect("gather phase must appear in the window");
    assert!(switch > 10_000, "stream phase runs first ({switch} uops)");

    let stream_window = analyze::summarize(&uops[..switch]);
    let gather_window = analyze::summarize(&uops[switch..switch + 40_000]);

    // Stream phase: dense sequential lines, few distinct pages.
    // Gather phase: random lines scattered over 192MB — the touched
    // 4KB-page count explodes while the window is smaller.
    assert!(
        gather_window.distinct_pages > stream_window.distinct_pages * 4,
        "footprint must scatter at the phase switch: {} -> {}",
        stream_window.distinct_pages,
        gather_window.distinct_pages,
    );
    // Sequential streaming touches each line ~loads_per_line times; the
    // gather's random lines are touched ~once, so the per-load footprint
    // (bytes per load) grows across the switch.
    let per_load = |s: &analyze::TraceSummary| s.data_footprint_bytes() as f64 / s.loads as f64;
    assert!(
        per_load(&gather_window) > per_load(&stream_window) * 1.5,
        "per-load footprint must grow: {:.1} -> {:.1}",
        per_load(&stream_window),
        per_load(&gather_window),
    );

    // The phased schedule loops: the stream kernel's region returns
    // after the gather phase.
    let returns = uops[switch..]
        .iter()
        .any(|u| u.mem.is_some_and(|m| m.vaddr.0 < k1_base));
    assert!(returns, "schedule must cycle back to the stream kernel");
}

/// A replayed trace prefix produces exactly the generator's µops.
#[test]
fn replay_matches_generator() {
    let spec = suite::benchmark("459").expect("exists");
    let uops = capture(&mut spec.build(), 3_000);
    let mut replay = bosim_trace::ReplaySource::new("459-replay", uops.clone());
    let replayed = capture(&mut replay, 3_000);
    assert_eq!(uops, replayed);
}

/// The GM the harnesses print matches the library's summary math.
#[test]
fn geomean_sanity() {
    let gm = geometric_mean([1.1, 0.9, 1.2, 1.0]).expect("non-empty");
    assert!(gm > 0.9 && gm < 1.2);
}
