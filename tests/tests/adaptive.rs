//! Adaptive prefetch control, end to end: epoch telemetry invariants and
//! the headline acceptance result — on the phase-shifting workload an
//! adaptive policy beats every static configuration it is allowed to
//! switch between.

use bosim::adapt::{policies, AdaptConfig, TournamentSpec};
use bosim::{prefetchers, PrefetcherHandle, SimConfig, System};
use bosim_trace::suite;
use bosim_types::PageSize;

fn phase_cfg(prefetcher: PrefetcherHandle) -> SimConfig {
    SimConfig {
        page: PageSize::M4,
        warmup_instructions: 20_000,
        measure_instructions: 180_000,
        l2_prefetcher: prefetcher,
        ..Default::default()
    }
}

fn run_phase(cfg: SimConfig) -> bosim::SimResult {
    System::new(&cfg, &suite::phase_shift()).run()
}

/// The headline: a tournament switching between `offset-8` and `none`
/// must beat *both* of those run statically, on IPC, on the
/// phase-shifting workload. No static point in its decision space wins
/// every phase: the stream phases want aggressive offset prefetch, the
/// gather/chase phases punish it.
#[test]
fn tournament_beats_every_static_arm_it_switches_between() {
    let ipc_none = run_phase(phase_cfg(prefetchers::none())).ipc();
    let ipc_off8 = run_phase(phase_cfg(prefetchers::fixed(8))).ipc();

    let mut tournament = TournamentSpec::new(["offset-8", "none"]);
    tournament.exploit_epochs = 10;
    let mut cfg = phase_cfg(prefetchers::none());
    cfg.adapt = Some(AdaptConfig::new(tournament).epoch_cycles(8_000));
    let adaptive = run_phase(cfg);
    let ipc_adaptive = adaptive.ipc();

    assert!(
        ipc_adaptive > ipc_off8,
        "adaptive {ipc_adaptive:.4} must beat static offset-8 {ipc_off8:.4}"
    );
    assert!(
        ipc_adaptive > ipc_none,
        "adaptive {ipc_adaptive:.4} must beat static no-prefetch {ipc_none:.4}"
    );

    // The phases really do disagree about the best static arm — the
    // telemetry must show the tournament running both candidates for
    // substantial stretches (not just during trials).
    let telemetry = adaptive.adapt.as_ref().expect("adaptive run has telemetry");
    let count = |name: &str| {
        telemetry
            .epochs
            .iter()
            .filter(|e| e.prefetcher == name)
            .count()
    };
    assert!(count("fixed-offset") >= 10, "ran offset-8 phases");
    assert!(count("none") >= 10, "ran no-prefetch phases");
}

/// Epoch telemetry invariants, pinned for CI: counters consistent
/// (cumulative useful + unused-evicted ≤ prefetch fills), rates in
/// range, epochs consecutive — across all three built-in policies.
#[test]
fn epoch_telemetry_invariants_hold_for_all_policies() {
    let policies = [
        policies::degree_governor(),
        policies::bandwidth_throttle(),
        policies::tournament(["offset-8", "none"]),
    ];
    for policy in policies {
        let name = policy.name();
        let mut cfg = phase_cfg(prefetchers::bo_default());
        cfg.measure_instructions = 60_000;
        cfg.adapt = Some(AdaptConfig::new(policy).epoch_cycles(6_000));
        let result = run_phase(cfg);
        let telemetry = result.adapt.as_ref().expect("telemetry present");
        assert!(!telemetry.epochs.is_empty(), "{name}: epochs recorded");
        telemetry
            .check_invariants()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        // Epoch instruction counts must account for the whole run up to
        // the last boundary (feedback is a partition, not a sample).
        let epoch_instructions: u64 = telemetry
            .epochs
            .iter()
            .map(|e| e.feedback.instructions)
            .sum();
        assert!(
            epoch_instructions >= result.instructions,
            "{name}: epochs cover the measured window"
        );
    }
}

/// The degree governor visibly reconfigures BO between degrees on the
/// phase-shifting workload and never worsens the static degree-1 BO it
/// starts from by more than a whisker.
#[test]
fn degree_governor_reconfigures_bo_at_runtime() {
    let mut cfg = phase_cfg(prefetchers::bo_default());
    cfg.adapt = Some(AdaptConfig::new(policies::degree_governor()).epoch_cycles(8_000));
    let adaptive = run_phase(cfg);
    let telemetry = adaptive.adapt.as_ref().expect("telemetry");
    assert!(
        telemetry.applied >= 2,
        "degree switched at least up and down"
    );
    assert_eq!(telemetry.rejected, 0, "BO supports degree directives");
    let directives: Vec<&str> = telemetry
        .epochs
        .iter()
        .flat_map(|e| e.directives.iter())
        .map(|d| d.directive.as_str())
        .collect();
    // Directives are recorded with their addressed site.
    assert!(directives.contains(&"l2:degree=2"), "{directives:?}");

    let ipc_static = run_phase(phase_cfg(prefetchers::bo_default())).ipc();
    assert!(
        adaptive.ipc() > ipc_static * 0.98,
        "governor {:.4} must not wreck static BO {ipc_static:.4}",
        adaptive.ipc()
    );
}

/// Static runs carry no adapt telemetry; adaptive labels name the
/// policy so report rows are self-describing.
#[test]
fn telemetry_presence_matches_configuration() {
    let mut static_cfg = phase_cfg(prefetchers::none());
    static_cfg.measure_instructions = 20_000;
    let r = run_phase(static_cfg);
    assert!(r.adapt.is_none());
    assert_eq!(r.config, "4MB/1-core/no-prefetch");

    let mut cfg = phase_cfg(prefetchers::bo_default());
    cfg.measure_instructions = 20_000;
    cfg.adapt = Some(AdaptConfig::new(policies::bandwidth_throttle()));
    let r = run_phase(cfg);
    assert!(r.adapt.is_some());
    assert_eq!(r.config, "4MB/1-core/BO+bw-throttle");
}
