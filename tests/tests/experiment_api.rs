//! Coverage for the unified experiment API: the validating `SimConfig`
//! builder, the prefetcher registry and the structured `Report` output.

use bosim::{prefetchers, registry, ConfigError, SimConfig};
use bosim_bench::{ArmReport, Layout, Report, RunSummary};
use bosim_types::PageSize;

#[test]
fn builder_accepts_table1_defaults() {
    let cfg = SimConfig::builder().build().expect("defaults valid");
    assert_eq!(cfg.label(), "4KB/1-core/next-line");
}

#[test]
fn builder_composes_the_paper_variants() {
    let cfg = SimConfig::builder()
        .page(PageSize::M4)
        .cores(4)
        .prefetcher(prefetchers::bo_default())
        .warmup(1_000)
        .instructions(5_000)
        .build()
        .expect("valid");
    assert_eq!(cfg.label(), "4MB/4-core/BO");
    assert_eq!(cfg.measure_instructions, 5_000);
}

#[test]
fn builder_rejects_zero_cores() {
    assert_eq!(
        SimConfig::builder().cores(0).build().unwrap_err(),
        ConfigError::ZeroCores
    );
}

#[test]
fn builder_rejects_zero_way_caches() {
    assert_eq!(
        SimConfig::builder()
            .l2_geometry(512 << 10, 0)
            .build()
            .unwrap_err(),
        ConfigError::ZeroWays { cache: "L2" }
    );
    assert_eq!(
        SimConfig::builder()
            .l3_geometry(8 << 20, 0)
            .build()
            .unwrap_err(),
        ConfigError::ZeroWays { cache: "L3" }
    );
}

#[test]
fn config_errors_display_the_constraint() {
    let err = SimConfig::builder()
        .cores(bosim::MAX_CORES + 1)
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("maximum"), "{err}");
}

/// The registry round-trips all six built-in prefetchers by name.
#[test]
fn registry_round_trips_builtins() {
    for handle in [
        prefetchers::none(),
        prefetchers::next_line(),
        prefetchers::fixed(5),
        prefetchers::bo_default(),
        prefetchers::sbp_default(),
        prefetchers::ampm_default(),
    ] {
        let name = handle.name();
        let resolved = registry()
            .lookup(&name)
            .unwrap_or_else(|| panic!("{name} must resolve"));
        assert_eq!(resolved.name(), name, "round trip of {name}");
        // The resolved spec builds a working prefetcher.
        let cfg = SimConfig::default();
        let _ = resolved.build(&cfg);
    }
}

#[test]
fn registry_lists_builtin_names() {
    let names = registry().names();
    for expected in ["none", "next-line", "bo", "sbp", "ampm", "offset-<D>"] {
        assert!(
            names.iter().any(|n| n == expected),
            "{expected} in {names:?}"
        );
    }
}

fn sample_report() -> Report {
    Report {
        name: "snapshot".into(),
        title: "Snapshot fixture".into(),
        metric: "speedup".into(),
        benchmarks: vec!["429".into(), "433".into()],
        arms: vec![ArmReport {
            series: "BO".into(),
            group: None,
            config: "4KB/1-core/BO".into(),
            baseline: Some("4KB/1-core/next-line".into()),
            values: vec![1.5, 0.75],
            gm: Some(1.0606601717798212),
            runs: vec![RunSummary {
                benchmark: "429.mcf-like".into(),
                config: "4KB/1-core/BO".into(),
                ipc: 0.5,
                dram_per_ki: 12.25,
                l2_miss_per_ki: 30.5,
                instructions: 1_000_000,
                cycles: 2_000_000,
                l1_prefetches: 840,
                l1_prefetch_tlb_drops: 7,
                l2_prefetches_issued: 5_000,
                l2_prefetch_fills: 4_500,
                l3_prefetches_issued: 600,
                l3_prefetch_fills: 550,
                adapt: None,
            }],
        }],
        layout: Layout::BenchRows,
        with_gm: true,
        decimals: 3,
    }
}

/// The JSON serialisation is stable — downstream tooling parses it.
#[test]
fn report_json_snapshot() {
    let expected = concat!(
        "{\n",
        "  \"name\": \"snapshot\",\n",
        "  \"title\": \"Snapshot fixture\",\n",
        "  \"metric\": \"speedup\",\n",
        "  \"benchmarks\": [\n",
        "    \"429\",\n",
        "    \"433\"\n",
        "  ],\n",
        "  \"arms\": [\n",
        "    {\n",
        "      \"series\": \"BO\",\n",
        "      \"group\": null,\n",
        "      \"config\": \"4KB/1-core/BO\",\n",
        "      \"baseline\": \"4KB/1-core/next-line\",\n",
        "      \"gm\": 1.0606601717798212,\n",
        "      \"values\": [\n",
        "        1.5,\n",
        "        0.75\n",
        "      ],\n",
        "      \"runs\": [\n",
        "        {\n",
        "          \"benchmark\": \"429.mcf-like\",\n",
        "          \"config\": \"4KB/1-core/BO\",\n",
        "          \"ipc\": 0.5,\n",
        "          \"dram_per_ki\": 12.25,\n",
        "          \"l2_miss_per_ki\": 30.5,\n",
        "          \"instructions\": 1000000,\n",
        "          \"cycles\": 2000000,\n",
        "          \"l1_prefetches\": 840,\n",
        "          \"l1_prefetch_tlb_drops\": 7,\n",
        "          \"l2_prefetches_issued\": 5000,\n",
        "          \"l2_prefetch_fills\": 4500,\n",
        "          \"l3_prefetches_issued\": 600,\n",
        "          \"l3_prefetch_fills\": 550,\n",
        "          \"adapt\": null\n",
        "        }\n",
        "      ]\n",
        "    }\n",
        "  ]\n",
        "}\n",
    );
    assert_eq!(sample_report().to_json().to_pretty(), expected);
}

#[test]
fn report_writes_json_file() {
    let dir = std::env::temp_dir().join("bosim_report_test");
    let path = sample_report().write_json(&dir).expect("writable");
    let body = std::fs::read_to_string(&path).expect("file exists");
    assert!(body.contains("\"name\": \"snapshot\""));
    let _ = std::fs::remove_file(&path);
}
