//! A third-party prefetcher plugs into the simulator without any change
//! to `bosim-sim` — the acceptance test for the open registry design.

use best_offset::{L2Access, L2Prefetcher};
use bosim::{prefetchers, registry, PrefetcherHandle, PrefetcherSpec, SimConfig, System};
use bosim_trace::suite;
use bosim_types::{LineAddr, PageSize};

/// A toy prefetcher defined entirely in this test crate: always fetches
/// `X + 2` on an eligible access.
#[derive(Debug)]
struct TwoAheadPrefetcher {
    page: PageSize,
    issued: u64,
}

impl L2Prefetcher for TwoAheadPrefetcher {
    fn on_access(&mut self, access: L2Access, out: &mut Vec<LineAddr>) {
        if access.outcome.is_eligible() {
            if let Some(target) = access.line.checked_offset(2, self.page) {
                out.push(target);
                self.issued += 1;
            }
        }
    }

    fn on_fill(&mut self, _line: LineAddr, _prefetched: bool) {}

    fn name(&self) -> &'static str {
        "two-ahead"
    }

    fn page_size(&self) -> PageSize {
        self.page
    }
}

/// The spec — also defined entirely outside `bosim-sim`.
#[derive(Debug, Clone, Copy)]
struct TwoAheadSpec;

impl PrefetcherSpec for TwoAheadSpec {
    fn name(&self) -> String {
        "two-ahead".into()
    }

    fn build(&self, cfg: &SimConfig) -> Box<dyn L2Prefetcher> {
        Box::new(TwoAheadPrefetcher {
            page: cfg.page,
            issued: 0,
        })
    }
}

#[test]
fn external_prefetcher_registers_and_simulates() {
    registry().register("two-ahead", PrefetcherHandle::new(TwoAheadSpec));

    let handle = registry().lookup("two-ahead").expect("registered above");
    assert_eq!(handle.name(), "two-ahead");

    // Full-system run with the external prefetcher in the L2 slot.
    let spec = suite::benchmark("462").expect("exists");
    let cfg = SimConfig::builder()
        .warmup(10_000)
        .instructions(40_000)
        .prefetcher(handle)
        .build()
        .expect("valid");
    assert_eq!(cfg.label(), "4KB/1-core/two-ahead");
    let res = System::new(&cfg, &spec).run();
    assert!(res.ipc() > 0.01, "IPC {}", res.ipc());
    assert!(
        res.uncore.l2_prefetches_issued > 0,
        "the external prefetcher must actually prefetch: {:?}",
        res.uncore
    );
}

#[test]
fn external_prefetcher_beats_no_prefetch_on_streams() {
    let spec = suite::benchmark("462").expect("exists");
    let quick = |p: PrefetcherHandle| {
        SimConfig::builder()
            .warmup(10_000)
            .instructions(40_000)
            .prefetcher(p)
            .build()
            .expect("valid")
    };
    let none = System::new(&quick(prefetchers::none()), &spec).run();
    let two = System::new(&quick(PrefetcherHandle::new(TwoAheadSpec)), &spec).run();
    assert!(
        two.ipc() > none.ipc(),
        "two-ahead {} vs none {}",
        two.ipc(),
        none.ipc()
    );
}
