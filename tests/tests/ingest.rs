//! External trace ingestion, end to end (the ISSUE 5 acceptance arm):
//! generate a ChampSim-format trace, ingest it as a file-backed
//! benchmark, apply a warm-up sampling window, run it through the
//! `Experiment` harness, and assert the `SimResult` invariants —
//! `l2 hits + prefetched hits + misses == accesses`, L3 accounting
//! closing at quiescence, and per-site `useful + unused ≤ fills`.

use bosim::{prefetchers, SimConfig, System};
use bosim_bench::Experiment;
use bosim_trace::{
    addr, capture, champsim, suite, BenchmarkSpec, ExternalSpec, SampleSpec, TraceFormat,
    TraceSource,
};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bosim_ingest_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn tiny(cfg: SimConfig) -> SimConfig {
    SimConfig {
        warmup_instructions: 5_000,
        measure_instructions: 25_000,
        ..cfg
    }
}

#[test]
fn champsim_trace_through_experiment_with_warmup_sampling() {
    let dir = scratch("e2e");
    let path = dir.join("libq.champsim");
    let uops = capture(&mut suite::benchmark("462").unwrap().build(), 80_000);
    std::fs::write(&path, champsim::encode(&uops)).unwrap();

    let bench =
        BenchmarkSpec::from_trace(ExternalSpec::new(&path, TraceFormat::ChampSim).named("libq"));
    // Warm-up sampling on the trace itself, independent of the
    // simulator's warm-up instruction window.
    let base = tiny(SimConfig {
        sample: Some(SampleSpec::skip(10_000)),
        ..Default::default()
    });
    let report = Experiment::new("ingest_e2e", "BO on an ingested ChampSim trace")
        .benchmarks(vec![bench.clone()])
        .arm_vs(
            "BO",
            base.clone().with_prefetcher(prefetchers::bo_default()),
            base.clone().with_prefetcher(prefetchers::none()),
        )
        .run()
        .expect("file-backed grid runs");
    assert_eq!(report.benchmarks, vec!["libq"]);
    let run = &report.arms[0].runs[0];
    assert_eq!(run.benchmark, "libq");
    assert!(run.ipc > 0.0);
    assert!(report.arms[0].values[0] > 0.0);
    // The config label records the sampling plan.
    assert!(run.config.contains("@skip10k"), "{}", run.config);

    // SimResult invariants on a direct run of the same arm.
    let mut sys = System::new(&base.with_prefetcher(prefetchers::bo_default()), &bench);
    let res = sys.run();
    assert_eq!(res.instructions, 25_000);
    assert_eq!(
        res.uncore.l2_hits + res.uncore.l2_prefetched_hits + res.uncore.l2_misses,
        res.uncore.l2_accesses,
        "every L2 access classifies exactly once"
    );
    res.check_site_invariants()
        .expect("useful + unused <= fills at every site");
    let drained = sys.drain_uncore();
    assert_eq!(
        drained.l3_hits + drained.l3_misses,
        drained.l3_accesses,
        "L3 accounting closes at quiescence"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sampling_changes_the_replayed_stream() {
    // The same trace under different sampling plans is a different
    // workload: the skip must actually move the measured window.
    let dir = scratch("sample");
    let path = dir.join("phases.addrbin");
    // Phase 1 (accesses 0..30k): a 16KB loop, DL1-resident after the
    // first lap. Phase 2 (30k..60k): a fresh unit-stride stream that
    // must come from DRAM. A skip past the phase boundary lands the
    // measured window in entirely different behaviour.
    let accesses: Vec<addr::RawAccess> = (0..60_000u64)
        .map(|i| {
            let a = if i < 30_000 {
                0x100_0000 + (i % 256) * 64
            } else {
                0x4000_0000 + i * 64
            };
            (addr::AccessDir::Read, a)
        })
        .collect();
    std::fs::write(&path, addr::encode_binary(&accesses)).unwrap();
    let bench = BenchmarkSpec::from_trace(ExternalSpec::new(&path, TraceFormat::AddrBin));

    // Small windows: an access-only trace keeps the ROB saturated with
    // loads, the simulator's slowest-per-cycle regime.
    let run = |sample: Option<SampleSpec>| {
        let cfg = SimConfig {
            sample,
            warmup_instructions: 1_000,
            measure_instructions: 4_000,
            ..Default::default()
        };
        System::new(&cfg, &bench).run()
    };
    let unsampled = run(None);
    let skipped = run(Some(SampleSpec::skip(35_000)));
    // The streaming phase misses the caches where the loop phase hits:
    // the skipped replay must be measurably slower and DRAM-bound.
    assert!(
        skipped.cycles > unsampled.cycles,
        "skip did not move the window: {} vs {} cycles",
        skipped.cycles,
        unsampled.cycles
    );
    assert!(
        skipped.dram.reads > unsampled.dram.reads * 4,
        "skip did not reach the streaming phase: {} vs {} DRAM reads",
        skipped.dram.reads,
        unsampled.dram.reads
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn all_formats_replay_the_same_memory_stream() {
    // One synthetic prefix exported to all four formats: the two
    // µop-preserving formats (native, champsim) must produce the same
    // *memory access stream*; the address formats reduce to it.
    let dir = scratch("formats");
    let uops = capture(&mut suite::benchmark("470").unwrap().build(), 10_000);
    let native = dir.join("t.btrace");
    std::fs::write(&native, bosim_trace::file::encode(&uops)).unwrap();
    let cs = dir.join("t.champsim");
    std::fs::write(&cs, champsim::encode(&uops)).unwrap();

    let mem_stream = |spec: &BenchmarkSpec, n: usize| -> Vec<(bool, u64)> {
        let mut src = spec.source().expect("loads");
        capture(src.as_mut(), n)
            .into_iter()
            .filter_map(|u| u.mem.map(|m| (u.is_store(), m.vaddr.0)))
            .collect()
    };
    let a = mem_stream(
        &BenchmarkSpec::from_trace(ExternalSpec::new(&native, TraceFormat::Native)),
        10_000,
    );
    let b = mem_stream(
        &BenchmarkSpec::from_trace(ExternalSpec::new(&cs, TraceFormat::ChampSim)),
        10_000,
    );
    // Lap lengths differ (champsim lowering merges/splits non-memory
    // µops) — compare the prefix both cover.
    let n = a.len().min(b.len());
    assert!(n > 1_000, "too few memory accesses to compare ({n})");
    assert_eq!(a[..n], b[..n], "memory streams diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn decoder_rejections_surface_through_benchmark_source() {
    // Adversarial inputs through the public ingestion path: the typed
    // decode errors must surface from BenchmarkSpec::source().
    let dir = scratch("adversarial");

    // Truncated champsim record.
    let p = dir.join("trunc.champsim");
    std::fs::write(&p, vec![0u8; 100]).unwrap();
    let err = BenchmarkSpec::from_trace(ExternalSpec::new(&p, TraceFormat::ChampSim))
        .source()
        .unwrap_err();
    assert!(err.to_string().contains("byte offset 64"), "{err}");

    // Bad flag byte.
    let p = dir.join("badflag.champsim");
    let mut bytes = vec![0u8; 64];
    bytes[8] = 9;
    std::fs::write(&p, bytes).unwrap();
    let err = BenchmarkSpec::from_trace(ExternalSpec::new(&p, TraceFormat::ChampSim))
        .source()
        .unwrap_err();
    assert!(err.to_string().contains("is_branch"), "{err}");

    // Empty files, all formats.
    for format in [
        TraceFormat::Native,
        TraceFormat::ChampSim,
        TraceFormat::AddrText,
        TraceFormat::AddrBin,
    ] {
        let p = dir.join(format!("empty.{}", format.name()));
        std::fs::write(&p, b"").unwrap();
        assert!(
            BenchmarkSpec::from_trace(ExternalSpec::new(&p, format))
                .source()
                .is_err(),
            "{format}"
        );
    }

    // Bad text line, with its line number.
    let p = dir.join("bad.addr");
    std::fs::write(&p, "R 0x10\nQ 0x20\n").unwrap();
    let err = BenchmarkSpec::from_trace(ExternalSpec::new(&p, TraceFormat::AddrText))
        .source()
        .unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");

    // Native kind-byte corruption, with record + offset.
    let p = dir.join("bad.btrace");
    let uops = capture(&mut suite::benchmark("456").unwrap().build(), 5);
    let mut bytes = bosim_trace::file::encode(&uops);
    bytes[16 + 2 * 30 + 8] = 0x7F; // record 2's kind byte
    std::fs::write(&p, bytes).unwrap();
    let err = BenchmarkSpec::from_trace(ExternalSpec::new(&p, TraceFormat::Native))
        .source()
        .unwrap_err();
    assert!(err.to_string().contains("record 2"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn external_traces_loop_like_replay_sources() {
    // The infinite-source contract holds for ingested traces: a short
    // file loops rather than running dry mid-simulation.
    let dir = scratch("loop");
    let p = dir.join("short.addr");
    std::fs::write(&p, "R 0x1000\nW 0x2000\nR 0x3000\n").unwrap();
    let spec = BenchmarkSpec::from_trace(ExternalSpec::new(&p, TraceFormat::AddrText));
    let mut src = spec.source().expect("loads");
    let pcs: Vec<u64> = (0..7)
        .map(|_| src.next_uop().mem.unwrap().vaddr.0)
        .collect();
    assert_eq!(
        pcs,
        vec![0x1000, 0x2000, 0x3000, 0x1000, 0x2000, 0x3000, 0x1000]
    );
    assert_eq!(src.name(), "short");
    let _ = std::fs::remove_dir_all(&dir);
}
