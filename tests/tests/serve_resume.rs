//! Crash/restart suite for `bosim serve`: kill a sweep after N
//! completed jobs (via the injected abort hook), resume it, and prove
//! the final report is **byte-identical** to an uninterrupted run's —
//! with zero finished jobs re-executed — across shard counts and kill
//! points. The child-process `SIGKILL` variant (a real dead process,
//! not a cooperative stop) lives in `crates/cli/tests/serve_e2e.rs`
//! where the built binary is available.

use bosim::{prefetchers, SimConfig};
use bosim_bench::Experiment;
use bosim_cli::{serve, ServeOptions};
use std::path::{Path, PathBuf};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bosim_serve_resume_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn tiny(cfg: SimConfig) -> SimConfig {
    SimConfig {
        warmup_instructions: 2_000,
        measure_instructions: 10_000,
        ..cfg
    }
}

/// The reference grid: 3 benchmarks × 2 paired arms = 12 jobs
/// (6 subject + 6 deduplicated baselines collapse to 9 distinct).
fn experiment(name: &str) -> Experiment {
    let base = tiny(SimConfig::default());
    let bo = base.clone().with_prefetcher(prefetchers::bo_default());
    let next = base.clone(); // the default stack is next-line at L2
    Experiment::new(name, "serve resume suite")
        .benchmark_ids(&["456", "444", "462"])
        .arm_vs("BO", bo, base.clone())
        .arm_vs("base/self", next, base)
}

fn opts(dir: &Path, shards: usize, abort_after: Option<u64>) -> ServeOptions {
    let mut o = ServeOptions::new(dir);
    o.shards = shards;
    o.abort_after = abort_after;
    o
}

fn report_bytes(dir: &Path, name: &str) -> Vec<u8> {
    let path = dir.join(format!("{name}.json"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn journal_rows(dir: &Path, name: &str) -> usize {
    let path = dir.join(format!("{name}.journal.jsonl"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
        .lines()
        .count()
        .saturating_sub(1) // header line
}

#[test]
fn killed_and_resumed_sweeps_are_byte_identical_across_shard_counts() {
    // The uninterrupted reference run.
    let ref_dir = scratch("ref");
    let summary = serve(experiment("resume_grid"), &opts(&ref_dir, 2, None)).expect("reference");
    let total = summary.total;
    assert!(total >= 6, "grid too small to interrupt meaningfully");
    assert_eq!(summary.resumed, 0);
    assert_eq!(summary.ran, total);
    assert!(!summary.aborted);
    let reference = report_bytes(&ref_dir, "resume_grid");

    // Acceptance: >= 2 shard-count configurations, kill mid-grid,
    // resume, byte-identical report, zero finished jobs re-executed.
    for shards in [1usize, 3] {
        for kill_after in [1u64, (total as u64) / 2] {
            let dir = scratch(&format!("kill_{shards}_{kill_after}"));
            let first = serve(
                experiment("resume_grid"),
                &opts(&dir, shards, Some(kill_after)),
            )
            .expect("aborted run still checkpoints cleanly");
            assert!(first.aborted, "abort hook must fire");
            assert_eq!(
                first.ran, kill_after as usize,
                "in-flight completions past the abort point are discarded"
            );
            assert!(first.ran < total, "abort must leave work undone");
            assert!(
                !dir.join("resume_grid.json").exists(),
                "no report before the grid completes"
            );
            let checkpointed = journal_rows(&dir, "resume_grid");
            assert_eq!(checkpointed, first.ran);

            // Resume: exactly the missing jobs run, none repeat.
            let second = serve(experiment("resume_grid"), &opts(&dir, shards, None))
                .expect("resume completes");
            assert_eq!(
                second.resumed, first.ran,
                "every checkpointed job must be trusted on resume"
            );
            assert_eq!(
                second.ran,
                total - first.ran,
                "zero finished jobs re-executed"
            );
            assert!(!second.aborted);
            assert_eq!(journal_rows(&dir, "resume_grid"), total);
            assert_eq!(
                report_bytes(&dir, "resume_grid"),
                reference,
                "shards={shards} kill_after={kill_after}: resumed report drifted"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn double_kill_then_resume_still_converges() {
    // Two crashes at different points before the grid completes.
    let ref_dir = scratch("ref2");
    serve(experiment("resume_twice"), &opts(&ref_dir, 2, None)).expect("reference");
    let reference = report_bytes(&ref_dir, "resume_twice");

    let dir = scratch("twice");
    let a = serve(experiment("resume_twice"), &opts(&dir, 2, Some(1))).expect("first abort");
    assert!(a.aborted);
    let b = serve(experiment("resume_twice"), &opts(&dir, 3, Some(2))).expect("second abort");
    assert_eq!(b.resumed, a.ran, "second run resumes the first's rows");
    let c = serve(experiment("resume_twice"), &opts(&dir, 2, None)).expect("final resume");
    assert_eq!(c.resumed, a.ran + b.ran);
    assert_eq!(c.resumed + c.ran, c.total);
    assert_eq!(report_bytes(&dir, "resume_twice"), reference);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn completed_sweep_reruns_without_executing_anything() {
    let dir = scratch("idempotent");
    let first = serve(experiment("resume_idem"), &opts(&dir, 2, None)).expect("first");
    let bytes = report_bytes(&dir, "resume_idem");
    let again = serve(experiment("resume_idem"), &opts(&dir, 4, None)).expect("rerun");
    assert_eq!(
        again.resumed, first.total,
        "everything comes from the journal"
    );
    assert_eq!(again.ran, 0, "a finished sweep re-executes nothing");
    assert_eq!(
        report_bytes(&dir, "resume_idem"),
        bytes,
        "rewrite is stable"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_a_different_grid() {
    let dir = scratch("mismatch");
    serve(experiment("resume_guard"), &opts(&dir, 2, Some(1))).expect("abort");
    // Same name, different arms: the journal must refuse to mix grids.
    let other = Experiment::new("resume_guard", "different grid")
        .benchmark_ids(&["456"])
        .arm("raw", tiny(SimConfig::default()));
    let err = serve(other, &opts(&dir, 2, None)).expect_err("fingerprint mismatch");
    assert!(
        err.to_string().contains("does not match"),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stream_file_narrates_the_whole_lifecycle() {
    use bosim_stats::Json;
    let dir = scratch("stream");
    serve(experiment("resume_stream"), &opts(&dir, 2, Some(2))).expect("abort");
    serve(experiment("resume_stream"), &opts(&dir, 2, None)).expect("resume");
    let text = std::fs::read_to_string(dir.join("resume_stream.stream.jsonl")).expect("stream");
    let events: Vec<Json> = text
        .lines()
        .map(|l| Json::parse(l).expect("stream lines are JSON"))
        .collect();
    let kinds: Vec<&str> = events
        .iter()
        .map(|e| e.get("event").and_then(Json::as_str).expect("event kind"))
        .collect();
    // Two process lifetimes: resume..rows..abort, resume..rows..report.
    assert_eq!(kinds.first(), Some(&"resume"));
    assert_eq!(kinds.last(), Some(&"report"));
    assert!(kinds.contains(&"abort"));
    assert_eq!(kinds.iter().filter(|k| **k == "resume").count(), 2);
    // Row events carry the journal row and a consistent done/total.
    let total = events[0]
        .get("total")
        .and_then(Json::as_f64)
        .expect("total");
    let rows = kinds.iter().filter(|k| **k == "row").count();
    assert_eq!(rows as f64, total, "every job streams exactly one row");
    for e in &events {
        let done = e.get("done").and_then(Json::as_f64).expect("done");
        assert!(done <= total);
        if e.get("event").and_then(Json::as_str) == Some("row") {
            assert!(e.get("row").is_some_and(|r| r.get("key").is_some()));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
