//! Multi-level prefetching, end to end: site-qualified registry
//! resolution, the l1:stride + l2:bo + l3:next-line acceptance arm
//! through the `Experiment` harness, per-site telemetry invariants, and
//! the `dl1_stride` compatibility shim.

use bosim::{prefetchers, registry, PrefetchSite, SimConfig, System};
use bosim_bench::{Experiment, RunSummary};
use bosim_trace::suite;

fn quick(cfg: SimConfig) -> SimConfig {
    SimConfig {
        warmup_instructions: 5_000,
        measure_instructions: 30_000,
        ..cfg
    }
}

fn multilevel_cfg() -> SimConfig {
    quick(
        SimConfig::builder()
            .site("l1:stride")
            .expect("l1 site resolves")
            .site("l2:bo")
            .expect("l2 site resolves")
            .site("l3:next-line")
            .expect("l3 site resolves")
            .build()
            .expect("multi-level config validates"),
    )
}

/// The acceptance arm: a three-site stack runs through the declarative
/// `Experiment` harness end to end, its label names every site, and the
/// per-site telemetry passes `check_invariants`/`check_site_invariants`.
#[test]
fn multilevel_arm_runs_through_the_experiment_harness() {
    let base = quick(SimConfig::default());
    let report = Experiment::new("multilevel_e2e", "multi-level acceptance arm")
        .benchmark_ids(&["462", "429"])
        .arm_vs("l1+l2+l3", multilevel_cfg(), base.clone())
        .arm_vs(
            "l2 only",
            base.clone().with_prefetcher(prefetchers::bo_default()),
            base,
        )
        .run()
        .expect("grid runs");
    assert_eq!(report.arms.len(), 2);
    assert_eq!(
        report.arms[0].config,
        "4KB/1-core/l1:stride+l2:BO+l3:next-line"
    );
    // Per-site issue/fill counters are visible in the experiment output.
    let run: &RunSummary = &report.arms[0].runs[0];
    assert!(run.ipc > 0.0);
    assert!(
        run.l3_prefetches_issued > 0,
        "the L3 site must actually prefetch on a streaming benchmark: {run:?}"
    );
    let json = report.to_json().to_string();
    for key in [
        "l1_prefetches",
        "l1_prefetch_tlb_drops",
        "l2_prefetches_issued",
        "l2_prefetch_fills",
        "l3_prefetches_issued",
        "l3_prefetch_fills",
    ] {
        assert!(json.contains(&format!("\"{key}\":")), "{key} missing");
    }
}

/// Satellite: per-site telemetry invariant — at every site,
/// `useful + unused_evicted <= prefetch_fills` (each prefetch-filled
/// line resolves at most once), checked on a run where all three sites
/// are active and issuing.
#[test]
fn per_site_telemetry_invariants_hold() {
    let bench = suite::benchmark("462").expect("exists");
    let mut sys = System::new(&multilevel_cfg(), &bench);
    let result = sys.run();
    result
        .check_site_invariants()
        .unwrap_or_else(|e| panic!("{e}"));
    // All three sites were genuinely exercised.
    assert!(result.core.l1_prefetches > 0, "{:?}", result.core);
    assert!(result.l2_site.issued > 0, "{:?}", result.l2_site);
    assert!(result.l3_site.issued > 0, "{:?}", result.l3_site);
    assert!(
        result.l3_site.useful > 0,
        "L3-site prefetches must catch some L3 accesses: {:?}",
        result.l3_site
    );
    // The L3 site's resolution counters include L2 prefetches that
    // filled the L3 on their way up, so fills dominate the site's own
    // issue count.
    assert!(result.l3_site.prefetch_fills >= result.uncore.l3_prefetch_fills);
}

/// The L3 site is observational-only when empty: a default
/// (single-level) run must report zero L3-site issues and fills from
/// the site's own engine.
#[test]
fn empty_l3_site_is_inert() {
    let bench = suite::benchmark("462").expect("exists");
    let result = System::new(&quick(SimConfig::default()), &bench).run();
    assert_eq!(result.uncore.l3_prefetches_queued, 0);
    assert_eq!(result.uncore.l3_prefetches_issued, 0);
    assert_eq!(result.uncore.l3_prefetch_fills, 0);
    assert_eq!(result.l3_site.issued, 0);
    result.check_site_invariants().expect("invariants hold");
}

/// Satellite: the deprecated `dl1_stride(bool)` builder shim is
/// bit-identical to configuring the L1 site directly — both ways of
/// spelling each configuration produce equal `SimResult`s.
#[test]
fn dl1_stride_shim_matches_site_configuration() {
    // A streaming benchmark, so the stride prefetcher actually fires
    // and the on/off configurations genuinely differ.
    let bench = suite::benchmark("462").expect("exists");
    let run = |cfg: SimConfig| System::new(&quick(cfg), &bench).run();

    let shim_on = run(SimConfig::builder().dl1_stride(true).build().unwrap());
    let site_on = run(SimConfig::builder()
        .l1_prefetcher(prefetchers::stride_default())
        .build()
        .unwrap());
    assert_eq!(shim_on, site_on, "dl1_stride(true) == stride at l1");

    let shim_off = run(SimConfig::builder().dl1_stride(false).build().unwrap());
    let site_off = run(SimConfig::builder().no_l1_prefetcher().build().unwrap());
    assert_eq!(shim_off, site_off, "dl1_stride(false) == empty l1 site");
    assert_eq!(shim_off.core.l1_prefetches, 0, "site empty: no issues");
    assert_ne!(shim_on, shim_off, "the toggle must change behaviour");
}

/// Site-qualified names resolve through the process-wide registry, with
/// descriptive errors for unknown sites and site/spec mismatches.
#[test]
fn site_qualified_resolution_via_global_registry() {
    for (name, site) in [
        ("l1:stride", PrefetchSite::L1D),
        ("l2:bo", PrefetchSite::L2),
        ("l3:next-line", PrefetchSite::L3),
        ("l3:offset-8", PrefetchSite::L3),
    ] {
        let (s, _) = registry()
            .resolve_site(name)
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(s, site, "{name}");
    }
    let err = registry().resolve_site("l4:bo").unwrap_err().to_string();
    assert!(err.contains("unknown prefetch site"), "{err}");
    let err = registry()
        .resolve_site("l2:stride")
        .unwrap_err()
        .to_string();
    assert!(err.contains("does not attach to site l2"), "{err}");
}

/// Multi-core multi-level: the shared L3 site serves every core's
/// stream without breaking any invariant.
#[test]
fn multilevel_stack_on_two_cores() {
    let mut cfg = multilevel_cfg();
    cfg.active_cores = 2;
    cfg.page = bosim_types::PageSize::M4;
    let bench = suite::benchmark("470").expect("exists");
    let result = System::new(&cfg, &bench).run();
    assert!(result.ipc() > 0.01);
    result
        .check_site_invariants()
        .unwrap_or_else(|e| panic!("{e}"));
}
