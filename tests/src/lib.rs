//! Integration-test host package. All content lives in `tests/tests/`.
