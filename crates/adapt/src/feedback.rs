//! Per-epoch prefetch feedback.
//!
//! The simulator slices a run into fixed-length cycle *epochs*. At every
//! boundary it distils the uncore's per-core usefulness counters and the
//! shared DRAM activity into one [`EpochFeedback`] per core — the entire
//! interface between the machine and the tuning policies. Everything a
//! policy may react to (accuracy, coverage, lateness, bus pressure, IPC)
//! is a pure function of this record, which keeps policies deterministic
//! and unit-testable without a simulator.

use bosim_stats::Json;

/// One prefetch site's counter deltas over an epoch (the L1/L3 blocks
/// of [`EpochFeedback`]; the L2 site — the paper's subject and what
/// every pre-existing policy reads — keeps its flat fields).
// bosim-lint: schema(site-feedback)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteFeedback {
    /// Prefetch requests the site issued downstream.
    pub issued: u64,
    /// Lines filled into the site's cache still carrying prefetch class.
    pub prefetch_fills: u64,
    /// Prefetch-filled lines first touched from above while the
    /// prefetch bit was still set.
    pub useful_fills: u64,
    /// Prefetch-filled lines evicted with the prefetch bit still set.
    pub unused_evicted: u64,
}

impl SiteFeedback {
    /// Fills whose fate is known this epoch.
    pub fn resolved_fills(&self) -> u64 {
        self.useful_fills + self.unused_evicted
    }

    /// Useful fills over resolved fills; `None` until any fill resolved.
    pub fn accuracy(&self) -> Option<f64> {
        let resolved = self.resolved_fills();
        (resolved > 0).then(|| self.useful_fills as f64 / resolved as f64)
    }

    /// JSON rendering used inside the epoch telemetry.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("issued", Json::from(self.issued)),
            ("prefetch_fills", Json::from(self.prefetch_fills)),
            ("useful_fills", Json::from(self.useful_fills)),
            ("unused_evicted", Json::from(self.unused_evicted)),
            ("accuracy", Json::from(self.accuracy())),
        ])
    }
}

/// One epoch's observations for one core: raw counter deltas over the
/// epoch plus the shared DRAM-bus occupancy.
///
/// All counters are deltas (this epoch only), not running totals.
// bosim-lint: schema(epoch-feedback)
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochFeedback {
    /// Epoch index since simulation start (0-based).
    pub epoch: u64,
    /// First cycle of the epoch.
    pub start_cycle: u64,
    /// Epoch length in cycles.
    pub cycles: u64,
    /// Instructions the core retired in the epoch.
    pub instructions: u64,
    /// L2 read accesses from this core (demand + L1 prefetch).
    pub l2_accesses: u64,
    /// ... of which missed (fill-queue merges included).
    pub l2_misses: u64,
    /// L2 prefetch requests this core issued to the L3.
    pub issued: u64,
    /// Lines inserted into this core's L2 still carrying prefetch class.
    pub prefetch_fills: u64,
    /// Useful fills: first core-side hit (demand or L1 prefetch) on a
    /// line whose prefetch bit was still set ("prefetched hits", §5.6).
    pub useful_fills: u64,
    /// Prefetch-filled lines evicted with the prefetch bit still set —
    /// fetched but never used.
    pub unused_evicted: u64,
    /// Late prefetches: demand misses that merged with an in-flight
    /// prefetch fill (the prefetch was correct but not timely).
    pub late_promotions: u64,
    /// DRAM read CAS commands in the epoch (all cores).
    pub dram_reads: u64,
    /// DRAM write CAS commands in the epoch (all cores).
    pub dram_writes: u64,
    /// Fraction of the epoch the DRAM data buses were busy transferring
    /// lines, 0.0 (idle) ..= ~1.0 (saturated), aggregated over channels.
    pub bus_occupancy: f64,
    /// L1D-site prefetch requests this core issued (post-TLB2).
    pub l1_prefetches: u64,
    /// L1D-site prefetch requests dropped on a TLB2 miss.
    pub l1_tlb_drops: u64,
    /// The shared L3 site's counters. The L3 is one structure serving
    /// every core, so multi-core runs see the same machine-wide deltas
    /// in each core's feedback.
    pub l3: SiteFeedback,
}

impl EpochFeedback {
    /// Instructions per cycle over the epoch.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Resolved prefetch fills: fills whose fate is known (first demand
    /// hit or unused eviction). Fills still resident and untouched are
    /// unresolved.
    pub fn resolved_fills(&self) -> u64 {
        self.useful_fills + self.unused_evicted
    }

    /// Prefetch accuracy: useful fills over resolved fills. `None` until
    /// any fill resolved this epoch.
    pub fn accuracy(&self) -> Option<f64> {
        let resolved = self.resolved_fills();
        (resolved > 0).then(|| self.useful_fills as f64 / resolved as f64)
    }

    /// Prefetch coverage: the fraction of would-be misses the prefetcher
    /// converted into (prefetched) hits. `None` when the core had neither
    /// misses nor useful fills.
    pub fn coverage(&self) -> Option<f64> {
        let total = self.useful_fills + self.l2_misses;
        (total > 0).then(|| self.useful_fills as f64 / total as f64)
    }

    /// Prefetch lateness: among correct prefetches, the fraction that
    /// arrived too late (the demand caught the fill in flight). `None`
    /// when no prefetch was correct this epoch.
    pub fn lateness(&self) -> Option<f64> {
        let correct = self.late_promotions + self.useful_fills;
        (correct > 0).then(|| self.late_promotions as f64 / correct as f64)
    }

    /// JSON rendering used by the per-epoch report telemetry.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("epoch", Json::from(self.epoch)),
            ("start_cycle", Json::from(self.start_cycle)),
            ("cycles", Json::from(self.cycles)),
            ("instructions", Json::from(self.instructions)),
            ("ipc", Json::from(self.ipc())),
            ("l2_accesses", Json::from(self.l2_accesses)),
            ("l2_misses", Json::from(self.l2_misses)),
            ("issued", Json::from(self.issued)),
            ("prefetch_fills", Json::from(self.prefetch_fills)),
            ("useful_fills", Json::from(self.useful_fills)),
            ("unused_evicted", Json::from(self.unused_evicted)),
            ("late_promotions", Json::from(self.late_promotions)),
            ("accuracy", Json::from(self.accuracy())),
            ("coverage", Json::from(self.coverage())),
            ("lateness", Json::from(self.lateness())),
            ("dram_reads", Json::from(self.dram_reads)),
            ("dram_writes", Json::from(self.dram_writes)),
            ("bus_occupancy", Json::from(self.bus_occupancy)),
            ("l1_prefetches", Json::from(self.l1_prefetches)),
            ("l1_tlb_drops", Json::from(self.l1_tlb_drops)),
            ("l3", self.l3.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb() -> EpochFeedback {
        EpochFeedback {
            epoch: 3,
            cycles: 10_000,
            instructions: 12_000,
            l2_misses: 60,
            prefetch_fills: 100,
            useful_fills: 40,
            unused_evicted: 10,
            late_promotions: 10,
            ..Default::default()
        }
    }

    #[test]
    fn derived_metrics() {
        let f = fb();
        assert!((f.ipc() - 1.2).abs() < 1e-12);
        assert_eq!(f.resolved_fills(), 50);
        assert!((f.accuracy().unwrap() - 0.8).abs() < 1e-12);
        assert!((f.coverage().unwrap() - 0.4).abs() < 1e-12);
        assert!((f.lateness().unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_epoch_has_no_rates() {
        let f = EpochFeedback::default();
        assert_eq!(f.ipc(), 0.0);
        assert_eq!(f.accuracy(), None);
        assert_eq!(f.coverage(), None);
        assert_eq!(f.lateness(), None);
    }

    #[test]
    fn json_includes_derived_rates() {
        let j = fb().to_json().to_string();
        assert!(j.contains("\"accuracy\":0.8"), "{j}");
        assert!(j.contains("\"epoch\":3"));
        assert!(j.contains("\"l3\":{"), "{j}");
        assert!(j.contains("\"l1_prefetches\":0"), "{j}");
    }

    #[test]
    fn site_feedback_rates() {
        let s = SiteFeedback {
            issued: 100,
            prefetch_fills: 90,
            useful_fills: 30,
            unused_evicted: 10,
        };
        assert_eq!(s.resolved_fills(), 40);
        assert!((s.accuracy().unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(SiteFeedback::default().accuracy(), None);
        let j = s.to_json().to_string();
        assert!(j.contains("\"issued\":100"), "{j}");
    }
}
