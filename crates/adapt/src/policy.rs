//! Tuning policies: epoch feedback in, reconfiguration directives out.
//!
//! A [`TunePolicy`] is a per-core state machine invoked once per epoch
//! with that core's [`EpochFeedback`]; the directives it emits are
//! applied to the core's L2 prefetcher by the simulator. Policies are
//! described by cheap, cloneable [`PolicySpec`] values (mirroring the
//! prefetcher-spec pattern) so simulation configurations stay `Clone`
//! and experiment grids can deduplicate on the `Debug` rendering.
//!
//! Three policies ship built in:
//!
//! * [`DegreeGovernorSpec`] — switches BO between degree 1 and 2 from
//!   observed accuracy and bus pressure;
//! * [`BandwidthThrottleSpec`] — gates prefetch off under DRAM-bus
//!   contention (and back on when pressure clears);
//! * [`TournamentSpec`] — samples a list of registered prefetchers for a
//!   few epochs each, then runs the IPC winner, re-exploring
//!   periodically to track phase changes.

use crate::EpochFeedback;
use best_offset::{SiteDirective, TuneDirective};
use std::fmt;
use std::sync::Arc;

/// A per-core tuning policy (see the crate docs for the control
/// loop it plugs into).
pub trait TunePolicy: fmt::Debug {
    /// The policy's report label.
    fn name(&self) -> String;

    /// Observes one finished epoch and appends any reconfiguration
    /// directives — each addressed to a prefetch site — to `out`.
    /// Called once per epoch per core, in epoch order; the policy owns
    /// whatever state it needs between calls. A bare
    /// [`TuneDirective`]`.into()` addresses the L2 site. Directives
    /// addressed to the *shared* L3 site are honoured from core 0's
    /// policy instance only (other cores' L3 directives are recorded as
    /// rejected) — the L3 is one engine, not a per-core structure.
    fn on_epoch(&mut self, feedback: &EpochFeedback, out: &mut Vec<SiteDirective>);
}

/// A description of a tuning policy that can build the live per-core
/// state machine. The `Debug` rendering must include every parameter
/// (experiment-grid deduplication relies on it).
pub trait PolicySpec: fmt::Debug + Send + Sync {
    /// Label used in configuration labels and reports.
    fn name(&self) -> String;

    /// Builds one core's policy state machine.
    fn build(&self) -> Box<dyn TunePolicy>;

    /// Registry names of the prefetchers this policy may switch to via
    /// [`TuneDirective::SwitchPrefetcher`]. Configuration validation
    /// resolves each name up front so a sweep fails fast instead of
    /// mid-run.
    fn prefetcher_names(&self) -> Vec<String> {
        Vec::new()
    }
}

/// A shared, cloneable handle to a [`PolicySpec`].
#[derive(Clone)]
pub struct PolicyHandle(Arc<dyn PolicySpec>);

impl PolicyHandle {
    /// Wraps a spec into a shareable handle.
    pub fn new(spec: impl PolicySpec + 'static) -> Self {
        PolicyHandle(Arc::new(spec))
    }

    /// The spec's report label.
    pub fn name(&self) -> String {
        self.0.name()
    }

    /// Builds one core's policy state machine.
    pub fn build(&self) -> Box<dyn TunePolicy> {
        self.0.build()
    }

    /// Borrows the underlying spec.
    pub fn spec(&self) -> &dyn PolicySpec {
        self.0.as_ref()
    }
}

impl fmt::Debug for PolicyHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<S: PolicySpec + 'static> From<S> for PolicyHandle {
    fn from(spec: S) -> Self {
        PolicyHandle::new(spec)
    }
}

// ---------------------------------------------------------------------
// Degree governor
// ---------------------------------------------------------------------

/// Switches the BO prefetch degree between 1 and 2 at runtime.
///
/// Degree 2 (prefetching with the best *and* second-best offset, §4.3)
/// buys coverage at the price of extra traffic — worth it only while the
/// prefetches are overwhelmingly accurate and the DRAM bus has headroom.
/// The governor promotes to degree 2 when epoch accuracy reaches
/// `accuracy_up` with occupancy under `occupancy_cap`, and demotes back
/// when accuracy falls to `accuracy_down` or the bus saturates.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeGovernorSpec {
    /// Promote to degree 2 at/above this accuracy (default 0.70).
    pub accuracy_up: f64,
    /// Demote to degree 1 at/below this accuracy (default 0.40).
    pub accuracy_down: f64,
    /// Never run degree 2 at/above this bus occupancy (default 0.60).
    pub occupancy_cap: f64,
    /// Minimum resolved fills in an epoch before acting (default 64).
    pub min_fills: u64,
}

impl Default for DegreeGovernorSpec {
    fn default() -> Self {
        DegreeGovernorSpec {
            accuracy_up: 0.70,
            accuracy_down: 0.40,
            occupancy_cap: 0.60,
            min_fills: 64,
        }
    }
}

impl PolicySpec for DegreeGovernorSpec {
    fn name(&self) -> String {
        "degree-governor".into()
    }

    fn build(&self) -> Box<dyn TunePolicy> {
        Box::new(DegreeGovernor {
            spec: self.clone(),
            degree: 1,
            initialized: false,
        })
    }
}

#[derive(Debug)]
struct DegreeGovernor {
    spec: DegreeGovernorSpec,
    /// The degree last commanded.
    degree: u32,
    /// Whether the initial SetDegree was emitted. The prefetcher may
    /// have been *configured* at degree 2; the first boundary forces it
    /// to the governor's starting state so the two can never desync.
    initialized: bool,
}

impl TunePolicy for DegreeGovernor {
    fn name(&self) -> String {
        self.spec.name()
    }

    fn on_epoch(&mut self, fb: &EpochFeedback, out: &mut Vec<SiteDirective>) {
        if !self.initialized {
            self.initialized = true;
            out.push(TuneDirective::SetDegree(self.degree).into());
        }
        if fb.resolved_fills() < self.spec.min_fills {
            return;
        }
        let acc = fb.accuracy().expect("resolved_fills > 0"); // bosim-lint: allow(P002, guarded by resolved_fills > 0 above)
        let occ = fb.bus_occupancy;
        if self.degree == 1 && acc >= self.spec.accuracy_up && occ < self.spec.occupancy_cap {
            self.degree = 2;
            out.push(TuneDirective::SetDegree(2).into());
        } else if self.degree == 2
            && (acc <= self.spec.accuracy_down || occ >= self.spec.occupancy_cap)
        {
            self.degree = 1;
            out.push(TuneDirective::SetDegree(1).into());
        }
    }
}

// ---------------------------------------------------------------------
// Bandwidth-aware throttle
// ---------------------------------------------------------------------

/// Gates prefetch off while the DRAM bus is contended and the prefetches
/// are not pulling their weight, re-enabling when pressure clears.
///
/// The gate uses hysteresis (`occupancy_high` to close, `occupancy_low`
/// to reopen) so a workload hovering at the threshold does not flap.
/// Highly accurate prefetchers (epoch accuracy at/above
/// `accuracy_floor`) are spared: their traffic is the useful kind.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthThrottleSpec {
    /// Gate prefetch off at/above this bus occupancy (default 0.75).
    pub occupancy_high: f64,
    /// Re-enable prefetch at/below this bus occupancy (default 0.50).
    pub occupancy_low: f64,
    /// Do not gate while epoch accuracy is at/above this (default 0.90).
    pub accuracy_floor: f64,
    /// Minimum resolved fills before the accuracy exemption applies
    /// (default 32; with fewer fills the accuracy estimate is noise).
    pub min_fills: u64,
}

impl Default for BandwidthThrottleSpec {
    fn default() -> Self {
        BandwidthThrottleSpec {
            occupancy_high: 0.75,
            occupancy_low: 0.50,
            accuracy_floor: 0.90,
            min_fills: 32,
        }
    }
}

impl PolicySpec for BandwidthThrottleSpec {
    fn name(&self) -> String {
        "bw-throttle".into()
    }

    fn build(&self) -> Box<dyn TunePolicy> {
        Box::new(BandwidthThrottle {
            spec: self.clone(),
            enabled: true,
        })
    }
}

#[derive(Debug)]
struct BandwidthThrottle {
    spec: BandwidthThrottleSpec,
    enabled: bool,
}

impl TunePolicy for BandwidthThrottle {
    fn name(&self) -> String {
        self.spec.name()
    }

    fn on_epoch(&mut self, fb: &EpochFeedback, out: &mut Vec<SiteDirective>) {
        if self.enabled {
            let accurate = fb.resolved_fills() >= self.spec.min_fills
                && fb.accuracy().is_some_and(|a| a >= self.spec.accuracy_floor);
            if fb.bus_occupancy >= self.spec.occupancy_high && !accurate {
                self.enabled = false;
                out.push(TuneDirective::SetEnabled(false).into());
            }
        } else if fb.bus_occupancy <= self.spec.occupancy_low {
            self.enabled = true;
            out.push(TuneDirective::SetEnabled(true).into());
        }
    }
}

// ---------------------------------------------------------------------
// Tournament selector
// ---------------------------------------------------------------------

/// Runtime tournament between registered prefetchers.
///
/// The selector cycles through `candidates` (prefetcher registry names),
/// running each for `trial_epochs` epochs and scoring it by the IPC of
/// its scored epochs (the first trial epoch after a switch is discarded
/// as warm-up when `trial_epochs > 1`). It then switches to the winner
/// for up to `exploit_epochs` epochs before re-exploring.
///
/// Exploitation additionally watches for *phase changes*: when an
/// epoch's IPC deviates from the winner's trial score by more than
/// `retrigger_delta` (relative), the workload has probably moved to a
/// different phase and the standings are stale — the selector re-runs
/// the tournament immediately instead of waiting out the exploit
/// window. Without this, a decision made late in one phase silently
/// misgoverns the whole next phase.
#[derive(Debug, Clone, PartialEq)]
pub struct TournamentSpec {
    /// Prefetcher registry names to choose between (at least two).
    pub candidates: Vec<String>,
    /// Epochs each candidate runs per exploration round (default 1; the
    /// first is warm-up when more than one).
    pub trial_epochs: u32,
    /// Maximum epochs the winner runs before re-exploring (default 12).
    pub exploit_epochs: u32,
    /// Relative IPC deviation from the winner's trial score that
    /// triggers an early re-exploration (default 0.25; `f64::INFINITY`
    /// disables phase-change detection).
    pub retrigger_delta: f64,
}

impl TournamentSpec {
    /// A tournament over `candidates` with the default pacing.
    pub fn new(candidates: impl IntoIterator<Item = impl Into<String>>) -> Self {
        TournamentSpec {
            candidates: candidates.into_iter().map(Into::into).collect(),
            trial_epochs: 1,
            exploit_epochs: 12,
            retrigger_delta: 0.25,
        }
    }
}

impl PolicySpec for TournamentSpec {
    fn name(&self) -> String {
        format!("tournament[{}]", self.candidates.join(","))
    }

    fn build(&self) -> Box<dyn TunePolicy> {
        Box::new(Tournament {
            spec: self.clone(),
            state: TournamentState::Start,
            scores: vec![(0, 0); self.candidates.len()],
        })
    }

    fn prefetcher_names(&self) -> Vec<String> {
        self.candidates.clone()
    }
}

#[derive(Debug)]
enum TournamentState {
    /// Waiting for the first epoch boundary to begin exploring.
    Start,
    /// Candidate `idx` is running; `seen` epochs of its trial finished.
    Explore { idx: usize, seen: u32 },
    /// The winner (with its trial-score IPC) runs for another `left`
    /// epochs, unless a phase change retriggers exploration first.
    Exploit { left: u32, score: f64 },
}

#[derive(Debug)]
struct Tournament {
    spec: TournamentSpec,
    state: TournamentState,
    /// Per-candidate (instructions, cycles) over scored trial epochs.
    scores: Vec<(u64, u64)>,
}

impl Tournament {
    fn winner(&self) -> (usize, f64) {
        let ipc = |&(i, c): &(u64, u64)| {
            if c == 0 {
                0.0
            } else {
                i as f64 / c as f64
            }
        };
        let mut best = 0;
        for (k, s) in self.scores.iter().enumerate() {
            if ipc(s) > ipc(&self.scores[best]) {
                best = k;
            }
        }
        (best, ipc(&self.scores[best]))
    }

    fn explore(&mut self, out: &mut Vec<SiteDirective>) {
        self.scores.fill((0, 0));
        out.push(TuneDirective::SwitchPrefetcher(self.spec.candidates[0].clone()).into());
        self.state = TournamentState::Explore { idx: 0, seen: 0 };
    }
}

impl TunePolicy for Tournament {
    fn name(&self) -> String {
        self.spec.name()
    }

    fn on_epoch(&mut self, fb: &EpochFeedback, out: &mut Vec<SiteDirective>) {
        if self.spec.candidates.len() < 2 {
            return; // nothing to select between
        }
        match &mut self.state {
            TournamentState::Start => self.explore(out),
            TournamentState::Explore { idx, seen } => {
                // This epoch ran candidate `idx`.
                *seen += 1;
                let warmup = u32::from(self.spec.trial_epochs > 1);
                if *seen > warmup {
                    let s = &mut self.scores[*idx];
                    s.0 += fb.instructions;
                    s.1 += fb.cycles;
                }
                if *seen >= self.spec.trial_epochs.max(1) {
                    let next = *idx + 1;
                    if next < self.spec.candidates.len() {
                        out.push(
                            TuneDirective::SwitchPrefetcher(self.spec.candidates[next].clone())
                                .into(),
                        );
                        self.state = TournamentState::Explore { idx: next, seen: 0 };
                    } else {
                        let current = *idx;
                        let (w, score) = self.winner();
                        // Don't cold-rebuild the winner when it is the
                        // candidate already running: a stateful
                        // prefetcher (BO) keeps its just-warmed learning
                        // state for the exploit window.
                        if w != current {
                            out.push(
                                TuneDirective::SwitchPrefetcher(self.spec.candidates[w].clone())
                                    .into(),
                            );
                        }
                        self.state = TournamentState::Exploit {
                            left: self.spec.exploit_epochs.max(1),
                            score,
                        };
                    }
                }
            }
            TournamentState::Exploit { left, score } => {
                *left -= 1;
                // Phase-change detection: an exploit epoch whose IPC is
                // far from the winner's trial score means the standings
                // are stale — re-run the tournament now.
                let moved = *score > 0.0
                    && ((fb.ipc() - *score).abs() / *score) > self.spec.retrigger_delta;
                if *left == 0 || moved {
                    self.explore(out);
                }
            }
        }
    }
}

/// Constructor shorthands for the built-in tuning policies.
pub mod policies {
    use super::*;

    /// The BO degree governor with default thresholds.
    pub fn degree_governor() -> PolicyHandle {
        PolicyHandle::new(DegreeGovernorSpec::default())
    }

    /// The bandwidth-aware throttle with default thresholds.
    pub fn bandwidth_throttle() -> PolicyHandle {
        PolicyHandle::new(BandwidthThrottleSpec::default())
    }

    /// A tournament over prefetcher registry names with default pacing.
    pub fn tournament(candidates: impl IntoIterator<Item = impl Into<String>>) -> PolicyHandle {
        PolicyHandle::new(TournamentSpec::new(candidates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(useful: u64, unused: u64, occ: f64) -> EpochFeedback {
        EpochFeedback {
            cycles: 10_000,
            instructions: 10_000,
            useful_fills: useful,
            unused_evicted: unused,
            bus_occupancy: occ,
            ..Default::default()
        }
    }

    fn step(p: &mut dyn TunePolicy, f: &EpochFeedback) -> Vec<SiteDirective> {
        let mut out = Vec::new();
        p.on_epoch(f, &mut out);
        out
    }

    #[test]
    fn governor_promotes_and_demotes_on_accuracy() {
        let mut p = policies::degree_governor().build();
        // First epoch establishes a known degree (the prefetcher may
        // have been configured differently); too few fills otherwise.
        assert_eq!(
            step(p.as_mut(), &fb(10, 0, 0.1)),
            vec![TuneDirective::SetDegree(1).into()]
        );
        assert!(step(p.as_mut(), &fb(10, 0, 0.1)).is_empty());
        // Accurate and idle bus: degree 2.
        assert_eq!(
            step(p.as_mut(), &fb(90, 10, 0.1)),
            vec![TuneDirective::SetDegree(2).into()]
        );
        // Staying accurate: no churn.
        assert!(step(p.as_mut(), &fb(90, 10, 0.1)).is_empty());
        // Accuracy collapses: back to degree 1.
        assert_eq!(
            step(p.as_mut(), &fb(20, 80, 0.1)),
            vec![TuneDirective::SetDegree(1).into()]
        );
    }

    #[test]
    fn governor_respects_bus_pressure() {
        let mut p = policies::degree_governor().build();
        // Accurate but saturated bus: stay at degree 1 (beyond the
        // initial state-establishing directive).
        assert_eq!(
            step(p.as_mut(), &fb(90, 10, 0.9)),
            vec![TuneDirective::SetDegree(1).into()]
        );
        assert!(step(p.as_mut(), &fb(90, 10, 0.9)).is_empty());
        assert_eq!(
            step(p.as_mut(), &fb(90, 10, 0.2)),
            vec![TuneDirective::SetDegree(2).into()]
        );
        // Pressure returns: demote even though accuracy is fine.
        assert_eq!(
            step(p.as_mut(), &fb(90, 10, 0.9)),
            vec![TuneDirective::SetDegree(1).into()]
        );
    }

    #[test]
    fn throttle_gates_with_hysteresis() {
        let mut p = policies::bandwidth_throttle().build();
        assert!(step(p.as_mut(), &fb(10, 30, 0.6)).is_empty(), "below high");
        assert_eq!(
            step(p.as_mut(), &fb(10, 30, 0.8)),
            vec![TuneDirective::SetEnabled(false).into()]
        );
        // Still above the low threshold: stays gated.
        assert!(step(p.as_mut(), &fb(0, 0, 0.6)).is_empty());
        assert_eq!(
            step(p.as_mut(), &fb(0, 0, 0.3)),
            vec![TuneDirective::SetEnabled(true).into()]
        );
    }

    #[test]
    fn throttle_spares_accurate_prefetchers() {
        let mut p = policies::bandwidth_throttle().build();
        // Saturated bus but 97% accuracy with plenty of fills: keep going.
        assert!(step(p.as_mut(), &fb(97, 3, 0.9)).is_empty());
        // Same pressure, poor accuracy: gate.
        assert_eq!(
            step(p.as_mut(), &fb(30, 70, 0.9)),
            vec![TuneDirective::SetEnabled(false).into()]
        );
    }

    #[test]
    fn tournament_explores_then_exploits_the_ipc_winner() {
        let mut spec = TournamentSpec::new(["bo", "none"]);
        spec.trial_epochs = 1; // no warm-up epoch: every trial epoch scores
        spec.exploit_epochs = 3;
        let mut p = spec.build();
        let epoch = |ipc: u64| EpochFeedback {
            cycles: 1_000,
            instructions: ipc,
            ..Default::default()
        };
        // Boundary 0: start exploring with candidate 0.
        assert_eq!(
            step(p.as_mut(), &epoch(500)),
            vec![TuneDirective::SwitchPrefetcher("bo".into()).into()]
        );
        // "bo" scores 2.0 IPC; move on to "none".
        assert_eq!(
            step(p.as_mut(), &epoch(2_000)),
            vec![TuneDirective::SwitchPrefetcher("none".into()).into()]
        );
        // "none" scores 0.5 IPC; the winner ("bo") is adopted.
        assert_eq!(
            step(p.as_mut(), &epoch(500)),
            vec![TuneDirective::SwitchPrefetcher("bo".into()).into()]
        );
        // Exploit for 3 epochs...
        assert!(step(p.as_mut(), &epoch(2_000)).is_empty());
        assert!(step(p.as_mut(), &epoch(2_000)).is_empty());
        // ...then re-explore from candidate 0.
        assert_eq!(
            step(p.as_mut(), &epoch(2_000)),
            vec![TuneDirective::SwitchPrefetcher("bo".into()).into()]
        );
    }

    #[test]
    fn tournament_discards_the_warmup_epoch() {
        let mut spec = TournamentSpec::new(["a", "b"]);
        spec.trial_epochs = 2;
        spec.exploit_epochs = 8;
        let mut p = spec.build();
        let epoch = |ipc: u64| EpochFeedback {
            cycles: 1_000,
            instructions: ipc,
            ..Default::default()
        };
        step(p.as_mut(), &epoch(0)); // -> switch a
        step(p.as_mut(), &epoch(9_000)); // a warm-up (discarded)
        step(p.as_mut(), &epoch(1_000)); // a scored: 1.0 -> switch b
        step(p.as_mut(), &epoch(0)); // b warm-up (discarded)
        let adopt = step(p.as_mut(), &epoch(2_000)); // b scored: 2.0 -> wins
                                                     // The winner is the candidate already running: no cold rebuild.
        assert!(adopt.is_empty(), "{adopt:?}");
        // It keeps running through the exploit window (no directives).
        assert!(step(p.as_mut(), &epoch(2_000)).is_empty());
    }

    #[test]
    fn handles_render_parameters_for_dedup() {
        let a = format!("{:?}", policies::tournament(["bo", "none"]));
        let b = format!("{:?}", policies::tournament(["bo", "sbp"]));
        assert_ne!(a, b);
        assert_eq!(
            policies::tournament(["bo", "none"]).name(),
            "tournament[bo,none]"
        );
    }
}
