//! # bosim-adapt — adaptive prefetch control
//!
//! The paper fixes the Best-Offset parameters offline (Table 2); its only
//! runtime feedback is the BADSCORE throttle. This crate supplies the
//! missing control loop: an **epoch feedback monitor** plus a **policy
//! engine** that reconfigures the L2 prefetcher while the simulation
//! runs, in the spirit of runtime-guided prefetch reconfiguration
//! (Prat et al.) and online-learned prefetch control (Pythia).
//!
//! The pieces, bottom to top:
//!
//! * [`EpochFeedback`] — one epoch's per-core usefulness counters
//!   (useful / unused-evicted / late prefetch fills, issue counts) plus
//!   the shared DRAM-bus occupancy, with derived accuracy / coverage /
//!   lateness rates;
//! * [`TunePolicy`] / [`PolicySpec`] / [`PolicyHandle`] — the open policy
//!   interface (mirroring the prefetcher-spec pattern) with three
//!   built-ins under [`policies`]: a BO degree governor, a
//!   bandwidth-aware throttle and a prefetcher tournament;
//! * [`AdaptConfig`] — what a simulation configuration carries: the
//!   policy and the epoch length;
//! * [`AdaptTelemetry`] — the per-run epoch log (feedback, active
//!   prefetcher, directives) with JSON/table rendering and the counter
//!   invariants CI pins down.
//!
//! The simulator side (uncore counters, epoch boundaries in the system
//! loop, directive application) lives in `bosim-sim`; policies
//! themselves never see a simulator, only [`EpochFeedback`] values —
//! which keeps them deterministic and unit-testable in isolation.

#![warn(missing_docs)]

mod feedback;
mod policy;
mod telemetry;

pub use best_offset::{PrefetchSite, SiteDirective, TuneDirective};
pub use feedback::{EpochFeedback, SiteFeedback};
pub use policy::{
    policies, BandwidthThrottleSpec, DegreeGovernorSpec, PolicyHandle, PolicySpec, TournamentSpec,
    TunePolicy,
};
pub use telemetry::{AdaptTelemetry, DirectiveRecord, EpochRecord};

/// Adaptive-control configuration carried by a simulation config: which
/// policy to run and how long an epoch is.
#[derive(Debug, Clone)]
pub struct AdaptConfig {
    /// Epoch length in core cycles. Telemetry is snapshotted and the
    /// policy consulted once per epoch per core.
    pub epoch_cycles: u64,
    /// The tuning policy (one instance is built per core).
    pub policy: PolicyHandle,
}

/// The default epoch length: long enough for usefulness counters to
/// resolve (a DRAM round trip is ~100–300 cycles), short enough to track
/// phase changes within a measured window.
pub const DEFAULT_EPOCH_CYCLES: u64 = 20_000;

impl AdaptConfig {
    /// An adaptive configuration with the default epoch length.
    pub fn new(policy: impl Into<PolicyHandle>) -> Self {
        AdaptConfig {
            epoch_cycles: DEFAULT_EPOCH_CYCLES,
            policy: policy.into(),
        }
    }

    /// Overrides the epoch length.
    pub fn epoch_cycles(mut self, cycles: u64) -> Self {
        self.epoch_cycles = cycles;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint (an epoch of
    /// zero cycles, or a tournament with fewer than two candidates).
    pub fn validate(&self) -> Result<(), String> {
        if self.epoch_cycles == 0 {
            return Err("adapt epoch length must be at least 1 cycle".into());
        }
        let candidates = self.policy.spec().prefetcher_names();
        if !candidates.is_empty() && candidates.len() < 2 {
            return Err(format!(
                "policy {} switches prefetchers but lists only {} candidate",
                self.policy.name(),
                candidates.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_validation() {
        let cfg = AdaptConfig::new(policies::degree_governor());
        assert_eq!(cfg.epoch_cycles, DEFAULT_EPOCH_CYCLES);
        assert!(cfg.validate().is_ok());
        assert!(cfg.epoch_cycles(0).validate().is_err());
    }

    #[test]
    fn single_candidate_tournament_is_rejected() {
        let cfg = AdaptConfig::new(policies::tournament(["bo"]));
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("only 1 candidate"), "{err}");
        assert!(AdaptConfig::new(policies::tournament(["bo", "none"]))
            .validate()
            .is_ok());
    }
}
