//! Per-run adaptation telemetry: the epoch log.
//!
//! While an adaptive run executes, the simulator appends one
//! [`EpochRecord`] per epoch for the monitored core (core 0, the one
//! running the benchmark): the epoch's [`EpochFeedback`], the prefetcher
//! that produced it, and every directive the policy emitted at the
//! boundary. The full [`AdaptTelemetry`] rides in the simulation result
//! and from there into experiment report JSON, and carries the counter
//! invariants the CI smoke arm pins down.

use crate::EpochFeedback;
use bosim_stats::{Align, Json, Table};

/// One applied-or-rejected directive at an epoch boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectiveRecord {
    /// Rendered site-addressed directive (e.g. `"l2:degree=2"`,
    /// `"l3:prefetch=off"`, `"l2:switch=none"`).
    pub directive: String,
    /// Whether the target prefetcher (or the simulator, for switches)
    /// accepted it.
    pub applied: bool,
}

/// One epoch of the monitored core's adaptation history.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// The epoch's feedback (counter deltas + derived rates).
    pub feedback: EpochFeedback,
    /// Name of the prefetcher that ran during this epoch.
    pub prefetcher: String,
    /// Directives the policy emitted at this epoch's end boundary.
    pub directives: Vec<DirectiveRecord>,
}

impl EpochRecord {
    fn to_json(&self) -> Json {
        let mut obj = match self.feedback.to_json() {
            Json::Obj(pairs) => pairs,
            _ => unreachable!("feedback renders as an object"),
        };
        obj.push(("prefetcher".into(), Json::from(self.prefetcher.as_str())));
        obj.push((
            "directives".into(),
            Json::arr(self.directives.iter().map(|d| {
                Json::obj([
                    ("directive", Json::from(d.directive.as_str())),
                    ("applied", Json::from(d.applied)),
                ])
            })),
        ));
        Json::Obj(obj)
    }
}

/// The complete adaptation history of one simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdaptTelemetry {
    /// The tuning policy's label.
    pub policy: String,
    /// Epoch length in cycles.
    pub epoch_cycles: u64,
    /// One record per completed epoch of the monitored core, in order.
    /// (The trailing partial epoch at run end is not recorded.)
    pub epochs: Vec<EpochRecord>,
    /// Directives applied successfully, all cores.
    pub applied: u64,
    /// Directives rejected (unsupported by the running prefetcher), all
    /// cores.
    pub rejected: u64,
}

impl AdaptTelemetry {
    /// Checks the counter invariants the telemetry must satisfy:
    ///
    /// * cumulatively, `useful + unused_evicted <= prefetch_fills` at
    ///   **every site** (the flat L2 counters and the `l3` block) —
    ///   every prefetch-filled line resolves at most once;
    /// * every derived rate (accuracy, coverage, lateness, per-site
    ///   accuracy) lies in `[0, 1]`;
    /// * bus occupancy is non-negative and sane (≤ 1.25; boundary bursts
    ///   may spill a little past 1.0);
    /// * epoch indices are consecutive.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let (mut useful, mut unused, mut fills) = (0u64, 0u64, 0u64);
        let (mut l3_useful, mut l3_unused, mut l3_fills) = (0u64, 0u64, 0u64);
        for (i, r) in self.epochs.iter().enumerate() {
            let fb = &r.feedback;
            if fb.epoch != i as u64 {
                return Err(format!("epoch {i} recorded index {}", fb.epoch));
            }
            useful += fb.useful_fills;
            unused += fb.unused_evicted;
            fills += fb.prefetch_fills;
            l3_useful += fb.l3.useful_fills;
            l3_unused += fb.l3.unused_evicted;
            l3_fills += fb.l3.prefetch_fills;
            for (label, rate) in [
                ("accuracy", fb.accuracy()),
                ("coverage", fb.coverage()),
                ("lateness", fb.lateness()),
                ("l3 accuracy", fb.l3.accuracy()),
            ] {
                if let Some(v) = rate {
                    if !(0.0..=1.0).contains(&v) {
                        return Err(format!("epoch {i}: {label} {v} outside [0, 1]"));
                    }
                }
            }
            if !(0.0..=1.25).contains(&fb.bus_occupancy) {
                return Err(format!(
                    "epoch {i}: bus occupancy {} outside [0, 1.25]",
                    fb.bus_occupancy
                ));
            }
        }
        if useful + unused > fills {
            return Err(format!(
                "L2 site: useful ({useful}) + unused-evicted ({unused}) exceeds prefetch fills ({fills})"
            ));
        }
        if l3_useful + l3_unused > l3_fills {
            return Err(format!(
                "L3 site: useful ({l3_useful}) + unused-evicted ({l3_unused}) exceeds prefetch fills ({l3_fills})"
            ));
        }
        Ok(())
    }

    /// The telemetry as a JSON tree (one object per epoch plus totals).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("policy", Json::from(self.policy.as_str())),
            ("epoch_cycles", Json::from(self.epoch_cycles)),
            ("directives_applied", Json::from(self.applied)),
            ("directives_rejected", Json::from(self.rejected)),
            (
                "epochs",
                Json::arr(self.epochs.iter().map(EpochRecord::to_json)),
            ),
        ])
    }

    /// An aligned text table of the epoch history — the human-readable
    /// counterpart of [`to_json`](Self::to_json).
    pub fn table(&self) -> Table {
        let mut t = Table::new([
            "epoch",
            "prefetcher",
            "ipc",
            "accuracy",
            "coverage",
            "lateness",
            "bus",
            "directives",
        ]);
        t.align([
            Align::Right,
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Left,
        ]);
        let rate = |v: Option<f64>| v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into());
        for r in &self.epochs {
            let fb = &r.feedback;
            let dirs: Vec<String> = r
                .directives
                .iter()
                .map(|d| {
                    if d.applied {
                        d.directive.clone()
                    } else {
                        format!("{}(rejected)", d.directive)
                    }
                })
                .collect();
            t.row([
                fb.epoch.to_string(),
                r.prefetcher.clone(),
                format!("{:.3}", fb.ipc()),
                rate(fb.accuracy()),
                rate(fb.coverage()),
                rate(fb.lateness()),
                format!("{:.2}", fb.bus_occupancy),
                dirs.join(" "),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: u64, fills: u64, useful: u64, unused: u64) -> EpochRecord {
        EpochRecord {
            feedback: EpochFeedback {
                epoch,
                cycles: 1_000,
                instructions: 800,
                prefetch_fills: fills,
                useful_fills: useful,
                unused_evicted: unused,
                bus_occupancy: 0.3,
                ..Default::default()
            },
            prefetcher: "BO".into(),
            directives: vec![DirectiveRecord {
                directive: "degree=2".into(),
                applied: true,
            }],
        }
    }

    fn telemetry(epochs: Vec<EpochRecord>) -> AdaptTelemetry {
        AdaptTelemetry {
            policy: "degree-governor".into(),
            epoch_cycles: 1_000,
            epochs,
            applied: 1,
            rejected: 0,
        }
    }

    #[test]
    fn invariants_hold_for_a_sane_log() {
        // A fill from epoch 0 may resolve in epoch 1: the invariant is
        // cumulative, not per-epoch.
        let t = telemetry(vec![record(0, 100, 10, 0), record(1, 0, 60, 20)]);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn over_resolution_is_caught() {
        let t = telemetry(vec![record(0, 50, 40, 20)]);
        let err = t.check_invariants().unwrap_err();
        assert!(err.contains("exceeds prefetch fills"), "{err}");
        assert!(err.contains("L2 site"), "{err}");
    }

    #[test]
    fn l3_site_over_resolution_is_caught() {
        // The per-site invariant applies to the L3 block independently.
        let mut r = record(0, 100, 10, 0);
        r.feedback.l3 = crate::SiteFeedback {
            issued: 5,
            prefetch_fills: 4,
            useful_fills: 3,
            unused_evicted: 2,
        };
        let err = telemetry(vec![r]).check_invariants().unwrap_err();
        assert!(err.contains("L3 site"), "{err}");
        // A consistent L3 block passes.
        let mut ok = record(0, 100, 10, 0);
        ok.feedback.l3 = crate::SiteFeedback {
            issued: 5,
            prefetch_fills: 4,
            useful_fills: 2,
            unused_evicted: 2,
        };
        assert!(telemetry(vec![ok]).check_invariants().is_ok());
    }

    #[test]
    fn non_consecutive_epochs_are_caught() {
        let t = telemetry(vec![record(0, 10, 0, 0), record(3, 10, 0, 0)]);
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn silly_occupancy_is_caught() {
        let mut r = record(0, 10, 0, 0);
        r.feedback.bus_occupancy = 2.0;
        assert!(telemetry(vec![r]).check_invariants().is_err());
    }

    #[test]
    fn json_and_table_render() {
        let t = telemetry(vec![record(0, 100, 80, 5)]);
        let j = t.to_json().to_string();
        assert!(j.contains("\"policy\":\"degree-governor\""));
        assert!(j.contains("\"prefetcher\":\"BO\""));
        assert!(j.contains("\"directive\":\"degree=2\""));
        let table = t.table().to_tsv();
        assert!(table.contains("degree=2"), "{table}");
        assert!(table.starts_with("epoch\tprefetcher\tipc"));
    }
}
