//! Minimal JSON value tree and serialiser.
//!
//! The workspace builds hermetically with no external crates, so the
//! machine-readable reports of the experiment harness use this small,
//! RFC 8259-conformant emitter instead of `serde_json`. Construction is
//! explicit — build a [`Json`] tree and render it:
//!
//! ```
//! use bosim_stats::Json;
//!
//! let doc = Json::obj([
//!     ("name", Json::from("fig06")),
//!     ("speedups", Json::arr([1.25_f64, 0.98].map(Json::from))),
//! ]);
//! assert_eq!(doc.to_string(), r#"{"name":"fig06","speedups":[1.25,0.98]}"#);
//! ```

use core::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced for non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, emitted without a fraction.
    Int(i64),
    /// An unsigned integer (cycle and event counters exceed `i64` range
    /// in principle).
    UInt(u64),
    /// A finite double.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Renders with two-space indentation and a trailing newline — the
    /// stable layout used for report files and snapshot tests.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    out.push_str(&format!("{}: ", Json::Str(k.clone())));
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => {
                out.push_str(&other.to_string());
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    /// Compact (single-line) rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::UInt(u) => write!(f, "{u}"),
            Json::Num(n) if n.is_finite() => write!(f, "{n}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::UInt(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::UInt(n as u64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-3).to_string(), "-3");
        assert_eq!(Json::UInt(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
        assert_eq!(Json::Num(2.0).to_string(), "2");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).to_string(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn compact_object() {
        let doc = Json::obj([
            ("x", Json::Int(1)),
            ("y", Json::arr([Json::Null, Json::from(true)])),
        ]);
        assert_eq!(doc.to_string(), r#"{"x":1,"y":[null,true]}"#);
    }

    #[test]
    fn pretty_object_is_stable() {
        let doc = Json::obj([
            ("name", Json::from("t")),
            ("rows", Json::arr([Json::Int(1), Json::Int(2)])),
            ("empty", Json::Obj(vec![])),
        ]);
        assert_eq!(
            doc.to_pretty(),
            "{\n  \"name\": \"t\",\n  \"rows\": [\n    1,\n    2\n  ],\n  \"empty\": {}\n}\n"
        );
    }
}
