//! Simple bounded histograms for latency and value distributions.

use core::fmt;

/// A fixed-bucket histogram over `u64` samples.
///
/// Buckets are uniform in `[0, bound)` with an overflow bucket at the end.
/// Used for miss-latency and queue-occupancy distributions in the
/// simulator's detailed statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bound: u64,
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` uniform buckets covering
    /// `[0, bound)`, plus one overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `bound == 0`.
    pub fn new(bound: u64, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(bound > 0, "bound must be positive");
        Histogram {
            bound,
            buckets: vec![0; buckets + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let n = self.buckets.len() - 1;
        let idx = if value >= self.bound {
            n
        } else {
            ((value as u128 * n as u128) / self.bound as u128) as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Samples that landed in the overflow bucket.
    pub fn overflow(&self) -> u64 {
        *self.buckets.last().expect("bucket vec non-empty") // bosim-lint: allow(P002, bucket vec is sized non-empty at construction)
    }

    /// Approximate p-th percentile (p in 0..=100) using bucket lower
    /// bounds; returns 0 when empty.
    pub fn percentile(&self, p: u8) -> u64 {
        assert!(p <= 100, "percentile must be <= 100");
        if self.count == 0 {
            return 0;
        }
        let target = (self.count as u128 * p as u128).div_ceil(100) as u64;
        let mut seen = 0;
        let n = self.buckets.len() - 1;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i >= n {
                    self.bound
                } else {
                    (i as u128 * self.bound as u128 / n as u128) as u64
                };
            }
        }
        self.max
    }

    /// Iterates over `(bucket_lower_bound, count)` pairs, overflow last
    /// with lower bound `bound`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let n = self.buckets.len() - 1;
        let bound = self.bound;
        self.buckets.iter().enumerate().map(move |(i, &c)| {
            let lo = if i >= n {
                bound
            } else {
                (i as u128 * bound as u128 / n as u128) as u64
            };
            (lo, c)
        })
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "histogram(n={}, mean={:.1}, max={})",
            self.count,
            self.mean(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_summaries() {
        let mut h = Histogram::new(100, 10);
        for v in [5, 15, 15, 95, 250] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 250);
        assert_eq!(h.overflow(), 1);
        assert!((h.mean() - 76.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_monotone() {
        let mut h = Histogram::new(1000, 100);
        for v in 0..1000 {
            h.record(v);
        }
        let p50 = h.percentile(50);
        let p90 = h.percentile(90);
        let p99 = h.percentile(99);
        assert!(p50 <= p90 && p90 <= p99);
        assert!((450..=550).contains(&p50), "p50={p50}");
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new(10, 2);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99), 0);
    }

    #[test]
    fn iter_covers_all_buckets() {
        let mut h = Histogram::new(100, 4);
        h.record(10);
        h.record(99);
        h.record(150);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs.len(), 5);
        assert_eq!(pairs[0], (0, 1));
        assert_eq!(pairs[4], (100, 1));
        let total: u64 = pairs.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 3);
    }
}
