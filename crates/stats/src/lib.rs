//! Statistics and reporting utilities for the `bosim` simulator.
//!
//! The paper reports geometric-mean speedups over per-configuration
//! baselines (Figures 3–12) and raw event rates (Figure 2: IPC, Figure 13:
//! DRAM accesses per kilo-instruction). This crate provides:
//!
//! * [`geometric_mean`] / [`speedup`] — the summary math,
//! * [`Histogram`] — bounded-bucket latency/value histograms,
//! * [`Table`] — plain-text/TSV/markdown table output used by every figure
//!   harness,
//! * [`RateStat`] — events per kilo-instruction helper.
//!
//! # Examples
//!
//! ```
//! use bosim_stats::{geometric_mean, speedup};
//! let speedups = [1.1, 0.95, 1.3];
//! let gm = geometric_mean(speedups.iter().copied()).unwrap();
//! assert!(gm > 1.0 && gm < 1.3);
//! assert_eq!(speedup(1.2, 1.0), 1.2);
//! ```

#![warn(missing_docs)]

mod histogram;
mod json;
mod parse;
mod summary;
mod table;

pub use histogram::Histogram;
pub use json::Json;
pub use parse::JsonParseError;
pub use summary::{geometric_mean, harmonic_mean, mean, speedup, RateStat};
pub use table::{fmt3, Align, Table};
