//! Plain-text table builder used by the figure harnesses.
//!
//! Every experiment binary prints both a TSV block (machine-readable, used
//! to regenerate the paper's figures) and an aligned text table for humans.

use core::fmt;

/// Column alignment for [`Table`] rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (default, labels).
    #[default]
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple table of strings with a header row.
///
/// # Examples
///
/// ```
/// use bosim_stats::Table;
/// let mut t = Table::new(["bench", "speedup"]);
/// t.row(["429.mcf", "1.13"]);
/// let tsv = t.to_tsv();
/// assert!(tsv.starts_with("bench\tspeedup\n"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        assert!(!header.is_empty(), "table needs at least one column");
        let aligns = vec![Align::Left; header.len()];
        Table {
            header,
            rows: Vec::new(),
            aligns,
        }
    }

    /// Sets per-column alignment (pads or truncates to the column count).
    pub fn align<I>(&mut self, aligns: I) -> &mut Self
    where
        I: IntoIterator<Item = Align>,
    {
        let mut a: Vec<Align> = aligns.into_iter().collect();
        a.resize(self.header.len(), Align::Left);
        self.aligns = a;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as tab-separated values, header first.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join("\t"));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.header.join(" | "));
        out.push_str(" |\n|");
        for a in &self.aligns {
            out.push_str(match a {
                Align::Left => "---|",
                Align::Right => "--:|",
            });
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str("| ");
            out.push_str(&r.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    /// Aligned, space-padded text rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                match self.aligns[i] {
                    Align::Left => write!(f, "{:<width$}", c, width = w[i])?,
                    Align::Right => write!(f, "{:>width$}", c, width = w[i])?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            write_row(f, r)?;
        }
        Ok(())
    }
}

/// Formats a float with 3 decimal places, the convention used for speedups
/// in the experiment outputs.
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_round_trip_shape() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]).row(["3", "4"]);
        let tsv = t.to_tsv();
        let lines: Vec<_> = tsv.lines().collect();
        assert_eq!(lines, vec!["a\tb", "1\t2", "3\t4"]);
    }

    #[test]
    fn display_aligns_columns() {
        let mut t = Table::new(["name", "val"]);
        t.align([Align::Left, Align::Right]);
        t.row(["x", "1.000"]);
        t.row(["longer", "10.5"]);
        let s = t.to_string();
        for line in s.lines().filter(|l| !l.starts_with('-')) {
            assert!(line.len() >= "longer  1.000".len() - 1);
        }
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = Table::new(["h"]);
        t.row(["v"]);
        let md = t.to_markdown();
        assert!(md.contains("|---|") || md.contains("|--:|"));
    }

    #[test]
    #[should_panic]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn fmt3_rounds() {
        assert_eq!(fmt3(1.23456), "1.235");
    }
}
