//! Summary statistics: means and speedups.

/// Arithmetic mean; `None` for an empty iterator.
pub fn mean(values: impl IntoIterator<Item = f64>) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Geometric mean; `None` for an empty iterator.
///
/// This is the summary statistic used throughout the paper's evaluation
/// ("the rightmost cluster of each graph is the geometric mean over the 29
/// benchmarks").
///
/// # Panics
///
/// Panics if any value is not strictly positive (speedups always are).
pub fn geometric_mean(values: impl IntoIterator<Item = f64>) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geometric mean requires positive values, got {v}");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some((log_sum / n as f64).exp())
    }
}

/// Harmonic mean; `None` for an empty iterator.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn harmonic_mean(values: impl IntoIterator<Item = f64>) -> Option<f64> {
    let mut inv_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "harmonic mean requires positive values, got {v}");
        inv_sum += 1.0 / v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(n as f64 / inv_sum)
    }
}

/// Speedup of `subject` IPC over `baseline` IPC.
///
/// # Panics
///
/// Panics if `baseline` is not strictly positive.
#[inline]
pub fn speedup(subject_ipc: f64, baseline_ipc: f64) -> f64 {
    assert!(baseline_ipc > 0.0, "baseline IPC must be positive");
    subject_ipc / baseline_ipc
}

/// An events-per-kilo-instruction rate, e.g. Figure 13's "DRAM accesses
/// per 1000 instructions".
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RateStat {
    /// Number of events observed.
    pub events: u64,
    /// Number of instructions over which they were observed.
    pub instructions: u64,
}

impl RateStat {
    /// Creates a rate from raw counts.
    pub fn new(events: u64, instructions: u64) -> Self {
        RateStat {
            events,
            instructions,
        }
    }

    /// Events per 1000 instructions (0.0 when no instructions executed).
    pub fn per_kilo_instr(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.events as f64 * 1000.0 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    /// Deterministic pseudo-random value vectors (splitmix64-based) for
    /// the property checks below, keeping the crate dependency-free.
    fn random_vectors(lo: f64, hi: f64, max_len: usize) -> Vec<Vec<f64>> {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        (0..64)
            .map(|i| {
                (0..(i % max_len) + 1)
                    .map(|_| lo + (hi - lo) * (next() >> 11) as f64 / (1u64 << 53) as f64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(std::iter::empty()), None);
        assert!(close(mean([2.0, 4.0]).unwrap(), 3.0));
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geometric_mean(std::iter::empty()), None);
        assert!(close(geometric_mean([4.0, 1.0]).unwrap(), 2.0));
        assert!(close(geometric_mean([8.0]).unwrap(), 8.0));
    }

    #[test]
    fn harmonic_basics() {
        assert!(close(harmonic_mean([1.0, 1.0]).unwrap(), 1.0));
        assert!(close(harmonic_mean([2.0, 2.0]).unwrap(), 2.0));
    }

    #[test]
    fn speedup_is_ratio() {
        assert!(close(speedup(1.5, 1.0), 1.5));
        assert!(close(speedup(1.0, 2.0), 0.5));
    }

    #[test]
    #[should_panic]
    fn geomean_rejects_nonpositive() {
        geometric_mean([1.0, 0.0]);
    }

    #[test]
    fn rate_per_kilo() {
        let r = RateStat::new(50, 1_000_000);
        assert!(close(r.per_kilo_instr(), 0.05));
        assert_eq!(RateStat::new(10, 0).per_kilo_instr(), 0.0);
    }

    #[test]
    fn prop_geomean_between_min_and_max() {
        for values in random_vectors(0.01, 100.0, 40) {
            let gm = geometric_mean(values.iter().copied()).unwrap();
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(0.0f64, f64::max);
            assert!(gm >= lo - 1e-9 && gm <= hi + 1e-9, "{values:?}");
        }
    }

    #[test]
    fn prop_geomean_scale_invariance() {
        for (i, values) in random_vectors(0.1, 10.0, 20).into_iter().enumerate() {
            let k = 0.1 + (i as f64) * 0.15;
            let gm = geometric_mean(values.iter().copied()).unwrap();
            let gm_scaled = geometric_mean(values.iter().map(|v| v * k)).unwrap();
            assert!(
                (gm_scaled - gm * k).abs() < 1e-6 * gm_scaled.abs().max(1.0),
                "{values:?} * {k}"
            );
        }
    }

    #[test]
    fn prop_hm_le_gm_le_am() {
        for values in random_vectors(0.1, 10.0, 20) {
            let am = mean(values.iter().copied()).unwrap();
            let gm = geometric_mean(values.iter().copied()).unwrap();
            let hm = harmonic_mean(values.iter().copied()).unwrap();
            assert!(hm <= gm + 1e-9, "{values:?}");
            assert!(gm <= am + 1e-9, "{values:?}");
        }
    }
}
