//! A minimal RFC 8259 JSON parser, the read-side twin of the [`Json`]
//! emitter.
//!
//! The workspace builds hermetically with no external crates, so the
//! trace-file checker (`bosim check-trace`) and the observability
//! tests parse with this small recursive-descent parser instead of
//! `serde_json`. It accepts exactly the RFC grammar (no comments, no
//! trailing commas), bounds recursion depth, and never panics: every
//! failure is a [`JsonParseError`] with a byte offset.

use crate::json::Json;
use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`]. Deep enough for
/// any report this workspace emits, shallow enough to never threaten
/// the stack.
const MAX_DEPTH: usize = 128;

/// A parse failure: what went wrong and the byte offset it was
/// detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonParseError> {
        Err(JsonParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, want: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", want as char))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("invalid literal (expected `{word}`)"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return self.err("nesting deeper than the supported maximum");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => self.err(format!("unexpected byte 0x{other:02x}")),
            None => self.err("unexpected end of input"),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return self.err("expected ',' or ']' in array");
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return self.err("expected string key in object");
            }
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            pairs.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Json::Obj(pairs)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return self.err("expected ',' or '}' in object");
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: consume the `\uXXXX` low half.
                            if self.bump() == Some(b'\\') && self.bump() == Some(b'u') {
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return self.err("unpaired high surrogate");
                            }
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return self.err("unpaired low surrogate");
                        } else {
                            hi
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return self.err("invalid unicode escape"),
                        }
                    }
                    _ => return self.err("invalid escape sequence"),
                },
                Some(b) if b < 0x20 => return self.err("unescaped control character"),
                Some(b) => {
                    // Re-validate multi-byte UTF-8 via the source slice.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(b);
                        let end = start + len;
                        match self
                            .bytes
                            .get(start..end)
                            .and_then(|s| std::str::from_utf8(s).ok())
                        {
                            Some(s) => {
                                out.push_str(s);
                                self.pos = end;
                            }
                            None => return self.err("invalid UTF-8 in string"),
                        }
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return self.err("invalid \\u escape (need 4 hex digits)"),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a non-zero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return self.err("invalid number"),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("digits required after decimal point");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("digits required in exponent");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = match std::str::from_utf8(&self.bytes[start..self.pos]) {
            Ok(t) => t,
            Err(_) => return self.err("invalid number"),
        };
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => self.err("number out of range"),
        }
    }
}

/// Byte length of a UTF-8 sequence starting with `b` (1 for malformed
/// lead bytes — the subsequent `from_utf8` check rejects those).
fn utf8_len(b: u8) -> usize {
    match b {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] with a byte offset when `text` is
    /// not a single well-formed RFC 8259 value (trailing garbage
    /// included).
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing data after the JSON value");
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Whether this value is a JSON number of any flavour.
    pub fn is_number(&self) -> bool {
        matches!(self, Json::Int(_) | Json::UInt(_) | Json::Num(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-3",
            "1.5",
            "18446744073709551615",
        ] {
            let v = Json::parse(text).expect(text);
            assert_eq!(v.to_string(), text, "{text}");
        }
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(
            Json::parse(" -9223372036854775808 ").unwrap(),
            Json::Int(i64::MIN)
        );
    }

    #[test]
    fn strings_unescape() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\ndAé""#).unwrap(),
            Json::Str("a\"b\\c\ndAé".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            Json::parse(r#""😀""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn containers_round_trip_with_the_emitter() {
        let doc = Json::obj([
            ("name", Json::from("t")),
            (
                "values",
                Json::arr([Json::Num(1.25), Json::Null, Json::Bool(true)]),
            ),
            ("nested", Json::obj([("k", Json::Int(-2))])),
        ]);
        assert_eq!(Json::parse(&doc.to_string()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.to_pretty()).unwrap(), doc);
    }

    #[test]
    fn malformed_inputs_error_without_panicking() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"\x01\"",
            "[1]]",
            "{\"a\" 1}",
            "--1",
            "[1 2]",
            "\"unterminated",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
        let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(Json::parse(&deep).is_err(), "depth bound");
    }

    #[test]
    fn accessors_navigate_parsed_trees() {
        let doc = Json::parse(r#"{"traceEvents":[{"name":"x","ts":5}]}"#).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("x"));
        assert_eq!(events[0].get("ts").and_then(Json::as_f64), Some(5.0));
        assert!(events[0].get("ts").unwrap().is_number());
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let e = Json::parse("[1, oops]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"), "{e}");
    }
}
