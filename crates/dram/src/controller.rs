//! Dual-channel memory controllers (§5.3).
//!
//! "Each channel has its own memory controller. The two controllers work
//! independently from each other. For fairness, each core has its own
//! read queue and write queue in each controller. ... For read requests,
//! an FR-FCFS policy is used. A row is left open after it has been
//! accessed until a subsequent access requires to close it."
//!
//! The scheduler has a *steady* mode (serve one core at a time, switch
//! when its row locality is exhausted or a write queue fills; writes go in
//! batches of 16, selected out-of-order for row locality) and an *urgent*
//! mode (serve the lagging core when its fairness counter falls more than
//! 31 behind the served core's). "The scheduler does not distinguish
//! between demand and prefetch read requests."

use crate::mapping::{map_line, DramLoc};
use crate::timing::{Bank, BankNeed, DdrTimings};
use bosim_types::{CoreId, Cycle, LineAddr, ProportionalCounters, CORE_CYCLES_PER_BUS_CYCLE};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Memory system configuration (Table 1 defaults via [`Default`]).
#[derive(Debug, Clone)]
pub struct MemConfig {
    /// DDR3 timing parameters.
    pub timings: DdrTimings,
    /// Number of cores (per-core queues and fairness counters).
    pub num_cores: usize,
    /// Channels (Table 1: 2).
    pub channels: usize,
    /// Banks per channel (Table 1: 8 banks/chip, one rank).
    pub banks: usize,
    /// Read-queue capacity per core per channel (Table 1: 32).
    pub read_queue_cap: usize,
    /// Write-queue capacity per core per channel (Table 1: 32).
    pub write_queue_cap: usize,
    /// Write batch size (§5.3: 16).
    pub write_batch: usize,
    /// Urgent-mode counter difference threshold (§5.3: 31).
    pub urgent_threshold: i64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            timings: DdrTimings::default(),
            num_cores: 4,
            channels: 2,
            banks: 8,
            read_queue_cap: 32,
            write_queue_cap: 32,
            write_batch: 16,
            urgent_threshold: 31,
        }
    }
}

/// A completed read returned by [`MemorySystem::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadCompletion {
    /// Caller-supplied request token.
    pub id: u64,
    /// The line read.
    pub line: LineAddr,
    /// Requesting core.
    pub core: CoreId,
}

/// Aggregate DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read CAS commands issued.
    pub reads: u64,
    /// Write CAS commands issued.
    pub writes: u64,
    /// CAS commands that hit an open row.
    pub row_hits: u64,
    /// Activates issued.
    pub row_opens: u64,
    /// Precharges issued due to row conflicts.
    pub row_conflicts: u64,
    /// Reads issued in urgent mode.
    pub urgent_reads: u64,
}

#[derive(Debug, Clone)]
struct ReadReq {
    id: u64,
    line: LineAddr,
    loc: DramLoc,
    arrival: Cycle,
}

#[derive(Debug, Clone)]
struct WriteReq {
    loc: DramLoc,
}

#[derive(Debug)]
struct Channel {
    banks: Vec<Bank>,
    read_q: Vec<VecDeque<ReadReq>>,
    write_q: Vec<VecDeque<WriteReq>>,
    counters: ProportionalCounters,
    served: usize,
    writes_left: usize,
    /// Data bus is busy until this cycle.
    bus_free_at: Cycle,
    /// tWTR: no read CAS until this cycle.
    read_ok_at: Cycle,
    completions: BinaryHeap<Reverse<(Cycle, u64, u64, u8)>>, // (time, id, line, core)
    stats: DramStats,
}

impl Channel {
    fn new(cfg: &MemConfig) -> Self {
        Channel {
            banks: vec![Bank::default(); cfg.banks],
            read_q: vec![VecDeque::new(); cfg.num_cores],
            write_q: vec![VecDeque::new(); cfg.num_cores],
            counters: ProportionalCounters::new(cfg.num_cores, 7),
            served: 0,
            writes_left: 0,
            bus_free_at: 0,
            read_ok_at: 0,
            completions: BinaryHeap::new(),
            stats: DramStats::default(),
        }
    }

    fn pending_reads(&self) -> usize {
        self.read_q.iter().map(|q| q.len()).sum()
    }

    fn pending_writes(&self) -> usize {
        self.write_q.iter().map(|q| q.len()).sum()
    }

    /// Issues a read CAS for queue position `pos` of core `c`.
    fn issue_read_cas(&mut self, t: &DdrTimings, now: Cycle, c: usize, pos: usize, urgent: bool) {
        let req = self.read_q[c].remove(pos).expect("position valid"); // bosim-lint: allow(P002, position comes from a scan of the same queue)
        let data_end = self.banks[req.loc.bank as usize].read(now, t);
        self.bus_free_at = data_end;
        self.completions
            .push(Reverse((data_end, req.id, req.line.0, c as u8)));
        self.counters.increment(c);
        self.stats.reads += 1;
        self.stats.row_hits += 1;
        if urgent {
            self.stats.urgent_reads += 1;
        }
    }

    /// Can a read CAS for `loc` issue right now?
    fn read_cas_ready(&self, t: &DdrTimings, now: Cycle, loc: DramLoc) -> bool {
        let b = &self.banks[loc.bank as usize];
        b.need(loc.row) == BankNeed::Cas
            && b.cas_ok_at <= now
            && now >= self.read_ok_at
            && now + t.core(t.t_cl) >= self.bus_free_at
    }

    /// Can a write CAS for `loc` issue right now?
    fn write_cas_ready(&self, t: &DdrTimings, now: Cycle, loc: DramLoc) -> bool {
        let b = &self.banks[loc.bank as usize];
        b.need(loc.row) == BankNeed::Cas
            && b.cas_ok_at <= now
            && now + t.core(t.t_cwl) >= self.bus_free_at
    }

    /// Issues the preparatory command (PRE or ACT) a request needs, if
    /// its bank timing allows. Returns true if a command was issued.
    fn issue_prep(&mut self, t: &DdrTimings, now: Cycle, loc: DramLoc) -> bool {
        let b = &mut self.banks[loc.bank as usize];
        match b.need(loc.row) {
            BankNeed::Cas => false,
            BankNeed::Precharge => {
                if b.pre_ok_at <= now {
                    b.precharge(now, t);
                    self.stats.row_conflicts += 1;
                    true
                } else {
                    false
                }
            }
            BankNeed::Activate => {
                if b.act_ok_at <= now {
                    b.activate(now, loc.row, t);
                    self.stats.row_opens += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Lower bound on the earliest cycle a CAS or preparatory command
    /// for `loc` could issue, from the bank and bus timing state alone.
    fn request_ready_bound(&self, t: &DdrTimings, loc: DramLoc, is_write: bool) -> Cycle {
        let b = &self.banks[loc.bank as usize];
        match b.need(loc.row) {
            BankNeed::Cas => {
                let data_lat = t.core(if is_write { t.t_cwl } else { t.t_cl });
                let mut c = b.cas_ok_at.max(self.bus_free_at.saturating_sub(data_lat));
                if !is_write {
                    c = c.max(self.read_ok_at);
                }
                c
            }
            BankNeed::Precharge => b.pre_ok_at,
            BankNeed::Activate => b.act_ok_at,
        }
    }

    /// The earliest cycle ≥ `from` at which this channel can do any work
    /// (`None` when fully idle). Completions are exact; command times are
    /// a lower bound over *every* queued request, whichever one the
    /// scheduling mode would actually pick — early is safe, late never
    /// happens. Bank and queue state is frozen while the system is
    /// quiescent, so the bound stays valid across the whole skip.
    fn next_event(&self, cfg: &MemConfig, from: Cycle) -> Option<Cycle> {
        let t = &cfg.timings;
        let mut next: Option<Cycle> = None;
        let mut fold = |x: Cycle| {
            next = Some(next.map_or(x, |n: Cycle| n.min(x)));
        };
        if let Some(&Reverse((ct, _, _, _))) = self.completions.peek() {
            fold(ct.max(from));
        }
        let reads = self.pending_reads();
        let writes = self.pending_writes();
        if reads == 0 && writes == 0 && self.writes_left == 0 {
            return next;
        }
        let boundary = |c: Cycle| {
            c.max(from)
                .next_multiple_of(CORE_CYCLES_PER_BUS_CYCLE.max(1))
        };
        // Transient bookkeeping acts at the very next boundary: a write
        // batch starting, or a drained batch counter resetting.
        let any_full = self
            .write_q
            .iter()
            .any(|q| q.len() >= cfg.write_queue_cap - 1);
        let would_start_batch = self.writes_left == 0
            && writes > 0
            && (any_full || (reads == 0 && writes >= cfg.write_batch));
        if would_start_batch || (self.writes_left > 0 && writes == 0) {
            fold(boundary(from));
            return next;
        }
        let mut cmd = Cycle::MAX;
        // Reads can issue in steady or urgent mode; include them all.
        for q in &self.read_q {
            for r in q {
                cmd = cmd.min(self.request_ready_bound(t, r.loc, false));
            }
        }
        // Writes only issue while a batch is in progress.
        if self.writes_left > 0 {
            for q in &self.write_q {
                for r in q {
                    cmd = cmd.min(self.request_ready_bound(t, r.loc, true));
                }
            }
        }
        if cmd != Cycle::MAX {
            fold(boundary(cmd));
        }
        next
    }

    /// Picks the served core: lowest fairness counter among cores with
    /// pending reads; falls back to the current one.
    fn pick_served(&self) -> usize {
        let mut best: Option<usize> = None;
        for c in 0..self.read_q.len() {
            if self.read_q[c].is_empty() {
                continue;
            }
            best = Some(match best {
                None => c,
                Some(b) if self.counters.get(c) < self.counters.get(b) => c,
                Some(b) => b,
            });
        }
        best.unwrap_or(self.served)
    }

    /// One scheduling step (at most one command), on bus-cycle boundaries.
    ///
    /// Returns true when any channel state changed (a command issued, a
    /// write batch started or reset, the served core switched) — false
    /// means the step was a complete no-op: with the queues and bank
    /// timers frozen, repeating it before the
    /// [`next_event`](Self::next_event) bound is provably effect-free.
    fn step(&mut self, cfg: &MemConfig, now: Cycle, l3_can_accept: bool) -> bool {
        let t = &cfg.timings;

        // ---- Urgent mode (§5.3): pre-empts the steady mode. ----
        if l3_can_accept {
            let lagging = self.pick_served();
            if !self.read_q[lagging].is_empty()
                && self.counters.diff(self.served, lagging) > cfg.urgent_threshold
            {
                // Serve the lagging core's most ready request.
                if let Some(pos) = (0..self.read_q[lagging].len())
                    .find(|&p| self.read_cas_ready(t, now, self.read_q[lagging][p].loc))
                {
                    self.issue_read_cas(t, now, lagging, pos, true);
                    return true;
                }
                let loc = self.read_q[lagging][0].loc;
                if self.issue_prep(t, now, loc) {
                    return true;
                }
            }
        }

        // ---- Write batches. ----
        let mut changed = false;
        if self.writes_left == 0 {
            let any_full = self
                .write_q
                .iter()
                .any(|q| q.len() >= cfg.write_queue_cap - 1);
            let no_reads = self.pending_reads() == 0;
            if (any_full || (no_reads && self.pending_writes() >= cfg.write_batch))
                && self.pending_writes() > 0
            {
                self.writes_left = cfg.write_batch;
                changed = true;
            }
        }
        if self.writes_left > 0 {
            // Select writes out-of-order across all queues, preferring
            // row hits, then any whose bank can progress.
            for c in 0..self.write_q.len() {
                if let Some(pos) = (0..self.write_q[c].len())
                    .find(|&p| self.write_cas_ready(t, now, self.write_q[c][p].loc))
                {
                    let req = self.write_q[c].remove(pos).expect("valid"); // bosim-lint: allow(P002, position comes from a scan of the same queue)
                    let data_end = self.banks[req.loc.bank as usize].write(now, t);
                    self.bus_free_at = data_end;
                    self.read_ok_at = data_end + t.core(t.t_wtr);
                    self.stats.writes += 1;
                    self.stats.row_hits += 1;
                    self.writes_left -= 1;
                    if self.pending_writes() == 0 {
                        self.writes_left = 0;
                    }
                    return true;
                }
            }
            for c in 0..self.write_q.len() {
                if let Some(req) = self.write_q[c].front() {
                    let loc = req.loc;
                    if self.issue_prep(t, now, loc) {
                        return true;
                    }
                }
            }
            // Nothing can progress this cycle.
            if self.pending_writes() == 0 {
                self.writes_left = 0;
                changed = true;
            }
            return changed;
        }

        // ---- Steady-mode reads: FR-FCFS for the served core. ----
        // Change the served core only when it has no row-hit-ready read
        // (or it has no reads at all). A switch never moves the bound
        // (it covers every queued request) but still counts as a change:
        // the no-op elision in [`MemorySystem::tick`] must only kick in
        // once the channel state — served core included — is stable.
        let served_has_row_hit = self.read_q[self.served]
            .iter()
            .any(|r| self.read_cas_ready(t, now, r.loc));
        if !served_has_row_hit {
            let picked = self.pick_served();
            changed |= picked != self.served;
            self.served = picked;
        }
        let c = self.served;
        if self.read_q[c].is_empty() {
            return changed;
        }
        // First ready row-hit, else FCFS order for preparation.
        if let Some(pos) =
            (0..self.read_q[c].len()).find(|&p| self.read_cas_ready(t, now, self.read_q[c][p].loc))
        {
            self.issue_read_cas(t, now, c, pos, false);
            return true;
        }
        let loc = self.read_q[c][0].loc;
        if self.issue_prep(t, now, loc) {
            return true;
        }
        // Oldest is timing-blocked; try younger requests' banks.
        for p in 1..self.read_q[c].len() {
            let loc = self.read_q[c][p].loc;
            if self.issue_prep(t, now, loc) {
                return true;
            }
        }
        changed
    }
}

/// The two-channel main memory system.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    channels: Vec<Channel>,
    /// Bumped on every state change that can move the
    /// [`next_event`](Self::next_event) bound or a future scheduling
    /// pick (accepted enqueues, completion pops, issued commands, batch
    /// transitions, served-core switches). While the
    /// version holds still, a previously computed bound stays exact —
    /// callers cache it instead of re-walking the queues every cycle.
    version: u64,
    /// While `version` still equals `noop_version`, every tick strictly
    /// before `noop_until` is a provable no-op (see
    /// [`tick`](Self::tick)) and returns without touching the channels.
    noop_version: u64,
    /// Companion bound to `noop_version` (exclusive).
    noop_until: Cycle,
}

impl MemorySystem {
    /// Creates a memory system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero cores, channels or banks.
    pub fn new(cfg: MemConfig) -> Self {
        assert!(cfg.num_cores >= 1 && cfg.channels >= 1 && cfg.banks >= 1);
        assert!(cfg.write_batch >= 1);
        let channels = (0..cfg.channels).map(|_| Channel::new(&cfg)).collect();
        MemorySystem {
            cfg,
            channels,
            version: 0,
            noop_version: 0,
            noop_until: 0,
        }
    }

    /// Opaque state-version counter: unchanged between two calls means
    /// every [`next_event`](Self::next_event) bound computed in between
    /// is still exact (see the field docs).
    pub fn version(&self) -> u64 {
        self.version
    }

    fn channel_of(&self, line: LineAddr) -> usize {
        (map_line(line).channel as usize) % self.channels.len()
    }

    /// True when the core's read queue in the line's channel can accept a
    /// request.
    pub fn can_accept_read(&self, line: LineAddr, core: CoreId) -> bool {
        let ch = self.channel_of(line);
        self.channels[ch].read_q[core.index()].len() < self.cfg.read_queue_cap
    }

    /// True when the core's write queue in the line's channel can accept.
    pub fn can_accept_write(&self, line: LineAddr, core: CoreId) -> bool {
        let ch = self.channel_of(line);
        self.channels[ch].write_q[core.index()].len() < self.cfg.write_queue_cap
    }

    /// Is a read for this line already pending (CAM search, §6.3 fn. 13)?
    pub fn has_pending_read(&self, line: LineAddr) -> bool {
        let ch = self.channel_of(line);
        self.channels[ch]
            .read_q
            .iter()
            .any(|q| q.iter().any(|r| r.line == line))
    }

    /// Enqueues a read; returns false when the queue is full.
    pub fn enqueue_read(&mut self, line: LineAddr, core: CoreId, id: u64, now: Cycle) -> bool {
        let ch = self.channel_of(line);
        let q = &mut self.channels[ch].read_q[core.index()];
        if q.len() >= self.cfg.read_queue_cap {
            return false;
        }
        q.push_back(ReadReq {
            id,
            line,
            loc: map_line(line),
            arrival: now,
        });
        self.version = self.version.wrapping_add(1);
        true
    }

    /// Enqueues a writeback; returns false when the queue is full.
    pub fn enqueue_write(&mut self, line: LineAddr, core: CoreId, _now: Cycle) -> bool {
        let ch = self.channel_of(line);
        let q = &mut self.channels[ch].write_q[core.index()];
        if q.len() >= self.cfg.write_queue_cap {
            return false;
        }
        q.push_back(WriteReq {
            loc: map_line(line),
        });
        self.version = self.version.wrapping_add(1);
        true
    }

    /// Advances the memory system to `now`, collecting read completions.
    ///
    /// Command scheduling happens on bus-cycle boundaries (every 4 core
    /// cycles); `l3_can_accept` gates the urgent mode as in §5.3.
    ///
    /// An effect-free tick caches a forward no-op bound: with every
    /// queue, bank timer, batch counter and served-core pick frozen (no
    /// version bump), repeating the scan before the
    /// [`next_event`](Self::next_event) bound cannot pop a completion or
    /// issue a command, so later ticks in that window return
    /// immediately. `l3_can_accept` flips cannot break the proof — the
    /// urgent mode it gates only *selects among* commands the bound
    /// already covers.
    pub fn tick(&mut self, now: Cycle, l3_can_accept: bool, out: &mut Vec<ReadCompletion>) {
        if self.version == self.noop_version && now < self.noop_until {
            return;
        }
        let mut changed = false;
        for ch in &mut self.channels {
            while let Some(&Reverse((t, id, line, core))) = ch.completions.peek() {
                if t > now {
                    break;
                }
                ch.completions.pop();
                out.push(ReadCompletion {
                    id,
                    line: LineAddr(line),
                    core: CoreId(core),
                });
                changed = true;
            }
            if now.is_multiple_of(CORE_CYCLES_PER_BUS_CYCLE) {
                changed |= ch.step(&self.cfg, now, l3_can_accept);
            }
        }
        if changed {
            self.version = self.version.wrapping_add(1);
        } else if now.is_multiple_of(CORE_CYCLES_PER_BUS_CYCLE) {
            // Only a *boundary* no-op proves the window: it ran the
            // scheduling step, so "no change" covers the served-core
            // pick too — a non-boundary tick never ran it and cannot
            // vouch for the boundaries inside the window.
            self.noop_version = self.version;
            self.noop_until = self.next_event(now + 1).unwrap_or(Cycle::MAX);
        }
    }

    /// Aggregated statistics over all channels.
    pub fn stats(&self) -> DramStats {
        let mut s = DramStats::default();
        for ch in &self.channels {
            s.reads += ch.stats.reads;
            s.writes += ch.stats.writes;
            s.row_hits += ch.stats.row_hits;
            s.row_opens += ch.stats.row_opens;
            s.row_conflicts += ch.stats.row_conflicts;
            s.urgent_reads += ch.stats.urgent_reads;
        }
        s
    }

    /// The earliest cycle ≥ `from` at which [`tick`](Self::tick) can do
    /// any work, or `None` when the memory system is fully idle (no
    /// queued requests, no write batch in progress, no data in flight).
    ///
    /// Completion times are exact; command times are a per-request bank
    /// timing lower bound rounded up to the bus-cycle boundary commands
    /// actually issue on. The bound may be early (the step turns out to
    /// be a no-op and the caller re-computes) but never late — no state
    /// change is ever skipped.
    pub fn next_event(&self, from: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        for ch in &self.channels {
            if let Some(t) = ch.next_event(&self.cfg, from) {
                next = Some(next.map_or(t, |n: Cycle| n.min(t)));
            }
        }
        next
    }

    /// Total queued reads and writes across all channels — the work
    /// [`next_event`](Self::next_event) has to walk. Callers use this to
    /// decide whether computing the bound is worth it.
    pub fn queue_depth(&self) -> usize {
        self.channels
            .iter()
            .map(|ch| ch.pending_reads() + ch.pending_writes())
            .sum()
    }

    /// Oldest pending read arrival (diagnostics; `None` when idle).
    pub fn oldest_pending_read(&self) -> Option<Cycle> {
        self.channels
            .iter()
            .flat_map(|ch| ch.read_q.iter())
            .flat_map(|q| q.iter())
            .map(|r| r.arrival)
            .min()
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_complete(
        mem: &mut MemorySystem,
        start: Cycle,
        max_cycles: Cycle,
    ) -> Vec<(Cycle, ReadCompletion)> {
        let mut done = Vec::new();
        let mut out = Vec::new();
        for now in start..start + max_cycles {
            out.clear();
            mem.tick(now, true, &mut out);
            for c in &out {
                done.push((now, *c));
            }
        }
        done
    }

    #[test]
    fn single_read_completes_with_idle_latency() {
        let cfg = MemConfig {
            num_cores: 1,
            ..Default::default()
        };
        let mut mem = MemorySystem::new(cfg);
        assert!(mem.enqueue_read(LineAddr(0x1000), CoreId(0), 7, 0));
        let done = run_until_complete(&mut mem, 0, 1000);
        assert_eq!(done.len(), 1);
        let (t, c) = done[0];
        assert_eq!(c.id, 7);
        assert_eq!(c.line, LineAddr(0x1000));
        // ACT at 0 (first bus cycle), CAS at +tRCD, data end +tCL+tBURST:
        // (11 + 11 + 4) * 4 = 104 core cycles minimum.
        assert!(t >= 104, "completed too early: {t}");
        assert!(t <= 250, "completed too late: {t}");
    }

    #[test]
    fn row_hits_are_faster_than_conflicts() {
        let cfg = MemConfig {
            num_cores: 1,
            ..Default::default()
        };
        let mut mem = MemorySystem::new(cfg);
        // Two lines in the same row (consecutive lines share a row).
        assert!(mem.enqueue_read(LineAddr(0x1000), CoreId(0), 1, 0));
        assert!(mem.enqueue_read(LineAddr(0x1001), CoreId(0), 2, 0));
        let done = run_until_complete(&mut mem, 0, 2000);
        assert_eq!(done.len(), 2);
        let gap_same_row = done[1].0 - done[0].0;

        let mut mem2 = MemorySystem::new(MemConfig {
            num_cores: 1,
            ..Default::default()
        });
        // Same bank, different row: 2^11 lines apart keeps bank bits but
        // changes the row.
        let a = LineAddr(0x1000);
        let b = LineAddr(0x1000 + (1 << 11) * 17);
        let same_bank =
            map_line(a).bank == map_line(b).bank && map_line(a).channel == map_line(b).channel;
        if same_bank {
            assert!(mem2.enqueue_read(a, CoreId(0), 1, 0));
            assert!(mem2.enqueue_read(b, CoreId(0), 2, 0));
            let done2 = run_until_complete(&mut mem2, 0, 4000);
            assert_eq!(done2.len(), 2);
            let gap_conflict = done2[1].0 - done2[0].0;
            assert!(
                gap_conflict > gap_same_row,
                "row conflict ({gap_conflict}) should cost more than row hit ({gap_same_row})"
            );
        }
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let cfg = MemConfig {
            num_cores: 1,
            read_queue_cap: 4,
            ..Default::default()
        };
        let mut mem = MemorySystem::new(cfg);
        // All to one channel: find 5 lines mapping to channel 0.
        let mut enq = 0;
        let mut line = 0u64;
        let mut rejected = false;
        while enq < 6 {
            let l = LineAddr(line);
            if map_line(l).channel == 0 {
                if mem.enqueue_read(l, CoreId(0), enq, 0) {
                    enq += 1;
                } else {
                    rejected = true;
                    break;
                }
            }
            line += 1;
        }
        assert!(rejected, "5th request must be rejected");
    }

    #[test]
    fn writes_drain_in_batches() {
        let cfg = MemConfig {
            num_cores: 1,
            ..Default::default()
        };
        let mut mem = MemorySystem::new(cfg);
        for i in 0..40 {
            // Spread lines across channels; writes eventually drain.
            mem.enqueue_write(LineAddr(i * 128), CoreId(0), 0);
        }
        let mut out = Vec::new();
        for now in 0..20_000 {
            mem.tick(now, true, &mut out);
        }
        let s = mem.stats();
        assert!(s.writes > 0, "writes must be issued");
    }

    #[test]
    fn bandwidth_is_shared_between_cores() {
        let cfg = MemConfig {
            num_cores: 2,
            ..Default::default()
        };
        let mut mem = MemorySystem::new(cfg);
        let mut id = 0u64;
        let mut out = Vec::new();
        let mut completions = [0u64; 2];
        // Keep both cores' queues loaded with streaming reads.
        let mut next_line = [0u64, 1u64 << 24];
        for now in 0..60_000u64 {
            for (c, line) in next_line.iter_mut().enumerate() {
                while mem.enqueue_read(LineAddr(*line), CoreId(c as u8), id, now) {
                    id += 1;
                    *line += 1;
                }
            }
            out.clear();
            mem.tick(now, true, &mut out);
            for comp in &out {
                completions[comp.core.index()] += 1;
            }
        }
        assert!(completions[0] > 100 && completions[1] > 100);
        let ratio = completions[0] as f64 / completions[1] as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "fairness: {completions:?} ratio {ratio}"
        );
    }

    #[test]
    fn pending_read_cam_search() {
        let mut mem = MemorySystem::new(MemConfig::default());
        assert!(!mem.has_pending_read(LineAddr(0x55)));
        mem.enqueue_read(LineAddr(0x55), CoreId(0), 1, 0);
        assert!(mem.has_pending_read(LineAddr(0x55)));
    }

    #[test]
    fn streaming_throughput_is_bandwidth_bound() {
        // A long unit-stride stream should sustain roughly one line per
        // tBURST per channel: check throughput is in a sane range.
        let cfg = MemConfig {
            num_cores: 1,
            ..Default::default()
        };
        let mut mem = MemorySystem::new(cfg);
        let mut id = 0u64;
        let mut line = 0u64;
        let mut out = Vec::new();
        let mut completed = 0u64;
        let horizon = 100_000u64;
        for now in 0..horizon {
            while mem.enqueue_read(LineAddr(line), CoreId(0), id, now) {
                id += 1;
                line += 1;
            }
            out.clear();
            mem.tick(now, true, &mut out);
            completed += out.len() as u64;
        }
        // Two channels, tBURST = 16 core cycles: theoretical peak is one
        // line per 8 cycles; expect at least 20% of peak for streaming.
        let peak = horizon / 8;
        assert!(completed > peak / 5, "completed {completed} of peak {peak}");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use bosim_types::SplitMix64;

    /// Under arbitrary interleavings of reads and writebacks from up
    /// to four cores, every accepted read completes exactly once, no
    /// timing debug-assertion fires (tRCD/tRAS/tRP/tWR are encoded as
    /// `debug_assert`s in the bank state machine), and the system
    /// drains completely. Deterministic pseudo-random interleavings.
    #[test]
    fn prop_all_reads_complete_exactly_once() {
        let mut rng = SplitMix64::new(0xD2A77);
        for case in 0..32u64 {
            let mut mem = MemorySystem::new(MemConfig::default());
            let mut expected = std::collections::HashMap::new();
            let mut out = Vec::new();
            let mut now = 0u64;
            let mut id = 0u64;
            for _ in 0..(case * 4) % 120 + 1 {
                let l = LineAddr(rng.next_u64() % (1 << 22));
                let c = CoreId((rng.next_u64() % 4) as u8);
                let is_write = rng.next_u64().is_multiple_of(2);
                if is_write {
                    let _ = mem.enqueue_write(l, c, now);
                } else if !mem.has_pending_read(l) && mem.enqueue_read(l, c, id, now) {
                    expected.insert(id, l);
                    id += 1;
                }
                // Advance a few cycles between arrivals.
                for _ in 0..3 {
                    mem.tick(now, true, &mut out);
                    now += 1;
                }
            }
            // Drain.
            let deadline = now + 500_000;
            while !expected.is_empty() && now < deadline {
                mem.tick(now, true, &mut out);
                now += 1;
                for c in out.drain(..) {
                    let line = expected.remove(&c.id);
                    assert_eq!(line, Some(c.line), "completion mismatch");
                }
            }
            assert!(expected.is_empty(), "reads left pending: {expected:?}");
        }
    }
}
