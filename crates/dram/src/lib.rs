//! DDR3 main-memory model for `bosim` (§5.3 of the BO paper).
//!
//! * [`mapping`] — the XOR-based line-to-channel/bank/row mapping,
//! * [`DdrTimings`] / [`Bank`] — DDR3 bank state machines with the Table 1
//!   parameters (tCL/tRCD/tRP/tRAS/tCWL/tRTP/tWR/tWTR/tBURST, in bus
//!   cycles of 4 core cycles),
//! * [`MemorySystem`] — two independent per-channel controllers with
//!   per-core read/write queues, FR-FCFS scheduling, steady/urgent
//!   fairness modes driven by proportional counters, and 16-write batches.
//!
//! Refresh and power-related parameters (tFAW) are not modelled, exactly
//! as in the paper.
//!
//! # Examples
//!
//! ```
//! use bosim_dram::{MemConfig, MemorySystem};
//! use bosim_types::{CoreId, LineAddr};
//!
//! let mut mem = MemorySystem::new(MemConfig { num_cores: 1, ..Default::default() });
//! assert!(mem.enqueue_read(LineAddr(0x40), CoreId(0), 1, 0));
//! let mut done = Vec::new();
//! for now in 0..500 {
//!     mem.tick(now, true, &mut done);
//! }
//! assert_eq!(done.len(), 1);
//! ```

#![warn(missing_docs)]

mod controller;
pub mod mapping;
mod timing;

pub use controller::{DramStats, MemConfig, MemorySystem, ReadCompletion};
pub use mapping::{map_line, DramLoc};
pub use timing::{Bank, BankNeed, DdrTimings};
