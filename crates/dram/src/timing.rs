//! DDR3 timing parameters and bank state machines.
//!
//! Parameters from Table 1, given in *bus cycles* ("bus cycle = 4 core
//! cycles"): tCL=11, tRCD=11, tRP=11, tRAS=33, tCWL=8, tRTP=6, tWR=12,
//! tWTR=6, tBURST=4 (8 beats). Refresh and power parameters (tFAW) are
//! not modelled, as in the paper (§5.3).

use bosim_types::{Cycle, CORE_CYCLES_PER_BUS_CYCLE};

/// DDR3 timing parameters in bus cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DdrTimings {
    /// CAS (read) latency.
    pub t_cl: u64,
    /// RAS-to-CAS delay.
    pub t_rcd: u64,
    /// Row precharge time.
    pub t_rp: u64,
    /// Minimum row-active time.
    pub t_ras: u64,
    /// CAS write latency.
    pub t_cwl: u64,
    /// Read-to-precharge delay.
    pub t_rtp: u64,
    /// Write recovery time (write data end to precharge).
    pub t_wr: u64,
    /// Write-to-read turnaround.
    pub t_wtr: u64,
    /// Data burst duration (8 beats on a 64-bit bus).
    pub t_burst: u64,
}

impl Default for DdrTimings {
    /// The Table 1 DDR3 parameters.
    fn default() -> Self {
        DdrTimings {
            t_cl: 11,
            t_rcd: 11,
            t_rp: 11,
            t_ras: 33,
            t_cwl: 8,
            t_rtp: 6,
            t_wr: 12,
            t_wtr: 6,
            t_burst: 4,
        }
    }
}

impl DdrTimings {
    /// Converts a parameter from bus cycles to core cycles.
    #[inline]
    pub fn core(&self, bus_cycles: u64) -> Cycle {
        bus_cycles * CORE_CYCLES_PER_BUS_CYCLE
    }

    /// Idle-bank read latency in core cycles (ACT + CAS + data), the
    /// floor of any DRAM read: tRCD + tCL + tBURST.
    pub fn idle_read_latency(&self) -> Cycle {
        self.core(self.t_rcd + self.t_cl + self.t_burst)
    }
}

/// Per-bank row-buffer and timing state. All times in core cycles.
#[derive(Debug, Clone, Default)]
pub struct Bank {
    /// Currently open row, if any.
    pub open_row: Option<u64>,
    /// Earliest cycle a CAS may issue (after ACT + tRCD).
    pub cas_ok_at: Cycle,
    /// Earliest cycle a precharge may issue (tRAS / tRTP / tWR bound).
    pub pre_ok_at: Cycle,
    /// Earliest cycle an ACT may issue (after precharge completes).
    pub act_ok_at: Cycle,
    /// Row-buffer statistics.
    pub row_hits: u64,
    /// Row misses (ACT issued on an idle bank).
    pub row_opens: u64,
    /// Row conflicts (precharge of a different row needed).
    pub row_conflicts: u64,
}

/// The action a bank needs before serving a given row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankNeed {
    /// Row already open: CAS can issue (when `cas_ok_at` allows).
    Cas,
    /// Bank closed: ACT needed.
    Activate,
    /// Another row is open: precharge needed first.
    Precharge,
}

impl Bank {
    /// What command does serving `row` require next?
    pub fn need(&self, row: u64) -> BankNeed {
        match self.open_row {
            Some(r) if r == row => BankNeed::Cas,
            Some(_) => BankNeed::Precharge,
            None => BankNeed::Activate,
        }
    }

    /// Issues a precharge at `now` (caller checked `pre_ok_at`).
    pub fn precharge(&mut self, now: Cycle, t: &DdrTimings) {
        debug_assert!(now >= self.pre_ok_at, "tRAS/tRTP/tWR violated");
        self.open_row = None;
        self.act_ok_at = now + t.core(t.t_rp);
        self.row_conflicts += 1;
    }

    /// Issues an activate of `row` at `now` (caller checked `act_ok_at`).
    pub fn activate(&mut self, now: Cycle, row: u64, t: &DdrTimings) {
        debug_assert!(now >= self.act_ok_at, "tRP violated");
        debug_assert!(self.open_row.is_none(), "bank already open");
        self.open_row = Some(row);
        self.cas_ok_at = now + t.core(t.t_rcd);
        self.pre_ok_at = now + t.core(t.t_ras);
        self.row_opens += 1;
    }

    /// Issues a read CAS at `now`; returns the cycle the data burst ends
    /// (the completion time of the request).
    pub fn read(&mut self, now: Cycle, t: &DdrTimings) -> Cycle {
        debug_assert!(now >= self.cas_ok_at, "tRCD violated");
        debug_assert!(self.open_row.is_some());
        self.row_hits += 1;
        let data_end = now + t.core(t.t_cl + t.t_burst);
        // Read-to-precharge: the row may close tRTP after the CAS.
        self.pre_ok_at = self.pre_ok_at.max(now + t.core(t.t_rtp));
        data_end
    }

    /// Issues a write CAS at `now`; returns the cycle the write data ends
    /// on the bus.
    pub fn write(&mut self, now: Cycle, t: &DdrTimings) -> Cycle {
        debug_assert!(now >= self.cas_ok_at, "tRCD violated");
        debug_assert!(self.open_row.is_some());
        self.row_hits += 1;
        let data_end = now + t.core(t.t_cwl + t.t_burst);
        // Write recovery: precharge no earlier than data end + tWR.
        self.pre_ok_at = self.pre_ok_at.max(data_end + t.core(t.t_wr));
        data_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let t = DdrTimings::default();
        assert_eq!(t.t_cl, 11);
        assert_eq!(t.t_rcd, 11);
        assert_eq!(t.t_rp, 11);
        assert_eq!(t.t_ras, 33);
        assert_eq!(t.t_cwl, 8);
        assert_eq!(t.t_rtp, 6);
        assert_eq!(t.t_wr, 12);
        assert_eq!(t.t_wtr, 6);
        assert_eq!(t.t_burst, 4);
    }

    #[test]
    fn idle_read_latency_is_rcd_cl_burst() {
        let t = DdrTimings::default();
        assert_eq!(t.idle_read_latency(), (11 + 11 + 4) * 4);
    }

    #[test]
    fn bank_lifecycle_act_read_pre() {
        let t = DdrTimings::default();
        let mut b = Bank::default();
        assert_eq!(b.need(5), BankNeed::Activate);
        b.activate(0, 5, &t);
        assert_eq!(b.need(5), BankNeed::Cas);
        assert_eq!(b.need(6), BankNeed::Precharge);
        assert_eq!(b.cas_ok_at, t.core(11));
        // Read at earliest CAS.
        let done = b.read(b.cas_ok_at, &t);
        assert_eq!(done, t.core(11) + t.core(11 + 4));
        // tRAS dominates tRTP here: precharge allowed at ACT + tRAS.
        assert_eq!(b.pre_ok_at, t.core(33));
        b.precharge(b.pre_ok_at, &t);
        assert_eq!(b.need(5), BankNeed::Activate);
        assert_eq!(b.act_ok_at, t.core(33) + t.core(11));
    }

    #[test]
    fn write_recovery_extends_precharge() {
        let t = DdrTimings::default();
        let mut b = Bank::default();
        b.activate(0, 1, &t);
        let data_end = b.write(b.cas_ok_at, &t);
        assert_eq!(data_end, t.core(11) + t.core(8 + 4));
        assert_eq!(b.pre_ok_at, data_end + t.core(12));
        assert!(b.pre_ok_at > t.core(33), "tWR beyond tRAS");
    }

    #[test]
    fn row_hit_counters() {
        let t = DdrTimings::default();
        let mut b = Bank::default();
        b.activate(0, 9, &t);
        b.read(b.cas_ok_at, &t);
        b.read(b.cas_ok_at + 16, &t);
        assert_eq!(b.row_hits, 2);
        assert_eq!(b.row_opens, 1);
    }
}
