//! Physical-address-to-DRAM mapping (§5.3).
//!
//! "Let a32···a6 be the line address bits. The mapping for a line is:
//! Channel (1 bit) a11⊕a10⊕a9⊕a8; Bank (3 bits) (a16⊕a13, a15⊕a12,
//! a14⊕a11); Row offset (7 bits) (a13,a12,a11,a10,a9,a7,a6);
//! Row (a32,···,a17)."
//!
//! Bits are *byte-address* bits; a line address shifted left by 6 restores
//! them.

use bosim_types::LineAddr;

/// Location of a line in the DRAM system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramLoc {
    /// Channel index (0 or 1).
    pub channel: u8,
    /// Bank index within the rank (0..8).
    pub bank: u8,
    /// Row identifier.
    pub row: u64,
    /// Offset within the 8KB row buffer, in lines (0..128).
    pub row_offset: u8,
}

#[inline]
fn bit(addr: u64, i: u32) -> u64 {
    (addr >> i) & 1
}

/// Maps a physical line address to its DRAM location per §5.3.
pub fn map_line(line: LineAddr) -> DramLoc {
    let a = line.0 << 6; // restore byte-address bit positions
    let channel = (bit(a, 11) ^ bit(a, 10) ^ bit(a, 9) ^ bit(a, 8)) as u8;
    let bank = (((bit(a, 16) ^ bit(a, 13)) << 2)
        | ((bit(a, 15) ^ bit(a, 12)) << 1)
        | (bit(a, 14) ^ bit(a, 11))) as u8;
    let row_offset = ((bit(a, 13) << 6)
        | (bit(a, 12) << 5)
        | (bit(a, 11) << 4)
        | (bit(a, 10) << 3)
        | (bit(a, 9) << 2)
        | (bit(a, 7) << 1)
        | bit(a, 6)) as u8;
    let row = (a >> 17) & ((1 << 16) - 1);
    DramLoc {
        channel,
        bank,
        row,
        row_offset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bosim_types::SplitMix64;

    #[test]
    fn sequential_lines_share_rows_and_alternate_channels() {
        // 16 consecutive lines (1KB) stay in the same row and channel
        // until byte bit 8 flips (every 4 lines): channel alternates with
        // period 4 lines.
        let c0 = map_line(LineAddr(0)).channel;
        let c4 = map_line(LineAddr(4)).channel;
        assert_ne!(c0, c4, "channel bit flips every 256 bytes");
        assert_eq!(map_line(LineAddr(0)).row, map_line(LineAddr(15)).row);
    }

    #[test]
    fn row_changes_every_128k_bytes() {
        // Row = a32..a17: changes every 2^17 bytes = 2^11 lines.
        let r0 = map_line(LineAddr(0)).row;
        let r1 = map_line(LineAddr(1 << 11)).row;
        assert_ne!(r0, r1);
        assert_eq!(r0, map_line(LineAddr((1 << 11) - 1)).row);
    }

    #[test]
    fn known_vector() {
        // a = 0: everything zero.
        let l = map_line(LineAddr(0));
        assert_eq!(l.channel, 0);
        assert_eq!(l.bank, 0);
        assert_eq!(l.row, 0);
        assert_eq!(l.row_offset, 0);
        // Byte bit 6 (line bit 0) is row-offset bit 0.
        assert_eq!(map_line(LineAddr(1)).row_offset, 1);
        // Byte bit 8 (line bit 2) flips the channel.
        assert_eq!(map_line(LineAddr(4)).channel, 1);
        // Byte bit 14 (line bit 8) flips bank bit 0.
        assert_eq!(map_line(LineAddr(1 << 8)).bank, 1);
        // Byte bit 16 (line bit 10) flips bank bit 2.
        assert_eq!(map_line(LineAddr(1 << 10)).bank, 4);
    }

    #[test]
    fn prop_fields_in_range() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..512 {
            let l = map_line(LineAddr(rng.next_u64() % (1 << 33)));
            assert!(l.channel <= 1);
            assert!(l.bank < 8);
            assert!(l.row_offset < 128);
        }
    }

    /// The mapping is a pure function of the line address.
    #[test]
    fn prop_same_line_same_loc() {
        let mut rng = SplitMix64::new(4);
        for _ in 0..256 {
            let line = rng.next_u64() % (1 << 33);
            assert_eq!(map_line(LineAddr(line)), map_line(LineAddr(line)));
        }
    }
}
