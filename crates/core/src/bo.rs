//! The Best-Offset prefetcher (§4).
//!
//! On every eligible L2 read access (miss or prefetched hit) for line `X`:
//!
//! 1. **Prefetch issue** — if prefetch is on and `X + D` lies in the same
//!    page, a prefetch for `X + D` is requested (degree one, §4.3).
//! 2. **Learning** — the next offset `d` of the offset list is tested:
//!    if `X − d` hits in the RR table, `d`'s score is incremented.
//!
//! When a line `Y` prefetched with offset `D` completes and is inserted
//! into the L2, the *base address* `Y − D` is written to the RR table (if
//! both lie in the same page): a hit on `X − d` therefore means "had the
//! offset been `d`, the prefetch of `X` would have been issued by the
//! access to `X − d` and would have completed by now" — i.e. it would have
//! been *timely*. This is the key difference from the Sandbox prefetcher,
//! which scores coverage only.
//!
//! A learning phase ends at the end of a round once a score reaches
//! SCOREMAX or ROUNDMAX rounds have elapsed; the best-scoring offset
//! becomes the new `D`. If the best score is not above BADSCORE, prefetch
//! is turned off (§4.3) — but learning continues, with `Y` itself written
//! to the RR table on every fill (i.e. `D = 0`).

use crate::iface::{AccessOutcome, CacheAccess, PrefetchEvent, Prefetcher, TuneDirective};
use crate::offsets::OffsetList;
use crate::rr_table::RrTable;
use bosim_types::{LineAddr, PageSize};
use std::fmt;

/// Best-Offset prefetcher parameters (Table 2 defaults).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoConfig {
    /// RR table entries (Table 2: 256).
    pub rr_entries: usize,
    /// RR partial tag width in bits (Table 2: 12).
    pub rr_tag_bits: u32,
    /// Maximum score ending a learning phase (Table 2: 31).
    pub score_max: u32,
    /// Maximum rounds per learning phase (Table 2: 100).
    pub round_max: u32,
    /// Scores ≤ BADSCORE turn prefetch off (Table 2: 1).
    pub bad_score: u32,
    /// Prefetch degree (paper default 1). §4.3 discusses a degree-two
    /// variant prefetching with the best *and* second-best offsets; this
    /// implementation supports it as an extension (values 1 or 2).
    pub degree: u32,
    /// The candidate offset list (Table 2: the 52 offsets of §4.2).
    pub offsets: OffsetList,
}

impl Default for BoConfig {
    fn default() -> Self {
        BoConfig {
            rr_entries: 256,
            rr_tag_bits: 12,
            score_max: 31,
            round_max: 100,
            bad_score: 1,
            degree: 1,
            offsets: OffsetList::paper_default(),
        }
    }
}

/// A constraint violated by a [`BoConfig`] (returned by
/// [`BoConfig::validate`] and [`BestOffsetPrefetcher::try_new`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BoConfigError {
    /// The prefetch degree was outside the supported `1..=2` range.
    UnsupportedDegree {
        /// The requested degree.
        degree: u32,
    },
    /// The candidate offset list was empty.
    EmptyOffsetList,
    /// The RR table entry count was not a power of two ≥ 2.
    BadRrEntries {
        /// The requested entry count.
        entries: usize,
    },
    /// The RR partial tag width was 0 or larger than 16 bits.
    BadRrTagBits {
        /// The requested tag width.
        bits: u32,
    },
    /// SCOREMAX was 0 — a learning phase could never saturate.
    ZeroScoreMax,
    /// ROUNDMAX was 0 — a learning phase could never end.
    ZeroRoundMax,
}

impl fmt::Display for BoConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoConfigError::UnsupportedDegree { degree } => {
                write!(
                    f,
                    "BO prefetch degree {degree} unsupported (must be 1 or 2)"
                )
            }
            BoConfigError::EmptyOffsetList => write!(f, "BO candidate offset list is empty"),
            BoConfigError::BadRrEntries { entries } => write!(
                f,
                "BO RR table needs a power-of-two entry count >= 2, got {entries}"
            ),
            BoConfigError::BadRrTagBits { bits } => {
                write!(f, "BO RR partial tag must be 1..=16 bits, got {bits}")
            }
            BoConfigError::ZeroScoreMax => write!(f, "BO SCOREMAX must be at least 1"),
            BoConfigError::ZeroRoundMax => write!(f, "BO ROUNDMAX must be at least 1"),
        }
    }
}

impl std::error::Error for BoConfigError {}

impl BoConfig {
    /// Validates the parameters against the constraints the hardware
    /// model assumes. [`BestOffsetPrefetcher::try_new`] runs this; the
    /// simulator's configuration builder surfaces the error instead of
    /// aborting a sweep mid-grid.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), BoConfigError> {
        if !(1..=2).contains(&self.degree) {
            return Err(BoConfigError::UnsupportedDegree {
                degree: self.degree,
            });
        }
        if self.offsets.is_empty() {
            return Err(BoConfigError::EmptyOffsetList);
        }
        if self.rr_entries < 2 || !self.rr_entries.is_power_of_two() {
            return Err(BoConfigError::BadRrEntries {
                entries: self.rr_entries,
            });
        }
        if !(1..=16).contains(&self.rr_tag_bits) {
            return Err(BoConfigError::BadRrTagBits {
                bits: self.rr_tag_bits,
            });
        }
        if self.score_max == 0 {
            return Err(BoConfigError::ZeroScoreMax);
        }
        if self.round_max == 0 {
            return Err(BoConfigError::ZeroRoundMax);
        }
        Ok(())
    }
}

/// Counters exposed for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoStats {
    /// Completed learning phases.
    pub phases: u64,
    /// Phases that ended with prefetch turned off.
    pub phases_off: u64,
    /// Prefetch requests issued.
    pub issued: u64,
    /// Eligible accesses observed.
    pub eligible_accesses: u64,
}

/// The Best-Offset (BO) L2 prefetcher.
#[derive(Debug)]
pub struct BestOffsetPrefetcher {
    cfg: BoConfig,
    page: PageSize,
    rr: RrTable,
    scores: Vec<u32>,
    /// Next offset index to test (round-robin within a round).
    test_idx: usize,
    rounds: u32,
    /// Incrementally tracked best of the current phase.
    best_idx: usize,
    best_score: u32,
    /// Incrementally tracked runner-up (degree-2 extension).
    second_idx: usize,
    second_score: u32,
    /// Second prefetch offset (degree-2 extension; equals `offset` when
    /// no distinct runner-up emerged).
    second_offset: i64,
    /// A score reached SCOREMAX: finish the phase at the end of the round.
    saturated: bool,
    /// Current prefetch offset D.
    offset: i64,
    /// Prefetch on/off (off when the last phase's best score ≤ BADSCORE).
    prefetch_on: bool,
    /// External gate imposed by an adaptive tuning policy
    /// ([`TuneDirective::SetEnabled`]); independent of the BADSCORE
    /// throttle. While gated off, learning continues exactly as in the
    /// throttled-off state (fills seed the RR table with `D = 0`).
    enabled: bool,
    stats: BoStats,
    /// Buffered learning events, allocated only while an observability
    /// sink is enabled ([`Prefetcher::set_event_sink`]); `None` — the
    /// default — keeps the learning loop free of any event work.
    events: Option<Vec<PrefetchEvent>>,
}

impl BestOffsetPrefetcher {
    /// Creates a BO prefetcher with the given configuration and page size.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`BoConfig::validate`]. Sweeps
    /// should validate specs up front (the simulator's configuration
    /// builder does) and use [`try_new`](Self::try_new) to surface the
    /// error instead.
    pub fn new(cfg: BoConfig, page: PageSize) -> Self {
        match Self::try_new(cfg, page) {
            Ok(p) => p,
            Err(e) => panic!("invalid BoConfig: {e}"), // bosim-lint: allow(P003, documented Panics contract; try_new is the fallible twin)
        }
    }

    /// Fallible construction: validates the configuration and reports the
    /// violated constraint instead of aborting.
    ///
    /// # Errors
    ///
    /// Returns the first constraint violated by `cfg`.
    pub fn try_new(cfg: BoConfig, page: PageSize) -> Result<Self, BoConfigError> {
        cfg.validate()?;
        let n = cfg.offsets.len();
        let rr = RrTable::new(cfg.rr_entries, cfg.rr_tag_bits);
        Ok(BestOffsetPrefetcher {
            offset: cfg.offsets.get(0),
            second_offset: cfg.offsets.get(0),
            cfg,
            page,
            rr,
            scores: vec![0; n],
            test_idx: 0,
            rounds: 0,
            best_idx: 0,
            best_score: 0,
            second_idx: 0,
            second_score: 0,
            saturated: false,
            prefetch_on: true,
            enabled: true,
            stats: BoStats::default(),
            events: None,
        })
    }

    /// Creates a BO prefetcher with the Table 2 default parameters.
    pub fn with_defaults(page: PageSize) -> Self {
        Self::new(BoConfig::default(), page)
    }

    /// The current prefetch offset `D`.
    pub fn current_offset(&self) -> i64 {
        self.offset
    }

    /// The second-best offset used by the degree-2 extension (equals
    /// [`current_offset`](Self::current_offset) when degree is 1 or no
    /// distinct runner-up scored above BADSCORE).
    pub fn second_offset(&self) -> i64 {
        self.second_offset
    }

    /// Whether prefetch is currently on: the §4.3 BADSCORE throttle AND
    /// the external [`TuneDirective::SetEnabled`] gate.
    pub fn is_prefetching(&self) -> bool {
        self.prefetch_on && self.enabled
    }

    /// Whether the external tuning gate currently allows prefetching
    /// (independent of the BADSCORE throttle).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The configured prefetch degree (runtime-tunable, 1 or 2).
    pub fn degree(&self) -> u32 {
        self.cfg.degree
    }

    /// Current learning-phase scores, in offset-list order.
    pub fn scores(&self) -> &[u32] {
        &self.scores
    }

    /// The configuration in use.
    pub fn config(&self) -> &BoConfig {
        &self.cfg
    }

    /// Experiment counters.
    pub fn stats(&self) -> BoStats {
        self.stats
    }

    /// One learning step (§4.1): test the next offset in the list against
    /// the RR table; close the phase at the end of a round if saturated
    /// or ROUNDMAX reached.
    fn learn(&mut self, x: LineAddr) {
        let d = self.cfg.offsets.get(self.test_idx);
        // X - d as an absolute line address; no page restriction is
        // applied on lookups (insertions are page-restricted).
        let probe = x.0 as i64 - d;
        if probe >= 0 && self.rr.contains(LineAddr(probe as u64)) {
            let s = &mut self.scores[self.test_idx];
            *s += 1;
            if *s > self.best_score {
                if self.best_idx != self.test_idx {
                    self.second_score = self.best_score;
                    self.second_idx = self.best_idx;
                }
                self.best_score = *s;
                self.best_idx = self.test_idx;
            } else if self.test_idx != self.best_idx && *s > self.second_score {
                self.second_score = *s;
                self.second_idx = self.test_idx;
            }
            if *s >= self.cfg.score_max {
                self.saturated = true;
            }
        }
        self.test_idx += 1;
        if self.test_idx == self.cfg.offsets.len() {
            // End of a round.
            self.test_idx = 0;
            self.rounds += 1;
            if let Some(events) = &mut self.events {
                events.push(PrefetchEvent::RoundEnd {
                    round: self.rounds,
                    leader_offset: self.cfg.offsets.get(self.best_idx),
                    leader_score: self.best_score,
                });
            }
            if self.saturated || self.rounds >= self.cfg.round_max {
                self.end_phase();
            }
        }
    }

    /// Ends the learning phase: adopt the best offset, decide throttling,
    /// reset all scores (§4.1, §4.3).
    fn end_phase(&mut self) {
        self.stats.phases += 1;
        self.offset = self.cfg.offsets.get(self.best_idx);
        self.second_offset = if self.second_score > self.cfg.bad_score {
            self.cfg.offsets.get(self.second_idx)
        } else {
            self.offset
        };
        self.prefetch_on = self.best_score > self.cfg.bad_score;
        if !self.prefetch_on {
            self.stats.phases_off += 1;
        }
        if let Some(events) = &mut self.events {
            events.push(PrefetchEvent::PhaseEnd {
                best_offset: self.offset,
                best_score: self.best_score,
                prefetch_on: self.prefetch_on,
                scores: (0..self.scores.len())
                    .map(|i| (self.cfg.offsets.get(i), self.scores[i]))
                    .collect(),
            });
        }
        self.scores.fill(0);
        self.best_idx = 0;
        self.best_score = 0;
        self.second_idx = 0;
        self.second_score = 0;
        self.rounds = 0;
        self.test_idx = 0;
        self.saturated = false;
    }
}

impl Prefetcher for BestOffsetPrefetcher {
    fn on_access(&mut self, access: CacheAccess, out: &mut Vec<LineAddr>) {
        if !access.outcome.is_eligible() {
            return;
        }
        debug_assert!(matches!(
            access.outcome,
            AccessOutcome::Miss | AccessOutcome::PrefetchedHit
        ));
        self.stats.eligible_accesses += 1;
        let x = access.line;
        // Issue the prefetch for X + D first (the learning step below may
        // swap phases; hardware does both in the same cycle).
        if self.is_prefetching() {
            if let Some(target) = x.checked_offset(self.offset, self.page) {
                out.push(target);
                self.stats.issued += 1;
            }
            // Degree-2 extension (§4.3): also prefetch with the
            // second-best offset of the last learning phase.
            if self.cfg.degree >= 2 && self.second_offset != self.offset {
                if let Some(target) = x.checked_offset(self.second_offset, self.page) {
                    if !out.contains(&target) {
                        out.push(target);
                        self.stats.issued += 1;
                    }
                }
            }
        }
        self.learn(x);
    }

    fn on_fill(&mut self, line: LineAddr, prefetched: bool) {
        if self.is_prefetching() {
            // Base address of the completed prefetch: Y - D, written only
            // for lines still marked prefetched, and only when Y and Y-D
            // lie in the same page (§4.1 fn. 2).
            if prefetched {
                if let Some(base) = line.checked_offset(-self.offset, self.page) {
                    self.rr.insert(base);
                }
            }
        } else {
            // Prefetch off: every fetched line is its own base (D = 0).
            self.rr.insert(line);
        }
    }

    fn name(&self) -> &'static str {
        "BO"
    }

    fn page_size(&self) -> PageSize {
        self.page
    }

    fn reconfigure(&mut self, directive: &TuneDirective) -> bool {
        match directive {
            TuneDirective::SetDegree(d) if (1..=2).contains(d) => {
                self.cfg.degree = *d;
                true
            }
            TuneDirective::SetDegree(_) => false,
            TuneDirective::SetEnabled(on) => {
                self.enabled = *on;
                true
            }
            TuneDirective::SwitchPrefetcher(_) => false,
        }
    }

    fn set_event_sink(&mut self, enabled: bool) {
        self.events = if enabled {
            Some(self.events.take().unwrap_or_default())
        } else {
            None
        };
    }

    fn drain_events(&mut self, out: &mut Vec<PrefetchEvent>) {
        if let Some(events) = &mut self.events {
            out.append(events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bo() -> BestOffsetPrefetcher {
        BestOffsetPrefetcher::with_defaults(PageSize::M4)
    }

    fn access(p: &mut BestOffsetPrefetcher, line: u64) -> Vec<LineAddr> {
        let mut out = Vec::new();
        p.on_access(
            CacheAccess {
                line: LineAddr(line),
                outcome: AccessOutcome::Miss,
            },
            &mut out,
        );
        out
    }

    #[test]
    fn initial_state_prefetches_with_first_offset() {
        let mut p = bo();
        assert!(p.is_prefetching());
        assert_eq!(p.current_offset(), 1);
        let out = access(&mut p, 100);
        assert_eq!(out, vec![LineAddr(101)]);
    }

    #[test]
    fn plain_hits_are_ignored() {
        let mut p = bo();
        let mut out = Vec::new();
        p.on_access(
            CacheAccess {
                line: LineAddr(7),
                outcome: AccessOutcome::Hit,
            },
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(p.stats().eligible_accesses, 0);
    }

    #[test]
    fn no_prefetch_across_page_boundary() {
        let mut p = BestOffsetPrefetcher::with_defaults(PageSize::K4);
        // Last line of a 4KB page: offset 1 would cross.
        let out = access(&mut p, 63);
        assert!(out.is_empty(), "must not cross the page");
        assert_eq!(p.stats().issued, 0);
    }

    /// Drive a pure sequential stream through the prefetcher with fills
    /// completing "in time"; BO should converge to a positive offset and
    /// keep prefetching.
    #[test]
    fn sequential_stream_learns_an_offset() {
        let mut p = bo();
        for line in 1_000u64..41_000 {
            let reqs = access(&mut p, line);
            // Simulate timely completion: requested prefetches fill the
            // L2 (still flagged as prefetches) before the stream reaches
            // them.
            for r in reqs {
                p.on_fill(r, true);
            }
        }
        assert!(p.is_prefetching());
        assert!(p.stats().phases > 0, "at least one phase completed");
        assert!(p.current_offset() >= 1);
    }

    /// With a strided stream of period 3 lines (stride pattern from §3.2)
    /// and timely fills, the learned offset must be a multiple of 3.
    #[test]
    fn strided_stream_learns_multiple_of_period() {
        let mut p = bo();
        let mut line = 10_000u64;
        for _ in 0..60_000 {
            let reqs = access(&mut p, line);
            for r in reqs {
                p.on_fill(r, true);
            }
            line += 3;
        }
        assert!(p.stats().phases > 0);
        assert_eq!(
            p.current_offset() % 3,
            0,
            "offset {} not a multiple of the stride period",
            p.current_offset()
        );
        assert!(p.is_prefetching());
    }

    /// Random accesses never hit the RR table: scores stay ≤ BADSCORE and
    /// prefetch turns off at the end of the phase — and stays off while
    /// learning continues (§4.3).
    #[test]
    fn random_traffic_turns_prefetch_off() {
        let mut p = bo();
        let mut x = 0x9E3779B97F4A7C15u64;
        let total_steps = 52 * 101; // > ROUNDMAX rounds
        for _ in 0..total_steps {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = x >> 20; // scattered lines
            let reqs = access(&mut p, line);
            for r in reqs {
                p.on_fill(r, true);
            }
        }
        assert!(p.stats().phases > 0);
        assert!(!p.is_prefetching(), "random traffic must throttle off");
        // Issue nothing when off.
        let out = access(&mut p, 42);
        assert!(out.is_empty());
    }

    /// After being throttled off, a returning sequential phase turns
    /// prefetch back on (learning continues with D = 0 insertions).
    #[test]
    fn prefetch_turns_back_on_after_pattern_returns() {
        let mut p = bo();
        // Phase 1: random traffic -> off.
        let mut x = 12345u64;
        for _ in 0..52 * 101 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
            let reqs = access(&mut p, x >> 22);
            for r in reqs {
                p.on_fill(r, true);
            }
        }
        assert!(!p.is_prefetching());
        // Phase 2: sequential stream; fills feed the RR table with D=0.
        for line in 500_000u64..500_000 + 52 * 40 {
            let reqs = access(&mut p, line);
            for r in reqs {
                p.on_fill(r, true);
            }
            // While prefetch is off nothing is issued; the demand fill
            // itself reaches the L2:
            p.on_fill(LineAddr(line), false);
        }
        assert!(p.is_prefetching(), "prefetch must re-enable");
    }

    /// SCOREMAX saturation ends the phase early (at the end of the
    /// round), well before ROUNDMAX rounds.
    #[test]
    fn scoremax_ends_phase_early() {
        let mut p = bo();
        let mut line = 77u64;
        let mut accesses = 0u64;
        while p.stats().phases == 0 {
            let reqs = access(&mut p, line);
            for r in reqs {
                p.on_fill(r, true);
            }
            line += 1;
            accesses += 1;
            assert!(accesses < 52 * 50, "phase should end via SCOREMAX");
        }
        // SCOREMAX=31 with offset 1 scoring every round: ~31-32 rounds.
        assert!(accesses <= 52 * 35);
    }

    #[test]
    fn fill_when_off_inserts_base_with_d0() {
        let cfg = BoConfig {
            round_max: 1, // single-round phases for fast control
            ..Default::default()
        };
        let mut p = BestOffsetPrefetcher::new(cfg, PageSize::M4);
        // Burn one full round with non-matching accesses: phase ends with
        // best score 0 -> off.
        for i in 0..52 {
            access(&mut p, 1_000_000 + i * 1_000);
        }
        assert!(!p.is_prefetching());
        // Now a fill of line Z inserts Z itself: testing offset d against
        // access Z+d must hit.
        p.on_fill(LineAddr(5_000), false);
        // First tested offset in the new phase is offsets[0] = 1.
        access(&mut p, 5_001);
        assert_eq!(p.scores()[0], 1, "D=0 insertion must let X-1 hit");
    }

    #[test]
    fn degree_2_issues_two_distinct_offsets() {
        let cfg = BoConfig {
            degree: 2,
            ..Default::default()
        };
        let mut p = BestOffsetPrefetcher::new(cfg, PageSize::M4);
        // Period-2 stream: multiples of 2 all score; best and runner-up
        // are distinct even offsets.
        let mut line = 500u64;
        for _ in 0..52 * 200 {
            let reqs = access(&mut p, line);
            for r in reqs {
                p.on_fill(r, true);
            }
            line += 2;
        }
        assert!(p.stats().phases > 0);
        if p.second_offset() != p.current_offset() {
            let reqs = access(&mut p, line);
            assert_eq!(reqs.len(), 2, "degree-2 must issue two prefetches");
            assert_ne!(reqs[0], reqs[1]);
        }
    }

    /// Degree-2 across phase boundaries: a phase that elects a distinct
    /// runner-up issues two prefetches per access (`issued` counts
    /// both); when a later phase's runner-up scores ≤ BADSCORE,
    /// `second_offset` collapses back to `offset` and only one prefetch
    /// is issued again.
    #[test]
    fn degree_2_second_offset_tracks_phase_boundaries() {
        let cfg = BoConfig {
            degree: 2,
            round_max: 2, // two tests of every offset per phase
            ..Default::default()
        };
        let n = cfg.offsets.len();
        assert_eq!((cfg.offsets.get(0), cfg.offsets.get(1)), (1, 2));
        let mut p = BestOffsetPrefetcher::new(cfg, PageSize::M4);

        // Fresh, far-apart mid-page addresses: probes of untouched lines
        // never hit the RR table.
        let mut fresh = 0x1000_8000u64;
        let mut next_fresh = || {
            fresh += 100_000;
            fresh
        };

        // Phase 0: two rounds of non-matching accesses turn prefetch off
        // (every score is 0 ≤ BADSCORE).
        for _ in 0..2 * n {
            access(&mut p, next_fresh());
        }
        assert_eq!(p.stats().phases, 1);
        assert!(!p.is_prefetching());

        // Phase 1 (prefetch off ⇒ fills seed the RR table with D = 0):
        // score offset 1 (list index 0) and offset 2 (index 1) twice
        // each. Index 0 reaches best first, so offset 1 wins and offset
        // 2 becomes the runner-up with score 2 > BADSCORE.
        for ti in 0..2 * n {
            match ti % n {
                0 => {
                    let s = next_fresh();
                    p.on_fill(LineAddr(s), false);
                    access(&mut p, s + 1); // probes (s+1) − 1 = s: hit
                }
                1 => {
                    let s = next_fresh();
                    p.on_fill(LineAddr(s), false);
                    access(&mut p, s + 2); // probes (s+2) − 2 = s: hit
                }
                _ => {
                    access(&mut p, next_fresh());
                }
            }
        }
        assert_eq!(p.stats().phases, 2);
        assert!(p.is_prefetching());
        assert_eq!(p.current_offset(), 1);
        assert_eq!(p.second_offset(), 2, "distinct runner-up adopted");

        // Both offsets are prefetched, and `issued` counts both.
        let issued_before = p.stats().issued;
        let z = next_fresh();
        p.on_fill(LineAddr(z), true); // seeds z − 1: scores offset 1 below
        let out = access(&mut p, z);
        assert_eq!(out, vec![LineAddr(z + 1), LineAddr(z + 2)]);
        assert_eq!(p.stats().issued, issued_before + 2);

        // Phase 2: only offset 1 keeps scoring (the z access above was
        // this phase's first test of index 0; one more at the round
        // boundary). Offset 2 falls to 0 ≤ BADSCORE, so the runner-up
        // collapses back onto the best offset.
        for ti in 1..2 * n {
            if ti % n == 0 {
                let s = next_fresh();
                p.on_fill(LineAddr(s + 1), true); // prefetch on: seeds s
                access(&mut p, s + 1);
            } else {
                access(&mut p, next_fresh());
            }
        }
        assert_eq!(p.stats().phases, 3);
        assert!(p.is_prefetching(), "best score 2 > BADSCORE keeps it on");
        assert_eq!(p.current_offset(), 1);
        assert_eq!(
            p.second_offset(),
            p.current_offset(),
            "runner-up ≤ BADSCORE must collapse to the best offset"
        );
        // Back to a single prefetch per access.
        let out = access(&mut p, next_fresh());
        assert_eq!(out.len(), 1);
    }

    #[test]
    #[should_panic]
    fn degree_3_is_rejected() {
        let cfg = BoConfig {
            degree: 3,
            ..Default::default()
        };
        let _ = BestOffsetPrefetcher::new(cfg, PageSize::M4);
    }

    #[test]
    fn try_new_reports_violations_instead_of_panicking() {
        let bad_degree = BoConfig {
            degree: 3,
            ..Default::default()
        };
        assert_eq!(
            BestOffsetPrefetcher::try_new(bad_degree, PageSize::M4).unwrap_err(),
            BoConfigError::UnsupportedDegree { degree: 3 }
        );
        let bad_rr = BoConfig {
            rr_entries: 100,
            ..Default::default()
        };
        assert_eq!(
            BestOffsetPrefetcher::try_new(bad_rr, PageSize::M4).unwrap_err(),
            BoConfigError::BadRrEntries { entries: 100 }
        );
        let zero_rounds = BoConfig {
            round_max: 0,
            ..Default::default()
        };
        assert_eq!(
            BoConfig::validate(&zero_rounds).unwrap_err(),
            BoConfigError::ZeroRoundMax
        );
        assert!(BoConfig::default().validate().is_ok());
    }

    #[test]
    fn empty_offset_list_is_a_config_error() {
        // `OffsetList::new` panics on an empty list; `try_new` surfaces
        // the same constraint as an error for sweep validation.
        assert_eq!(
            OffsetList::try_new(vec![]).unwrap_err(),
            "offset list cannot be empty"
        );
        assert_eq!(
            OffsetList::try_new(vec![1, 0]).unwrap_err(),
            "offset 0 is not a prefetch"
        );
        assert_eq!(
            OffsetList::try_new(vec![2, 2]).unwrap_err(),
            "duplicate offsets"
        );
    }

    #[test]
    fn reconfigure_switches_degree_at_runtime() {
        let mut p = bo();
        assert_eq!(p.degree(), 1);
        assert!(p.reconfigure(&TuneDirective::SetDegree(2)));
        assert_eq!(p.degree(), 2);
        assert!(!p.reconfigure(&TuneDirective::SetDegree(3)), "3 rejected");
        assert_eq!(p.degree(), 2);
        assert!(p.reconfigure(&TuneDirective::SetDegree(1)));
        assert_eq!(p.degree(), 1);
    }

    #[test]
    fn external_gate_stops_issue_but_learning_continues() {
        let mut p = bo();
        assert!(p.reconfigure(&TuneDirective::SetEnabled(false)));
        assert!(!p.is_prefetching());
        assert!(!p.is_enabled());
        // No prefetches while gated off...
        assert!(access(&mut p, 100).is_empty());
        // ...but fills seed the RR table with D = 0 (off-state learning):
        // a later access to Z+1 scores offset 1.
        p.on_fill(LineAddr(5_000), false);
        // The gated prefetcher still observes accesses (learning): drive
        // the test index back to offset 1 at the start of a round.
        let scores_before = p.scores()[0];
        while p.scores()[0] == scores_before {
            // Keep probing Z+1; each full round tests offset 1 once.
            access(&mut p, 5_001);
            if p.stats().phases > 2 {
                panic!("offset 1 never scored while gated off");
            }
        }
        // Re-enabling resumes issue immediately (BADSCORE state allowing).
        assert!(p.reconfigure(&TuneDirective::SetEnabled(true)));
        assert!(p.is_enabled());
    }

    /// The observability sink: off by default (no events, no buffer),
    /// and when on, every completed round reports its leader and every
    /// completed phase snapshots the score table before the reset.
    #[test]
    fn event_sink_reports_rounds_and_phases() {
        let cfg = BoConfig {
            round_max: 2,
            ..Default::default()
        };
        let n = cfg.offsets.len();
        let mut p = BestOffsetPrefetcher::new(cfg, PageSize::M4);
        // Sink off: a full phase produces nothing to drain.
        for i in 0..2 * n as u64 {
            access(&mut p, 1_000_000 + i * 1_000);
        }
        assert_eq!(p.stats().phases, 1);
        let mut out = Vec::new();
        p.drain_events(&mut out);
        assert!(out.is_empty(), "no events buffered while the sink is off");

        // Sink on: one phase = two RoundEnds + one PhaseEnd, in order.
        p.set_event_sink(true);
        let mut scored = 0u32;
        for i in 0..2 * n as u64 {
            if i % n as u64 == 0 {
                // Seed the RR table so offset 1 scores this round.
                let s = 5_000_000 + i * 1_000;
                p.on_fill(LineAddr(s), false);
                access(&mut p, s + 1);
                scored += 1;
            } else {
                access(&mut p, 2_000_000 + i * 1_000);
            }
        }
        assert_eq!(p.stats().phases, 2);
        p.drain_events(&mut out);
        assert_eq!(out.len(), 3, "{out:?}");
        assert_eq!(
            out[0],
            PrefetchEvent::RoundEnd {
                round: 1,
                leader_offset: 1,
                leader_score: 1
            }
        );
        assert!(matches!(out[1], PrefetchEvent::RoundEnd { round: 2, .. }));
        match &out[2] {
            PrefetchEvent::PhaseEnd {
                best_offset,
                best_score,
                prefetch_on,
                scores,
            } => {
                assert_eq!(*best_offset, 1);
                assert_eq!(*best_score, scored);
                assert!(*prefetch_on);
                assert_eq!(scores.len(), n);
                assert_eq!(scores[0], (1, scored), "snapshot taken before reset");
            }
            other => panic!("expected PhaseEnd, got {other:?}"),
        }
        // Draining empties the buffer; disabling the sink drops it.
        let mut again = Vec::new();
        p.drain_events(&mut again);
        assert!(again.is_empty());
        p.set_event_sink(false);
    }

    #[test]
    fn default_config_matches_table2() {
        let c = BoConfig::default();
        assert_eq!(c.rr_entries, 256);
        assert_eq!(c.rr_tag_bits, 12);
        assert_eq!(c.score_max, 31);
        assert_eq!(c.round_max, 100);
        assert_eq!(c.bad_score, 1);
        assert_eq!(c.degree, 1, "the paper's BO is a degree-one prefetcher");
        assert_eq!(c.offsets.len(), 52);
    }
}
