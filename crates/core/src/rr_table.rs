//! The recent-requests (RR) table (§4.1, §4.4).
//!
//! "Our solution is to record in a recent requests (RR) table the base
//! address of prefetch requests that have been completed. ... we choose
//! the simplest implementation: the RR table is direct mapped, accessed
//! through a hash function, each table entry holding a tag. The tag does
//! not need to be the full address, a partial tag is sufficient."
//!
//! Hashing (§4.4, generalised from the 256-entry example): for a table of
//! `2^i` entries, the index XORs the `i` least-significant line-address
//! bits with the next `i` bits; the tag skips the `i` least-significant
//! bits and extracts the next `tag_bits` bits.

use bosim_types::LineAddr;

/// Direct-mapped table of recently completed prefetch base addresses.
#[derive(Debug, Clone)]
pub struct RrTable {
    index_bits: u32,
    tag_bits: u32,
    entries: Vec<Option<u16>>,
    inserts: u64,
    hits: u64,
    probes: u64,
}

impl RrTable {
    /// Creates an RR table with `entries` slots (must be a power of two;
    /// the paper's default is 256) and `tag_bits` partial tags (default
    /// 12, at most 16).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two ≥ 2, or `tag_bits` is 0
    /// or greater than 16.
    pub fn new(entries: usize, tag_bits: u32) -> Self {
        assert!(entries >= 2 && entries.is_power_of_two());
        assert!((1..=16).contains(&tag_bits));
        RrTable {
            index_bits: entries.trailing_zeros(),
            tag_bits,
            entries: vec![None; entries],
            inserts: 0,
            hits: 0,
            probes: 0,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table has no slots (never).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    fn index(&self, line: LineAddr) -> usize {
        let lo = line.0 & ((1 << self.index_bits) - 1);
        let hi = (line.0 >> self.index_bits) & ((1 << self.index_bits) - 1);
        (lo ^ hi) as usize
    }

    #[inline]
    fn tag(&self, line: LineAddr) -> u16 {
        ((line.0 >> self.index_bits) & ((1u64 << self.tag_bits) - 1)) as u16
    }

    /// Records a base address.
    #[inline]
    pub fn insert(&mut self, line: LineAddr) {
        let i = self.index(line);
        self.entries[i] = Some(self.tag(line));
        self.inserts += 1;
    }

    /// Tests whether a base address was recently recorded (modulo partial
    /// tag aliasing, as in hardware).
    #[inline]
    pub fn contains(&mut self, line: LineAddr) -> bool {
        self.probes += 1;
        let i = self.index(line);
        let hit = self.entries[i] == Some(self.tag(line));
        if hit {
            self.hits += 1;
        }
        hit
    }

    /// Clears all entries (tests / phase boundaries do not clear in the
    /// paper; provided for experimentation).
    pub fn clear(&mut self) {
        self.entries.fill(None);
    }

    /// (inserts, probes, probe hits) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.inserts, self.probes, self.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bosim_types::SplitMix64;

    #[test]
    fn paper_default_geometry() {
        let t = RrTable::new(256, 12);
        assert_eq!(t.len(), 256);
        assert_eq!(t.index_bits, 8);
    }

    #[test]
    fn insert_then_contains() {
        let mut t = RrTable::new(256, 12);
        let line = LineAddr(0xABCDE);
        assert!(!t.contains(line));
        t.insert(line);
        assert!(t.contains(line));
    }

    #[test]
    fn index_xors_low_bits_with_next_bits() {
        let t = RrTable::new(256, 12);
        // line = 0x1FF00: low 8 bits 0x00, next 8 bits 0xFF -> index 0xFF.
        assert_eq!(t.index(LineAddr(0xFF00)), 0xFF);
        // line = 0x00FF: low 8 bits 0xFF, next 8 bits 0x00 -> index 0xFF.
        assert_eq!(t.index(LineAddr(0x00FF)), 0xFF);
    }

    #[test]
    fn tag_skips_index_bits() {
        let t = RrTable::new(256, 12);
        // Bits [8..20) of the line address form the tag.
        assert_eq!(t.tag(LineAddr(0xFFF00)), 0xFFF);
        assert_eq!(t.tag(LineAddr(0x000FF)), 0x000);
    }

    #[test]
    fn conflicting_lines_evict() {
        let mut t = RrTable::new(256, 12);
        let a = LineAddr(0x100);
        // Bit 16 is outside both index-bit ranges (0..8 and 8..16) but
        // inside the tag (bits 8..20): same index, different tag.
        let b = LineAddr(0x100 + (1 << 16));
        assert_eq!(t.index(a), t.index(b));
        t.insert(a);
        t.insert(b);
        assert!(!t.contains(a), "direct-mapped: b evicted a");
        assert!(t.contains(b));
    }

    #[test]
    fn partial_tags_alias() {
        let mut t = RrTable::new(256, 12);
        let a = LineAddr(0x42);
        // Same index and same 12-bit tag, different full address:
        // adding 1 << (8 + 12 + 8) changes neither index bits nor tag
        // bits... but it changes bit 28, which feeds neither field.
        let b = LineAddr(0x42 + (1 << 28));
        assert_eq!(t.index(a), t.index(b));
        assert_eq!(t.tag(a), t.tag(b));
        t.insert(a);
        assert!(t.contains(b), "partial tags alias, as in hardware");
    }

    #[test]
    fn stats_count() {
        let mut t = RrTable::new(64, 12);
        t.insert(LineAddr(1));
        t.contains(LineAddr(1));
        t.contains(LineAddr(2));
        assert_eq!(t.stats(), (1, 2, 1));
    }

    /// Immediately after inserting a line, looking it up always hits
    /// (no false negatives). Deterministic pseudo-random cases.
    #[test]
    fn prop_no_false_negative() {
        let mut rng = SplitMix64::new(7);
        for case in 0..256u64 {
            let size_pow = 5 + (case % 5) as u32;
            let mut t = RrTable::new(1 << size_pow, 12);
            let l = LineAddr(rng.next_u64() % (1 << 40));
            t.insert(l);
            assert!(t.contains(l), "{l:?} size 2^{size_pow}");
        }
    }

    /// Insertions only ever affect one slot: a second insert with a
    /// different index never evicts the first.
    #[test]
    fn prop_distinct_index_no_evict() {
        let mut rng = SplitMix64::new(11);
        let mut checked = 0;
        while checked < 128 {
            let a = rng.next_u64() % (1 << 30);
            let b = rng.next_u64() % (1 << 30);
            let mut t = RrTable::new(256, 12);
            if t.index(LineAddr(a)) == t.index(LineAddr(b)) {
                continue;
            }
            checked += 1;
            t.insert(LineAddr(a));
            t.insert(LineAddr(b));
            assert!(t.contains(LineAddr(a)));
            assert!(t.contains(LineAddr(b)));
        }
    }
}
