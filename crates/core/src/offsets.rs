//! The offset list (§4.2).
//!
//! "We include in our list all the offsets between 1 and 256 whose prime
//! factorization does not contain primes greater than 5. This gives the
//! following list of 52 offsets: 1 2 3 4 5 6 8 9 10 12 15 16 18 20 24 25
//! 27 30 32 36 40 45 48 50 54 60 64 72 75 80 81 90 96 100 108 120 125 128
//! 135 144 150 160 162 180 192 200 216 225 240 243 250 256."

/// An ordered list of candidate prefetch offsets (in lines).
///
/// Offsets are signed: the paper evaluates positive offsets only ("we did
/// not observe any benefit" from negative ones, §4.2) but the ablation
/// harness can construct lists with negative entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OffsetList {
    offsets: Vec<i64>,
}

impl OffsetList {
    /// Creates a list from explicit offsets.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, contains zero, or contains duplicates.
    pub fn new(offsets: Vec<i64>) -> Self {
        match Self::try_new(offsets) {
            Ok(list) => list,
            Err(reason) => panic!("{reason}"), // bosim-lint: allow(P003, documented Panics contract; try_new is the fallible twin)
        }
    }

    /// Fallible construction: returns a description of the violated
    /// constraint instead of panicking (used by configuration validation
    /// in parameter sweeps).
    ///
    /// # Errors
    ///
    /// Returns an error when the list is empty, contains zero, or
    /// contains duplicates.
    pub fn try_new(offsets: Vec<i64>) -> Result<Self, &'static str> {
        if offsets.is_empty() {
            return Err("offset list cannot be empty");
        }
        if offsets.contains(&0) {
            return Err("offset 0 is not a prefetch");
        }
        let mut dedup = offsets.clone();
        dedup.sort_unstable();
        dedup.dedup();
        if dedup.len() != offsets.len() {
            return Err("duplicate offsets");
        }
        Ok(OffsetList { offsets })
    }

    /// The paper's default list: every integer in `1..=max` whose prime
    /// factorisation contains no prime larger than 5 (5-smooth numbers).
    ///
    /// With `max = 256` this yields the 52 offsets of §4.2.
    ///
    /// ```
    /// use best_offset::OffsetList;
    /// let l = OffsetList::smooth5(256);
    /// assert_eq!(l.len(), 52);
    /// assert_eq!(l.iter().next(), Some(1));
    /// assert_eq!(l.iter().last(), Some(256));
    /// ```
    pub fn smooth5(max: i64) -> Self {
        assert!(max >= 1);
        let offsets = (1..=max).filter(|&n| is_smooth5(n)).collect();
        OffsetList { offsets }
    }

    /// The full range `1..=max` (the "all offsets" alternative discussed
    /// in §4.2, used by the ablation benches).
    pub fn full_range(max: i64) -> Self {
        assert!(max >= 1);
        OffsetList {
            offsets: (1..=max).collect(),
        }
    }

    /// Default paper configuration ([`smooth5`](Self::smooth5)`(256)`).
    pub fn paper_default() -> Self {
        Self::smooth5(256)
    }

    /// Number of offsets (the score table has one entry per offset).
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True when the list holds no offsets (never: construction forbids).
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// The offset at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        self.offsets[i]
    }

    /// Iterates over offsets in list order.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        self.offsets.iter().copied()
    }

    /// The offsets as a slice.
    pub fn as_slice(&self) -> &[i64] {
        &self.offsets
    }
}

/// True when `n`'s prime factorisation contains no prime larger than 5.
fn is_smooth5(mut n: i64) -> bool {
    debug_assert!(n >= 1);
    for p in [2, 3, 5] {
        while n % p == 0 {
            n /= p;
        }
    }
    n == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact list printed in §4.2 of the paper.
    const PAPER_LIST: [i64; 52] = [
        1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25, 27, 30, 32, 36, 40, 45, 48, 50, 54,
        60, 64, 72, 75, 80, 81, 90, 96, 100, 108, 120, 125, 128, 135, 144, 150, 160, 162, 180, 192,
        200, 216, 225, 240, 243, 250, 256,
    ];

    #[test]
    fn default_list_matches_paper_exactly() {
        let l = OffsetList::paper_default();
        assert_eq!(l.as_slice(), &PAPER_LIST);
    }

    #[test]
    fn smooth5_predicate() {
        assert!(is_smooth5(1));
        assert!(is_smooth5(243)); // 3^5
        assert!(is_smooth5(250)); // 2 * 5^4
        assert!(!is_smooth5(7));
        assert!(!is_smooth5(14));
        assert!(!is_smooth5(121)); // 11^2
    }

    #[test]
    fn lcm_closure_property() {
        // §4.2: "if two offsets are in the list, so is their least common
        // multiple (provided it is not too large)".
        fn gcd(a: i64, b: i64) -> i64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let l = OffsetList::paper_default();
        for &a in l.as_slice() {
            for &b in l.as_slice() {
                let lcm = a / gcd(a, b) * b;
                if lcm <= 256 {
                    assert!(l.as_slice().contains(&lcm), "lcm({a},{b})={lcm} missing");
                }
            }
        }
    }

    #[test]
    fn full_range_has_max_entries() {
        let l = OffsetList::full_range(63);
        assert_eq!(l.len(), 63);
        assert_eq!(l.get(0), 1);
        assert_eq!(l.get(62), 63);
    }

    #[test]
    fn custom_list_with_negatives() {
        let l = OffsetList::new(vec![-2, -1, 1, 2]);
        assert_eq!(l.len(), 4);
    }

    #[test]
    #[should_panic]
    fn zero_offset_rejected() {
        OffsetList::new(vec![1, 0]);
    }

    #[test]
    #[should_panic]
    fn duplicate_offset_rejected() {
        OffsetList::new(vec![1, 2, 1]);
    }
}
