//! The level-agnostic prefetcher interface shared by BO and all
//! baselines.
//!
//! Prefetchers attach to one of three *sites* of the hierarchy
//! ([`PrefetchSite`]): the DL1 (virtual-address, PC-indexed — the §5.5
//! stride prefetcher), the private L2 (the paper's main subject) or the
//! shared L3. The L2 and L3 sites share the physical-line-address
//! [`Prefetcher`] trait: per §5.6 such prefetchers "ignore load/store PCs
//! and work on physical line addresses", observe read accesses from the
//! level above (demand misses *and* upper-level prefetches), and trigger
//! on misses and prefetched hits. Prefetch addresses never cross page
//! boundaries. The L1D site uses the separate [`L1Prefetcher`] trait,
//! because DL1 prefetchers see virtual addresses and load/store PCs and
//! train at retirement.
//!
//! `L2Prefetcher` and `L2Access` remain as thin compatibility aliases of
//! [`Prefetcher`] and [`CacheAccess`] for code written against the old
//! L2-only interface.

use bosim_types::{LineAddr, PageSize, VirtAddr};
use std::fmt;

/// A prefetcher attach point in the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetchSite {
    /// The first-level data cache (virtual addresses, PC-indexed).
    L1D,
    /// The private second-level cache (physical line addresses).
    L2,
    /// The shared third-level cache (physical line addresses).
    L3,
}

impl PrefetchSite {
    /// Every site, in hierarchy order.
    pub const ALL: [PrefetchSite; 3] = [PrefetchSite::L1D, PrefetchSite::L2, PrefetchSite::L3];

    /// The site's short label, as used in site-qualified registry names
    /// (`"l1"`, `"l2"`, `"l3"`).
    pub fn label(self) -> &'static str {
        match self {
            PrefetchSite::L1D => "l1",
            PrefetchSite::L2 => "l2",
            PrefetchSite::L3 => "l3",
        }
    }

    /// Parses a site label (`"l1"`/`"l1d"`, `"l2"`, `"l3"`,
    /// case-insensitive).
    pub fn parse(s: &str) -> Option<PrefetchSite> {
        match s.to_ascii_lowercase().as_str() {
            "l1" | "l1d" => Some(PrefetchSite::L1D),
            "l2" => Some(PrefetchSite::L2),
            "l3" => Some(PrefetchSite::L3),
            _ => None,
        }
    }
}

impl fmt::Display for PrefetchSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A runtime reconfiguration request for a prefetcher.
///
/// Directives are produced by adaptive tuning policies (the
/// `bosim-adapt` crate) at epoch boundaries, addressed to a site via
/// [`SiteDirective`], and applied through [`Prefetcher::reconfigure`]
/// (or the L1/L3 equivalents). A prefetcher honours the directives it
/// understands and rejects the rest — the caller records which ones were
/// applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneDirective {
    /// Change the prefetch degree (BO supports 1 and 2).
    SetDegree(u32),
    /// Externally gate prefetch issue on or off. Unlike the BO BADSCORE
    /// throttle this is imposed from outside (e.g. under bandwidth
    /// contention); learning machinery keeps running while gated.
    SetEnabled(bool),
    /// Replace the prefetcher with the named registry entry. This is
    /// handled by the *simulator* (which owns prefetcher construction),
    /// never by the prefetcher itself — [`Prefetcher::reconfigure`]
    /// implementations always reject it.
    SwitchPrefetcher(String),
}

impl TuneDirective {
    /// Addresses this directive to `site`.
    pub fn at(self, site: PrefetchSite) -> SiteDirective {
        SiteDirective {
            site,
            directive: self,
        }
    }
}

impl fmt::Display for TuneDirective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneDirective::SetDegree(d) => write!(f, "degree={d}"),
            TuneDirective::SetEnabled(on) => {
                write!(f, "prefetch={}", if *on { "on" } else { "off" })
            }
            TuneDirective::SwitchPrefetcher(name) => write!(f, "switch={name}"),
        }
    }
}

/// A [`TuneDirective`] addressed to one prefetch site.
///
/// Tuning policies emit these; the simulator routes each to the named
/// site's prefetcher (the per-core L1/L2 engines or the shared L3 one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteDirective {
    /// The addressed site.
    pub site: PrefetchSite,
    /// The directive itself.
    pub directive: TuneDirective,
}

impl fmt::Display for SiteDirective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.site, self.directive)
    }
}

/// A bare directive defaults to the L2 site — the paper's subject and
/// the address of every pre-existing tuning policy.
impl From<TuneDirective> for SiteDirective {
    fn from(directive: TuneDirective) -> Self {
        directive.at(PrefetchSite::L2)
    }
}

/// Outcome of a cache read access, as seen by the site's prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line missed at this level.
    Miss,
    /// The line hit and its prefetch bit was set ("prefetched hit"):
    /// treated like a miss by the prefetchers (§5.6).
    PrefetchedHit,
    /// An ordinary hit (prefetch bit clear): prefetchers ignore it.
    Hit,
}

impl AccessOutcome {
    /// Misses and prefetched hits are the "eligible" accesses that drive
    /// both prefetch issue and best-offset learning (§4.1).
    #[inline]
    pub fn is_eligible(self) -> bool {
        !matches!(self, AccessOutcome::Hit)
    }
}

/// One read access presented to a line-address prefetcher (L2 or L3
/// site).
#[derive(Debug, Clone, Copy)]
pub struct CacheAccess {
    /// Physical line address of the access.
    pub line: LineAddr,
    /// Hit/miss/prefetched-hit outcome.
    pub outcome: AccessOutcome,
}

/// Compatibility alias of [`CacheAccess`] from the L2-only interface.
pub type L2Access = CacheAccess;

/// A learning-machinery event reported by a prefetcher for
/// observability (event tracing in the simulator's `bosim-obs` layer).
///
/// Events are buffered inside the prefetcher only while a sink is
/// enabled ([`Prefetcher::set_event_sink`]) and drained by the caller
/// after each access ([`Prefetcher::drain_events`]); with the sink off
/// — the default — no allocation or bookkeeping happens at all.
#[derive(Debug, Clone, PartialEq)]
pub enum PrefetchEvent {
    /// A best-offset learning round completed (every candidate offset
    /// tested once); reports the round's current leader.
    RoundEnd {
        /// Rounds completed so far in the phase (1-based).
        round: u32,
        /// Best-scoring offset so far.
        leader_offset: i64,
        /// Its score.
        leader_score: u32,
    },
    /// A learning phase completed and a new offset was adopted, with
    /// the full score table at the decision point (§4.1/§4.3).
    PhaseEnd {
        /// The adopted offset D.
        best_offset: i64,
        /// Its winning score.
        best_score: u32,
        /// Whether prefetch stays on (best score above BADSCORE).
        prefetch_on: bool,
        /// `(offset, score)` pairs in candidate-list order, captured
        /// before the phase reset cleared them.
        scores: Vec<(i64, u32)>,
    },
}

/// A line-address prefetcher, attachable to the L2 or L3 site.
///
/// Implementations push prefetch *candidates* (already page-bounded) into
/// the caller's buffer; the surrounding simulator applies queueing,
/// deduplication against in-flight requests, and the mandatory tag checks.
pub trait Prefetcher: std::fmt::Debug {
    /// Observes a read access from the level above (demand miss path or
    /// upper-level prefetch) and appends prefetch requests to `out`.
    fn on_access(&mut self, access: CacheAccess, out: &mut Vec<LineAddr>);

    /// Observes a line being inserted into this site's cache.
    /// `prefetched` is true when the line still carries the prefetch
    /// class this site issued (it was not promoted to a demand miss in
    /// the meantime).
    fn on_fill(&mut self, line: LineAddr, prefetched: bool);

    /// Short name for reports ("BO", "SBP", "next-line", ...).
    fn name(&self) -> &'static str;

    /// The page size this prefetcher was configured for.
    fn page_size(&self) -> PageSize;

    /// Applies a runtime reconfiguration directive. Returns `true` when
    /// the directive was understood and applied, `false` when this
    /// prefetcher does not support it (the default).
    fn reconfigure(&mut self, directive: &TuneDirective) -> bool {
        let _ = directive;
        false
    }

    /// Enables or disables event buffering for observability. The
    /// default implementation ignores the request — prefetchers with no
    /// learning machinery have nothing to report.
    fn set_event_sink(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Moves any buffered [`PrefetchEvent`]s into `out`, preserving
    /// order. Called by the simulator after each access while a sink is
    /// enabled; the default implementation produces nothing.
    fn drain_events(&mut self, out: &mut Vec<PrefetchEvent>) {
        let _ = out;
    }
}

/// Compatibility alias of [`Prefetcher`] from the L2-only interface.
pub use self::Prefetcher as L2Prefetcher;

/// A DL1-site prefetcher (the L1D attach point).
///
/// Unlike the line-address [`Prefetcher`], an L1 prefetcher works on
/// virtual addresses and load/store PCs: it trains at retirement (so
/// memory accesses are seen in program order, §5.5) and proposes one
/// virtual prefetch address at DL1 access time. The surrounding core
/// keeps the §5.5 issue path: the proposal is probed against the TLB2
/// (dropped on a miss), translated, deduplicated against the DL1 and its
/// MSHRs, and issued as a [`bosim_types::ReqClass::L1Prefetch`] read.
pub trait L1Prefetcher: std::fmt::Debug + Send {
    /// Trains the prefetcher with a retired load/store, in program order.
    fn on_retire(&mut self, pc: u64, vaddr: VirtAddr);

    /// Issue check at DL1 access time (miss or prefetched hit): returns
    /// the proposed virtual prefetch address, if any.
    fn on_access(&mut self, pc: u64, vaddr: VirtAddr) -> Option<VirtAddr>;

    /// Short name for reports ("stride", ...).
    fn name(&self) -> &'static str;

    /// Applies a runtime reconfiguration directive (see
    /// [`Prefetcher::reconfigure`]). Default: unsupported.
    fn reconfigure(&mut self, directive: &TuneDirective) -> bool {
        let _ = directive;
        false
    }
}

/// The "no prefetch" configuration (Figure 5 baseline), valid at any
/// line-address site.
#[derive(Debug, Clone)]
pub struct NullPrefetcher {
    page: PageSize,
}

impl NullPrefetcher {
    /// Creates a disabled prefetcher.
    pub fn new(page: PageSize) -> Self {
        NullPrefetcher { page }
    }
}

impl Prefetcher for NullPrefetcher {
    fn on_access(&mut self, _access: CacheAccess, _out: &mut Vec<LineAddr>) {}

    fn on_fill(&mut self, _line: LineAddr, _prefetched: bool) {}

    fn name(&self) -> &'static str {
        "none"
    }

    fn page_size(&self) -> PageSize {
        self.page
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eligibility() {
        assert!(AccessOutcome::Miss.is_eligible());
        assert!(AccessOutcome::PrefetchedHit.is_eligible());
        assert!(!AccessOutcome::Hit.is_eligible());
    }

    #[test]
    fn null_prefetcher_never_prefetches() {
        let mut p = NullPrefetcher::new(PageSize::K4);
        let mut out = Vec::new();
        p.on_access(
            CacheAccess {
                line: LineAddr(42),
                outcome: AccessOutcome::Miss,
            },
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(p.name(), "none");
    }

    #[test]
    fn reconfigure_defaults_to_unsupported() {
        let mut p = NullPrefetcher::new(PageSize::K4);
        assert!(!p.reconfigure(&TuneDirective::SetDegree(2)));
        assert!(!p.reconfigure(&TuneDirective::SetEnabled(false)));
        assert!(!p.reconfigure(&TuneDirective::SwitchPrefetcher("bo".into())));
    }

    #[test]
    fn directives_render_for_telemetry() {
        assert_eq!(TuneDirective::SetDegree(2).to_string(), "degree=2");
        assert_eq!(TuneDirective::SetEnabled(false).to_string(), "prefetch=off");
        assert_eq!(
            TuneDirective::SwitchPrefetcher("none".into()).to_string(),
            "switch=none"
        );
    }

    #[test]
    fn site_directives_render_with_site_prefix() {
        assert_eq!(
            TuneDirective::SetDegree(2).at(PrefetchSite::L2).to_string(),
            "l2:degree=2"
        );
        assert_eq!(
            TuneDirective::SetEnabled(false)
                .at(PrefetchSite::L3)
                .to_string(),
            "l3:prefetch=off"
        );
        // Bare directives default to the L2 site.
        let d: SiteDirective = TuneDirective::SetDegree(1).into();
        assert_eq!(d.site, PrefetchSite::L2);
    }

    #[test]
    fn sites_parse_and_label() {
        for site in PrefetchSite::ALL {
            assert_eq!(PrefetchSite::parse(site.label()), Some(site));
        }
        assert_eq!(PrefetchSite::parse("L1D"), Some(PrefetchSite::L1D));
        assert_eq!(PrefetchSite::parse("L2"), Some(PrefetchSite::L2));
        assert_eq!(PrefetchSite::parse("dram"), None);
        assert_eq!(PrefetchSite::L3.to_string(), "l3");
    }

    #[test]
    fn l2_compat_aliases_still_name_the_generic_interface() {
        // Old-style code using the aliases keeps compiling.
        fn takes_l2(p: &mut dyn L2Prefetcher, a: L2Access) {
            let mut out = Vec::new();
            p.on_access(a, &mut out);
        }
        let mut p = NullPrefetcher::new(PageSize::K4);
        takes_l2(
            &mut p,
            L2Access {
                line: LineAddr(1),
                outcome: AccessOutcome::Miss,
            },
        );
    }
}
