//! The L2 prefetcher interface shared by BO and all baselines.
//!
//! L2 prefetchers in the paper (§5.6) "ignore load/store PCs and work on
//! physical line addresses", observe L2 read accesses from the core side
//! (L1 misses *and* L1 prefetches), and trigger on misses and prefetched
//! hits. Prefetch addresses never cross page boundaries.

use bosim_types::{LineAddr, PageSize};

/// Outcome of an L2 read access, as seen by the prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line missed in the L2.
    Miss,
    /// The line hit and its prefetch bit was set ("prefetched hit"):
    /// treated like a miss by the prefetchers (§5.6).
    PrefetchedHit,
    /// An ordinary hit (prefetch bit clear): prefetchers ignore it.
    Hit,
}

impl AccessOutcome {
    /// Misses and prefetched hits are the "eligible" accesses that drive
    /// both prefetch issue and best-offset learning (§4.1).
    #[inline]
    pub fn is_eligible(self) -> bool {
        !matches!(self, AccessOutcome::Hit)
    }
}

/// One L2 read access presented to the prefetcher.
#[derive(Debug, Clone, Copy)]
pub struct L2Access {
    /// Physical line address of the access.
    pub line: LineAddr,
    /// Hit/miss/prefetched-hit outcome.
    pub outcome: AccessOutcome,
}

/// An L2 prefetcher.
///
/// Implementations push prefetch *candidates* (already page-bounded) into
/// the caller's buffer; the surrounding simulator applies queueing,
/// deduplication against in-flight requests, and the mandatory tag checks.
pub trait L2Prefetcher: std::fmt::Debug {
    /// Observes an L2 read access from the core side (demand miss path or
    /// L1 prefetch) and appends prefetch requests to `out`.
    fn on_access(&mut self, access: L2Access, out: &mut Vec<LineAddr>);

    /// Observes a line being inserted into the L2. `prefetched` is true
    /// when the line still carries its prefetch class (it was not
    /// promoted to a demand miss in the meantime).
    fn on_fill(&mut self, line: LineAddr, prefetched: bool);

    /// Short name for reports ("BO", "SBP", "next-line", ...).
    fn name(&self) -> &'static str;

    /// The page size this prefetcher was configured for.
    fn page_size(&self) -> PageSize;
}

/// The "no L2 prefetch" configuration (Figure 5 baseline).
#[derive(Debug, Clone)]
pub struct NullPrefetcher {
    page: PageSize,
}

impl NullPrefetcher {
    /// Creates a disabled prefetcher.
    pub fn new(page: PageSize) -> Self {
        NullPrefetcher { page }
    }
}

impl L2Prefetcher for NullPrefetcher {
    fn on_access(&mut self, _access: L2Access, _out: &mut Vec<LineAddr>) {}

    fn on_fill(&mut self, _line: LineAddr, _prefetched: bool) {}

    fn name(&self) -> &'static str {
        "none"
    }

    fn page_size(&self) -> PageSize {
        self.page
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eligibility() {
        assert!(AccessOutcome::Miss.is_eligible());
        assert!(AccessOutcome::PrefetchedHit.is_eligible());
        assert!(!AccessOutcome::Hit.is_eligible());
    }

    #[test]
    fn null_prefetcher_never_prefetches() {
        let mut p = NullPrefetcher::new(PageSize::K4);
        let mut out = Vec::new();
        p.on_access(
            L2Access {
                line: LineAddr(42),
                outcome: AccessOutcome::Miss,
            },
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(p.name(), "none");
    }
}
