//! The L2 prefetcher interface shared by BO and all baselines.
//!
//! L2 prefetchers in the paper (§5.6) "ignore load/store PCs and work on
//! physical line addresses", observe L2 read accesses from the core side
//! (L1 misses *and* L1 prefetches), and trigger on misses and prefetched
//! hits. Prefetch addresses never cross page boundaries.

use bosim_types::{LineAddr, PageSize};
use std::fmt;

/// A runtime reconfiguration request for an L2 prefetcher.
///
/// Directives are produced by adaptive tuning policies (the
/// `bosim-adapt` crate) at epoch boundaries and applied through
/// [`L2Prefetcher::reconfigure`]. A prefetcher honours the directives it
/// understands and rejects the rest — the caller records which ones were
/// applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneDirective {
    /// Change the prefetch degree (BO supports 1 and 2).
    SetDegree(u32),
    /// Externally gate prefetch issue on or off. Unlike the BO BADSCORE
    /// throttle this is imposed from outside (e.g. under bandwidth
    /// contention); learning machinery keeps running while gated.
    SetEnabled(bool),
    /// Replace the prefetcher with the named registry entry. This is
    /// handled by the *simulator* (which owns prefetcher construction),
    /// never by the prefetcher itself — [`L2Prefetcher::reconfigure`]
    /// implementations always reject it.
    SwitchPrefetcher(String),
}

impl fmt::Display for TuneDirective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneDirective::SetDegree(d) => write!(f, "degree={d}"),
            TuneDirective::SetEnabled(on) => {
                write!(f, "prefetch={}", if *on { "on" } else { "off" })
            }
            TuneDirective::SwitchPrefetcher(name) => write!(f, "switch={name}"),
        }
    }
}

/// Outcome of an L2 read access, as seen by the prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line missed in the L2.
    Miss,
    /// The line hit and its prefetch bit was set ("prefetched hit"):
    /// treated like a miss by the prefetchers (§5.6).
    PrefetchedHit,
    /// An ordinary hit (prefetch bit clear): prefetchers ignore it.
    Hit,
}

impl AccessOutcome {
    /// Misses and prefetched hits are the "eligible" accesses that drive
    /// both prefetch issue and best-offset learning (§4.1).
    #[inline]
    pub fn is_eligible(self) -> bool {
        !matches!(self, AccessOutcome::Hit)
    }
}

/// One L2 read access presented to the prefetcher.
#[derive(Debug, Clone, Copy)]
pub struct L2Access {
    /// Physical line address of the access.
    pub line: LineAddr,
    /// Hit/miss/prefetched-hit outcome.
    pub outcome: AccessOutcome,
}

/// An L2 prefetcher.
///
/// Implementations push prefetch *candidates* (already page-bounded) into
/// the caller's buffer; the surrounding simulator applies queueing,
/// deduplication against in-flight requests, and the mandatory tag checks.
pub trait L2Prefetcher: std::fmt::Debug {
    /// Observes an L2 read access from the core side (demand miss path or
    /// L1 prefetch) and appends prefetch requests to `out`.
    fn on_access(&mut self, access: L2Access, out: &mut Vec<LineAddr>);

    /// Observes a line being inserted into the L2. `prefetched` is true
    /// when the line still carries its prefetch class (it was not
    /// promoted to a demand miss in the meantime).
    fn on_fill(&mut self, line: LineAddr, prefetched: bool);

    /// Short name for reports ("BO", "SBP", "next-line", ...).
    fn name(&self) -> &'static str;

    /// The page size this prefetcher was configured for.
    fn page_size(&self) -> PageSize;

    /// Applies a runtime reconfiguration directive. Returns `true` when
    /// the directive was understood and applied, `false` when this
    /// prefetcher does not support it (the default).
    fn reconfigure(&mut self, directive: &TuneDirective) -> bool {
        let _ = directive;
        false
    }
}

/// The "no L2 prefetch" configuration (Figure 5 baseline).
#[derive(Debug, Clone)]
pub struct NullPrefetcher {
    page: PageSize,
}

impl NullPrefetcher {
    /// Creates a disabled prefetcher.
    pub fn new(page: PageSize) -> Self {
        NullPrefetcher { page }
    }
}

impl L2Prefetcher for NullPrefetcher {
    fn on_access(&mut self, _access: L2Access, _out: &mut Vec<LineAddr>) {}

    fn on_fill(&mut self, _line: LineAddr, _prefetched: bool) {}

    fn name(&self) -> &'static str {
        "none"
    }

    fn page_size(&self) -> PageSize {
        self.page
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eligibility() {
        assert!(AccessOutcome::Miss.is_eligible());
        assert!(AccessOutcome::PrefetchedHit.is_eligible());
        assert!(!AccessOutcome::Hit.is_eligible());
    }

    #[test]
    fn null_prefetcher_never_prefetches() {
        let mut p = NullPrefetcher::new(PageSize::K4);
        let mut out = Vec::new();
        p.on_access(
            L2Access {
                line: LineAddr(42),
                outcome: AccessOutcome::Miss,
            },
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(p.name(), "none");
    }

    #[test]
    fn reconfigure_defaults_to_unsupported() {
        let mut p = NullPrefetcher::new(PageSize::K4);
        assert!(!p.reconfigure(&TuneDirective::SetDegree(2)));
        assert!(!p.reconfigure(&TuneDirective::SetEnabled(false)));
        assert!(!p.reconfigure(&TuneDirective::SwitchPrefetcher("bo".into())));
    }

    #[test]
    fn directives_render_for_telemetry() {
        assert_eq!(TuneDirective::SetDegree(2).to_string(), "degree=2");
        assert_eq!(TuneDirective::SetEnabled(false).to_string(), "prefetch=off");
        assert_eq!(
            TuneDirective::SwitchPrefetcher("none".into()).to_string(),
            "switch=none"
        );
    }
}
