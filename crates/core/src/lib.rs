//! # best-offset — Best-Offset Hardware Prefetching
//!
//! A faithful implementation of the Best-Offset (BO) prefetcher from
//! Pierre Michaud, *Best-Offset Hardware Prefetching*, HPCA 2016 — the
//! prefetcher that won the 2015 Data Prefetching Championship.
//!
//! BO is an *offset prefetcher*: when line `X` is requested at the L2, it
//! prefetches `X + D`. Unlike the Sandbox prefetcher's coverage-only
//! scoring, BO selects `D` with a learning mechanism that accounts for
//! *prefetch timeliness*: an offset `d` scores only when `X − d` was the
//! base of a prefetch that has already **completed** — i.e. a prefetch
//! issued with offset `d` would have been timely.
//!
//! This crate contains the hardware-faithful algorithm pieces:
//!
//! * [`BestOffsetPrefetcher`] with [`BoConfig`] (Table 2 defaults),
//! * the [`RrTable`] of recently completed prefetch bases (§4.1, §4.4),
//! * the 5-smooth [`OffsetList`] (§4.2),
//! * the level-agnostic [`Prefetcher`] trait (with the [`PrefetchSite`]
//!   attach-point enum and the DL1-side [`L1Prefetcher`] trait)
//!   implemented by BO and by every baseline prefetcher in
//!   `bosim-baselines`; `L2Prefetcher`/`L2Access` remain as thin
//!   compatibility aliases.
//!
//! # Examples
//!
//! ```
//! use best_offset::{BestOffsetPrefetcher, L2Prefetcher, L2Access, AccessOutcome};
//! use bosim_types::{LineAddr, PageSize};
//!
//! let mut bo = BestOffsetPrefetcher::with_defaults(PageSize::K4);
//! let mut requests = Vec::new();
//! bo.on_access(
//!     L2Access { line: LineAddr(8), outcome: AccessOutcome::Miss },
//!     &mut requests,
//! );
//! // Fresh prefetcher starts with D = 1 (next-line behaviour) and learns
//! // a better offset from the access stream.
//! assert_eq!(requests, vec![LineAddr(9)]);
//! ```

#![warn(missing_docs)]

mod bo;
mod iface;
mod offsets;
mod rr_table;

pub use bo::{BestOffsetPrefetcher, BoConfig, BoConfigError, BoStats};
pub use iface::{
    AccessOutcome, CacheAccess, L1Prefetcher, L2Access, L2Prefetcher, NullPrefetcher,
    PrefetchEvent, PrefetchSite, Prefetcher, SiteDirective, TuneDirective,
};
pub use offsets::OffsetList;
pub use rr_table::RrTable;
