//! # bosim — the evaluation platform of *Best-Offset Hardware Prefetching*
//!
//! A trace-driven, cycle-approximate multi-core simulator reproducing the
//! baseline micro-architecture of Michaud's HPCA 2016 paper (§5, Table 1):
//! out-of-order cores with TAGE/ITTAGE and two-level TLBs, private 512KB
//! L2s with pluggable prefetchers, a shared 8MB L3 with the 5P
//! replacement policy, MSHR-less fill queues with late-prefetch promotion
//! (§5.4), and a dual-channel DDR3 memory system with FR-FCFS scheduling
//! and fairness counters (§5.3).
//!
//! # Examples
//!
//! ```no_run
//! use bosim::{SimConfig, L2PrefetcherKind, System};
//! use bosim_trace::suite;
//!
//! let spec = suite::benchmark("462").expect("libquantum-like");
//! let cfg = SimConfig::default()
//!     .with_prefetcher(L2PrefetcherKind::Bo(Default::default()));
//! let result = System::new(&cfg, &spec).run();
//! println!("{}: IPC {:.3}", result.benchmark, result.ipc());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod runner;
mod system;
mod uncore;

pub use config::{default_instructions, default_warmup, L2PrefetcherKind, SimConfig};
pub use runner::{default_threads, run_job, run_jobs, speedups, Job};
pub use system::{SimResult, System};
pub use uncore::{Uncore, UncoreStats};
