//! # bosim — the evaluation platform of *Best-Offset Hardware Prefetching*
//!
//! A trace-driven, cycle-approximate multi-core simulator reproducing the
//! baseline micro-architecture of Michaud's HPCA 2016 paper (§5, Table 1):
//! out-of-order cores with TAGE/ITTAGE and two-level TLBs, private 512KB
//! L2s with pluggable prefetchers, a shared 8MB L3 with the 5P
//! replacement policy, MSHR-less fill queues with late-prefetch promotion
//! (§5.4), and a dual-channel DDR3 memory system with FR-FCFS scheduling
//! and fairness counters (§5.3).
//!
//! Machine configurations are built with the validating
//! [`SimConfig::builder`]; every prefetch *site* of the hierarchy (L1D /
//! L2 / L3, see [`PrefetchSite`]) is *open*: anything implementing
//! [`PrefetcherSpec`] plugs in, and the built-in specs are available
//! through the [`prefetchers`] constructors or by (optionally
//! site-qualified, e.g. `"l1:stride"`, `"l3:next-line"`) name from the
//! [`registry`].
//!
//! # Examples
//!
//! ```no_run
//! use bosim::{prefetchers, SimConfig, System};
//! use bosim_trace::suite;
//!
//! let spec = suite::benchmark("462").expect("libquantum-like");
//! let cfg = SimConfig::builder()
//!     .prefetcher(prefetchers::bo_default())
//!     .build()
//!     .expect("Table 1 defaults with BO are valid");
//! let result = System::new(&cfg, &spec).run();
//! println!("{}: IPC {:.3}", result.benchmark, result.ipc());
//! ```
//!
//! Prefetchers are registered from outside this crate by implementing
//! [`PrefetcherSpec`] and calling [`registry()`]`.register(..)` — see the
//! [`registry`] module docs for a complete third-party example.

#![warn(missing_docs)]

mod barrier;
mod config;
mod registry;
mod runner;
mod spec;
mod system;
mod uncore;
mod wheel;

pub use config::{
    default_instructions, default_warmup, ConfigError, SimConfig, SimConfigBuilder, MAX_CORES,
};
pub use registry::{
    registry, PrefetcherRegistry, PrefetcherResolver, ResolveError, ResolverOutcome,
};
pub use runner::{default_threads, run_job, run_jobs, speedups, Job, RunnerError};
pub use spec::{
    prefetchers, AdaptiveSpec, AmpmSpec, BoSpec, FixedOffsetSpec, NextLineSpec, NoPrefetchSpec,
    PrefetcherHandle, PrefetcherSpec, SbpSpec, StrideSpec, LINE_ADDRESS_SITES,
};
pub use system::{SimResult, System};
pub use uncore::{PrefetchTelemetry, Uncore, UncoreStats};

pub use best_offset::{PrefetchSite, SiteDirective, TuneDirective};

/// The adaptive-control crate, re-exported for policy construction
/// (`bosim::adapt::policies::tournament([..])`).
pub use bosim_adapt as adapt;
pub use bosim_adapt::AdaptConfig;
