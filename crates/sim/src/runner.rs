//! Experiment runner: maps (benchmark × configuration) grids onto worker
//! threads and computes paper-style speedup summaries.
//!
//! All entry points return [`RunnerError`] instead of panicking: a
//! panicking simulation (e.g. a stall assertion) is caught on the worker
//! thread and reported with the benchmark and configuration that failed.

use crate::config::SimConfig;
use crate::system::{SimResult, System};
use bosim_trace::BenchmarkSpec;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One cell of an experiment grid.
#[derive(Debug, Clone)]
pub struct Job {
    /// The benchmark to run on core 0.
    pub bench: BenchmarkSpec,
    /// The machine configuration.
    pub config: SimConfig,
}

/// A failure while running a job grid or pairing its results.
#[derive(Debug, Clone)]
pub enum RunnerError {
    /// A worker panicked while simulating a job.
    JobFailed {
        /// The benchmark whose simulation failed.
        benchmark: String,
        /// The configuration label of the failing job.
        config: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A job produced no result (internal scheduling error).
    MissingResult {
        /// The benchmark whose result is missing.
        benchmark: String,
    },
    /// Speedup pairing was given result sets of different lengths.
    LengthMismatch {
        /// Subject result count.
        subject: usize,
        /// Baseline result count.
        baseline: usize,
    },
    /// Speedup pairing found different benchmarks at the same position.
    BenchmarkMismatch {
        /// Position in the result sets.
        index: usize,
        /// Benchmark in the subject set.
        subject: String,
        /// Benchmark in the baseline set.
        baseline: String,
    },
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::JobFailed {
                benchmark,
                config,
                message,
            } => write!(f, "job {benchmark} [{config}] panicked: {message}"),
            RunnerError::MissingResult { benchmark } => {
                write!(f, "job {benchmark} produced no result")
            }
            RunnerError::LengthMismatch { subject, baseline } => write!(
                f,
                "cannot pair {subject} subject results with {baseline} baseline results"
            ),
            RunnerError::BenchmarkMismatch {
                index,
                subject,
                baseline,
            } => write!(
                f,
                "result sets out of order at {index}: subject {subject} vs baseline {baseline}"
            ),
        }
    }
}

impl std::error::Error for RunnerError {}

/// Runs one job to completion.
pub fn run_job(job: &Job) -> SimResult {
    System::new(&job.config, &job.bench).run()
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs all jobs, fanning out over `threads` workers (scoped std
/// threads), preserving input order in the output.
///
/// # Errors
///
/// Returns [`RunnerError::JobFailed`] naming the benchmark whose
/// simulation panicked; remaining jobs are still drained so worker
/// threads shut down cleanly.
pub fn run_jobs(jobs: &[Job], threads: usize) -> Result<Vec<SimResult>, RunnerError> {
    let threads = threads.max(1);
    let slots: Vec<Mutex<Option<Result<SimResult, String>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // bosim-lint: allow(D004, whole-run worker pool: each job is an independent simulation and results are collected by job index, so host scheduling cannot reach any SimResult)
    std::thread::scope(|s| {
        for _ in 0..threads.min(jobs.len().max(1)) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let res =
                    catch_unwind(AssertUnwindSafe(|| run_job(&jobs[i]))).map_err(panic_message);
                *slots[i].lock().expect("slot poisoned") = Some(res); // bosim-lint: allow(P002, slot mutexes are uncontended; workers cannot panic while holding one)
            });
        }
    });
    let mut out = Vec::with_capacity(jobs.len());
    for (job, slot) in jobs.iter().zip(slots) {
        // bosim-lint: allow(P002, slot mutexes are uncontended; workers cannot panic while holding one)
        match slot.into_inner().expect("slot poisoned") {
            Some(Ok(res)) => out.push(res),
            Some(Err(message)) => {
                return Err(RunnerError::JobFailed {
                    benchmark: job.bench.name.clone(),
                    config: job.config.label(),
                    message,
                })
            }
            None => {
                return Err(RunnerError::MissingResult {
                    benchmark: job.bench.name.clone(),
                })
            }
        }
    }
    Ok(out)
}

/// Default worker-thread count: all available cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
}

/// Pairs each subject result with its baseline by benchmark name and
/// returns `(benchmark, speedup)` rows.
///
/// # Errors
///
/// Returns a [`RunnerError`] if the two slices do not cover the same
/// benchmarks in the same order.
pub fn speedups(
    subject: &[SimResult],
    baseline: &[SimResult],
) -> Result<Vec<(String, f64)>, RunnerError> {
    if subject.len() != baseline.len() {
        return Err(RunnerError::LengthMismatch {
            subject: subject.len(),
            baseline: baseline.len(),
        });
    }
    subject
        .iter()
        .zip(baseline)
        .enumerate()
        .map(|(index, (s, b))| {
            if s.benchmark != b.benchmark {
                return Err(RunnerError::BenchmarkMismatch {
                    index,
                    subject: s.benchmark.clone(),
                    baseline: b.benchmark.clone(),
                });
            }
            Ok((s.benchmark.clone(), s.ipc() / b.ipc()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bosim_trace::suite;

    fn tiny_cfg() -> SimConfig {
        SimConfig {
            warmup_instructions: 5_000,
            measure_instructions: 20_000,
            ..Default::default()
        }
    }

    #[test]
    fn parallel_runner_matches_serial() {
        let jobs: Vec<Job> = ["456", "444"]
            .iter()
            .map(|id| Job {
                bench: suite::benchmark(id).expect("exists"),
                config: tiny_cfg(),
            })
            .collect();
        let serial: Vec<SimResult> = jobs.iter().map(run_job).collect();
        let parallel = run_jobs(&jobs, 2).expect("jobs succeed");
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.benchmark, b.benchmark);
            assert_eq!(a.cycles, b.cycles, "determinism violated");
            assert_eq!(a.instructions, b.instructions);
        }
    }

    #[test]
    fn speedups_pair_by_name() {
        let jobs: Vec<Job> = vec![Job {
            bench: suite::benchmark("456").expect("exists"),
            config: tiny_cfg(),
        }];
        let r = run_jobs(&jobs, 1).expect("job succeeds");
        let sp = speedups(&r, &r).expect("same set pairs");
        assert_eq!(sp.len(), 1);
        assert!((sp[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worker_panic_names_the_failing_benchmark() {
        // active_cores = 0 trips the System::new assertion; the runner
        // must surface it as an error naming the job, not a panic.
        let mut bad = tiny_cfg();
        bad.active_cores = 0;
        let jobs = vec![
            Job {
                bench: suite::benchmark("456").expect("exists"),
                config: tiny_cfg(),
            },
            Job {
                bench: suite::benchmark("444").expect("exists"),
                config: bad,
            },
        ];
        let err = run_jobs(&jobs, 2).expect_err("bad job must fail");
        match err {
            RunnerError::JobFailed {
                benchmark, message, ..
            } => {
                assert_eq!(benchmark, "444.namd-like");
                assert!(message.contains("active_cores"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn speedup_pairing_errors_are_typed() {
        let jobs = vec![Job {
            bench: suite::benchmark("456").expect("exists"),
            config: tiny_cfg(),
        }];
        let r = run_jobs(&jobs, 1).expect("job succeeds");
        assert!(matches!(
            speedups(&r, &[]),
            Err(RunnerError::LengthMismatch { .. })
        ));
    }
}
