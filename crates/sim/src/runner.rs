//! Experiment runner: maps (benchmark × configuration) grids onto worker
//! threads and computes paper-style speedup summaries.

use crate::config::SimConfig;
use crate::system::{SimResult, System};
use bosim_trace::BenchmarkSpec;
use std::sync::Mutex;

/// One cell of an experiment grid.
#[derive(Debug, Clone)]
pub struct Job {
    /// The benchmark to run on core 0.
    pub bench: BenchmarkSpec,
    /// The machine configuration.
    pub config: SimConfig,
}

/// Runs one job to completion.
pub fn run_job(job: &Job) -> SimResult {
    System::new(&job.config, &job.bench).run()
}

/// Runs all jobs, fanning out over `threads` workers (crossbeam scoped
/// threads), preserving input order in the output.
///
/// # Panics
///
/// Panics if any job panics (simulation stall assertions propagate).
pub fn run_jobs(jobs: &[Job], threads: usize) -> Vec<SimResult> {
    let threads = threads.max(1);
    let results: Vec<Mutex<Option<SimResult>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads.min(jobs.len().max(1)) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let res = run_job(&jobs[i]);
                *results[i].lock().expect("poisoned") = Some(res);
            });
        }
    })
    .expect("worker panicked");
    results
        .into_iter()
        .map(|m| m.into_inner().expect("poisoned").expect("job completed"))
        .collect()
}

/// Default worker-thread count: all available cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
}

/// Pairs each subject result with its baseline by benchmark name and
/// returns `(benchmark, speedup)` rows.
///
/// # Panics
///
/// Panics if the two slices do not cover the same benchmarks in the same
/// order.
pub fn speedups(subject: &[SimResult], baseline: &[SimResult]) -> Vec<(String, f64)> {
    assert_eq!(subject.len(), baseline.len(), "mismatched result sets");
    subject
        .iter()
        .zip(baseline)
        .map(|(s, b)| {
            assert_eq!(s.benchmark, b.benchmark, "result sets out of order");
            (s.benchmark.clone(), s.ipc() / b.ipc())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bosim_trace::suite;

    fn tiny_cfg() -> SimConfig {
        SimConfig {
            warmup_instructions: 5_000,
            measure_instructions: 20_000,
            ..Default::default()
        }
    }

    #[test]
    fn parallel_runner_matches_serial() {
        let jobs: Vec<Job> = ["456", "444"]
            .iter()
            .map(|id| Job {
                bench: suite::benchmark(id).expect("exists"),
                config: tiny_cfg(),
            })
            .collect();
        let serial: Vec<SimResult> = jobs.iter().map(run_job).collect();
        let parallel = run_jobs(&jobs, 2);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.benchmark, b.benchmark);
            assert_eq!(a.cycles, b.cycles, "determinism violated");
            assert_eq!(a.instructions, b.instructions);
        }
    }

    #[test]
    fn speedups_pair_by_name() {
        let jobs: Vec<Job> = vec![Job {
            bench: suite::benchmark("456").expect("exists"),
            config: tiny_cfg(),
        }];
        let r = run_jobs(&jobs, 1);
        let sp = speedups(&r, &r);
        assert_eq!(sp.len(), 1);
        assert!((sp[0].1 - 1.0).abs() < 1e-12);
    }
}
