//! By-name discovery of prefetcher specs.
//!
//! The registry maps prefetcher names (as used in reports and on the
//! `BOSIM_PREFETCHER`-style command lines of the harness binaries) to
//! [`PrefetcherHandle`]s. The six built-in prefetchers are pre-registered;
//! third-party crates add their own with [`PrefetcherRegistry::register`]
//! — no change to `bosim-sim` required:
//!
//! ```
//! use bosim::{registry, PrefetcherHandle, PrefetcherSpec, SimConfig};
//! use best_offset::{L2Prefetcher, NullPrefetcher};
//!
//! #[derive(Debug)]
//! struct MySpec;
//! impl PrefetcherSpec for MySpec {
//!     fn name(&self) -> String { "mine".into() }
//!     fn build(&self, cfg: &SimConfig) -> Box<dyn L2Prefetcher> {
//!         Box::new(NullPrefetcher::new(cfg.page))
//!     }
//! }
//!
//! registry().register("mine", PrefetcherHandle::new(MySpec));
//! assert!(registry().lookup("mine").is_some());
//! ```
//!
//! Parameterised families (like the fixed-offset prefetchers) register a
//! *resolver* instead of a single name: a function that parses names such
//! as `"offset-12"` into a handle.

use crate::spec::{prefetchers, PrefetcherHandle};
use std::sync::{Arc, Mutex, OnceLock};

/// A name-pattern resolver: returns a handle when it recognises `name`.
pub type PrefetcherResolver = Arc<dyn Fn(&str) -> Option<PrefetcherHandle> + Send + Sync>;

#[derive(Default)]
struct Entries {
    named: Vec<(String, PrefetcherHandle)>,
    resolvers: Vec<(String, PrefetcherResolver)>,
}

/// The open prefetcher registry (see the [module docs](self)).
///
/// Lookups are case-insensitive. Exact names take precedence over
/// resolvers; within each group, the most recent registration wins, so a
/// re-registration overrides an earlier one.
pub struct PrefetcherRegistry {
    entries: Mutex<Entries>,
}

impl PrefetcherRegistry {
    fn with_builtins() -> Self {
        let reg = PrefetcherRegistry {
            entries: Mutex::new(Entries::default()),
        };
        reg.register("none", prefetchers::none());
        reg.register("no-prefetch", prefetchers::none());
        reg.register("next-line", prefetchers::next_line());
        reg.register("offset-1", prefetchers::fixed(1));
        reg.register("bo", prefetchers::bo_default());
        reg.register("sbp", prefetchers::sbp_default());
        reg.register("ampm", prefetchers::ampm_default());
        reg.register_resolver(
            "offset-<D>",
            Arc::new(|name| {
                let d: i64 = name.strip_prefix("offset-")?.parse().ok()?;
                (d != 0).then(|| prefetchers::fixed(d))
            }),
        );
        reg
    }

    /// Registers `handle` under `name` (case-insensitive). A later
    /// registration under the same name replaces the earlier one.
    pub fn register(&self, name: &str, handle: PrefetcherHandle) {
        let key = name.to_ascii_lowercase();
        let mut e = self.entries.lock().expect("registry poisoned");
        e.named.retain(|(n, _)| *n != key);
        e.named.push((key, handle));
    }

    /// Registers a resolver for a parameterised name family. `pattern` is
    /// purely documentation (shown by [`names`](Self::names)).
    pub fn register_resolver(&self, pattern: &str, resolver: PrefetcherResolver) {
        let mut e = self.entries.lock().expect("registry poisoned");
        e.resolvers.push((pattern.to_string(), resolver));
    }

    /// Finds a handle by name: exact (case-insensitive) matches first,
    /// then resolvers in reverse registration order.
    ///
    /// Resolvers are invoked *outside* the registry lock, so a resolver
    /// may itself call back into the registry (e.g. an alias family that
    /// delegates to other names), and a panicking resolver cannot poison
    /// the registry.
    pub fn lookup(&self, name: &str) -> Option<PrefetcherHandle> {
        let key = name.trim().to_ascii_lowercase();
        let resolvers: Vec<PrefetcherResolver> = {
            let e = self.entries.lock().expect("registry poisoned");
            if let Some((_, h)) = e.named.iter().rev().find(|(n, _)| *n == key) {
                return Some(h.clone());
            }
            e.resolvers.iter().rev().map(|(_, r)| r.clone()).collect()
        };
        resolvers.iter().find_map(|r| r(&key))
    }

    /// All registered names and resolver patterns, registration order.
    pub fn names(&self) -> Vec<String> {
        let e = self.entries.lock().expect("registry poisoned");
        e.named
            .iter()
            .map(|(n, _)| n.clone())
            .chain(e.resolvers.iter().map(|(p, _)| p.clone()))
            .collect()
    }
}

/// The process-wide registry, created on first use with the six built-in
/// prefetchers pre-registered.
pub fn registry() -> &'static PrefetcherRegistry {
    static REGISTRY: OnceLock<PrefetcherRegistry> = OnceLock::new();
    REGISTRY.get_or_init(PrefetcherRegistry::with_builtins)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_resolve_by_name() {
        for (name, label) in [
            ("none", "no-prefetch"),
            ("no-prefetch", "no-prefetch"),
            ("next-line", "next-line"),
            ("bo", "BO"),
            ("BO", "BO"),
            ("sbp", "SBP"),
            ("ampm", "AMPM"),
            ("offset-1", "offset-1"),
        ] {
            let h = registry().lookup(name).unwrap_or_else(|| panic!("{name}"));
            assert_eq!(h.name(), label);
        }
    }

    #[test]
    fn offset_family_resolves_parameterised_names() {
        assert_eq!(
            registry().lookup("offset-42").expect("family").name(),
            "offset-42"
        );
        assert_eq!(
            registry().lookup("offset--3").expect("negative").name(),
            "offset--3"
        );
        assert!(
            registry().lookup("offset-0").is_none(),
            "offset 0 is not a prefetch"
        );
        assert!(registry().lookup("offset-x").is_none());
    }

    #[test]
    fn unknown_names_miss() {
        assert!(registry().lookup("definitely-not-registered").is_none());
    }

    #[test]
    fn resolvers_may_reenter_the_registry() {
        // An alias family that delegates back into the same registry:
        // must not deadlock (resolvers run outside the lock).
        let reg = Arc::new(PrefetcherRegistry::with_builtins());
        let inner = reg.clone();
        reg.register_resolver(
            "alias-<name>",
            Arc::new(move |name| inner.lookup(name.strip_prefix("alias-")?)),
        );
        assert_eq!(reg.lookup("alias-bo").expect("delegates").name(), "BO");
        assert!(reg.lookup("alias-nope").is_none());
    }

    #[test]
    fn re_registration_replaces() {
        let reg = PrefetcherRegistry::with_builtins();
        reg.register("bo", prefetchers::none());
        assert_eq!(
            reg.lookup("bo").expect("still present").name(),
            "no-prefetch"
        );
        let names = reg.names();
        assert_eq!(names.iter().filter(|n| *n == "bo").count(), 1);
    }
}
