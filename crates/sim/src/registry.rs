//! By-name discovery of prefetcher specs.
//!
//! The registry maps prefetcher names (as used in reports and on the
//! `BOSIM_PREFETCHER`-style command lines of the harness binaries) to
//! [`PrefetcherHandle`]s. The six built-in prefetchers are pre-registered;
//! third-party crates add their own with [`PrefetcherRegistry::register`]
//! — no change to `bosim-sim` required:
//!
//! ```
//! use bosim::{registry, PrefetcherHandle, PrefetcherSpec, SimConfig};
//! use best_offset::{L2Prefetcher, NullPrefetcher};
//!
//! #[derive(Debug)]
//! struct MySpec;
//! impl PrefetcherSpec for MySpec {
//!     fn name(&self) -> String { "mine".into() }
//!     fn build(&self, cfg: &SimConfig) -> Box<dyn L2Prefetcher> {
//!         Box::new(NullPrefetcher::new(cfg.page))
//!     }
//! }
//!
//! registry().register("mine", PrefetcherHandle::new(MySpec));
//! assert!(registry().lookup("mine").is_some());
//! ```
//!
//! Parameterised families (like the fixed-offset prefetchers) register a
//! *resolver* instead of a single name: a function that parses names such
//! as `"offset-12"` into a handle. A resolver distinguishes "not my
//! family" from "my family, but malformed" ([`ResolverOutcome`]), so
//! [`PrefetcherRegistry::resolve`] can report *why* `"offset-0"` or
//! `"offset-banana"` is rejected instead of a bare miss.

use crate::spec::{prefetchers, AdaptiveSpec, PrefetcherHandle};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// A resolver's verdict on one name (see [`PrefetcherResolver`]).
#[derive(Debug)]
pub enum ResolverOutcome {
    /// The name does not belong to this resolver's family.
    NotMine,
    /// The name resolved to a prefetcher.
    Resolved(PrefetcherHandle),
    /// The name matches this family but is malformed; the string says
    /// how (`"offset must be a non-zero integer"`, ...).
    Malformed(String),
}

/// A name-pattern resolver: classifies `name` as outside its family,
/// resolved, or malformed.
pub type PrefetcherResolver = Arc<dyn Fn(&str) -> ResolverOutcome + Send + Sync>;

/// Why a name failed to resolve (returned by
/// [`PrefetcherRegistry::resolve`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// No exact name matched and no resolver family claimed the name.
    Unknown {
        /// The unresolved name.
        name: String,
    },
    /// A resolver family claimed the name but rejected its parameters.
    Malformed {
        /// The rejected name.
        name: String,
        /// The claiming family's pattern (e.g. `"offset-<D>"`).
        family: String,
        /// What is wrong with the parameters.
        reason: String,
    },
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::Unknown { name } => {
                write!(
                    f,
                    "unknown prefetcher {name:?} (try `names()` for the list)"
                )
            }
            ResolveError::Malformed {
                name,
                family,
                reason,
            } => write!(f, "malformed prefetcher spec {name:?} ({family}): {reason}"),
        }
    }
}

impl std::error::Error for ResolveError {}

#[derive(Default)]
struct Entries {
    named: Vec<(String, PrefetcherHandle)>,
    resolvers: Vec<(String, PrefetcherResolver)>,
}

/// The open prefetcher registry (see the [module docs](self)).
///
/// Lookups are case-insensitive. Exact names take precedence over
/// resolvers; within each group, the most recent registration wins, so a
/// re-registration overrides an earlier one.
pub struct PrefetcherRegistry {
    entries: Mutex<Entries>,
}

impl PrefetcherRegistry {
    fn with_builtins() -> Self {
        let reg = PrefetcherRegistry {
            entries: Mutex::new(Entries::default()),
        };
        reg.register("none", prefetchers::none());
        reg.register("no-prefetch", prefetchers::none());
        reg.register("next-line", prefetchers::next_line());
        reg.register("offset-1", prefetchers::fixed(1));
        reg.register("bo", prefetchers::bo_default());
        reg.register("sbp", prefetchers::sbp_default());
        reg.register("ampm", prefetchers::ampm_default());
        reg.register_resolver(
            "offset-<D>",
            Arc::new(|name| {
                let Some(spec) = name.strip_prefix("offset-") else {
                    return ResolverOutcome::NotMine;
                };
                match spec.parse::<i64>() {
                    Ok(0) => ResolverOutcome::Malformed("offset 0 is not a prefetch".into()),
                    Ok(d) => ResolverOutcome::Resolved(prefetchers::fixed(d)),
                    Err(_) => ResolverOutcome::Malformed(format!(
                        "offset must be a non-zero integer in the i64 range, got {spec:?}"
                    )),
                }
            }),
        );
        reg
    }

    /// Registers `handle` under `name` (case-insensitive). A later
    /// registration under the same name replaces the earlier one.
    pub fn register(&self, name: &str, handle: PrefetcherHandle) {
        let key = name.to_ascii_lowercase();
        let mut e = self.entries.lock().expect("registry poisoned");
        e.named.retain(|(n, _)| *n != key);
        e.named.push((key, handle));
    }

    /// Registers a resolver for a parameterised name family. `pattern` is
    /// purely documentation (shown by [`names`](Self::names)).
    pub fn register_resolver(&self, pattern: &str, resolver: PrefetcherResolver) {
        let mut e = self.entries.lock().expect("registry poisoned");
        e.resolvers.push((pattern.to_string(), resolver));
    }

    /// Finds a handle by name: exact (case-insensitive) matches first,
    /// then resolvers in reverse registration order. `None` for both
    /// unknown and malformed names — use [`resolve`](Self::resolve) when
    /// the caller needs to report *why*.
    pub fn lookup(&self, name: &str) -> Option<PrefetcherHandle> {
        self.resolve(name).ok()
    }

    /// Like [`lookup`](Self::lookup), but distinguishes a name no family
    /// claims ([`ResolveError::Unknown`]) from one a family claims and
    /// rejects — `offset-0`, `offset-banana`, an offset overflowing
    /// `i64` — which yields a [`ResolveError::Malformed`] naming the
    /// family and the violated constraint.
    ///
    /// Resolvers are invoked *outside* the registry lock, so a resolver
    /// may itself call back into the registry (e.g. an alias family that
    /// delegates to other names), and a panicking resolver cannot poison
    /// the registry.
    ///
    /// # Errors
    ///
    /// Returns why the name failed to resolve.
    pub fn resolve(&self, name: &str) -> Result<PrefetcherHandle, ResolveError> {
        let key = name.trim().to_ascii_lowercase();
        let resolvers: Vec<(String, PrefetcherResolver)> = {
            let e = self.entries.lock().expect("registry poisoned");
            if let Some((_, h)) = e.named.iter().rev().find(|(n, _)| *n == key) {
                return Ok(h.clone());
            }
            e.resolvers.iter().rev().cloned().collect()
        };
        for (family, r) in &resolvers {
            match r(&key) {
                ResolverOutcome::NotMine => continue,
                ResolverOutcome::Resolved(h) => return Ok(h),
                ResolverOutcome::Malformed(reason) => {
                    return Err(ResolveError::Malformed {
                        name: key,
                        family: family.clone(),
                        reason,
                    })
                }
            }
        }
        Err(ResolveError::Unknown { name: key })
    }

    /// All registered names and resolver patterns, registration order.
    pub fn names(&self) -> Vec<String> {
        let e = self.entries.lock().expect("registry poisoned");
        e.named
            .iter()
            .map(|(n, _)| n.clone())
            .chain(e.resolvers.iter().map(|(p, _)| p.clone()))
            .collect()
    }
}

/// The process-wide registry, created on first use with the six built-in
/// prefetchers pre-registered.
///
/// The global instance additionally carries the `adaptive-<name>`
/// family: `adaptive-bo` resolves to BO wrapped in
/// [`AdaptiveSpec`](crate::AdaptiveSpec), whose validation requires an
/// adaptive-control configuration on the run. The family delegates the
/// base name back into this registry, so third-party registrations get
/// adaptive aliases for free.
pub fn registry() -> &'static PrefetcherRegistry {
    static REGISTRY: OnceLock<PrefetcherRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let reg = PrefetcherRegistry::with_builtins();
        reg.register_resolver(
            "adaptive-<name>",
            Arc::new(|name| {
                let Some(base) = name.strip_prefix("adaptive-") else {
                    return ResolverOutcome::NotMine;
                };
                // Re-entrant: resolvers run outside the lock, and the
                // OnceLock is initialised by the time any lookup runs.
                match registry().resolve(base) {
                    Ok(inner) => {
                        ResolverOutcome::Resolved(PrefetcherHandle::new(AdaptiveSpec { inner }))
                    }
                    Err(e) => ResolverOutcome::Malformed(format!("base name: {e}")),
                }
            }),
        );
        reg
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_resolve_by_name() {
        for (name, label) in [
            ("none", "no-prefetch"),
            ("no-prefetch", "no-prefetch"),
            ("next-line", "next-line"),
            ("bo", "BO"),
            ("BO", "BO"),
            ("sbp", "SBP"),
            ("ampm", "AMPM"),
            ("offset-1", "offset-1"),
        ] {
            let h = registry().lookup(name).unwrap_or_else(|| panic!("{name}"));
            assert_eq!(h.name(), label);
        }
    }

    #[test]
    fn offset_family_resolves_parameterised_names() {
        assert_eq!(
            registry().lookup("offset-42").expect("family").name(),
            "offset-42"
        );
        assert_eq!(
            registry().lookup("offset--3").expect("negative").name(),
            "offset--3"
        );
        assert!(
            registry().lookup("offset-0").is_none(),
            "offset 0 is not a prefetch"
        );
        assert!(registry().lookup("offset-x").is_none());
    }

    #[test]
    fn unknown_names_miss() {
        assert!(registry().lookup("definitely-not-registered").is_none());
    }

    #[test]
    fn resolvers_may_reenter_the_registry() {
        // An alias family that delegates back into the same registry:
        // must not deadlock (resolvers run outside the lock).
        let reg = Arc::new(PrefetcherRegistry::with_builtins());
        let inner = reg.clone();
        reg.register_resolver(
            "alias-<name>",
            Arc::new(move |name| match name.strip_prefix("alias-") {
                None => ResolverOutcome::NotMine,
                Some(base) => match inner.lookup(base) {
                    Some(h) => ResolverOutcome::Resolved(h),
                    None => ResolverOutcome::Malformed(format!("unknown base {base:?}")),
                },
            }),
        );
        assert_eq!(reg.lookup("alias-bo").expect("delegates").name(), "BO");
        assert!(reg.lookup("alias-nope").is_none());
    }

    #[test]
    fn malformed_offset_specs_are_described() {
        let reg = PrefetcherRegistry::with_builtins();
        for (name, needle) in [
            ("offset-0", "offset 0 is not a prefetch"),
            ("offset-x", "non-zero integer"),
            ("offset-12banana", "non-zero integer"),
            // i64 overflow: parse fails, reported as malformed rather
            // than silently missing.
            ("offset-99999999999999999999", "i64 range"),
        ] {
            let err = reg.resolve(name).unwrap_err();
            match &err {
                ResolveError::Malformed { family, reason, .. } => {
                    assert_eq!(family, "offset-<D>");
                    assert!(reason.contains(needle), "{name}: {reason}");
                }
                other => panic!("{name}: expected Malformed, got {other:?}"),
            }
            assert!(err.to_string().contains("offset-<D>"));
        }
        // Unknown names stay Unknown — no family claims them.
        assert_eq!(
            reg.resolve("no-such-prefetcher").unwrap_err(),
            ResolveError::Unknown {
                name: "no-such-prefetcher".into()
            }
        );
    }

    #[test]
    fn adaptive_family_wraps_base_names() {
        let h = registry().lookup("adaptive-bo").expect("family resolves");
        assert_eq!(h.name(), "adaptive-BO");
        let err = registry().resolve("adaptive-nope").unwrap_err();
        assert!(err.to_string().contains("base name"), "{err}");
    }

    #[test]
    fn re_registration_replaces() {
        let reg = PrefetcherRegistry::with_builtins();
        reg.register("bo", prefetchers::none());
        assert_eq!(
            reg.lookup("bo").expect("still present").name(),
            "no-prefetch"
        );
        let names = reg.names();
        assert_eq!(names.iter().filter(|n| *n == "bo").count(), 1);
    }
}
