//! By-name discovery of prefetcher specs.
//!
//! The registry maps prefetcher names (as used in reports and on the
//! `BOSIM_PREFETCHER`-style command lines of the harness binaries) to
//! [`PrefetcherHandle`]s. The built-in prefetchers are pre-registered;
//! third-party crates add their own with [`PrefetcherRegistry::register`]
//! — no change to `bosim-sim` required:
//!
//! ```
//! use bosim::{registry, PrefetcherHandle, PrefetcherSpec, SimConfig};
//! use best_offset::{NullPrefetcher, Prefetcher};
//!
//! #[derive(Debug)]
//! struct MySpec;
//! impl PrefetcherSpec for MySpec {
//!     fn name(&self) -> String { "mine".into() }
//!     fn build(&self, cfg: &SimConfig) -> Box<dyn Prefetcher> {
//!         Box::new(NullPrefetcher::new(cfg.page))
//!     }
//! }
//!
//! registry().register("mine", PrefetcherHandle::new(MySpec));
//! assert!(registry().lookup("mine").is_some());
//! // Site-qualified: "mine" is a line-address spec, so it attaches to
//! // the L2 or L3 site but not the L1D one.
//! assert!(registry().resolve_site("l3:mine").is_ok());
//! assert!(registry().resolve_site("l1:mine").is_err());
//! ```
//!
//! Names may carry a *site* prefix (`l1:stride`, `l2:bo`,
//! `l3:next-line`) resolved by [`PrefetcherRegistry::resolve_site`]; a
//! bare name means the L2 site. Parameterised families (like the
//! fixed-offset prefetchers) register a *resolver* instead of a single
//! name: a function that parses names such as `"offset-12"` into a
//! handle. A resolver distinguishes "not my family" from "my family,
//! but malformed" ([`ResolverOutcome`]), so
//! [`PrefetcherRegistry::resolve`] can report *why* `"offset-0"` or
//! `"offset-banana"` is rejected instead of a bare miss.

use crate::spec::{prefetchers, AdaptiveSpec, PrefetcherHandle};
use best_offset::PrefetchSite;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// A resolver's verdict on one name (see [`PrefetcherResolver`]).
#[derive(Debug)]
pub enum ResolverOutcome {
    /// The name does not belong to this resolver's family.
    NotMine,
    /// The name resolved to a prefetcher.
    Resolved(PrefetcherHandle),
    /// The name matches this family but is malformed; the string says
    /// how (`"offset must be a non-zero integer"`, ...).
    Malformed(String),
}

/// A name-pattern resolver: classifies `name` as outside its family,
/// resolved, or malformed.
pub type PrefetcherResolver = Arc<dyn Fn(&str) -> ResolverOutcome + Send + Sync>;

/// Why a name failed to resolve (returned by
/// [`PrefetcherRegistry::resolve`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// No exact name matched and no resolver family claimed the name.
    Unknown {
        /// The unresolved name.
        name: String,
    },
    /// A resolver family claimed the name but rejected its parameters.
    Malformed {
        /// The rejected name.
        name: String,
        /// The claiming family's pattern (e.g. `"offset-<D>"`).
        family: String,
        /// What is wrong with the parameters.
        reason: String,
    },
    /// A site-qualified name used a site label the hierarchy does not
    /// have (e.g. `"l9:bo"`).
    UnknownSite {
        /// The full site-qualified name.
        name: String,
        /// The unrecognised site label.
        site: String,
    },
    /// A site-qualified name resolved, but the spec does not attach to
    /// the requested site (e.g. `"l3:stride"` — stride is L1D-only).
    SiteMismatch {
        /// The full site-qualified name.
        name: String,
        /// The requested site.
        site: PrefetchSite,
        /// The sites the spec does support.
        supported: Vec<PrefetchSite>,
    },
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::Unknown { name } => {
                write!(
                    f,
                    "unknown prefetcher {name:?} (try `names()` for the list)"
                )
            }
            ResolveError::Malformed {
                name,
                family,
                reason,
            } => write!(f, "malformed prefetcher spec {name:?} ({family}): {reason}"),
            ResolveError::UnknownSite { name, site } => {
                write!(
                    f,
                    "unknown prefetch site {site:?} in {name:?} (valid sites: l1, l2, l3)"
                )
            }
            ResolveError::SiteMismatch {
                name,
                site,
                supported,
            } => {
                write!(
                    f,
                    "prefetcher {name:?} {}",
                    crate::spec::site_mismatch_reason(*site, supported)
                )
            }
        }
    }
}

impl std::error::Error for ResolveError {}

#[derive(Default)]
struct Entries {
    named: Vec<(String, PrefetcherHandle)>,
    resolvers: Vec<(String, PrefetcherResolver)>,
}

/// The open prefetcher registry (see the [`registry()`] docs and
/// the example above).
///
/// Lookups are case-insensitive. Exact names take precedence over
/// resolvers; within each group, the most recent registration wins, so a
/// re-registration overrides an earlier one.
pub struct PrefetcherRegistry {
    entries: Mutex<Entries>,
}

impl PrefetcherRegistry {
    fn with_builtins() -> Self {
        let reg = PrefetcherRegistry {
            entries: Mutex::new(Entries::default()),
        };
        reg.register("none", prefetchers::none());
        reg.register("no-prefetch", prefetchers::none());
        reg.register("next-line", prefetchers::next_line());
        reg.register("offset-1", prefetchers::fixed(1));
        reg.register("bo", prefetchers::bo_default());
        reg.register("sbp", prefetchers::sbp_default());
        reg.register("ampm", prefetchers::ampm_default());
        reg.register("stride", prefetchers::stride_default());
        reg.register_resolver(
            "offset-<D>",
            Arc::new(|name| {
                let Some(spec) = name.strip_prefix("offset-") else {
                    return ResolverOutcome::NotMine;
                };
                match spec.parse::<i64>() {
                    Ok(0) => ResolverOutcome::Malformed("offset 0 is not a prefetch".into()),
                    Ok(d) => ResolverOutcome::Resolved(prefetchers::fixed(d)),
                    Err(_) => ResolverOutcome::Malformed(format!(
                        "offset must be a non-zero integer in the i64 range, got {spec:?}"
                    )),
                }
            }),
        );
        reg
    }

    /// Registers `handle` under `name` (case-insensitive). A later
    /// registration under the same name replaces the earlier one.
    pub fn register(&self, name: &str, handle: PrefetcherHandle) {
        let key = name.to_ascii_lowercase();
        let mut e = self.entries.lock().expect("registry poisoned"); // bosim-lint: allow(P002, registry mutex poisons only if registration panicked)
        e.named.retain(|(n, _)| *n != key);
        e.named.push((key, handle));
    }

    /// Registers a resolver for a parameterised name family. `pattern` is
    /// purely documentation (shown by [`names`](Self::names)).
    pub fn register_resolver(&self, pattern: &str, resolver: PrefetcherResolver) {
        let mut e = self.entries.lock().expect("registry poisoned"); // bosim-lint: allow(P002, registry mutex poisons only if registration panicked)
        e.resolvers.push((pattern.to_string(), resolver));
    }

    /// Finds a handle by name: exact (case-insensitive) matches first,
    /// then resolvers in reverse registration order. `None` for both
    /// unknown and malformed names — use [`resolve`](Self::resolve) when
    /// the caller needs to report *why*.
    pub fn lookup(&self, name: &str) -> Option<PrefetcherHandle> {
        self.resolve(name).ok()
    }

    /// Like [`lookup`](Self::lookup), but distinguishes a name no family
    /// claims ([`ResolveError::Unknown`]) from one a family claims and
    /// rejects — `offset-0`, `offset-banana`, an offset overflowing
    /// `i64` — which yields a [`ResolveError::Malformed`] naming the
    /// family and the violated constraint.
    ///
    /// Resolvers are invoked *outside* the registry lock, so a resolver
    /// may itself call back into the registry (e.g. an alias family that
    /// delegates to other names), and a panicking resolver cannot poison
    /// the registry.
    ///
    /// # Errors
    ///
    /// Returns why the name failed to resolve.
    pub fn resolve(&self, name: &str) -> Result<PrefetcherHandle, ResolveError> {
        let key = name.trim().to_ascii_lowercase();
        let resolvers: Vec<(String, PrefetcherResolver)> = {
            let e = self.entries.lock().expect("registry poisoned"); // bosim-lint: allow(P002, registry mutex poisons only if registration panicked)
            if let Some((_, h)) = e.named.iter().rev().find(|(n, _)| *n == key) {
                return Ok(h.clone());
            }
            e.resolvers.iter().rev().cloned().collect()
        };
        for (family, r) in &resolvers {
            match r(&key) {
                ResolverOutcome::NotMine => continue,
                ResolverOutcome::Resolved(h) => return Ok(h),
                ResolverOutcome::Malformed(reason) => {
                    return Err(ResolveError::Malformed {
                        name: key,
                        family: family.clone(),
                        reason,
                    })
                }
            }
        }
        Err(ResolveError::Unknown { name: key })
    }

    /// Resolves a *site-qualified* prefetcher name: `"l1:stride"`,
    /// `"l2:bo"`, `"l3:next-line"`. A bare name (no `site:` prefix)
    /// defaults to the L2 site — the paper's subject and what every
    /// pre-existing name meant. The base name goes through
    /// [`resolve`](Self::resolve) (exact names, then resolver families),
    /// and the resolved spec must attach to the requested site.
    ///
    /// # Errors
    ///
    /// [`ResolveError::UnknownSite`] for a site label outside l1/l2/l3,
    /// [`ResolveError::SiteMismatch`] when the spec does not support the
    /// site (e.g. `l3:stride` — stride is L1D-only, or `l3:adaptive-bo`
    /// — the adaptive wrapper is L2-only), plus everything
    /// [`resolve`](Self::resolve) reports about the base name.
    pub fn resolve_site(
        &self,
        name: &str,
    ) -> Result<(PrefetchSite, PrefetcherHandle), ResolveError> {
        let full = name.trim();
        let (site, base) = match full.split_once(':') {
            Some((site_label, base)) => match PrefetchSite::parse(site_label.trim()) {
                Some(site) => (site, base.trim()),
                None => {
                    return Err(ResolveError::UnknownSite {
                        name: full.to_ascii_lowercase(),
                        site: site_label.trim().to_ascii_lowercase(),
                    })
                }
            },
            None => (PrefetchSite::L2, full),
        };
        let handle = self.resolve(base)?;
        if !handle.supports_site(site) {
            return Err(ResolveError::SiteMismatch {
                name: full.to_ascii_lowercase(),
                site,
                supported: handle.supported_sites().to_vec(),
            });
        }
        Ok((site, handle))
    }

    /// All registered names and resolver patterns, registration order.
    pub fn names(&self) -> Vec<String> {
        let e = self.entries.lock().expect("registry poisoned"); // bosim-lint: allow(P002, registry mutex poisons only if registration panicked)
        e.named
            .iter()
            .map(|(n, _)| n.clone())
            .chain(e.resolvers.iter().map(|(p, _)| p.clone()))
            .collect()
    }
}

/// The process-wide registry, created on first use with the six built-in
/// prefetchers pre-registered.
///
/// ```
/// use bosim::registry;
///
/// // Plain and parameterised names resolve...
/// assert_eq!(registry().resolve("bo").unwrap().name(), "BO");
/// assert_eq!(registry().resolve("offset-12").unwrap().name(), "offset-12");
/// // ...as do site-qualified ones (a bare name means the L2 site).
/// let (site, handle) = registry().resolve_site("l3:next-line").unwrap();
/// assert_eq!((site.label(), handle.name().as_str()), ("l3", "next-line"));
/// // Failures carry the resolver's diagnosis.
/// assert!(registry().resolve("offset-0").unwrap_err().to_string().contains("not a prefetch"));
/// ```
///
/// The global instance additionally carries the `adaptive-<name>`
/// family: `adaptive-bo` resolves to BO wrapped in
/// [`AdaptiveSpec`](crate::AdaptiveSpec), whose validation requires an
/// adaptive-control configuration on the run. The family delegates the
/// base name back into this registry, so third-party registrations get
/// adaptive aliases for free.
pub fn registry() -> &'static PrefetcherRegistry {
    static REGISTRY: OnceLock<PrefetcherRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let reg = PrefetcherRegistry::with_builtins();
        reg.register_resolver(
            "adaptive-<name>",
            Arc::new(|name| {
                let Some(base) = name.strip_prefix("adaptive-") else {
                    return ResolverOutcome::NotMine;
                };
                // Re-entrant: resolvers run outside the lock, and the
                // OnceLock is initialised by the time any lookup runs.
                match registry().resolve(base) {
                    Ok(inner) => {
                        ResolverOutcome::Resolved(PrefetcherHandle::new(AdaptiveSpec { inner }))
                    }
                    Err(e) => ResolverOutcome::Malformed(format!("base name: {e}")),
                }
            }),
        );
        reg
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_resolve_by_name() {
        for (name, label) in [
            ("none", "no-prefetch"),
            ("no-prefetch", "no-prefetch"),
            ("next-line", "next-line"),
            ("bo", "BO"),
            ("BO", "BO"),
            ("sbp", "SBP"),
            ("ampm", "AMPM"),
            ("offset-1", "offset-1"),
        ] {
            let h = registry().lookup(name).unwrap_or_else(|| panic!("{name}"));
            assert_eq!(h.name(), label);
        }
    }

    #[test]
    fn offset_family_resolves_parameterised_names() {
        assert_eq!(
            registry().lookup("offset-42").expect("family").name(),
            "offset-42"
        );
        assert_eq!(
            registry().lookup("offset--3").expect("negative").name(),
            "offset--3"
        );
        assert!(
            registry().lookup("offset-0").is_none(),
            "offset 0 is not a prefetch"
        );
        assert!(registry().lookup("offset-x").is_none());
    }

    #[test]
    fn unknown_names_miss() {
        assert!(registry().lookup("definitely-not-registered").is_none());
    }

    #[test]
    fn resolvers_may_reenter_the_registry() {
        // An alias family that delegates back into the same registry:
        // must not deadlock (resolvers run outside the lock).
        let reg = Arc::new(PrefetcherRegistry::with_builtins());
        let inner = reg.clone();
        reg.register_resolver(
            "alias-<name>",
            Arc::new(move |name| match name.strip_prefix("alias-") {
                None => ResolverOutcome::NotMine,
                Some(base) => match inner.lookup(base) {
                    Some(h) => ResolverOutcome::Resolved(h),
                    None => ResolverOutcome::Malformed(format!("unknown base {base:?}")),
                },
            }),
        );
        assert_eq!(reg.lookup("alias-bo").expect("delegates").name(), "BO");
        assert!(reg.lookup("alias-nope").is_none());
    }

    #[test]
    fn malformed_offset_specs_are_described() {
        let reg = PrefetcherRegistry::with_builtins();
        for (name, needle) in [
            ("offset-0", "offset 0 is not a prefetch"),
            ("offset-x", "non-zero integer"),
            ("offset-12banana", "non-zero integer"),
            // i64 overflow: parse fails, reported as malformed rather
            // than silently missing.
            ("offset-99999999999999999999", "i64 range"),
        ] {
            let err = reg.resolve(name).unwrap_err();
            match &err {
                ResolveError::Malformed { family, reason, .. } => {
                    assert_eq!(family, "offset-<D>");
                    assert!(reason.contains(needle), "{name}: {reason}");
                }
                other => panic!("{name}: expected Malformed, got {other:?}"),
            }
            assert!(err.to_string().contains("offset-<D>"));
        }
        // Unknown names stay Unknown — no family claims them.
        assert_eq!(
            reg.resolve("no-such-prefetcher").unwrap_err(),
            ResolveError::Unknown {
                name: "no-such-prefetcher".into()
            }
        );
    }

    #[test]
    fn adaptive_family_wraps_base_names() {
        let h = registry().lookup("adaptive-bo").expect("family resolves");
        assert_eq!(h.name(), "adaptive-BO");
        let err = registry().resolve("adaptive-nope").unwrap_err();
        assert!(err.to_string().contains("base name"), "{err}");
    }

    #[test]
    fn site_qualified_names_resolve_to_site_and_handle() {
        let reg = PrefetcherRegistry::with_builtins();
        for (name, site, label) in [
            ("l1:stride", PrefetchSite::L1D, "stride"),
            ("l2:bo", PrefetchSite::L2, "BO"),
            ("L2:BO", PrefetchSite::L2, "BO"),
            ("l3:next-line", PrefetchSite::L3, "next-line"),
            ("l3:offset-12", PrefetchSite::L3, "offset-12"),
            // Bare names default to the L2 site.
            ("bo", PrefetchSite::L2, "BO"),
        ] {
            let (s, h) = reg.resolve_site(name).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(s, site, "{name}");
            assert_eq!(h.name(), label, "{name}");
        }
    }

    #[test]
    fn site_names_tolerate_whitespace() {
        let reg = PrefetcherRegistry::with_builtins();
        let (s, h) = reg.resolve_site(" l3 : bo ").expect("trimmed per segment");
        assert_eq!(s, PrefetchSite::L3);
        assert_eq!(h.name(), "BO");
    }

    #[test]
    fn unknown_sites_are_described() {
        let reg = PrefetcherRegistry::with_builtins();
        let err = reg.resolve_site("l9:bo").unwrap_err();
        assert_eq!(
            err,
            ResolveError::UnknownSite {
                name: "l9:bo".into(),
                site: "l9".into()
            }
        );
        assert!(err.to_string().contains("valid sites: l1, l2, l3"), "{err}");
    }

    #[test]
    fn site_spec_mismatches_are_described() {
        let reg = PrefetcherRegistry::with_builtins();
        // Stride is L1D-only: the L2/L3 sites reject it.
        for name in ["l3:stride", "l2:stride", "stride"] {
            let err = reg.resolve_site(name).unwrap_err();
            match &err {
                ResolveError::SiteMismatch {
                    site, supported, ..
                } => {
                    assert_ne!(*site, PrefetchSite::L1D, "{name}");
                    assert_eq!(supported, &[PrefetchSite::L1D], "{name}");
                }
                other => panic!("{name}: expected SiteMismatch, got {other:?}"),
            }
            assert!(err.to_string().contains("supports: l1"), "{err}");
        }
        // Line-address prefetchers reject the L1D site.
        let err = reg.resolve_site("l1:bo").unwrap_err();
        assert!(
            matches!(&err, ResolveError::SiteMismatch { site, .. } if *site == PrefetchSite::L1D),
            "{err:?}"
        );
        assert!(err.to_string().contains("supports: l2, l3"), "{err}");
    }

    #[test]
    fn site_resolution_reports_base_name_errors() {
        let reg = PrefetcherRegistry::with_builtins();
        assert!(matches!(
            reg.resolve_site("l2:no-such").unwrap_err(),
            ResolveError::Unknown { .. }
        ));
        assert!(matches!(
            reg.resolve_site("l3:offset-0").unwrap_err(),
            ResolveError::Malformed { .. }
        ));
    }

    #[test]
    fn adaptive_wrapper_is_l2_only_at_site_resolution() {
        // `l3:` wrapping an L2-only spec is the documented mismatch case.
        let err = registry().resolve_site("l3:adaptive-bo").unwrap_err();
        match err {
            ResolveError::SiteMismatch {
                site, supported, ..
            } => {
                assert_eq!(site, PrefetchSite::L3);
                assert_eq!(supported, vec![PrefetchSite::L2]);
            }
            other => panic!("expected SiteMismatch, got {other:?}"),
        }
        assert!(registry().resolve_site("l2:adaptive-bo").is_ok());
    }

    #[test]
    fn re_registration_replaces() {
        let reg = PrefetcherRegistry::with_builtins();
        reg.register("bo", prefetchers::none());
        assert_eq!(
            reg.lookup("bo").expect("still present").name(),
            "no-prefetch"
        );
        let names = reg.names();
        assert_eq!(names.iter().filter(|n| *n == "bo").count(), 1);
    }
}
