//! Deterministic rendezvous machinery for parallel core ticking.
//!
//! This is the **designated thread module** of the simulator: every
//! `std::thread` spawn in the determinism-sensitive crates lives here
//! (the bosim-lint D004 rule pins that down), so the determinism
//! argument reduces to auditing this file plus the fixed-order
//! collection pass in [`system`](crate::system).
//!
//! The protocol is a command generation counter, not a classic barrier:
//! the main thread [`issue`](TickSync::issue)s one command per
//! simulated cycle (the cycle number, or [`STOP`]), workers wake on the
//! generation bump, process their assigned cores, and bump a
//! *cumulative* completion counter the main thread waits on. Cumulative
//! counting avoids a reset race entirely, and a worker that panics
//! still counts itself done through a drop guard — the main thread then
//! trips over the poisoned core mailbox and the panic propagates
//! instead of deadlocking the rendezvous.
//!
//! Waits spin briefly and then yield: on an under-provisioned host
//! (including the single-CPU CI runners) the scheduler can always make
//! progress, at the cost of wall-clock speedup — never of correctness.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

/// Command value telling workers to exit their loop.
pub const STOP: u64 = u64::MAX;

/// Spins a few iterations, then yields to the OS scheduler.
#[inline]
fn relax(spins: &mut u32) {
    *spins = spins.wrapping_add(1);
    if spins.is_multiple_of(64) {
        std::thread::yield_now();
    } else {
        std::hint::spin_loop();
    }
}

/// The per-cycle command/completion channel between the main thread and
/// the tick workers (see the module docs for the protocol).
#[derive(Debug, Default)]
pub struct TickSync {
    /// Generation of the current command; bumped by every `issue`.
    cmd_gen: AtomicU64,
    /// The current command payload (a cycle number, or [`STOP`]).
    cmd: AtomicU64,
    /// Cumulative worker phase completions across all generations.
    done: AtomicU64,
}

impl TickSync {
    /// A fresh channel at generation zero.
    pub fn new() -> Self {
        TickSync::default()
    }

    /// Main side: publishes the next command. The payload store happens
    /// before the generation bump (release ordering), so a worker that
    /// observes the new generation also observes the payload.
    pub fn issue(&self, cmd: u64) {
        self.cmd.store(cmd, Ordering::Release);
        self.cmd_gen.fetch_add(1, Ordering::Release);
    }

    /// Worker side: blocks until a command newer than `seen` arrives;
    /// returns `(generation, command)`.
    pub fn await_command(&self, seen: u64) -> (u64, u64) {
        let mut spins = 0u32;
        loop {
            let gen = self.cmd_gen.load(Ordering::Acquire);
            if gen != seen {
                return (gen, self.cmd.load(Ordering::Acquire));
            }
            relax(&mut spins);
        }
    }

    /// Worker side: a guard that marks this worker's current phase
    /// complete when dropped — including on unwind, so a worker panic
    /// surfaces as a poisoned mailbox instead of a hung rendezvous.
    pub fn done_guard(&self) -> DoneGuard<'_> {
        DoneGuard(self)
    }

    /// Main side: blocks until the cumulative completion count reaches
    /// `expected` (i.e. `issued_commands * workers`).
    pub fn await_done(&self, expected: u64) {
        let mut spins = 0u32;
        while self.done.load(Ordering::Acquire) < expected {
            relax(&mut spins);
        }
    }
}

/// Completion marker for one worker phase (see [`TickSync::done_guard`]).
#[derive(Debug)]
pub struct DoneGuard<'a>(&'a TickSync);

impl Drop for DoneGuard<'_> {
    fn drop(&mut self) {
        self.0.done.fetch_add(1, Ordering::AcqRel);
    }
}

/// The host's available parallelism (`1` when unknown).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `count` worker threads for the duration of `main`, then shuts
/// them down and propagates any panic. `worker(i)` is expected to loop
/// on [`TickSync::await_command`] until it sees [`STOP`]; `shutdown` is
/// always called after `main` (even when `main` panics) and must issue
/// the [`STOP`] command so the scoped join below cannot hang.
pub fn scoped_workers<R>(
    count: usize,
    worker: impl Fn(usize) + Sync,
    main: impl FnOnce() -> R,
    shutdown: impl Fn(),
) -> R {
    std::thread::scope(|s| {
        for i in 0..count {
            let worker = &worker;
            s.spawn(move || worker(i));
        }
        let r = catch_unwind(AssertUnwindSafe(main));
        shutdown();
        match r {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn commands_fan_out_and_completions_accumulate() {
        let sync = TickSync::new();
        let hits = AtomicUsize::new(0);
        const WORKERS: usize = 3;
        const CYCLES: u64 = 50;
        let total = scoped_workers(
            WORKERS,
            |_w| {
                let mut seen = 0;
                loop {
                    let (gen, cmd) = sync.await_command(seen);
                    seen = gen;
                    if cmd == STOP {
                        break;
                    }
                    let _guard = sync.done_guard();
                    hits.fetch_add(cmd as usize, Ordering::Relaxed);
                }
            },
            || {
                for cycle in 1..=CYCLES {
                    sync.issue(cycle);
                    sync.await_done(cycle * WORKERS as u64);
                }
                hits.load(Ordering::Relaxed)
            },
            || sync.issue(STOP),
        );
        // Every worker saw every command exactly once.
        let expected = WORKERS * (1..=CYCLES as usize).sum::<usize>();
        assert_eq!(total, expected);
    }

    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        let sync = TickSync::new();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            scoped_workers(
                1,
                |_w| {
                    let (_gen, cmd) = sync.await_command(0);
                    if cmd != STOP {
                        let _guard = sync.done_guard();
                        panic!("worker boom");
                    }
                },
                || {
                    sync.issue(7);
                    // The done guard fires on the worker's unwind, so
                    // this rendezvous completes rather than hanging.
                    sync.await_done(1);
                },
                || sync.issue(STOP),
            )
        }));
        assert!(r.is_err(), "worker panic must propagate");
    }
}
