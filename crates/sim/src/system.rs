//! Full-system assembly: cores + uncore, and the measurement loop.

use crate::barrier::{self, TickSync, STOP};
use crate::config::SimConfig;
use crate::uncore::{PrefetchTelemetry, Uncore, UncoreStats};
use crate::wheel::EventWheel;
use bosim_adapt::{
    AdaptTelemetry, DirectiveRecord, EpochFeedback, EpochRecord, PrefetchSite, SiteFeedback,
    TunePolicy,
};
use bosim_cpu::{Core, CoreObsEvent, CoreStats, UncoreRequest};
use bosim_dram::DramStats;
use bosim_obs::{
    EpochRow, EpochStream, Event, EventKind, HostProfiler, ObsReport, ObsSite, Phase, ProfileSlot,
};
use bosim_trace::{suite, BenchmarkSpec};
use bosim_types::{CoreId, Cycle, LineAddr, ReqClass};
use std::sync::Mutex;

/// The result of one measured simulation run.
///
/// `PartialEq` compares every counter bit-for-bit — the golden-stats
/// invariance test relies on this to prove the fast-forwarding system
/// loop exactly reproduces the naive per-cycle loop.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Benchmark name (e.g. `"433.milc-like"`).
    pub benchmark: String,
    /// Configuration label (e.g. `"4KB/1-core/BO"`).
    pub config: String,
    /// Instructions retired by core 0 in the measured window.
    pub instructions: u64,
    /// Cycles elapsed in the measured window.
    pub cycles: u64,
    /// Core-0 statistics over the measured window.
    pub core: CoreStats,
    /// Uncore statistics over the measured window (core 0's L2 plus the
    /// shared structures).
    pub uncore: UncoreStats,
    /// DRAM statistics over the measured window (all cores).
    pub dram: DramStats,
    /// Core 0's L2-site prefetch telemetry, cumulative from simulation
    /// start (warm-up included — fills resolve across window
    /// boundaries, so the per-site resolution invariant only holds on
    /// the cumulative counters).
    pub l2_site: PrefetchTelemetry,
    /// The shared L3 site's prefetch telemetry, cumulative from
    /// simulation start.
    pub l3_site: PrefetchTelemetry,
    /// Adaptive-control telemetry: core 0's full epoch history (from
    /// simulation start, warm-up included) when the run was adaptive,
    /// `None` for static configurations.
    pub adapt: Option<AdaptTelemetry>,
    /// Observability report — the cycle-domain event log, the epoch
    /// metric series and the host profile — when any [`SimConfig::obs`]
    /// channel was enabled, `None` otherwise. Covers the whole run
    /// (warm-up included). Events and epochs are pure functions of
    /// simulated state and participate in equality; the wall-clock
    /// profile is wrapped in [`ProfileSlot`] and never compares unequal.
    pub obs: Option<ObsReport>,
}

impl SimResult {
    /// Instructions per cycle of core 0.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// DRAM accesses (reads + writes) per 1000 instructions — the
    /// Figure 13 metric.
    pub fn dram_accesses_per_ki(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        (self.dram.reads + self.dram.writes) as f64 * 1000.0 / self.instructions as f64
    }

    /// Checks the per-site telemetry invariants carried by this result:
    /// at core 0's L2 site and the shared L3 site,
    /// `useful + unused_evicted <= prefetch_fills` — every
    /// prefetch-filled line resolves at most once. (Other cores' L2
    /// telemetry is not part of a `SimResult`; the L1 site has no
    /// fill-resolution counters — its issue counts live in
    /// [`CoreStats`].)
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_site_invariants(&self) -> Result<(), String> {
        for (site, t) in [("l2", &self.l2_site), ("l3", &self.l3_site)] {
            if t.useful + t.unused_evicted > t.prefetch_fills {
                return Err(format!(
                    "{site} site: useful ({}) + unused-evicted ({}) exceeds prefetch fills ({})",
                    t.useful, t.unused_evicted, t.prefetch_fills
                ));
            }
        }
        Ok(())
    }
}

/// The live adaptive-control engine of a running system: per-core
/// policies plus the previous epoch's counter snapshots.
#[derive(Debug)]
struct AdaptRuntime {
    epoch_cycles: u64,
    /// End of the epoch currently accumulating.
    next_boundary: Cycle,
    epoch: u64,
    /// One policy instance per core (policies are per-core state
    /// machines; bandwidth feedback is shared, decisions are not).
    policies: Vec<Box<dyn TunePolicy>>,
    prev_telemetry: Vec<PrefetchTelemetry>,
    prev_core: Vec<CoreStats>,
    prev_retired: Vec<u64>,
    prev_dram: DramStats,
    prev_l3: PrefetchTelemetry,
    telemetry: AdaptTelemetry,
}

/// The live observability epoch tracker: boundary bookkeeping plus the
/// previous boundary's counter snapshots (the same delta discipline as
/// [`AdaptRuntime`], so the metric series is bit-identical across the
/// naive and fast-forwarding loops).
#[derive(Debug)]
struct ObsEpochRuntime {
    epoch_cycles: u64,
    /// End of the epoch currently accumulating.
    next_boundary: Cycle,
    epoch: u64,
    rows: Vec<EpochRow>,
    stream: EpochStream,
    prev_retired: u64,
    prev_l2: PrefetchTelemetry,
    prev_dram: DramStats,
}

/// Event-wheel source id of the uncore (cores follow at [`core_src`]).
const UNCORE_SRC: u16 = 0;

/// Event-wheel source id of core `c`.
#[inline]
fn core_src(c: usize) -> u16 {
    (c + 1) as u16
}

/// µops pulled per decode-ring refill on the optimized path (the naive
/// reference arm keeps per-µop pulls — the stream is identical either
/// way, batching only amortizes the virtual dispatch).
const DECODE_BATCH: usize = 64;

/// Mailbox of one worker-owned core during a parallel tick segment:
/// the main thread fills `fills`/`due` before the rendezvous, the
/// worker applies fills, ticks and leaves its outputs, and the main
/// thread drains them afterwards in fixed core-id order.
struct CoreCell {
    core: Core,
    /// Fills delivered by the uncore this cycle, in delivery order.
    fills: Vec<LineAddr>,
    /// Requests emitted while applying `fills`.
    fill_reqs: Vec<UncoreRequest>,
    /// Requests emitted by the cycle's tick.
    tick_reqs: Vec<UncoreRequest>,
    /// L1 observability events accumulated this cycle.
    obs: Vec<CoreObsEvent>,
    /// Whether the core must tick this cycle (wheel-due or fill-woken).
    due: bool,
    /// Whether the worker actually ticked it (guards stale outputs).
    ticked: bool,
    /// The core's next self-scheduled work cycle after the tick.
    next_work: Cycle,
}

/// Locks a worker-core mailbox. The mutex is uncontended by protocol —
/// the main thread touches mailboxes only outside the issue→done window
/// — and poisoning means a worker panicked, so propagating is the only
/// sound option.
fn lock_cell(cell: &Mutex<CoreCell>) -> std::sync::MutexGuard<'_, CoreCell> {
    cell.lock().expect("tick worker panicked") // bosim-lint: allow(P002, poisoned mailbox means a worker panicked; propagating is the only sound option)
}

/// A complete simulated machine: up to four cores, private L2s, shared L3
/// and dual-channel DRAM.
#[derive(Debug)]
pub struct System {
    cfg: SimConfig,
    cores: Vec<Core>,
    uncore: Uncore,
    cycle: Cycle,
    /// Cycles actually stepped (≤ `cycle`; the rest were fast-forwarded).
    steps: u64,
    benchmark: String,
    req_buf: Vec<UncoreRequest>,
    fill_buf: Vec<(CoreId, LineAddr)>,
    adapt: Option<AdaptRuntime>,
    /// The discrete-event calendar driving the scheduled (fast-forward)
    /// loop: one source per core plus the uncore, each posting the
    /// earliest cycle at which it may have work. A post is a promise of
    /// idleness *before* it, never of work *at* it — early wake-ups are
    /// harmless no-op ticks, but a source must never have work strictly
    /// before its post.
    wheel: EventWheel,
    /// Scratch for the sources popped each stepped cycle.
    due_buf: Vec<u16>,
    /// Host-side wall-clock attribution (inert unless
    /// [`bosim_obs::ObsConfig::profile`] is set).
    prof: HostProfiler,
    /// Observability epoch series state (`None` = epochs off).
    obs_rt: Option<ObsEpochRuntime>,
    /// Scratch for draining core-side L1 observability events.
    core_obs_buf: Vec<CoreObsEvent>,
}

impl System {
    /// Builds a system running `bench` on core 0 — a synthetic spec or
    /// a file-backed one ([`BenchmarkSpec::from_trace`]). Cores
    /// 1..active run the §5.1 cache-thrashing micro-benchmark. When
    /// [`SimConfig::sample`] is set, core 0's µop stream is wrapped in
    /// the sampling plan (warm-up skip + periodic windows); the
    /// thrasher streams are never sampled.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`] (e.g.
    /// `active_cores` is 0 or beyond [`crate::MAX_CORES`]), or if a
    /// file-backed benchmark fails to load — the job runner converts
    /// the panic into a [`RunnerError`](crate::RunnerError) naming the
    /// benchmark; pre-validate interactively with
    /// [`bosim_trace::ExternalSpec::load`].
    pub fn new(cfg: &SimConfig, bench: &BenchmarkSpec) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid SimConfig: {e}"); // bosim-lint: allow(P003, documented Panics contract; run_jobs converts to RunnerError)
        }
        let mut prof = if cfg.obs.profile {
            HostProfiler::new(cfg.obs.profile_sample_shift)
        } else {
            HostProfiler::disabled()
        };
        let decode_timer = prof.start(Phase::Decode);
        // The optimized path pulls µops in blocks through the decode
        // ring; the naive reference arm keeps per-µop pulls.
        let mut core_cfg = cfg.core.clone();
        if !cfg.naive_hot_path {
            core_cfg.decode_batch = DECODE_BATCH;
        }
        let mut cores = Vec::new();
        for i in 0..cfg.active_cores {
            let trace: Box<dyn bosim_trace::TraceSource> = if i == 0 {
                let src = match bench.source() {
                    Ok(src) => src,
                    Err(e) => panic!("cannot load benchmark {}: {e}", bench.name), // bosim-lint: allow(P003, documented Panics contract; run_jobs converts to RunnerError)
                };
                match cfg.sample {
                    Some(spec) if !spec.is_passthrough() => {
                        Box::new(bosim_trace::SampledSource::new(src, spec))
                    }
                    _ => src,
                }
            } else {
                let mut spec = suite::thrasher();
                spec.seed ^= 0x7417 * i as u64;
                Box::new(spec.build())
            };
            // The L1D prefetch site is registry-resolved and pluggable:
            // every core gets its own instance built from the spec
            // (validation guaranteed the spec supports the site).
            let l1 = cfg.l1_prefetcher.as_ref().and_then(|h| h.build_l1(cfg));
            cores.push(Core::new(
                CoreId(i as u8),
                core_cfg.clone(),
                trace,
                cfg.page,
                cfg.seed ^ (i as u64) << 8,
                l1,
            ));
        }
        prof.stop(decode_timer);
        if cfg.obs.events {
            for core in &mut cores {
                core.set_obs_sink(true);
            }
        }
        let obs_rt = cfg.obs.epochs.then(|| ObsEpochRuntime {
            epoch_cycles: cfg.obs.epoch_cycles,
            next_boundary: cfg.obs.epoch_cycles,
            epoch: 0,
            rows: Vec::new(),
            stream: match &cfg.obs.epoch_stream {
                Some(path) => EpochStream::create(path),
                None => EpochStream::disabled(),
            },
            prev_retired: 0,
            prev_l2: PrefetchTelemetry::default(),
            prev_dram: DramStats::default(),
        });
        let adapt = cfg.adapt.as_ref().map(|a| AdaptRuntime {
            epoch_cycles: a.epoch_cycles,
            next_boundary: a.epoch_cycles,
            epoch: 0,
            policies: (0..cfg.active_cores).map(|_| a.policy.build()).collect(),
            prev_telemetry: vec![PrefetchTelemetry::default(); cfg.active_cores],
            prev_core: vec![CoreStats::default(); cfg.active_cores],
            prev_retired: vec![0; cfg.active_cores],
            prev_dram: DramStats::default(),
            prev_l3: PrefetchTelemetry::default(),
            telemetry: AdaptTelemetry {
                policy: a.policy.name(),
                epoch_cycles: a.epoch_cycles,
                ..Default::default()
            },
        });
        System {
            uncore: Uncore::new(cfg),
            wheel: EventWheel::new(cfg.active_cores + 1),
            due_buf: Vec::with_capacity(cfg.active_cores + 1),
            cores,
            cycle: 0,
            steps: 0,
            benchmark: bench.name.clone(),
            req_buf: Vec::with_capacity(64),
            fill_buf: Vec::with_capacity(64),
            adapt,
            prof,
            obs_rt,
            core_obs_buf: Vec::new(),
            cfg: cfg.clone(),
        }
    }

    /// The current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Cycles actually stepped so far. With fast-forwarding off this
    /// equals [`cycle`](Self::cycle); with it on, the difference is the
    /// number of skipped (provably idle) cycles.
    pub fn steps_executed(&self) -> u64 {
        self.steps
    }

    /// Immutable access to the uncore (prefetcher introspection).
    pub fn uncore(&self) -> &Uncore {
        &self.uncore
    }

    /// One-line core state dump (diagnostics).
    pub fn debug_core_state(&self, core: usize) -> String {
        self.cores[core].debug_state()
    }

    /// Core-0 statistics so far.
    pub fn core0_stats(&self) -> CoreStats {
        self.cores[0].stats()
    }

    /// Advances the system by one cycle. Returns `true` when the cycle
    /// was visibly active — a fill was delivered or a core emitted an
    /// uncore request. Quiet cycles are where fast-forwarding looks for
    /// skippable stretches (activity makes an immediate skip unlikely,
    /// so the bound computation isn't worth paying for).
    pub fn step(&mut self) -> bool {
        let now = self.cycle;
        self.steps += 1;
        let mut active = false;
        // Uncore first: deliver due fills into the cores (may produce
        // writebacks, handled immediately).
        self.fill_buf.clear();
        let timer = self.prof.start(Phase::UncoreTick);
        self.uncore.tick(now, &mut self.fill_buf, &mut self.prof);
        self.prof.stop(timer);
        active |= !self.fill_buf.is_empty();
        let timer = self.prof.start(Phase::CoreTick);
        for i in 0..self.fill_buf.len() {
            let (core, line) = self.fill_buf[i];
            self.req_buf.clear();
            self.cores[core.index()].fill(line, now, &mut self.req_buf);
            for r in 0..self.req_buf.len() {
                let req = self.req_buf[r];
                self.dispatch_request(core, req, now);
            }
        }
        // Cores tick and emit new uncore requests.
        for c in 0..self.cores.len() {
            self.req_buf.clear();
            self.cores[c].tick(now, &mut self.req_buf);
            active |= !self.req_buf.is_empty();
            for r in 0..self.req_buf.len() {
                let req = self.req_buf[r];
                self.dispatch_request(CoreId(c as u8), req, now);
            }
        }
        self.prof.stop(timer);
        if self.uncore.events_enabled() {
            self.drain_core_obs(now);
        }
        self.cycle += 1;
        active
    }

    /// Moves the uncore's wheel post earlier, to `at`, when it is
    /// currently scheduled later. Called after every dispatched request:
    /// dispatch mutates uncore state outside its tick, so the bound it
    /// posted at its last tick no longer covers the new work (and the
    /// demand-priority flag it may have set must age at the next cycle's
    /// tick).
    fn wake_uncore(&mut self, at: Cycle) {
        if self.wheel.posted(UNCORE_SRC) > at {
            self.wheel.post(UNCORE_SRC, at);
        }
    }

    /// Advances the system by one cycle, popping the event wheel and
    /// ticking only the sources that are due (plus any core woken by a
    /// fill delivered this very cycle). Skipped (source, cycle) pairs
    /// are provably idle — the posting contract makes ticking them a
    /// no-op — so this is bit-identical to [`step`](Self::step), which
    /// ticks everything every cycle.
    fn step_scheduled(&mut self) {
        let now = self.cycle;
        self.steps += 1;
        let mut due_buf = std::mem::take(&mut self.due_buf);
        self.wheel.pop_due(now, &mut due_buf);
        let uncore_due = due_buf.contains(&UNCORE_SRC);
        if uncore_due {
            self.fill_buf.clear();
            let timer = self.prof.start(Phase::UncoreTick);
            self.uncore.tick(now, &mut self.fill_buf, &mut self.prof);
            self.prof.stop(timer);
            let next = self.uncore.next_ready_after(now);
            self.wheel.post(UNCORE_SRC, next);
        }
        let timer = self.prof.start(Phase::CoreTick);
        if uncore_due {
            for i in 0..self.fill_buf.len() {
                let (core, line) = self.fill_buf[i];
                // A delivered fill can unblock dispatch this very cycle.
                self.wheel.post(core_src(core.index()), now);
                self.req_buf.clear();
                self.cores[core.index()].fill(line, now, &mut self.req_buf);
                if !self.req_buf.is_empty() {
                    self.wake_uncore(now + 1);
                }
                for r in 0..self.req_buf.len() {
                    let req = self.req_buf[r];
                    self.dispatch_request(core, req, now);
                }
            }
        }
        for c in 0..self.cores.len() {
            // Due if popped, or posted mid-cycle by a fill delivery.
            if !due_buf.contains(&core_src(c)) && !self.wheel.due(core_src(c), now) {
                continue;
            }
            self.req_buf.clear();
            self.cores[c].tick(now, &mut self.req_buf);
            if !self.req_buf.is_empty() {
                self.wake_uncore(now + 1);
            }
            for r in 0..self.req_buf.len() {
                let req = self.req_buf[r];
                self.dispatch_request(CoreId(c as u8), req, now);
            }
            self.wheel
                .post(core_src(c), self.cores[c].next_work_cycle(now + 1));
        }
        self.prof.stop(timer);
        self.due_buf = due_buf;
        if self.uncore.events_enabled() {
            self.drain_core_obs(now);
        }
        self.cycle += 1;
    }

    /// Forwards the cycle's core-side L1 observability events (stride
    /// prefetch issues, TLB drops) into the shared event log, stamped
    /// with the cycle and owning core.
    fn drain_core_obs(&mut self, now: Cycle) {
        for c in 0..self.cores.len() {
            self.core_obs_buf.clear();
            self.cores[c].drain_obs(&mut self.core_obs_buf);
            for ev in &self.core_obs_buf {
                let kind = match ev {
                    CoreObsEvent::L1PrefetchIssued { line } => {
                        EventKind::PrefetchIssued { line: line.0 }
                    }
                    CoreObsEvent::L1PrefetchTlbDrop => EventKind::PrefetchDropped { line: 0 },
                };
                self.uncore.record_event(Event {
                    cycle: now,
                    core: c as u32,
                    site: ObsSite::L1d,
                    kind,
                });
            }
        }
    }

    fn dispatch_request(&mut self, core: CoreId, req: UncoreRequest, now: Cycle) {
        match req {
            UncoreRequest::Read {
                line,
                class,
                ifetch,
            } => {
                debug_assert!(class != ReqClass::L2Prefetch);
                self.uncore.core_read(core, line, class, ifetch, now);
            }
            UncoreRequest::Writeback { line } => {
                self.uncore.core_writeback(core, line, now);
            }
        }
    }

    /// Adaptive-control telemetry so far (`None` for static runs).
    pub fn adapt_telemetry(&self) -> Option<&AdaptTelemetry> {
        self.adapt.as_ref().map(|a| &a.telemetry)
    }

    /// Processes every epoch boundary at or before the current cycle:
    /// snapshot counters, hand each core's [`EpochFeedback`] to its
    /// policy, apply the directives, log core 0's record.
    ///
    /// Called at the top of the run loop, *before* the tick of the cycle
    /// it fires on. This keeps the naive and fast-forwarding loops
    /// bit-identical: a skip only jumps provably idle cycles, so when a
    /// jump lands past a boundary the counters are exactly what they
    /// were at the boundary and no prefetcher invocation can have
    /// happened in between — the policy sees the same feedback and
    /// reconfigures the same prefetcher state either way.
    ///
    /// Returns `true` when at least one boundary was processed — the
    /// scheduled loop then refreshes every wheel post, because an
    /// applied directive can create work the sources' previous bounds
    /// did not account for.
    fn adapt_epochs(&mut self) -> bool {
        let Some(ad) = self.adapt.as_mut() else {
            return false;
        };
        let mut processed = false;
        while self.cycle >= ad.next_boundary {
            processed = true;
            let start_cycle = ad.next_boundary - ad.epoch_cycles;
            let dram = self.uncore.dram_stats();
            let reads = dram.reads - ad.prev_dram.reads;
            let writes = dram.writes - ad.prev_dram.writes;
            // Data-bus occupancy: every CAS moves one line and holds the
            // channel's data bus for tBURST core cycles.
            let busy = (reads + writes) * self.uncore.dram_line_transfer_cycles();
            let capacity = ad.epoch_cycles * self.uncore.dram_channels() as u64;
            let bus_occupancy = busy as f64 / capacity as f64;
            // The L3 site is shared: one machine-wide delta, seen by
            // every core's feedback.
            let l3 = self.uncore.l3_prefetch_telemetry();
            let l3_delta = SiteFeedback {
                issued: l3.issued - ad.prev_l3.issued,
                prefetch_fills: l3.prefetch_fills - ad.prev_l3.prefetch_fills,
                useful_fills: l3.useful - ad.prev_l3.useful,
                unused_evicted: l3.unused_evicted - ad.prev_l3.unused_evicted,
            };
            for c in 0..self.cores.len() {
                let core = CoreId(c as u8);
                let telem = self.uncore.prefetch_telemetry(core);
                let prev = ad.prev_telemetry[c];
                let core_stats = self.cores[c].stats();
                let prev_core = ad.prev_core[c];
                let retired = self.cores[c].retired();
                let feedback = EpochFeedback {
                    epoch: ad.epoch,
                    start_cycle,
                    cycles: ad.epoch_cycles,
                    instructions: retired - ad.prev_retired[c],
                    l2_accesses: telem.accesses - prev.accesses,
                    l2_misses: telem.misses - prev.misses,
                    issued: telem.issued - prev.issued,
                    prefetch_fills: telem.prefetch_fills - prev.prefetch_fills,
                    useful_fills: telem.useful - prev.useful,
                    unused_evicted: telem.unused_evicted - prev.unused_evicted,
                    late_promotions: telem.late_promotions - prev.late_promotions,
                    dram_reads: reads,
                    dram_writes: writes,
                    bus_occupancy,
                    l1_prefetches: core_stats.l1_prefetches - prev_core.l1_prefetches,
                    l1_tlb_drops: core_stats.l1_prefetch_tlb_drops
                        - prev_core.l1_prefetch_tlb_drops,
                    l3: l3_delta,
                };
                // Only core 0's record is logged; capture the name of
                // the prefetcher that *produced* the epoch before any
                // directive can switch it.
                let prefetcher =
                    (c == 0).then(|| self.uncore.l2_prefetcher(core).name().to_string());
                let mut directives = Vec::new();
                ad.policies[c].on_epoch(&feedback, &mut directives);
                let mut records = Vec::with_capacity(directives.len());
                for d in &directives {
                    // Route each directive to its addressed site: the
                    // per-core L1/L2 engines, or the shared L3 one. The
                    // L3 is a single shared engine, so only core 0's
                    // policy may steer it — honouring every core's L3
                    // directives would rebuild it once per core and
                    // leave conflicting policies last-core-wins.
                    let applied = match d.site {
                        PrefetchSite::L1D => self.cores[c].reconfigure_l1_prefetcher(&d.directive),
                        PrefetchSite::L2 => self.uncore.reconfigure_prefetcher(core, &d.directive),
                        PrefetchSite::L3 => {
                            c == 0 && self.uncore.reconfigure_l3_prefetcher(&d.directive)
                        }
                    };
                    if applied {
                        ad.telemetry.applied += 1;
                    } else {
                        ad.telemetry.rejected += 1;
                    }
                    if self.uncore.events_enabled() {
                        let site = match d.site {
                            PrefetchSite::L1D => ObsSite::L1d,
                            PrefetchSite::L2 => ObsSite::L2,
                            PrefetchSite::L3 => ObsSite::L3,
                        };
                        self.uncore.record_event(Event {
                            cycle: ad.next_boundary,
                            core: c as u32,
                            site,
                            kind: EventKind::Directive {
                                directive: d.to_string(),
                                applied,
                            },
                        });
                    }
                    records.push(DirectiveRecord {
                        directive: d.to_string(),
                        applied,
                    });
                }
                if let Some(prefetcher) = prefetcher {
                    ad.telemetry.epochs.push(EpochRecord {
                        feedback,
                        prefetcher,
                        directives: records,
                    });
                }
                ad.prev_telemetry[c] = telem;
                ad.prev_core[c] = core_stats;
                ad.prev_retired[c] = retired;
            }
            ad.prev_dram = dram;
            ad.prev_l3 = l3;
            ad.epoch += 1;
            ad.next_boundary += ad.epoch_cycles;
        }
        processed
    }

    /// Processes every observability epoch boundary at or before the
    /// current cycle: compute the epoch's metric row from counter
    /// deltas, stream it, and log the boundary event.
    ///
    /// Like [`adapt_epochs`](Self::adapt_epochs), this runs at the top
    /// of the run loop, before the boundary cycle's tick; a
    /// fast-forward jump can only land past a boundary by skipping
    /// provably idle cycles, so the deltas (and therefore the rows and
    /// events) are bit-identical across the naive and fast-forwarding
    /// loops.
    fn process_obs_epochs(&mut self) {
        let Some(ob) = self.obs_rt.as_mut() else {
            return;
        };
        while self.cycle >= ob.next_boundary {
            let boundary = ob.next_boundary;
            let start_cycle = boundary - ob.epoch_cycles;
            let retired = self.cores[0].retired();
            let l2 = self.uncore.prefetch_telemetry(CoreId(0));
            let dram = self.uncore.dram_stats();
            let instructions = retired - ob.prev_retired;
            let fills = l2.prefetch_fills - ob.prev_l2.prefetch_fills;
            let useful = l2.useful - ob.prev_l2.useful;
            let misses = l2.misses - ob.prev_l2.misses;
            let issued = l2.issued - ob.prev_l2.issued;
            let late = l2.late_promotions - ob.prev_l2.late_promotions;
            let reads = dram.reads - ob.prev_dram.reads;
            let writes = dram.writes - ob.prev_dram.writes;
            let busy = (reads + writes) * self.uncore.dram_line_transfer_cycles();
            let capacity = ob.epoch_cycles * self.uncore.dram_channels() as u64;
            let ratio = |num: u64, den: u64| {
                if den == 0 {
                    0.0
                } else {
                    num as f64 / den as f64
                }
            };
            let row = EpochRow {
                epoch: ob.epoch,
                start_cycle,
                cycles: ob.epoch_cycles,
                instructions,
                ipc: ratio(instructions, ob.epoch_cycles),
                accuracy: ratio(useful, fills),
                coverage: ratio(useful, useful + misses),
                lateness: ratio(late, issued),
                occupancy: ratio(busy, capacity),
                l3_prefetch_resident: self.uncore.l3_prefetched_lines(),
            };
            ob.stream.write_row(&row);
            ob.rows.push(row);
            self.uncore.record_event(Event {
                cycle: boundary,
                core: 0,
                site: ObsSite::Sys,
                kind: EventKind::EpochEnd { epoch: ob.epoch },
            });
            ob.prev_retired = retired;
            ob.prev_l2 = l2;
            ob.prev_dram = dram;
            ob.epoch += 1;
            ob.next_boundary += ob.epoch_cycles;
        }
    }

    /// Assembles the run's observability report, consuming the epoch
    /// series. `None` when every [`SimConfig::obs`] channel is off.
    fn take_obs_report(&mut self) -> Option<ObsReport> {
        if !self.cfg.obs.enabled() {
            return None;
        }
        let (events, dropped_events) = match self.uncore.event_log() {
            Some((events, dropped)) => (events.to_vec(), dropped),
            None => (Vec::new(), 0),
        };
        let epochs = self.obs_rt.take().map(|ob| ob.rows).unwrap_or_default();
        Some(ObsReport {
            events,
            dropped_events,
            epochs,
            profile: ProfileSlot(self.prof.report()),
        })
    }

    /// Runs until core 0 has retired `instructions` more instructions (or
    /// the safety cycle cap is hit).
    ///
    /// With [`SimConfig::fast_forward`] on (the default), the run is
    /// driven by the event wheel: each source ticks only on cycles it
    /// may have work, and whole-system idle stretches are skipped by
    /// popping the wheel instead of recomputing per-source bounds every
    /// cycle. Elided ticks and skipped cycles are provable no-ops, so
    /// the simulation stays cycle-exact; only wall-clock time changes.
    fn run_until_retired(&mut self, instructions: u64) -> u64 {
        let start_retired = self.cores[0].retired();
        let target = start_retired + instructions;
        let start_cycle = self.cycle;
        // Safety net: a run that sinks below 0.002 IPC is considered hung
        // (deadlock guard for development; never triggered in practice).
        let cycle_cap = self.cycle + instructions * 500 + 1_000_000;
        if self.cfg.fast_forward {
            self.run_scheduled(target, cycle_cap);
        } else {
            // Naive reference loop: everything ticks every cycle.
            while self.cores[0].retired() < target && self.cycle < cycle_cap {
                if self.adapt.is_some() {
                    self.adapt_epochs();
                }
                if self.obs_rt.is_some() {
                    self.process_obs_epochs();
                }
                self.step();
            }
        }
        assert!(
            self.cores[0].retired() >= target,
            "simulation stalled: {} of {} instructions after {} cycles ({})",
            self.cores[0].retired() - start_retired,
            instructions,
            self.cycle - start_cycle,
            self.benchmark,
        );
        self.cycle - start_cycle
    }

    /// Makes every wheel source due at the current cycle. Used to seed a
    /// scheduled run and to invalidate all posted bounds after an
    /// adaptive directive reconfigures prefetcher state.
    fn wake_all(&mut self) {
        for src in 0..self.wheel.sources() {
            self.wheel.post(src as u16, self.cycle);
        }
    }

    /// The wheel-driven run loop (fast-forward on): epoch boundaries are
    /// processed at the loop top, before the boundary cycle's tick, then
    /// the system advances either serially ([`step_scheduled`] plus a
    /// wheel skip) or in parallel tick segments bounded by the next
    /// boundary ([`run_segment_parallel`]).
    ///
    /// [`step_scheduled`]: Self::step_scheduled
    /// [`run_segment_parallel`]: Self::run_segment_parallel
    fn run_scheduled(&mut self, target: u64, cycle_cap: Cycle) {
        // Seed: every source starts due (a conservative post is always
        // safe — early wake-ups are no-op ticks).
        self.wake_all();
        let threads = match self.cfg.tick_threads {
            0 => barrier::available_threads(),
            n => n,
        };
        let workers = threads.min(self.cores.len()).saturating_sub(1);
        while self.cores[0].retired() < target && self.cycle < cycle_cap {
            if self.adapt.is_some() && self.adapt_epochs() {
                self.wake_all();
            }
            if self.obs_rt.is_some() {
                self.process_obs_epochs();
            }
            if workers >= 1 {
                // A segment may SKIP past its stop cycle (idle, exactly
                // as the serial loop would) but never TICKS a cycle at
                // or beyond it, so boundary processing stays "before the
                // boundary cycle's tick".
                let stop_at = cycle_cap
                    .min(self.adapt.as_ref().map_or(Cycle::MAX, |a| a.next_boundary))
                    .min(self.obs_rt.as_ref().map_or(Cycle::MAX, |o| o.next_boundary));
                self.run_segment_parallel(target, stop_at, cycle_cap, workers);
            } else {
                self.step_scheduled();
                // Never fast-forward once the window boundary is
                // reached: the skip would push `cycle` past the stopping
                // point and shift the next window's start relative to
                // the naive loop.
                if self.cores[0].retired() < target {
                    let timer = self.prof.start(Phase::FastForward);
                    let next = self.wheel.next_after(self.cycle);
                    self.prof.stop(timer);
                    if next > self.cycle {
                        // Cap the jump so a genuine deadlock (next ==
                        // MAX) still lands on the cycle-cap diagnostics.
                        self.cycle = next.min(cycle_cap);
                    }
                }
            }
        }
    }

    /// Runs scheduled cycles until the retirement target, `stop_at` or
    /// the cycle cap, ticking cores 1.. on `n_workers` worker threads
    /// with a barrier rendezvous per simulated cycle.
    ///
    /// Determinism argument: within a cycle, core ticks read and write
    /// only their own core's state — all cross-core interaction flows
    /// through uncore requests. Workers therefore only *accumulate*
    /// requests into their per-core mailboxes; the main thread replays
    /// them into the uncore afterwards in the exact serial order (all
    /// fill-phase requests in core-ascending order, then all tick-phase
    /// requests in core-ascending order), and forwards observability
    /// events in the same fixed order. Every simulated outcome is thus a
    /// pure function of simulated state, independent of thread count and
    /// scheduling — `tick_threads: 8` produces bit-identical
    /// [`SimResult`]s to `tick_threads: 1`.
    fn run_segment_parallel(
        &mut self,
        target: u64,
        stop_at: Cycle,
        cycle_cap: Cycle,
        n_workers: usize,
    ) {
        let events_on = self.uncore.events_enabled();
        let cells: Vec<Mutex<CoreCell>> = self
            .cores
            .drain(1..)
            .map(|core| {
                Mutex::new(CoreCell {
                    core,
                    fills: Vec::new(),
                    fill_reqs: Vec::with_capacity(8),
                    tick_reqs: Vec::with_capacity(8),
                    obs: Vec::new(),
                    due: false,
                    ticked: false,
                    next_work: 0,
                })
            })
            .collect();
        let sync = TickSync::new();
        let worker = |w: usize| {
            let mut seen = 0u64;
            loop {
                let (gen, cmd) = sync.await_command(seen);
                seen = gen;
                if cmd == STOP {
                    break;
                }
                let _done = sync.done_guard();
                let now = cmd;
                let mut ci = w;
                while ci < cells.len() {
                    let mut cell = cells[ci].lock().expect("tick worker panicked"); // bosim-lint: allow(P002, a poisoned mailbox means a sibling worker panicked; propagating is the only sound option)
                    let cell = &mut *cell;
                    if cell.due {
                        cell.fill_reqs.clear();
                        cell.tick_reqs.clear();
                        for f in 0..cell.fills.len() {
                            let line = cell.fills[f];
                            cell.core.fill(line, now, &mut cell.fill_reqs);
                        }
                        cell.fills.clear();
                        cell.core.tick(now, &mut cell.tick_reqs);
                        if events_on {
                            cell.core.drain_obs(&mut cell.obs);
                        }
                        cell.next_work = cell.core.next_work_cycle(now + 1);
                        cell.ticked = true;
                    }
                    ci += n_workers;
                }
            }
        };
        barrier::scoped_workers(
            n_workers,
            worker,
            || {
                let mut c0_reqs: Vec<UncoreRequest> = Vec::with_capacity(8);
                let mut gens = 0u64;
                while self.cores[0].retired() < target && self.cycle < stop_at {
                    let now = self.cycle;
                    self.steps += 1;
                    let mut dispatched = false;
                    // Uncore phase: tick if due, repost, route fills.
                    // Core 0's fills are applied (and their requests
                    // dispatched) inline — they come first in delivery
                    // order; worker cores' fills go to their mailboxes.
                    if self.wheel.due(UNCORE_SRC, now) {
                        self.fill_buf.clear();
                        let timer = self.prof.start(Phase::UncoreTick);
                        self.uncore.tick(now, &mut self.fill_buf, &mut self.prof);
                        self.prof.stop(timer);
                        let next = self.uncore.next_ready_after(now);
                        self.wheel.post(UNCORE_SRC, next);
                        for i in 0..self.fill_buf.len() {
                            let (core, line) = self.fill_buf[i];
                            if core.index() == 0 {
                                self.wheel.post(core_src(0), now);
                                self.req_buf.clear();
                                self.cores[0].fill(line, now, &mut self.req_buf);
                                for r in 0..self.req_buf.len() {
                                    let req = self.req_buf[r];
                                    self.dispatch_request(core, req, now);
                                    dispatched = true;
                                }
                            } else {
                                lock_cell(&cells[core.index() - 1]).fills.push(line);
                            }
                        }
                    }
                    // Mark dues, then release the workers on this cycle.
                    for (ci, cell) in cells.iter().enumerate() {
                        let mut cell = lock_cell(cell);
                        cell.due = self.wheel.due(core_src(ci + 1), now) || !cell.fills.is_empty();
                        cell.ticked = false;
                    }
                    sync.issue(now);
                    gens += 1;
                    // Core 0 ticks on this thread, concurrently with the
                    // workers; its requests are deferred like theirs
                    // (core ticks never read uncore state).
                    c0_reqs.clear();
                    let timer = self.prof.start(Phase::CoreTick);
                    if self.wheel.due(core_src(0), now) {
                        self.cores[0].tick(now, &mut c0_reqs);
                        self.wheel
                            .post(core_src(0), self.cores[0].next_work_cycle(now + 1));
                    }
                    self.prof.stop(timer);
                    sync.await_done(gens * n_workers as u64);
                    // Replay the deferred requests in serial order:
                    // remaining fill-phase requests (cores ascending),
                    // then tick-phase requests (cores ascending).
                    for (ci, cell) in cells.iter().enumerate() {
                        let cell = lock_cell(cell);
                        if !cell.ticked {
                            continue;
                        }
                        for r in 0..cell.fill_reqs.len() {
                            let req = cell.fill_reqs[r];
                            self.dispatch_request(CoreId((ci + 1) as u8), req, now);
                            dispatched = true;
                        }
                    }
                    for &req in &c0_reqs {
                        self.dispatch_request(CoreId(0), req, now);
                        dispatched = true;
                    }
                    for (ci, cell) in cells.iter().enumerate() {
                        let cell = lock_cell(cell);
                        if !cell.ticked {
                            continue;
                        }
                        for r in 0..cell.tick_reqs.len() {
                            let req = cell.tick_reqs[r];
                            self.dispatch_request(CoreId((ci + 1) as u8), req, now);
                            dispatched = true;
                        }
                        self.wheel.post(core_src(ci + 1), cell.next_work);
                    }
                    if dispatched {
                        self.wake_uncore(now + 1);
                    }
                    // Observability events, in the serial order: core 0
                    // first, then worker cores ascending.
                    if events_on {
                        self.drain_core_obs(now);
                        for (ci, cell) in cells.iter().enumerate() {
                            let mut cell = lock_cell(cell);
                            for e in 0..cell.obs.len() {
                                let kind = match cell.obs[e] {
                                    CoreObsEvent::L1PrefetchIssued { line } => {
                                        EventKind::PrefetchIssued { line: line.0 }
                                    }
                                    CoreObsEvent::L1PrefetchTlbDrop => {
                                        EventKind::PrefetchDropped { line: 0 }
                                    }
                                };
                                self.uncore.record_event(Event {
                                    cycle: now,
                                    core: (ci + 1) as u32,
                                    site: ObsSite::L1d,
                                    kind,
                                });
                            }
                            cell.obs.clear();
                        }
                    }
                    self.cycle += 1;
                    if self.cores[0].retired() < target {
                        let timer = self.prof.start(Phase::FastForward);
                        let next = self.wheel.next_after(self.cycle);
                        self.prof.stop(timer);
                        if next > self.cycle {
                            self.cycle = next.min(cycle_cap);
                        }
                    }
                }
            },
            || sync.issue(STOP),
        );
        for cell in cells {
            let cell = cell.into_inner().expect("tick worker panicked"); // bosim-lint: allow(P002, a poisoned mailbox means a worker panicked; propagating is the only sound option)
            self.cores.push(cell.core);
        }
    }

    /// Freezes the cores and ticks the uncore until it is fully
    /// quiescent — every fill delivered, every queue and DRAM channel
    /// empty — then returns the cumulative uncore statistics.
    ///
    /// Mid-run, an in-flight request is counted in `l2_accesses` but
    /// not yet classified as a hit or miss (classification is deferred
    /// to the arrival that services it), so
    /// `l2_hits + l2_misses <= l2_accesses` with equality only at
    /// quiescence. This is the hook that lets accounting tests check
    /// the equality exactly; call it after the final
    /// [`run`](Self::run) and do not step the system afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the uncore fails to quiesce within a generous cycle
    /// cap (a genuine deadlock).
    pub fn drain_uncore(&mut self) -> UncoreStats {
        let cap = self.cycle + 10_000_000;
        while self.uncore.next_event_cycle(self.cycle) != Cycle::MAX {
            assert!(self.cycle < cap, "uncore failed to drain (deadlock?)");
            self.fill_buf.clear();
            self.uncore
                .tick(self.cycle, &mut self.fill_buf, &mut self.prof);
            for i in 0..self.fill_buf.len() {
                let (core, line) = self.fill_buf[i];
                self.req_buf.clear();
                self.cores[core.index()].fill(line, self.cycle, &mut self.req_buf);
                for r in 0..self.req_buf.len() {
                    let req = self.req_buf[r];
                    self.dispatch_request(core, req, self.cycle);
                }
            }
            self.cycle += 1;
        }
        self.uncore.stats()
    }

    /// Runs warm-up + measurement per the configuration and returns the
    /// measured-window result.
    pub fn run(&mut self) -> SimResult {
        self.run_until_retired(self.cfg.warmup_instructions);
        // Snapshot at the measurement-window start.
        let core_before = self.cores[0].stats();
        let uncore_before = self.uncore.stats();
        let dram_before = self.uncore.dram_stats();
        let cycles = self.run_until_retired(self.cfg.measure_instructions);
        let core_after = self.cores[0].stats();
        let uncore_after = self.uncore.stats();
        let dram_after = self.uncore.dram_stats();
        SimResult {
            benchmark: self.benchmark.clone(),
            config: self.cfg.label(),
            instructions: core_after.retired - core_before.retired,
            cycles,
            core: diff_core(core_before, core_after),
            uncore: diff_uncore(uncore_before, uncore_after),
            dram: diff_dram(dram_before, dram_after),
            l2_site: self.uncore.prefetch_telemetry(CoreId(0)),
            l3_site: self.uncore.l3_prefetch_telemetry(),
            adapt: self.adapt.as_ref().map(|a| a.telemetry.clone()),
            obs: self.take_obs_report(),
        }
    }
}

fn diff_core(a: CoreStats, b: CoreStats) -> CoreStats {
    CoreStats {
        retired: b.retired - a.retired,
        branches: b.branches - a.branches,
        mispredicts: b.mispredicts - a.mispredicts,
        loads: b.loads - a.loads,
        stores: b.stores - a.stores,
        dl1_hits: b.dl1_hits - a.dl1_hits,
        dl1_misses: b.dl1_misses - a.dl1_misses,
        il1_misses: b.il1_misses - a.il1_misses,
        l1_prefetches: b.l1_prefetches - a.l1_prefetches,
        l1_prefetch_tlb_drops: b.l1_prefetch_tlb_drops - a.l1_prefetch_tlb_drops,
    }
}

fn diff_uncore(a: UncoreStats, b: UncoreStats) -> UncoreStats {
    UncoreStats {
        l2_accesses: b.l2_accesses - a.l2_accesses,
        l2_hits: b.l2_hits - a.l2_hits,
        l2_prefetched_hits: b.l2_prefetched_hits - a.l2_prefetched_hits,
        l2_misses: b.l2_misses - a.l2_misses,
        l2_fill_merges: b.l2_fill_merges - a.l2_fill_merges,
        l2_prefetches_queued: b.l2_prefetches_queued - a.l2_prefetches_queued,
        l2_prefetches_issued: b.l2_prefetches_issued - a.l2_prefetches_issued,
        l2_prefetches_cancelled: b.l2_prefetches_cancelled - a.l2_prefetches_cancelled,
        l2_prefetches_redundant: b.l2_prefetches_redundant - a.l2_prefetches_redundant,
        l2_prefetch_fills: b.l2_prefetch_fills - a.l2_prefetch_fills,
        l3_accesses: b.l3_accesses - a.l3_accesses,
        l3_hits: b.l3_hits - a.l3_hits,
        l3_misses: b.l3_misses - a.l3_misses,
        l3_fill_merges: b.l3_fill_merges - a.l3_fill_merges,
        l3_prefetches_queued: b.l3_prefetches_queued - a.l3_prefetches_queued,
        l3_prefetches_issued: b.l3_prefetches_issued - a.l3_prefetches_issued,
        l3_prefetches_cancelled: b.l3_prefetches_cancelled - a.l3_prefetches_cancelled,
        l3_prefetches_redundant: b.l3_prefetches_redundant - a.l3_prefetches_redundant,
        l3_prefetch_fills: b.l3_prefetch_fills - a.l3_prefetch_fills,
        dram_writebacks: b.dram_writebacks - a.dram_writebacks,
    }
}

fn diff_dram(a: DramStats, b: DramStats) -> DramStats {
    DramStats {
        reads: b.reads - a.reads,
        writes: b.writes - a.writes,
        row_hits: b.row_hits - a.row_hits,
        row_opens: b.row_opens - a.row_opens,
        row_conflicts: b.row_conflicts - a.row_conflicts,
        urgent_reads: b.urgent_reads - a.urgent_reads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::prefetchers;
    use bosim_types::PageSize;

    fn quick_cfg() -> SimConfig {
        SimConfig {
            warmup_instructions: 20_000,
            measure_instructions: 60_000,
            ..Default::default()
        }
    }

    #[test]
    fn sequential_benchmark_runs_and_reports() {
        let spec = suite::benchmark("462").expect("exists");
        let mut sys = System::new(&quick_cfg(), &spec);
        let res = sys.run();
        assert_eq!(res.instructions, 60_000);
        assert!(res.ipc() > 0.05, "IPC {}", res.ipc());
        assert!(res.ipc() < 6.0);
        assert!(res.dram.reads > 0, "{:?}", res.dram);
    }

    #[test]
    fn compute_benchmark_has_high_ipc_and_low_dram() {
        let spec = suite::benchmark("444").expect("exists");
        let cfg = SimConfig {
            warmup_instructions: 80_000,
            measure_instructions: 60_000,
            ..Default::default()
        };
        let mut sys = System::new(&cfg, &spec);
        let res = sys.run();
        assert!(res.ipc() > 1.0, "compute-bound IPC {}", res.ipc());
        // Once the resident working set is warm, DRAM traffic is low.
        assert!(
            res.dram_accesses_per_ki() < 8.0,
            "resident benchmark dram/ki {}",
            res.dram_accesses_per_ki()
        );
    }

    #[test]
    fn bo_beats_no_prefetch_on_streams() {
        let spec = suite::benchmark("462").expect("exists");
        let base = quick_cfg();

        let mut none = System::new(&base.clone().with_prefetcher(prefetchers::none()), &spec);
        let ipc_none = none.run().ipc();

        let mut bo = System::new(&base.with_prefetcher(prefetchers::bo_default()), &spec);
        let ipc_bo = bo.run().ipc();
        assert!(ipc_bo > ipc_none * 1.05, "BO {ipc_bo} vs none {ipc_none}");
    }

    #[test]
    fn file_backed_benchmark_runs_with_sampling() {
        use bosim_trace::{capture, champsim, ExternalSpec, SampleSpec, TraceFormat};
        let path = std::env::temp_dir().join(format!(
            "bosim_system_external_{}.champsim",
            std::process::id()
        ));
        let uops = capture(&mut suite::benchmark("462").unwrap().build(), 20_000);
        std::fs::write(&path, champsim::encode(&uops)).unwrap();
        let bench =
            BenchmarkSpec::from_trace(ExternalSpec::new(&path, TraceFormat::ChampSim).named("462"));
        let cfg = SimConfig {
            warmup_instructions: 5_000,
            measure_instructions: 20_000,
            sample: Some(SampleSpec::periodic(2_000, 1_000, 4_000)),
            ..Default::default()
        };
        let mut sys = System::new(&cfg, &bench);
        let res = sys.run();
        assert_eq!(res.benchmark, "462");
        assert_eq!(res.instructions, 20_000);
        assert!(res.ipc() > 0.01);
        // L2 classification is synchronous: plain hits + prefetched
        // hits + misses always account for every access.
        assert_eq!(
            res.uncore.l2_hits + res.uncore.l2_prefetched_hits + res.uncore.l2_misses,
            res.uncore.l2_accesses
        );
        res.check_site_invariants().expect("telemetry invariants");
        // L3 classification is deferred to the servicing arrival, so
        // its accounting closes exactly only at quiescence.
        let drained = sys.drain_uncore();
        assert_eq!(drained.l3_hits + drained.l3_misses, drained.l3_accesses);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "cannot load benchmark")]
    fn missing_trace_file_panics_with_the_name() {
        use bosim_trace::{ExternalSpec, TraceFormat};
        let bench = BenchmarkSpec::from_trace(
            ExternalSpec::new("/nonexistent/gone.champsim", TraceFormat::ChampSim).named("gone"),
        );
        let _ = System::new(&SimConfig::default(), &bench);
    }

    #[test]
    fn two_core_config_runs() {
        let spec = suite::benchmark("470").expect("exists");
        let cfg = SimConfig {
            active_cores: 2,
            page: PageSize::M4,
            warmup_instructions: 10_000,
            measure_instructions: 30_000,
            ..Default::default()
        };
        let mut sys = System::new(&cfg, &spec);
        let res = sys.run();
        assert!(res.ipc() > 0.01);
    }
}
