//! The open prefetcher-construction interface.
//!
//! [`PrefetcherSpec`] replaces the closed `L2PrefetcherKind` enum of
//! earlier revisions: a spec is a small, cloneable *description* of an L2
//! prefetcher (its algorithm and parameters) that knows how to build the
//! live [`L2Prefetcher`] state machine for a concrete [`SimConfig`].
//! Because the trait is public and object-safe, new prefetchers plug into
//! the simulator from any crate — nothing in `bosim-sim` needs editing
//! (see [`crate::registry`] for by-name discovery).
//!
//! The six prefetchers evaluated in the paper are provided as built-in
//! specs via the [`prefetchers`] constructor functions.

use crate::config::SimConfig;
use best_offset::{BestOffsetPrefetcher, BoConfig, L2Prefetcher, NullPrefetcher};
use bosim_baselines::{
    AmpmConfig, AmpmPrefetcher, FixedOffsetPrefetcher, SandboxPrefetcher, SbpConfig,
};
use std::fmt;
use std::sync::Arc;

/// A description of an L2 prefetcher that can build the live prefetcher
/// for a simulation run.
///
/// Implementations should be cheap value types holding algorithm
/// parameters; [`build`](Self::build) is called once per simulated core.
/// The `Debug` representation must include every parameter that affects
/// behaviour — the experiment harness uses it to deduplicate identical
/// simulation jobs.
pub trait PrefetcherSpec: fmt::Debug + Send + Sync {
    /// Label used in configuration labels, reports and registry lookups
    /// (`"BO"`, `"next-line"`, `"offset-5"`, ...).
    fn name(&self) -> String;

    /// Builds the prefetcher state machine for one core of `cfg`'s
    /// machine.
    fn build(&self, cfg: &SimConfig) -> Box<dyn L2Prefetcher>;

    /// Validates the spec's parameters against `cfg` *before* any
    /// simulation runs. [`SimConfig::validate`] calls this, so an
    /// invalid spec (a BO degree of 3, an empty offset list) is reported
    /// as a [`crate::ConfigError`] instead of panicking mid-sweep when
    /// [`build`](Self::build) runs on a worker thread.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    fn validate(&self, cfg: &SimConfig) -> Result<(), String> {
        let _ = cfg;
        Ok(())
    }
}

/// A shared, cloneable handle to a [`PrefetcherSpec`].
///
/// This is what [`SimConfig`] stores: configurations stay `Clone` while
/// the spec itself is allocated once.
#[derive(Clone)]
pub struct PrefetcherHandle(Arc<dyn PrefetcherSpec>);

impl PrefetcherHandle {
    /// Wraps a spec into a shareable handle.
    pub fn new(spec: impl PrefetcherSpec + 'static) -> Self {
        PrefetcherHandle(Arc::new(spec))
    }

    /// Wraps an already-shared spec.
    pub fn from_arc(spec: Arc<dyn PrefetcherSpec>) -> Self {
        PrefetcherHandle(spec)
    }

    /// The spec's report label.
    pub fn name(&self) -> String {
        self.0.name()
    }

    /// Builds the live prefetcher for one core of `cfg`'s machine.
    pub fn build(&self, cfg: &SimConfig) -> Box<dyn L2Prefetcher> {
        self.0.build(cfg)
    }

    /// Borrows the underlying spec.
    pub fn spec(&self) -> &dyn PrefetcherSpec {
        self.0.as_ref()
    }
}

impl fmt::Debug for PrefetcherHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<S: PrefetcherSpec + 'static> From<S> for PrefetcherHandle {
    fn from(spec: S) -> Self {
        PrefetcherHandle::new(spec)
    }
}

/// No L2 prefetching (the Figure 5 comparison point).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefetchSpec;

impl PrefetcherSpec for NoPrefetchSpec {
    fn name(&self) -> String {
        "no-prefetch".into()
    }

    fn build(&self, cfg: &SimConfig) -> Box<dyn L2Prefetcher> {
        Box::new(NullPrefetcher::new(cfg.page))
    }
}

/// Next-line prefetching — the paper's default L2 baseline (§5.6).
#[derive(Debug, Clone, Copy, Default)]
pub struct NextLineSpec;

impl PrefetcherSpec for NextLineSpec {
    fn name(&self) -> String {
        "next-line".into()
    }

    fn build(&self, cfg: &SimConfig) -> Box<dyn L2Prefetcher> {
        Box::new(FixedOffsetPrefetcher::next_line(cfg.page))
    }
}

/// A constant offset `D` (Figures 7 and 8).
#[derive(Debug, Clone, Copy)]
pub struct FixedOffsetSpec {
    /// The constant line offset.
    pub offset: i64,
}

impl PrefetcherSpec for FixedOffsetSpec {
    fn name(&self) -> String {
        format!("offset-{}", self.offset)
    }

    fn build(&self, cfg: &SimConfig) -> Box<dyn L2Prefetcher> {
        Box::new(FixedOffsetPrefetcher::new(self.offset, cfg.page))
    }

    fn validate(&self, _cfg: &SimConfig) -> Result<(), String> {
        if self.offset == 0 {
            return Err("offset 0 is not a prefetch".into());
        }
        Ok(())
    }
}

/// The Best-Offset prefetcher (§4).
#[derive(Debug, Clone, Default)]
pub struct BoSpec {
    /// Algorithm parameters (Table 2 defaults).
    pub config: BoConfig,
}

impl PrefetcherSpec for BoSpec {
    fn name(&self) -> String {
        "BO".into()
    }

    fn build(&self, cfg: &SimConfig) -> Box<dyn L2Prefetcher> {
        Box::new(BestOffsetPrefetcher::new(self.config.clone(), cfg.page))
    }

    fn validate(&self, _cfg: &SimConfig) -> Result<(), String> {
        self.config.validate().map_err(|e| e.to_string())
    }
}

/// The Sandbox prefetcher as adapted in §6.3.
#[derive(Debug, Clone, Default)]
pub struct SbpSpec {
    /// Algorithm parameters.
    pub config: SbpConfig,
}

impl PrefetcherSpec for SbpSpec {
    fn name(&self) -> String {
        "SBP".into()
    }

    fn build(&self, cfg: &SimConfig) -> Box<dyn L2Prefetcher> {
        Box::new(SandboxPrefetcher::new(self.config.clone(), cfg.page))
    }
}

/// AMPM-lite (extension; the DPC-1 winner referenced in §2).
#[derive(Debug, Clone, Default)]
pub struct AmpmSpec {
    /// Algorithm parameters.
    pub config: AmpmConfig,
}

impl PrefetcherSpec for AmpmSpec {
    fn name(&self) -> String {
        "AMPM".into()
    }

    fn build(&self, cfg: &SimConfig) -> Box<dyn L2Prefetcher> {
        Box::new(AmpmPrefetcher::new(self.config.clone(), cfg.page))
    }
}

/// An adaptive alias around another spec: the registry's
/// `adaptive-<name>` family resolves to this wrapper.
///
/// The wrapper builds exactly the inner prefetcher — adaptivity lives in
/// the *system*, configured through [`SimConfig::adapt`] — but its
/// validation insists that an adaptive-control configuration is present,
/// so a run named `adaptive-bo` without a policy fails fast instead of
/// silently running static BO.
#[derive(Debug)]
pub struct AdaptiveSpec {
    /// The wrapped (initial) prefetcher.
    pub inner: PrefetcherHandle,
}

impl PrefetcherSpec for AdaptiveSpec {
    fn name(&self) -> String {
        format!("adaptive-{}", self.inner.name())
    }

    fn build(&self, cfg: &SimConfig) -> Box<dyn L2Prefetcher> {
        self.inner.build(cfg)
    }

    fn validate(&self, cfg: &SimConfig) -> Result<(), String> {
        self.inner.spec().validate(cfg)?;
        if cfg.adapt.is_none() {
            return Err(format!(
                "{} requires adaptive control: set SimConfig::builder().adapt(AdaptConfig::new(..))",
                self.name()
            ));
        }
        Ok(())
    }
}

/// Constructor shorthands for the built-in prefetcher specs.
///
/// ```
/// use bosim::{prefetchers, SimConfig};
///
/// let cfg = SimConfig::default().with_prefetcher(prefetchers::bo_default());
/// assert_eq!(cfg.l2_prefetcher.name(), "BO");
/// ```
pub mod prefetchers {
    use super::*;

    /// No L2 prefetching.
    pub fn none() -> PrefetcherHandle {
        PrefetcherHandle::new(NoPrefetchSpec)
    }

    /// Next-line prefetching (the baseline).
    pub fn next_line() -> PrefetcherHandle {
        PrefetcherHandle::new(NextLineSpec)
    }

    /// Constant-offset prefetching with offset `d`.
    pub fn fixed(d: i64) -> PrefetcherHandle {
        PrefetcherHandle::new(FixedOffsetSpec { offset: d })
    }

    /// Best-Offset prefetching with explicit parameters.
    pub fn bo(config: BoConfig) -> PrefetcherHandle {
        PrefetcherHandle::new(BoSpec { config })
    }

    /// Best-Offset prefetching with the Table 2 defaults.
    pub fn bo_default() -> PrefetcherHandle {
        bo(BoConfig::default())
    }

    /// Sandbox prefetching with explicit parameters.
    pub fn sbp(config: SbpConfig) -> PrefetcherHandle {
        PrefetcherHandle::new(SbpSpec { config })
    }

    /// Sandbox prefetching with the §6.3 defaults.
    pub fn sbp_default() -> PrefetcherHandle {
        sbp(SbpConfig::default())
    }

    /// AMPM-lite prefetching with explicit parameters.
    pub fn ampm(config: AmpmConfig) -> PrefetcherHandle {
        PrefetcherHandle::new(AmpmSpec { config })
    }

    /// AMPM-lite prefetching with default parameters.
    pub fn ampm_default() -> PrefetcherHandle {
        ampm(AmpmConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names() {
        assert_eq!(prefetchers::none().name(), "no-prefetch");
        assert_eq!(prefetchers::next_line().name(), "next-line");
        assert_eq!(prefetchers::fixed(5).name(), "offset-5");
        assert_eq!(prefetchers::bo_default().name(), "BO");
        assert_eq!(prefetchers::sbp_default().name(), "SBP");
        assert_eq!(prefetchers::ampm_default().name(), "AMPM");
    }

    #[test]
    fn specs_build_matching_prefetchers() {
        let cfg = SimConfig::default();
        for (handle, built_name) in [
            (prefetchers::none(), "none"),
            (prefetchers::bo_default(), "BO"),
            (prefetchers::sbp_default(), "SBP"),
            (prefetchers::ampm_default(), "AMPM"),
        ] {
            assert_eq!(handle.build(&cfg).name(), built_name);
        }
    }

    #[test]
    fn debug_reflects_parameters() {
        let a = format!("{:?}", prefetchers::fixed(3));
        let b = format!("{:?}", prefetchers::fixed(4));
        assert_ne!(a, b, "job dedup relies on parameter-carrying Debug");
    }
}
