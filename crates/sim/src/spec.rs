//! The open prefetcher-construction interface.
//!
//! [`PrefetcherSpec`] replaces the closed `L2PrefetcherKind` enum of
//! earlier revisions: a spec is a small, cloneable *description* of a
//! prefetcher (its algorithm and parameters) that knows how to build the
//! live [`Prefetcher`] state machine for a concrete [`SimConfig`].
//! Because the trait is public and object-safe, new prefetchers plug into
//! the simulator from any crate — nothing in `bosim-sim` needs editing
//! (see [`crate::registry`] for by-name discovery).
//!
//! Specs are *site-aware*: [`supported_sites`](PrefetcherSpec::supported_sites)
//! names the [`PrefetchSite`]s a spec can attach to. Line-address
//! prefetchers (BO, fixed-offset, SBP, AMPM) are site-neutral between L2
//! and L3; the PC-indexed [`StrideSpec`] is L1D-only and builds through
//! [`build_l1`](PrefetcherSpec::build_l1) instead of
//! [`build`](PrefetcherSpec::build). Configuration validation rejects a
//! spec placed at a site it does not support.
//!
//! The prefetchers evaluated in the paper are provided as built-in specs
//! via the [`prefetchers`] constructor functions.

use crate::config::SimConfig;
use best_offset::{
    BestOffsetPrefetcher, BoConfig, L1Prefetcher, NullPrefetcher, PrefetchSite, Prefetcher,
};
use bosim_baselines::{
    AmpmConfig, AmpmPrefetcher, FixedOffsetPrefetcher, SandboxPrefetcher, SbpConfig, StrideConfig,
    StridePrefetcher,
};
use std::fmt;
use std::sync::Arc;

/// The sites a plain line-address prefetcher can attach to (the default
/// of [`PrefetcherSpec::supported_sites`]).
pub const LINE_ADDRESS_SITES: &[PrefetchSite] = &[PrefetchSite::L2, PrefetchSite::L3];

/// The one source of the "does not attach to site ..." diagnostic,
/// shared by registry resolution and configuration validation.
pub(crate) fn site_mismatch_reason(site: PrefetchSite, supported: &[PrefetchSite]) -> String {
    let supported: Vec<&str> = supported.iter().map(|s| s.label()).collect();
    format!(
        "does not attach to site {site} (supports: {})",
        supported.join(", ")
    )
}

/// A description of a prefetcher that can build the live prefetcher for
/// a simulation run.
///
/// Implementations should be cheap value types holding algorithm
/// parameters; [`build`](Self::build) is called once per simulated core
/// (or once for the shared L3 site). The `Debug` representation must
/// include every parameter that affects behaviour — the experiment
/// harness uses it to deduplicate identical simulation jobs.
pub trait PrefetcherSpec: fmt::Debug + Send + Sync {
    /// Label used in configuration labels, reports and registry lookups
    /// (`"BO"`, `"next-line"`, `"offset-5"`, `"stride"`, ...).
    fn name(&self) -> String;

    /// Builds the line-address prefetcher state machine (the L2/L3
    /// sites). For an L1D-only spec this is never reached through a
    /// validated configuration; such specs return a null prefetcher.
    fn build(&self, cfg: &SimConfig) -> Box<dyn Prefetcher>;

    /// The sites this spec can attach to. Defaults to the line-address
    /// sites (L2 and L3); L1D-only specs override this.
    fn supported_sites(&self) -> &'static [PrefetchSite] {
        LINE_ADDRESS_SITES
    }

    /// Builds the L1D-site (virtual-address, PC-indexed) prefetcher.
    /// `None` for specs that do not support the L1D site (the default).
    fn build_l1(&self, cfg: &SimConfig) -> Option<Box<dyn L1Prefetcher>> {
        let _ = cfg;
        None
    }

    /// Validates the spec's parameters against `cfg` *before* any
    /// simulation runs. [`SimConfig::validate`] calls this, so an
    /// invalid spec (a BO degree of 3, an empty offset list) is reported
    /// as a [`crate::ConfigError`] instead of panicking mid-sweep when
    /// [`build`](Self::build) runs on a worker thread.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    fn validate(&self, cfg: &SimConfig) -> Result<(), String> {
        let _ = cfg;
        Ok(())
    }
}

/// A shared, cloneable handle to a [`PrefetcherSpec`].
///
/// This is what [`SimConfig`] stores: configurations stay `Clone` while
/// the spec itself is allocated once.
#[derive(Clone)]
pub struct PrefetcherHandle(Arc<dyn PrefetcherSpec>);

impl PrefetcherHandle {
    /// Wraps a spec into a shareable handle.
    pub fn new(spec: impl PrefetcherSpec + 'static) -> Self {
        PrefetcherHandle(Arc::new(spec))
    }

    /// Wraps an already-shared spec.
    pub fn from_arc(spec: Arc<dyn PrefetcherSpec>) -> Self {
        PrefetcherHandle(spec)
    }

    /// The spec's report label.
    pub fn name(&self) -> String {
        self.0.name()
    }

    /// Builds the live line-address prefetcher (L2/L3 sites) for `cfg`'s
    /// machine.
    pub fn build(&self, cfg: &SimConfig) -> Box<dyn Prefetcher> {
        self.0.build(cfg)
    }

    /// Builds the live L1D-site prefetcher, when the spec supports that
    /// site.
    pub fn build_l1(&self, cfg: &SimConfig) -> Option<Box<dyn L1Prefetcher>> {
        self.0.build_l1(cfg)
    }

    /// The sites the underlying spec can attach to.
    pub fn supported_sites(&self) -> &'static [PrefetchSite] {
        self.0.supported_sites()
    }

    /// True when the spec can attach to `site`.
    pub fn supports_site(&self, site: PrefetchSite) -> bool {
        self.supported_sites().contains(&site)
    }

    /// Borrows the underlying spec.
    pub fn spec(&self) -> &dyn PrefetcherSpec {
        self.0.as_ref()
    }
}

impl fmt::Debug for PrefetcherHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<S: PrefetcherSpec + 'static> From<S> for PrefetcherHandle {
    fn from(spec: S) -> Self {
        PrefetcherHandle::new(spec)
    }
}

/// No L2 prefetching (the Figure 5 comparison point).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefetchSpec;

impl PrefetcherSpec for NoPrefetchSpec {
    fn name(&self) -> String {
        "no-prefetch".into()
    }

    fn build(&self, cfg: &SimConfig) -> Box<dyn Prefetcher> {
        Box::new(NullPrefetcher::new(cfg.page))
    }
}

/// Next-line prefetching — the paper's default L2 baseline (§5.6).
#[derive(Debug, Clone, Copy, Default)]
pub struct NextLineSpec;

impl PrefetcherSpec for NextLineSpec {
    fn name(&self) -> String {
        "next-line".into()
    }

    fn build(&self, cfg: &SimConfig) -> Box<dyn Prefetcher> {
        Box::new(FixedOffsetPrefetcher::next_line(cfg.page))
    }
}

/// A constant offset `D` (Figures 7 and 8).
#[derive(Debug, Clone, Copy)]
pub struct FixedOffsetSpec {
    /// The constant line offset.
    pub offset: i64,
}

impl PrefetcherSpec for FixedOffsetSpec {
    fn name(&self) -> String {
        format!("offset-{}", self.offset)
    }

    fn build(&self, cfg: &SimConfig) -> Box<dyn Prefetcher> {
        Box::new(FixedOffsetPrefetcher::new(self.offset, cfg.page))
    }

    fn validate(&self, _cfg: &SimConfig) -> Result<(), String> {
        if self.offset == 0 {
            return Err("offset 0 is not a prefetch".into());
        }
        Ok(())
    }
}

/// The Best-Offset prefetcher (§4).
#[derive(Debug, Clone, Default)]
pub struct BoSpec {
    /// Algorithm parameters (Table 2 defaults).
    pub config: BoConfig,
}

impl PrefetcherSpec for BoSpec {
    fn name(&self) -> String {
        "BO".into()
    }

    fn build(&self, cfg: &SimConfig) -> Box<dyn Prefetcher> {
        Box::new(BestOffsetPrefetcher::new(self.config.clone(), cfg.page))
    }

    fn validate(&self, _cfg: &SimConfig) -> Result<(), String> {
        self.config.validate().map_err(|e| e.to_string())
    }
}

/// The Sandbox prefetcher as adapted in §6.3.
#[derive(Debug, Clone, Default)]
pub struct SbpSpec {
    /// Algorithm parameters.
    pub config: SbpConfig,
}

impl PrefetcherSpec for SbpSpec {
    fn name(&self) -> String {
        "SBP".into()
    }

    fn build(&self, cfg: &SimConfig) -> Box<dyn Prefetcher> {
        Box::new(SandboxPrefetcher::new(self.config.clone(), cfg.page))
    }
}

/// AMPM-lite (extension; the DPC-1 winner referenced in §2).
#[derive(Debug, Clone, Default)]
pub struct AmpmSpec {
    /// Algorithm parameters.
    pub config: AmpmConfig,
}

impl PrefetcherSpec for AmpmSpec {
    fn name(&self) -> String {
        "AMPM".into()
    }

    fn build(&self, cfg: &SimConfig) -> Box<dyn Prefetcher> {
        Box::new(AmpmPrefetcher::new(self.config.clone(), cfg.page))
    }
}

/// The PC-indexed DL1 stride prefetcher (§5.5) — the default occupant
/// of the L1D site, and the only built-in spec that attaches there.
///
/// Stride works on virtual addresses and load/store PCs, so it cannot be
/// placed at the line-address L2/L3 sites: `supported_sites` is L1D
/// only, and configuration validation rejects e.g. `l2:stride`.
#[derive(Debug, Clone, Default)]
pub struct StrideSpec {
    /// Algorithm parameters (§5.5 defaults: 64 entries, distance 16).
    pub config: StrideConfig,
}

impl PrefetcherSpec for StrideSpec {
    fn name(&self) -> String {
        "stride".into()
    }

    fn build(&self, cfg: &SimConfig) -> Box<dyn Prefetcher> {
        // Unreachable through a validated configuration (the spec is
        // L1D-only); a null prefetcher keeps raw registry users safe.
        Box::new(NullPrefetcher::new(cfg.page))
    }

    fn supported_sites(&self) -> &'static [PrefetchSite] {
        &[PrefetchSite::L1D]
    }

    fn build_l1(&self, _cfg: &SimConfig) -> Option<Box<dyn L1Prefetcher>> {
        Some(Box::new(StridePrefetcher::new(self.config.clone())))
    }

    fn validate(&self, _cfg: &SimConfig) -> Result<(), String> {
        self.config.validate()
    }
}

/// An adaptive alias around another spec: the registry's
/// `adaptive-<name>` family resolves to this wrapper.
///
/// The wrapper builds exactly the inner prefetcher — adaptivity lives in
/// the *system*, configured through [`SimConfig::adapt`] — but its
/// validation insists that an adaptive-control configuration is present,
/// so a run named `adaptive-bo` without a policy fails fast instead of
/// silently running static BO.
#[derive(Debug)]
pub struct AdaptiveSpec {
    /// The wrapped (initial) prefetcher.
    pub inner: PrefetcherHandle,
}

impl PrefetcherSpec for AdaptiveSpec {
    fn name(&self) -> String {
        format!("adaptive-{}", self.inner.name())
    }

    fn build(&self, cfg: &SimConfig) -> Box<dyn Prefetcher> {
        self.inner.build(cfg)
    }

    fn supported_sites(&self) -> &'static [PrefetchSite] {
        // Adaptive control reconfigures per-core L2 prefetchers through
        // the epoch loop; the wrapper is an L2-only spec (an example of
        // a spec narrower than the line-address default).
        &[PrefetchSite::L2]
    }

    fn validate(&self, cfg: &SimConfig) -> Result<(), String> {
        self.inner.spec().validate(cfg)?;
        if cfg.adapt.is_none() {
            return Err(format!(
                "{} requires adaptive control: set SimConfig::builder().adapt(AdaptConfig::new(..))",
                self.name()
            ));
        }
        Ok(())
    }
}

/// Constructor shorthands for the built-in prefetcher specs.
///
/// ```
/// use bosim::{prefetchers, SimConfig};
///
/// let cfg = SimConfig::default().with_prefetcher(prefetchers::bo_default());
/// assert_eq!(cfg.l2_prefetcher.name(), "BO");
/// ```
pub mod prefetchers {
    use super::*;

    /// No L2 prefetching.
    pub fn none() -> PrefetcherHandle {
        PrefetcherHandle::new(NoPrefetchSpec)
    }

    /// Next-line prefetching (the baseline).
    pub fn next_line() -> PrefetcherHandle {
        PrefetcherHandle::new(NextLineSpec)
    }

    /// Constant-offset prefetching with offset `d`.
    pub fn fixed(d: i64) -> PrefetcherHandle {
        PrefetcherHandle::new(FixedOffsetSpec { offset: d })
    }

    /// Best-Offset prefetching with explicit parameters.
    pub fn bo(config: BoConfig) -> PrefetcherHandle {
        PrefetcherHandle::new(BoSpec { config })
    }

    /// Best-Offset prefetching with the Table 2 defaults.
    pub fn bo_default() -> PrefetcherHandle {
        bo(BoConfig::default())
    }

    /// Sandbox prefetching with explicit parameters.
    pub fn sbp(config: SbpConfig) -> PrefetcherHandle {
        PrefetcherHandle::new(SbpSpec { config })
    }

    /// Sandbox prefetching with the §6.3 defaults.
    pub fn sbp_default() -> PrefetcherHandle {
        sbp(SbpConfig::default())
    }

    /// AMPM-lite prefetching with explicit parameters.
    pub fn ampm(config: AmpmConfig) -> PrefetcherHandle {
        PrefetcherHandle::new(AmpmSpec { config })
    }

    /// AMPM-lite prefetching with default parameters.
    pub fn ampm_default() -> PrefetcherHandle {
        ampm(AmpmConfig::default())
    }

    /// DL1 stride prefetching with explicit parameters (L1D site only).
    pub fn stride(config: StrideConfig) -> PrefetcherHandle {
        PrefetcherHandle::new(StrideSpec { config })
    }

    /// DL1 stride prefetching with the §5.5 defaults (L1D site only).
    pub fn stride_default() -> PrefetcherHandle {
        stride(StrideConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names() {
        assert_eq!(prefetchers::none().name(), "no-prefetch");
        assert_eq!(prefetchers::next_line().name(), "next-line");
        assert_eq!(prefetchers::fixed(5).name(), "offset-5");
        assert_eq!(prefetchers::bo_default().name(), "BO");
        assert_eq!(prefetchers::sbp_default().name(), "SBP");
        assert_eq!(prefetchers::ampm_default().name(), "AMPM");
    }

    #[test]
    fn specs_build_matching_prefetchers() {
        let cfg = SimConfig::default();
        for (handle, built_name) in [
            (prefetchers::none(), "none"),
            (prefetchers::bo_default(), "BO"),
            (prefetchers::sbp_default(), "SBP"),
            (prefetchers::ampm_default(), "AMPM"),
        ] {
            assert_eq!(handle.build(&cfg).name(), built_name);
        }
    }

    #[test]
    fn debug_reflects_parameters() {
        let a = format!("{:?}", prefetchers::fixed(3));
        let b = format!("{:?}", prefetchers::fixed(4));
        assert_ne!(a, b, "job dedup relies on parameter-carrying Debug");
    }

    #[test]
    fn site_support_matches_spec_kind() {
        // Line-address specs are L2/L3-neutral.
        for handle in [
            prefetchers::none(),
            prefetchers::next_line(),
            prefetchers::fixed(5),
            prefetchers::bo_default(),
            prefetchers::sbp_default(),
            prefetchers::ampm_default(),
        ] {
            assert!(handle.supports_site(PrefetchSite::L2), "{}", handle.name());
            assert!(handle.supports_site(PrefetchSite::L3), "{}", handle.name());
            assert!(
                !handle.supports_site(PrefetchSite::L1D),
                "{}",
                handle.name()
            );
            assert!(handle.build_l1(&SimConfig::default()).is_none());
        }
        // Stride is L1D-only.
        let stride = prefetchers::stride_default();
        assert_eq!(stride.supported_sites(), &[PrefetchSite::L1D]);
        let l1 = stride
            .build_l1(&SimConfig::default())
            .expect("builds an L1 prefetcher");
        assert_eq!(l1.name(), "stride");
        // The adaptive wrapper is L2-only.
        let adaptive = PrefetcherHandle::new(AdaptiveSpec {
            inner: prefetchers::bo_default(),
        });
        assert_eq!(adaptive.supported_sites(), &[PrefetchSite::L2]);
    }
}
