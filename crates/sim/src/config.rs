//! Simulation configurations (Table 1 and §5 variants).
//!
//! [`SimConfig`] describes one full machine. Construct it either from the
//! paper's defaults ([`SimConfig::default`], [`SimConfig::baseline`]) or
//! through the validating [`SimConfig::builder`]:
//!
//! ```
//! use bosim::{prefetchers, SimConfig};
//! use bosim_types::PageSize;
//!
//! let cfg = SimConfig::builder()
//!     .page(PageSize::M4)
//!     .cores(2)
//!     .prefetcher(prefetchers::bo_default())
//!     .build()
//!     .expect("valid configuration");
//! assert_eq!(cfg.label(), "4MB/2-core/BO");
//! ```

use crate::spec::{prefetchers, PrefetcherHandle};
use best_offset::PrefetchSite;
use bosim_adapt::AdaptConfig;
use bosim_cache::policy::PolicyKind;
use bosim_cpu::CoreConfig;
use bosim_obs::ObsConfig;
use bosim_trace::SampleSpec;
use bosim_types::PageSize;
use std::fmt;

/// Most cores a [`System`](crate::System) can simulate. The paper's
/// evaluation (§5) uses up to four active cores; the uncore model itself
/// sizes every per-core structure dynamically, so the only hard bound is
/// the [`CoreId`](bosim_types::CoreId) encoding (a `u8`).
pub const MAX_CORES: usize = 256;

/// One full-system simulation configuration.
///
/// `Default` is the paper's baseline (Table 1): 4KB pages, one active
/// core, the stride prefetcher at the L1D site, L2 next-line
/// prefetching, no L3 prefetcher, 5P L3 replacement. Field access is
/// public for introspection; prefer [`SimConfig::builder`] for
/// constructing variants, since it validates the parameters the
/// hardware model assumes.
///
/// Each level of the hierarchy is an independent prefetch *site*
/// (see [`PrefetchSite`]): `l1_prefetcher` (per-core, virtual-address,
/// `None` in the Figure 4 ablation), `l2_prefetcher` (per-core, the
/// paper's subject) and `l3_prefetcher` (one engine on the shared L3,
/// `None` on the paper's machine).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Memory page size (4KB or 4MB).
    pub page: PageSize,
    /// Active cores: core 0 runs the benchmark, the rest run the §5.1
    /// cache-thrashing micro-benchmark.
    pub active_cores: usize,
    /// The L1D-site prefetcher of every core (default: the §5.5 stride
    /// prefetcher; `None` leaves the site empty, as Figure 4 does).
    pub l1_prefetcher: Option<PrefetcherHandle>,
    /// The L2 prefetcher under evaluation.
    pub l2_prefetcher: PrefetcherHandle,
    /// The shared L3 site's prefetcher (`None` = no L3 prefetching, the
    /// paper's machine).
    pub l3_prefetcher: Option<PrefetcherHandle>,
    /// L3 replacement policy (baseline: 5P; Figure 3 uses LRU/DRRIP).
    pub l3_policy: PolicyKind,
    /// Core parameters (Table 1).
    pub core: CoreConfig,
    /// L2 capacity in bytes (512KB) and associativity (8).
    pub l2_size: u64,
    /// L2 ways.
    pub l2_ways: usize,
    /// L2 lookup latency, cycles (11).
    pub l2_latency: u64,
    /// L2 fill queue entries (16).
    pub l2_fill_queue: usize,
    /// L2 prefetch queue entries (8).
    pub prefetch_queue: usize,
    /// L3 capacity in bytes (8MB) and associativity (16).
    pub l3_size: u64,
    /// L3 ways.
    pub l3_ways: usize,
    /// L3 lookup latency, cycles (21).
    pub l3_latency: u64,
    /// L3 fill queue entries (32).
    pub l3_fill_queue: usize,
    /// Warm-up instructions on core 0 before measurement.
    pub warmup_instructions: u64,
    /// Measured instructions on core 0.
    pub measure_instructions: u64,
    /// Master seed (translation hashes, policy randomisation).
    pub seed: u64,
    /// Fast-forward through provably idle stretches: when every core and
    /// the whole uncore report no work before a known future cycle, the
    /// system loop jumps straight to it. Cycle-exact — results are
    /// bit-identical with the naive every-cycle loop (the golden-stats
    /// test pins this) — so it defaults to on; the throughput harness
    /// turns it off to measure the naive baseline.
    pub fast_forward: bool,
    /// Naive hot path: linear CAM scans in the fill/prefetch queues and
    /// full per-cycle polling of every uncore subsystem — the pre-
    /// optimization behaviour. Cycle-exact identical results, much
    /// slower; exists purely as the throughput harness's baseline.
    pub naive_hot_path: bool,
    /// Host threads for the parallel core-tick phase of the scheduled
    /// (event-wheel) loop. `1` (the default) ticks every core on the
    /// main thread; `0` means "use the host's available parallelism";
    /// values are clamped to the active core count. Parallel ticking
    /// rendezvous at a deterministic barrier every cycle and applies
    /// uncore effects in fixed core-ID order, so results are
    /// bit-identical to the serial path whatever the thread count —
    /// only wall-clock time changes. Ignored (serial) when
    /// [`fast_forward`](Self::fast_forward) is off.
    pub tick_threads: usize,
    /// Adaptive prefetch control: when set, the system slices the run
    /// into epochs, distils the uncore's usefulness counters into
    /// [`bosim_adapt::EpochFeedback`], and lets the configured
    /// [`bosim_adapt::TunePolicy`] reconfigure each core's L2 prefetcher
    /// at every boundary. `None` (the default) reproduces the paper's
    /// static configurations.
    pub adapt: Option<AdaptConfig>,
    /// Trace sampling applied to core 0's µop stream (warm-up skip +
    /// periodic measurement windows, see
    /// [`SampleSpec`]). Intended for long external traces; the
    /// thrasher streams on cores 1.. are never sampled. `None` (the
    /// default) replays the stream untouched.
    pub sample: Option<SampleSpec>,
    /// Observability: cycle-domain event tracing, streamed epoch metric
    /// snapshots and host-side self-profiling (see [`ObsConfig`]). The
    /// default is everything off, which costs nothing on the hot path;
    /// results are bit-identical with tracing on or off (the golden-stats
    /// suite pins both arms).
    pub obs: ObsConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            page: PageSize::K4,
            active_cores: 1,
            l1_prefetcher: Some(prefetchers::stride_default()),
            l2_prefetcher: prefetchers::next_line(),
            l3_prefetcher: None,
            l3_policy: PolicyKind::FiveP,
            core: CoreConfig::default(),
            l2_size: 512 << 10,
            l2_ways: 8,
            l2_latency: 11,
            l2_fill_queue: 16,
            prefetch_queue: 8,
            l3_size: 8 << 20,
            l3_ways: 16,
            l3_latency: 21,
            l3_fill_queue: 32,
            warmup_instructions: default_warmup(),
            measure_instructions: default_instructions(),
            seed: 0xB05EED,
            fast_forward: true,
            naive_hot_path: false,
            tick_threads: 1,
            adapt: None,
            sample: None,
            obs: ObsConfig::default(),
        }
    }
}

impl SimConfig {
    /// Starts a validating builder from the Table 1 defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// Baseline for a page size and core count (the paper's six
    /// baselines, §5).
    pub fn baseline(page: PageSize, active_cores: usize) -> Self {
        SimConfig {
            page,
            active_cores,
            ..Default::default()
        }
    }

    /// Returns a copy with a different L2 prefetcher.
    pub fn with_prefetcher(mut self, p: impl Into<PrefetcherHandle>) -> Self {
        self.l2_prefetcher = p.into();
        self
    }

    /// Returns a copy with `p` (or nothing) at `site`. The L2 site
    /// cannot be emptied — pass [`prefetchers::none`] there instead.
    pub fn with_site_prefetcher(mut self, site: PrefetchSite, p: Option<PrefetcherHandle>) -> Self {
        match site {
            PrefetchSite::L1D => self.l1_prefetcher = p,
            PrefetchSite::L2 => self.l2_prefetcher = p.unwrap_or_else(prefetchers::none),
            PrefetchSite::L3 => self.l3_prefetcher = p,
        }
        self
    }

    /// The prefetcher occupying `site`, if any.
    pub fn site_prefetcher(&self, site: PrefetchSite) -> Option<&PrefetcherHandle> {
        match site {
            PrefetchSite::L1D => self.l1_prefetcher.as_ref(),
            PrefetchSite::L2 => Some(&self.l2_prefetcher),
            PrefetchSite::L3 => self.l3_prefetcher.as_ref(),
        }
    }

    /// True when the configuration departs from the classic single-level
    /// shape (stride-or-empty L1, no L3 prefetcher) and the label should
    /// spell out every site.
    fn multi_level(&self) -> bool {
        self.l3_prefetcher.is_some()
            || self
                .l1_prefetcher
                .as_ref()
                .is_some_and(|h| h.name() != "stride")
    }

    /// Short configuration label, e.g. `"4KB/2-core/BO"`; adaptive
    /// configurations append the policy (`"4KB/2-core/BO+bw-throttle"`),
    /// sampled ones the plan (`"4KB/1-core/BO@skip10k"`).
    ///
    /// Multi-level configurations spell out every site with
    /// site-qualified names, e.g.
    /// `"4KB/1-core/l1:stride+l2:BO+l3:next-line"`. Classic single-level
    /// shapes (stride or nothing at L1, no L3 prefetcher) keep the
    /// historical L2-only label, so pre-refactor report rows are
    /// unchanged.
    pub fn label(&self) -> String {
        let policy = match &self.adapt {
            Some(a) => format!("+{}", a.policy.name()),
            None => String::new(),
        };
        let policy = match &self.sample {
            Some(s) if !s.is_passthrough() => format!("{policy}@{s}"),
            _ => policy,
        };
        let prefetchers = if self.multi_level() {
            let site =
                |h: Option<&PrefetcherHandle>| h.map(|h| h.name()).unwrap_or_else(|| "none".into());
            format!(
                "l1:{}+l2:{}+l3:{}",
                site(self.l1_prefetcher.as_ref()),
                self.l2_prefetcher.name(),
                site(self.l3_prefetcher.as_ref()),
            )
        } else {
            self.l2_prefetcher.name()
        };
        format!(
            "{}/{}-core/{}{}",
            self.page.label(),
            self.active_cores,
            prefetchers,
            policy,
        )
    }

    /// Validates the configuration against the constraints the hardware
    /// model assumes (also run by [`SimConfigBuilder::build`]).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.active_cores == 0 {
            return Err(ConfigError::ZeroCores);
        }
        if self.active_cores > MAX_CORES {
            return Err(ConfigError::TooManyCores {
                requested: self.active_cores,
            });
        }
        for (cache, size, ways) in [
            ("IL1", self.core.il1_size, self.core.il1_ways),
            ("DL1", self.core.dl1_size, self.core.dl1_ways),
            ("L2", self.l2_size, self.l2_ways),
            ("L3", self.l3_size, self.l3_ways),
        ] {
            if ways == 0 {
                return Err(ConfigError::ZeroWays { cache });
            }
            let sets = size / (64 * ways as u64);
            if sets == 0 || !sets.is_power_of_two() {
                return Err(ConfigError::BadSetCount { cache, sets });
            }
        }
        for (queue, len) in [
            ("L2 fill queue", self.l2_fill_queue),
            ("L2 prefetch queue", self.prefetch_queue),
            ("L3 fill queue", self.l3_fill_queue),
        ] {
            if len == 0 {
                return Err(ConfigError::EmptyQueue { queue });
            }
        }
        if self.measure_instructions == 0 {
            return Err(ConfigError::ZeroInstructions);
        }
        // Per-site prefetcher-spec validation: a spec at a site it does
        // not attach to (stride at L2, BO at L1D) and invalid algorithm
        // parameters (a BO degree of 3, an empty offset list) are
        // reported here instead of aborting mid-sweep when the
        // prefetcher is built.
        for site in PrefetchSite::ALL {
            let Some(handle) = self.site_prefetcher(site) else {
                continue;
            };
            if !handle.supports_site(site) {
                return Err(ConfigError::InvalidPrefetcher {
                    name: handle.name(),
                    reason: crate::spec::site_mismatch_reason(site, handle.supported_sites()),
                });
            }
            if let Err(reason) = handle.spec().validate(self) {
                return Err(ConfigError::InvalidPrefetcher {
                    name: handle.name(),
                    reason,
                });
            }
        }
        if let Some(sample) = &self.sample {
            if let Err(reason) = sample.validate() {
                return Err(ConfigError::InvalidSample { reason });
            }
        }
        if let Err(reason) = self.obs.validate() {
            return Err(ConfigError::InvalidObs { reason });
        }
        if let Some(adapt) = &self.adapt {
            if let Err(reason) = adapt.validate() {
                return Err(ConfigError::InvalidAdapt { reason });
            }
            // Every prefetcher the policy may switch to must resolve in
            // the registry *now* and attach to the L2 site (switch
            // directives target the per-core L2 engines) — a sweep must
            // neither die at the first epoch boundary of some arm nor
            // silently keep the old prefetcher because the switch is
            // rejected at runtime.
            for name in adapt.policy.spec().prefetcher_names() {
                match crate::registry::registry().resolve(&name) {
                    Err(e) => {
                        return Err(ConfigError::UnknownPrefetcher {
                            name,
                            reason: e.to_string(),
                        });
                    }
                    Ok(handle) if !handle.supports_site(PrefetchSite::L2) => {
                        return Err(ConfigError::UnknownPrefetcher {
                            name,
                            reason: crate::spec::site_mismatch_reason(
                                PrefetchSite::L2,
                                handle.supported_sites(),
                            ),
                        });
                    }
                    Ok(_) => {}
                }
            }
        }
        Ok(())
    }
}

/// A constraint violated by a [`SimConfig`] (returned by
/// [`SimConfigBuilder::build`] and [`SimConfig::validate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `active_cores` was 0 — core 0 must run the benchmark.
    ZeroCores,
    /// `active_cores` exceeded [`MAX_CORES`].
    TooManyCores {
        /// The requested core count.
        requested: usize,
    },
    /// A cache was configured with zero ways.
    ZeroWays {
        /// Which cache ("IL1", "DL1", "L2" or "L3").
        cache: &'static str,
    },
    /// A cache's derived set count was zero or not a power of two.
    BadSetCount {
        /// Which cache ("IL1", "DL1", "L2" or "L3").
        cache: &'static str,
        /// The derived set count (`size / (64 * ways)`).
        sets: u64,
    },
    /// A queue was configured with zero entries.
    EmptyQueue {
        /// Which queue.
        queue: &'static str,
    },
    /// The measured window was zero instructions long.
    ZeroInstructions,
    /// The L2 prefetcher spec rejected its parameters (e.g. a BO degree
    /// outside 1..=2 or an empty offset list).
    InvalidPrefetcher {
        /// The prefetcher's label.
        name: String,
        /// The violated constraint, as reported by the spec.
        reason: String,
    },
    /// The adaptive-control configuration was invalid.
    InvalidAdapt {
        /// The violated constraint.
        reason: String,
    },
    /// The trace-sampling plan was invalid (see
    /// [`SampleSpec::validate`]).
    InvalidSample {
        /// The violated constraint.
        reason: String,
    },
    /// The observability configuration was invalid (see
    /// [`ObsConfig::validate`]).
    InvalidObs {
        /// The violated constraint.
        reason: &'static str,
    },
    /// A prefetcher name (an adaptive policy's candidate, or a
    /// site-qualified name given to [`SimConfigBuilder::site`]) the
    /// registry cannot resolve.
    UnknownPrefetcher {
        /// The unresolvable name.
        name: String,
        /// The registry's resolution error.
        reason: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroCores => write!(f, "active_cores must be at least 1"),
            ConfigError::TooManyCores { requested } => {
                write!(
                    f,
                    "active_cores {requested} exceeds the maximum of {MAX_CORES}"
                )
            }
            ConfigError::ZeroWays { cache } => write!(f, "{cache} needs at least one way"),
            ConfigError::BadSetCount { cache, sets } => write!(
                f,
                "{cache} set count {sets} invalid: size / (64 * ways) must be a power of two >= 1"
            ),
            ConfigError::EmptyQueue { queue } => write!(f, "{queue} needs at least one entry"),
            ConfigError::ZeroInstructions => {
                write!(f, "measure_instructions must be at least 1")
            }
            ConfigError::InvalidPrefetcher { name, reason } => {
                write!(f, "prefetcher {name:?} rejected its parameters: {reason}")
            }
            ConfigError::InvalidAdapt { reason } => {
                write!(f, "adaptive-control configuration invalid: {reason}")
            }
            ConfigError::InvalidSample { reason } => {
                write!(f, "trace-sampling plan invalid: {reason}")
            }
            ConfigError::InvalidObs { reason } => {
                write!(f, "observability configuration invalid: {reason}")
            }
            ConfigError::UnknownPrefetcher { name, reason } => {
                write!(f, "unresolvable prefetcher {name:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`SimConfig`] (see [`SimConfig::builder`]).
///
/// Starts from the Table 1 defaults; every setter overrides one
/// parameter, and [`build`](Self::build) validates the result.
#[derive(Debug, Clone, Default)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Memory page size.
    pub fn page(mut self, page: PageSize) -> Self {
        self.cfg.page = page;
        self
    }

    /// Active core count (1..=[`MAX_CORES`]).
    pub fn cores(mut self, active_cores: usize) -> Self {
        self.cfg.active_cores = active_cores;
        self
    }

    /// The L2 prefetcher under evaluation.
    pub fn prefetcher(mut self, p: impl Into<PrefetcherHandle>) -> Self {
        self.cfg.l2_prefetcher = p.into();
        self
    }

    /// Sets the L1D-site prefetcher (default: the §5.5 stride
    /// prefetcher). See also [`no_l1_prefetcher`](Self::no_l1_prefetcher)
    /// for the Figure 4 ablation.
    pub fn l1_prefetcher(mut self, p: impl Into<PrefetcherHandle>) -> Self {
        self.cfg.l1_prefetcher = Some(p.into());
        self
    }

    /// Empties the L1D prefetch site (the Figure 4 ablation).
    pub fn no_l1_prefetcher(mut self) -> Self {
        self.cfg.l1_prefetcher = None;
        self
    }

    /// Sets the shared L3 site's prefetcher (default: none).
    pub fn l3_prefetcher(mut self, p: impl Into<PrefetcherHandle>) -> Self {
        self.cfg.l3_prefetcher = Some(p.into());
        self
    }

    /// Resolves a site-qualified registry name (`"l1:stride"`,
    /// `"l2:bo"`, `"l3:next-line"`; a bare name means the L2 site) and
    /// installs the prefetcher at that site.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnknownPrefetcher`] carrying the
    /// registry's diagnosis (unknown name, unknown site, or a site/spec
    /// mismatch such as `l3:stride`).
    pub fn site(mut self, name: &str) -> Result<Self, ConfigError> {
        match crate::registry::registry().resolve_site(name) {
            Ok((site, handle)) => {
                self.cfg = self.cfg.with_site_prefetcher(site, Some(handle));
                Ok(self)
            }
            Err(e) => Err(ConfigError::UnknownPrefetcher {
                name: name.to_string(),
                reason: e.to_string(),
            }),
        }
    }

    /// L3 replacement policy.
    pub fn l3_policy(mut self, policy: PolicyKind) -> Self {
        self.cfg.l3_policy = policy;
        self
    }

    /// Enables or disables the DL1 stride prefetcher.
    ///
    /// Deprecated shim: the two pre-refactor toggles
    /// (`SimConfig.dl1_stride` and `CoreConfig.stride_prefetcher`)
    /// collapsed into the L1D prefetch site. `dl1_stride(true)` installs
    /// the default [`prefetchers::stride`] spec,
    /// `dl1_stride(false)` empties the site — prefer
    /// [`l1_prefetcher`](Self::l1_prefetcher) /
    /// [`no_l1_prefetcher`](Self::no_l1_prefetcher) in new code.
    pub fn dl1_stride(mut self, enabled: bool) -> Self {
        self.cfg.l1_prefetcher = enabled.then(prefetchers::stride_default);
        self
    }

    /// Core parameters.
    pub fn core(mut self, core: CoreConfig) -> Self {
        self.cfg.core = core;
        self
    }

    /// L2 geometry: capacity in bytes and associativity.
    pub fn l2_geometry(mut self, size_bytes: u64, ways: usize) -> Self {
        self.cfg.l2_size = size_bytes;
        self.cfg.l2_ways = ways;
        self
    }

    /// L2 lookup latency in cycles.
    pub fn l2_latency(mut self, cycles: u64) -> Self {
        self.cfg.l2_latency = cycles;
        self
    }

    /// L2 fill-queue entries.
    pub fn l2_fill_queue(mut self, entries: usize) -> Self {
        self.cfg.l2_fill_queue = entries;
        self
    }

    /// L2 prefetch-queue entries.
    pub fn prefetch_queue(mut self, entries: usize) -> Self {
        self.cfg.prefetch_queue = entries;
        self
    }

    /// L3 geometry: capacity in bytes and associativity.
    pub fn l3_geometry(mut self, size_bytes: u64, ways: usize) -> Self {
        self.cfg.l3_size = size_bytes;
        self.cfg.l3_ways = ways;
        self
    }

    /// L3 lookup latency in cycles.
    pub fn l3_latency(mut self, cycles: u64) -> Self {
        self.cfg.l3_latency = cycles;
        self
    }

    /// L3 fill-queue entries.
    pub fn l3_fill_queue(mut self, entries: usize) -> Self {
        self.cfg.l3_fill_queue = entries;
        self
    }

    /// Warm-up instructions before the measured window.
    pub fn warmup(mut self, instructions: u64) -> Self {
        self.cfg.warmup_instructions = instructions;
        self
    }

    /// Measured instructions on core 0.
    pub fn instructions(mut self, instructions: u64) -> Self {
        self.cfg.measure_instructions = instructions;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Enables or disables idle-stretch fast-forwarding (on by default;
    /// see [`SimConfig::fast_forward`]).
    pub fn fast_forward(mut self, enabled: bool) -> Self {
        self.cfg.fast_forward = enabled;
        self
    }

    /// Selects the naive (linear-scan, fully-polled) hot path — the
    /// throughput harness's baseline (see [`SimConfig::naive_hot_path`]).
    pub fn naive_hot_path(mut self, enabled: bool) -> Self {
        self.cfg.naive_hot_path = enabled;
        self
    }

    /// Sets the host thread count for the parallel core-tick phase
    /// (`0` = host parallelism, `1` = serial; results are bit-identical
    /// either way — see [`SimConfig::tick_threads`]).
    pub fn tick_threads(mut self, threads: usize) -> Self {
        self.cfg.tick_threads = threads;
        self
    }

    /// Enables adaptive prefetch control with the given epoch/policy
    /// configuration (see [`SimConfig::adapt`]).
    pub fn adapt(mut self, adapt: AdaptConfig) -> Self {
        self.cfg.adapt = Some(adapt);
        self
    }

    /// Applies a trace-sampling plan to core 0's µop stream (see
    /// [`SimConfig::sample`]): warm-up skip plus optional periodic
    /// measurement windows, for replaying long external traces.
    pub fn sample(mut self, sample: SampleSpec) -> Self {
        self.cfg.sample = Some(sample);
        self
    }

    /// Sets the observability configuration (event tracing, epoch metric
    /// streams, host-side profiling — see [`SimConfig::obs`]).
    pub fn obs(mut self, obs: ObsConfig) -> Self {
        self.cfg.obs = obs;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ConfigError`].
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Default measured instructions (overridable via `BOSIM_INSTRUCTIONS`).
///
/// The paper simulates 1G instructions per benchmark; the default here is
/// scaled down so the full figure set completes on a laptop. All harness
/// binaries accept the environment override.
pub fn default_instructions() -> u64 {
    std::env::var("BOSIM_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// Default warm-up instructions (overridable via `BOSIM_WARMUP`).
pub fn default_warmup() -> u64 {
    std::env::var("BOSIM_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_table1_baseline() {
        let c = SimConfig::default();
        assert_eq!(c.l2_size, 512 << 10);
        assert_eq!(c.l2_ways, 8);
        assert_eq!(c.l2_latency, 11);
        assert_eq!(c.l2_fill_queue, 16);
        assert_eq!(c.l3_size, 8 << 20);
        assert_eq!(c.l3_ways, 16);
        assert_eq!(c.l3_latency, 21);
        assert_eq!(c.l3_fill_queue, 32);
        assert_eq!(c.prefetch_queue, 8);
        assert_eq!(c.l2_prefetcher.name(), "next-line");
        assert_eq!(c.l3_policy, PolicyKind::FiveP);
        assert_eq!(
            c.l1_prefetcher.as_ref().map(|h| h.name()).as_deref(),
            Some("stride")
        );
        assert!(c.l3_prefetcher.is_none());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn labels() {
        let c = SimConfig::baseline(PageSize::M4, 2).with_prefetcher(prefetchers::fixed(5));
        assert_eq!(c.label(), "4MB/2-core/offset-5");
    }

    #[test]
    fn single_level_labels_do_not_mention_sites() {
        // The classic shapes — default stride L1, and the Figure 4
        // ablation with the site empty — keep their historical labels.
        let c = SimConfig::default().with_prefetcher(prefetchers::bo_default());
        assert_eq!(c.label(), "4KB/1-core/BO");
        let mut ablated = c.clone();
        ablated.l1_prefetcher = None;
        assert_eq!(ablated.label(), "4KB/1-core/BO");
    }

    #[test]
    fn multi_level_labels_spell_out_every_site() {
        let c = SimConfig::builder()
            .prefetcher(prefetchers::bo_default())
            .l3_prefetcher(prefetchers::next_line())
            .build()
            .expect("valid multi-level config");
        assert_eq!(c.label(), "4KB/1-core/l1:stride+l2:BO+l3:next-line");
        let no_l1 = SimConfig::builder()
            .no_l1_prefetcher()
            .l3_prefetcher(prefetchers::fixed(4))
            .build()
            .expect("valid");
        assert_eq!(no_l1.label(), "4KB/1-core/l1:none+l2:next-line+l3:offset-4");
    }

    #[test]
    fn builder_site_names_resolve_through_the_registry() {
        let c = SimConfig::builder()
            .site("l1:stride")
            .expect("l1 site")
            .site("l2:bo")
            .expect("l2 site")
            .site("l3:next-line")
            .expect("l3 site")
            .build()
            .expect("valid");
        assert_eq!(c.label(), "4KB/1-core/l1:stride+l2:BO+l3:next-line");
        // Bare names mean the L2 site.
        let c = SimConfig::builder().site("sbp").expect("bare name").cfg;
        assert_eq!(c.l2_prefetcher.name(), "SBP");
        // Site errors carry the registry's diagnosis.
        let err = SimConfig::builder().site("l3:stride").unwrap_err();
        match &err {
            ConfigError::UnknownPrefetcher { name, reason } => {
                assert_eq!(name, "l3:stride");
                assert!(reason.contains("does not attach to site l3"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(SimConfig::builder().site("l9:bo").is_err());
    }

    #[test]
    fn validation_rejects_site_spec_mismatches() {
        // Stride cannot occupy the L2 site...
        let err = SimConfig::builder()
            .prefetcher(prefetchers::stride_default())
            .build()
            .unwrap_err();
        match &err {
            ConfigError::InvalidPrefetcher { name, reason } => {
                assert_eq!(name, "stride");
                assert!(reason.contains("does not attach to site l2"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // ...nor the L3 site; BO cannot occupy the L1D site.
        assert!(SimConfig::builder()
            .l3_prefetcher(prefetchers::stride_default())
            .build()
            .is_err());
        assert!(SimConfig::builder()
            .l1_prefetcher(prefetchers::bo_default())
            .build()
            .is_err());
        // Spec-parameter validation applies per site: a bad BO config at
        // the L3 site is caught like one at the L2 site.
        let bad = best_offset::BoConfig {
            degree: 3,
            ..Default::default()
        };
        assert!(matches!(
            SimConfig::builder()
                .l3_prefetcher(prefetchers::bo(bad))
                .build()
                .unwrap_err(),
            ConfigError::InvalidPrefetcher { .. }
        ));
    }

    #[test]
    fn adaptive_candidates_must_attach_to_the_l2_site() {
        use bosim_adapt::{policies, AdaptConfig};
        // "stride" resolves in the registry but is L1D-only: a switch
        // to it would be silently rejected at every epoch boundary, so
        // validation must fail loudly up front.
        let err = SimConfig::builder()
            .adapt(AdaptConfig::new(policies::tournament(["bo", "stride"])))
            .build()
            .unwrap_err();
        match &err {
            ConfigError::UnknownPrefetcher { name, reason } => {
                assert_eq!(name, "stride");
                assert!(reason.contains("does not attach to site l2"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dl1_stride_shim_drives_the_l1_site() {
        let on = SimConfig::builder()
            .dl1_stride(true)
            .build()
            .expect("valid");
        assert_eq!(
            on.l1_prefetcher.as_ref().map(|h| h.name()).as_deref(),
            Some("stride")
        );
        let off = SimConfig::builder()
            .dl1_stride(false)
            .build()
            .expect("valid");
        assert!(off.l1_prefetcher.is_none());
    }

    #[test]
    fn builder_round_trips_table1() {
        let c = SimConfig::builder().build().expect("defaults are valid");
        assert_eq!(c.label(), SimConfig::default().label());
    }

    #[test]
    fn builder_rejects_zero_cores() {
        assert_eq!(
            SimConfig::builder().cores(0).build().unwrap_err(),
            ConfigError::ZeroCores
        );
    }

    #[test]
    fn builder_rejects_too_many_cores() {
        // The bound is the CoreId encoding, not the paper's four-core
        // evaluation grid: 256 cores validate, 257 do not.
        assert!(SimConfig::builder().cores(MAX_CORES).build().is_ok());
        assert_eq!(
            SimConfig::builder()
                .cores(MAX_CORES + 1)
                .build()
                .unwrap_err(),
            ConfigError::TooManyCores {
                requested: MAX_CORES + 1
            }
        );
    }

    #[test]
    fn builder_rejects_zero_way_caches() {
        assert_eq!(
            SimConfig::builder()
                .l2_geometry(512 << 10, 0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroWays { cache: "L2" }
        );
        assert_eq!(
            SimConfig::builder()
                .l3_geometry(8 << 20, 0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroWays { cache: "L3" }
        );
    }

    #[test]
    fn builder_rejects_zero_way_l1_caches() {
        let core = CoreConfig {
            dl1_ways: 0,
            ..Default::default()
        };
        assert_eq!(
            SimConfig::builder().core(core).build().unwrap_err(),
            ConfigError::ZeroWays { cache: "DL1" }
        );
    }

    #[test]
    fn builder_rejects_non_power_of_two_sets() {
        let err = SimConfig::builder()
            .l2_geometry(3 * 64 * 8, 8)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::BadSetCount {
                cache: "L2",
                sets: 3
            }
        );
        assert!(err.to_string().contains("power of two"));
    }

    #[test]
    fn builder_rejects_invalid_bo_parameters() {
        // The old behaviour was a panic inside BestOffsetPrefetcher::new
        // on the first worker thread of a sweep; now the builder reports
        // the violated constraint up front.
        let bad = best_offset::BoConfig {
            degree: 3,
            ..Default::default()
        };
        let err = SimConfig::builder()
            .prefetcher(prefetchers::bo(bad))
            .build()
            .unwrap_err();
        match &err {
            ConfigError::InvalidPrefetcher { name, reason } => {
                assert_eq!(name, "BO");
                assert!(reason.contains("degree 3"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(err.to_string().contains("rejected its parameters"));
    }

    #[test]
    fn builder_rejects_zero_fixed_offset() {
        let err = SimConfig::builder()
            .prefetcher(crate::spec::FixedOffsetSpec { offset: 0 })
            .build()
            .unwrap_err();
        assert!(
            matches!(err, ConfigError::InvalidPrefetcher { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn builder_validates_adaptive_configs() {
        use bosim_adapt::{policies, AdaptConfig};
        // A healthy adaptive config builds.
        let cfg = SimConfig::builder()
            .prefetcher(prefetchers::bo_default())
            .adapt(AdaptConfig::new(policies::degree_governor()))
            .build()
            .expect("valid adaptive config");
        assert_eq!(cfg.label(), "4KB/1-core/BO+degree-governor");
        // Zero-length epochs are rejected.
        let err = SimConfig::builder()
            .adapt(AdaptConfig::new(policies::degree_governor()).epoch_cycles(0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::InvalidAdapt { .. }), "{err:?}");
        // Tournament candidates must resolve in the registry, with the
        // resolver's diagnosis passed through.
        let err = SimConfig::builder()
            .adapt(AdaptConfig::new(policies::tournament(["bo", "offset-0"])))
            .build()
            .unwrap_err();
        match &err {
            ConfigError::UnknownPrefetcher { name, reason } => {
                assert_eq!(name, "offset-0");
                assert!(reason.contains("offset 0 is not a prefetch"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn adaptive_prefetcher_names_require_an_adapt_config() {
        use bosim_adapt::{policies, AdaptConfig};
        let handle = crate::registry::registry()
            .lookup("adaptive-bo")
            .expect("family registered");
        let err = SimConfig::builder()
            .prefetcher(handle.clone())
            .build()
            .unwrap_err();
        assert!(
            err.to_string().contains("requires adaptive control"),
            "{err}"
        );
        assert!(SimConfig::builder()
            .prefetcher(handle)
            .adapt(AdaptConfig::new(policies::bandwidth_throttle()))
            .build()
            .is_ok());
    }

    #[test]
    fn builder_validates_sampling_plans() {
        use bosim_trace::SampleSpec;
        let cfg = SimConfig::builder()
            .sample(SampleSpec::periodic(10_000, 1_000, 5_000))
            .build()
            .expect("valid sampled config");
        assert_eq!(cfg.label(), "4KB/1-core/next-line@skip10k+1k/5k");
        // A pass-through plan leaves the label untouched.
        let plain = SimConfig::builder()
            .sample(SampleSpec::default())
            .build()
            .expect("valid");
        assert_eq!(plain.label(), "4KB/1-core/next-line");
        // window > interval is rejected with the plan's diagnosis.
        let err = SimConfig::builder()
            .sample(SampleSpec::periodic(0, 10, 5))
            .build()
            .unwrap_err();
        match &err {
            ConfigError::InvalidSample { reason } => {
                assert!(reason.contains("exceeds interval"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(err.to_string().contains("sampling plan invalid"));
    }

    #[test]
    fn builder_validates_obs_configs() {
        let cfg = SimConfig::builder()
            .obs(ObsConfig::all())
            .build()
            .expect("valid obs config");
        assert!(cfg.obs.enabled());
        // Event tracing with a zero-capacity buffer is rejected.
        let bad = ObsConfig {
            events: true,
            max_events: 0,
            ..Default::default()
        };
        let err = SimConfig::builder().obs(bad).build().unwrap_err();
        assert!(matches!(err, ConfigError::InvalidObs { .. }), "{err:?}");
        assert!(err.to_string().contains("observability"));
    }

    #[test]
    fn builder_rejects_empty_queues_and_window() {
        assert!(matches!(
            SimConfig::builder().l2_fill_queue(0).build().unwrap_err(),
            ConfigError::EmptyQueue { .. }
        ));
        assert_eq!(
            SimConfig::builder().instructions(0).build().unwrap_err(),
            ConfigError::ZeroInstructions
        );
    }
}
