//! Simulation configurations (Table 1 and §5 variants).

use best_offset::BoConfig;
use bosim_baselines::{AmpmConfig, SbpConfig};
use bosim_cache::policy::PolicyKind;
use bosim_cpu::CoreConfig;
use bosim_types::PageSize;

/// Which L2 prefetcher a run uses.
#[derive(Debug, Clone)]
pub enum L2PrefetcherKind {
    /// No L2 prefetching (Figure 5's comparison point).
    None,
    /// Next-line prefetching — the paper's default baseline (§5.6).
    NextLine,
    /// A constant offset (Figures 7 and 8).
    Fixed(i64),
    /// The Best-Offset prefetcher (§4).
    Bo(BoConfig),
    /// The Sandbox prefetcher (§6.3).
    Sbp(SbpConfig),
    /// AMPM-lite (extension; the DPC-1 winner referenced in §2).
    Ampm(AmpmConfig),
}

impl L2PrefetcherKind {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            L2PrefetcherKind::None => "no-prefetch".into(),
            L2PrefetcherKind::NextLine => "next-line".into(),
            L2PrefetcherKind::Fixed(d) => format!("offset-{d}"),
            L2PrefetcherKind::Bo(_) => "BO".into(),
            L2PrefetcherKind::Sbp(_) => "SBP".into(),
            L2PrefetcherKind::Ampm(_) => "AMPM".into(),
        }
    }
}

/// One full-system simulation configuration.
///
/// `Default` is the paper's baseline (Table 1): 4KB pages, one active
/// core, L2 next-line prefetching, 5P L3 replacement, DL1 stride
/// prefetcher on.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Memory page size (4KB or 4MB).
    pub page: PageSize,
    /// Active cores: core 0 runs the benchmark, the rest run the §5.1
    /// cache-thrashing micro-benchmark.
    pub active_cores: usize,
    /// The L2 prefetcher under evaluation.
    pub l2_prefetcher: L2PrefetcherKind,
    /// L3 replacement policy (baseline: 5P; Figure 3 uses LRU/DRRIP).
    pub l3_policy: PolicyKind,
    /// DL1 stride prefetcher enabled (Figure 4 disables it).
    pub dl1_stride: bool,
    /// Core parameters (Table 1).
    pub core: CoreConfig,
    /// L2 capacity in bytes (512KB) and associativity (8).
    pub l2_size: u64,
    /// L2 ways.
    pub l2_ways: usize,
    /// L2 lookup latency, cycles (11).
    pub l2_latency: u64,
    /// L2 fill queue entries (16).
    pub l2_fill_queue: usize,
    /// L2 prefetch queue entries (8).
    pub prefetch_queue: usize,
    /// L3 capacity in bytes (8MB) and associativity (16).
    pub l3_size: u64,
    /// L3 ways.
    pub l3_ways: usize,
    /// L3 lookup latency, cycles (21).
    pub l3_latency: u64,
    /// L3 fill queue entries (32).
    pub l3_fill_queue: usize,
    /// Warm-up instructions on core 0 before measurement.
    pub warmup_instructions: u64,
    /// Measured instructions on core 0.
    pub measure_instructions: u64,
    /// Master seed (translation hashes, policy randomisation).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            page: PageSize::K4,
            active_cores: 1,
            l2_prefetcher: L2PrefetcherKind::NextLine,
            l3_policy: PolicyKind::FiveP,
            dl1_stride: true,
            core: CoreConfig::default(),
            l2_size: 512 << 10,
            l2_ways: 8,
            l2_latency: 11,
            l2_fill_queue: 16,
            prefetch_queue: 8,
            l3_size: 8 << 20,
            l3_ways: 16,
            l3_latency: 21,
            l3_fill_queue: 32,
            warmup_instructions: default_warmup(),
            measure_instructions: default_instructions(),
            seed: 0xB05EED,
        }
    }
}

impl SimConfig {
    /// Baseline for a page size and core count (the paper's six
    /// baselines, §5).
    pub fn baseline(page: PageSize, active_cores: usize) -> Self {
        SimConfig {
            page,
            active_cores,
            ..Default::default()
        }
    }

    /// Returns a copy with a different L2 prefetcher.
    pub fn with_prefetcher(mut self, p: L2PrefetcherKind) -> Self {
        self.l2_prefetcher = p;
        self
    }

    /// Short configuration label, e.g. `"4KB/2-core/BO"`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}-core/{}",
            self.page.label(),
            self.active_cores,
            self.l2_prefetcher.label()
        )
    }
}

/// Default measured instructions (overridable via `BOSIM_INSTRUCTIONS`).
///
/// The paper simulates 1G instructions per benchmark; the default here is
/// scaled down so the full figure set completes on a laptop. All harness
/// binaries accept the environment override.
pub fn default_instructions() -> u64 {
    std::env::var("BOSIM_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// Default warm-up instructions (overridable via `BOSIM_WARMUP`).
pub fn default_warmup() -> u64 {
    std::env::var("BOSIM_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_table1_baseline() {
        let c = SimConfig::default();
        assert_eq!(c.l2_size, 512 << 10);
        assert_eq!(c.l2_ways, 8);
        assert_eq!(c.l2_latency, 11);
        assert_eq!(c.l2_fill_queue, 16);
        assert_eq!(c.l3_size, 8 << 20);
        assert_eq!(c.l3_ways, 16);
        assert_eq!(c.l3_latency, 21);
        assert_eq!(c.l3_fill_queue, 32);
        assert_eq!(c.prefetch_queue, 8);
        assert!(matches!(c.l2_prefetcher, L2PrefetcherKind::NextLine));
        assert_eq!(c.l3_policy, PolicyKind::FiveP);
        assert!(c.dl1_stride);
    }

    #[test]
    fn labels() {
        let c = SimConfig::baseline(PageSize::M4, 2)
            .with_prefetcher(L2PrefetcherKind::Fixed(5));
        assert_eq!(c.label(), "4MB/2-core/offset-5");
    }
}
