//! The calendar event wheel driving the discrete-event system loop.
//!
//! Each *source* (the uncore is one source, every core is another)
//! **posts** the next cycle at which it may have work whenever its own
//! state changes; [`System`](crate::System) consults the wheel instead
//! of re-deriving `next_work_cycle` / `next_event_cycle` bounds from
//! scratch on every quiet cycle. A post is a *promise of idleness before
//! it*, never a promise of work at it: the wheel may wake a source on a
//! cycle where nothing happens (harmless — the tick is a no-op), but a
//! source must never have work strictly before its posted cycle. That
//! one-sided contract is what keeps the fast loop bit-identical to the
//! naive every-cycle loop (the golden-stats suite pins it).
//!
//! Layout: a near window of [`HORIZON`] single-cycle buckets starting at
//! `base`, plus a *far* set for posts at or beyond `base + HORIZON`. A
//! 64-bit occupancy bitmap (one bit per bucket) makes "first non-empty
//! bucket at or after cycle `c`" a rotate-and-count-trailing-zeros.
//! When a query moves past the window, the wheel *rolls over*: `base`
//! jumps to the queried cycle and the buckets are rebuilt from the
//! authoritative per-source array, migrating far posts in.

use bosim_types::Cycle;

/// Buckets in the near window — one per cycle, so a post within
/// `[base, base + HORIZON)` maps to exactly one bucket and the
/// occupancy bitmap fits in a `u64`.
pub const HORIZON: usize = 64;

/// A bucketed calendar of per-source wake-up cycles (see the module
/// docs for the posting contract).
#[derive(Debug)]
pub struct EventWheel {
    /// Authoritative next-posted cycle per source (`Cycle::MAX` = none).
    next: Vec<Cycle>,
    /// Near-window buckets, indexed by `cycle % HORIZON`.
    buckets: Vec<Vec<u16>>,
    /// Bit `cycle % HORIZON` set iff that bucket is non-empty.
    occ: u64,
    /// Sources posted at or beyond `base + HORIZON`.
    far: usize,
    /// Start of the near window.
    base: Cycle,
}

impl EventWheel {
    /// A wheel for `sources` sources, all initially unposted.
    ///
    /// # Panics
    ///
    /// Panics if `sources` does not fit the `u16` id encoding.
    pub fn new(sources: usize) -> Self {
        assert!(sources <= u16::MAX as usize + 1, "too many wheel sources");
        EventWheel {
            next: vec![Cycle::MAX; sources],
            buckets: vec![Vec::new(); HORIZON],
            occ: 0,
            far: 0,
            base: 0,
        }
    }

    /// Number of sources this wheel tracks.
    pub fn sources(&self) -> usize {
        self.next.len()
    }

    #[inline]
    fn slot(at: Cycle) -> usize {
        (at % HORIZON as u64) as usize
    }

    #[inline]
    fn in_window(&self, at: Cycle) -> bool {
        at >= self.base && at - self.base < HORIZON as u64
    }

    /// Removes `id`'s current post from the bucket / far bookkeeping
    /// (the `next` entry itself is left to the caller).
    fn unlink(&mut self, id: u16) {
        let old = self.next[id as usize];
        if old == Cycle::MAX {
            return;
        }
        if self.in_window(old) {
            let b = Self::slot(old);
            self.buckets[b].retain(|&x| x != id);
            if self.buckets[b].is_empty() {
                self.occ &= !(1u64 << b);
            }
        } else {
            self.far -= 1;
        }
    }

    /// Posts source `id`'s next-ready cycle, replacing any existing
    /// post (a source has one wake-up at a time; re-evaluating its
    /// state supersedes the old promise). `Cycle::MAX` clears the post.
    /// Posts before the window base are clamped to it — the wheel never
    /// re-opens the past, and a clamped post is simply "due now".
    pub fn post(&mut self, id: u16, at: Cycle) {
        self.unlink(id);
        let at = if at == Cycle::MAX {
            at
        } else {
            at.max(self.base)
        };
        self.next[id as usize] = at;
        if at == Cycle::MAX {
            return;
        }
        if self.in_window(at) {
            let b = Self::slot(at);
            self.buckets[b].push(id);
            self.occ |= 1 << b;
        } else {
            self.far += 1;
        }
    }

    /// The cycle `id` is currently posted for (`Cycle::MAX` = none).
    pub fn posted(&self, id: u16) -> Cycle {
        self.next[id as usize]
    }

    /// True when `id` is posted at or before `now`.
    #[inline]
    pub fn due(&self, id: u16, now: Cycle) -> bool {
        self.next[id as usize] <= now
    }

    /// Rolls the window over so it starts at `to`, rebuilding buckets
    /// and far count from the authoritative array. Posts that ended up
    /// behind `to` (possible only when a caller jumped past them) are
    /// clamped to `to` — due immediately, never lost.
    fn rebase(&mut self, to: Cycle) {
        self.base = to;
        self.occ = 0;
        for b in &mut self.buckets {
            b.clear();
        }
        self.far = 0;
        for i in 0..self.next.len() {
            let t = self.next[i];
            if t == Cycle::MAX {
                continue;
            }
            let t = t.max(to);
            self.next[i] = t;
            if t - to < HORIZON as u64 {
                let b = Self::slot(t);
                self.buckets[b].push(i as u16);
                self.occ |= 1 << b;
            } else {
                self.far += 1;
            }
        }
    }

    /// Pops every source posted at or before `now` into `out`, earliest
    /// cycle first and same-cycle ties in ascending source-id order (the
    /// fixed rendezvous order the deterministic loop relies on). Popped
    /// sources are cleared; the caller re-posts them after servicing.
    ///
    /// The window start advances to `now` on every pop (a drained cycle
    /// can never be re-posted — posts clamp to the base), keeping the
    /// walk O(cycles since the last pop) rather than O(window) and
    /// migrating far posts in as the window slides over them.
    pub fn pop_due(&mut self, now: Cycle, out: &mut Vec<u16>) {
        out.clear();
        if now < self.base {
            return; // posts clamp to the base: nothing can be due yet
        }
        if now - self.base >= HORIZON as u64 {
            self.rebase(now);
        }
        let old_base = self.base;
        let mut c = self.base;
        while c <= now && self.occ != 0 {
            let b = Self::slot(c);
            if self.occ & (1 << b) != 0 {
                let start = out.len();
                out.append(&mut self.buckets[b]);
                out[start..].sort_unstable();
                self.occ &= !(1u64 << b);
            }
            c += 1;
        }
        for &id in out.iter() {
            self.next[id as usize] = Cycle::MAX;
        }
        self.base = now;
        if self.far > 0 && now > old_base {
            // The slide uncovered [old_base + HORIZON, now + HORIZON):
            // bucket the far posts that now fall inside the window, so
            // the in-window ⇔ bucketed invariant holds.
            let lo = old_base + HORIZON as u64;
            let hi = now + HORIZON as u64;
            for i in 0..self.next.len() {
                let t = self.next[i];
                if t != Cycle::MAX && t >= lo && t < hi {
                    let b = Self::slot(t);
                    self.buckets[b].push(i as u16);
                    self.occ |= 1 << b;
                    self.far -= 1;
                }
            }
        }
    }

    /// The earliest posted cycle at or after `from`, or [`Cycle::MAX`]
    /// when nothing is posted. A post somehow stranded before `from`
    /// answers `from` (due immediately) — a wake-up is never lost.
    pub fn next_after(&mut self, from: Cycle) -> Cycle {
        if from >= self.base && from - self.base >= HORIZON as u64 {
            self.rebase(from);
        }
        if from < self.base {
            // Queries behind the window mean a stranded post could hide
            // anywhere; answer conservatively.
            if self.occ != 0 || self.far > 0 {
                return from;
            }
            return Cycle::MAX;
        }
        if self.occ != 0 {
            let r = self.occ.rotate_right(Self::slot(from) as u32);
            let k = r.trailing_zeros() as u64;
            let candidate = from + k;
            if candidate - self.base < HORIZON as u64 {
                return candidate;
            }
            // The first set bit wraps to cycles before `from`: a
            // stranded post — due immediately.
            return from;
        }
        if self.far > 0 {
            let t = self.next.iter().copied().min().unwrap_or(Cycle::MAX);
            return t.max(from);
        }
        Cycle::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_then_pop_in_cycle_order() {
        let mut w = EventWheel::new(4);
        w.post(2, 10);
        w.post(0, 5);
        w.post(1, 20);
        assert_eq!(w.next_after(0), 5);
        let mut due = Vec::new();
        w.pop_due(4, &mut due);
        assert!(due.is_empty());
        w.pop_due(10, &mut due);
        assert_eq!(due, vec![0, 2]); // cycle 5 before cycle 10
        assert_eq!(w.posted(0), Cycle::MAX);
        assert_eq!(w.next_after(11), 20);
        w.pop_due(20, &mut due);
        assert_eq!(due, vec![1]);
        assert_eq!(w.next_after(21), Cycle::MAX);
    }

    #[test]
    fn same_cycle_ties_resolve_in_id_order() {
        let mut w = EventWheel::new(8);
        // Posted in scrambled order; popped in ascending id order.
        for id in [5u16, 1, 7, 3] {
            w.post(id, 42);
        }
        let mut due = Vec::new();
        w.pop_due(42, &mut due);
        assert_eq!(due, vec![1, 3, 5, 7]);
    }

    #[test]
    fn reposting_overwrites_the_previous_post() {
        let mut w = EventWheel::new(2);
        w.post(0, 8);
        w.post(0, 30); // supersedes: the source re-evaluated its state
        assert_eq!(w.next_after(0), 30);
        w.post(0, 3); // moving earlier also works
        assert_eq!(w.next_after(0), 3);
        w.post(0, Cycle::MAX); // clears
        assert_eq!(w.next_after(0), Cycle::MAX);
    }

    #[test]
    fn rollover_past_the_bucket_horizon() {
        let mut w = EventWheel::new(3);
        let far = HORIZON as u64 * 3 + 17;
        w.post(0, far); // beyond the window: lands in the far set
        w.post(1, 2);
        assert_eq!(w.next_after(0), 2);
        let mut due = Vec::new();
        w.pop_due(2, &mut due);
        assert_eq!(due, vec![1]);
        // Only the far post remains; the query must find it and the
        // wheel must roll the window over to reach it.
        assert_eq!(w.next_after(3), far);
        w.pop_due(far, &mut due);
        assert_eq!(due, vec![0]);
        assert_eq!(w.next_after(far + 1), Cycle::MAX);
    }

    #[test]
    fn repeated_rollovers_keep_every_post() {
        let mut w = EventWheel::new(4);
        let mut expected = Vec::new();
        for (i, gap) in [3u64, 150, 700, 4096].iter().enumerate() {
            w.post(i as u16, *gap);
            expected.push((*gap, i as u16));
        }
        expected.sort_unstable();
        let mut due = Vec::new();
        let mut seen = Vec::new();
        let mut from = 0;
        loop {
            let t = w.next_after(from);
            if t == Cycle::MAX {
                break;
            }
            w.pop_due(t, &mut due);
            for &id in &due {
                seen.push((t, id));
            }
            from = t + 1;
        }
        assert_eq!(seen, expected);
    }

    #[test]
    fn posts_behind_the_window_clamp_to_due_now() {
        let mut w = EventWheel::new(2);
        w.post(0, 1000);
        // Jump far ahead: the window rolls over to 5000.
        assert_eq!(w.next_after(5000), 5000);
        let mut due = Vec::new();
        w.pop_due(5000, &mut due);
        assert_eq!(due, vec![0]);
        // A post below the rolled-over base clamps to the base.
        w.post(1, 3);
        assert!(w.due(1, 5000));
        w.pop_due(5000, &mut due);
        assert_eq!(due, vec![1]);
    }

    #[test]
    fn due_is_a_cheap_point_query() {
        let mut w = EventWheel::new(2);
        w.post(0, 7);
        assert!(!w.due(0, 6));
        assert!(w.due(0, 7));
        assert!(w.due(0, 8));
        assert!(!w.due(1, u64::MAX - 1));
    }
}
