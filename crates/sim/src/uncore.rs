//! The uncore: private L2s, shared L3 and DRAM, glued per §5.4.
//!
//! No L2/L3 MSHRs — miss handling uses associatively-searched fill queues
//! with late-prefetch promotion. L2 prefetch requests sit in an 8-entry
//! lowest-priority prefetch queue and can be cancelled at any time; the
//! mandatory tag check before inserting a prefetched block is enforced.
//! On an L3 miss the L2 fill-queue entry is released and re-reserved when
//! the block is forwarded from the L3 insertion stage, exactly as §5.4
//! describes.
//!
//! The shared L3 is a prefetch *site* of its own: when
//! [`SimConfig::l3_prefetcher`] is set, one line-address prefetcher
//! observes every (non-ifetch) read arriving at the L3 and queues
//! candidates into a dedicated lowest-priority queue. L3 prefetches obey
//! the same §5.4 discipline as L2 ones — issued only on cycles when no
//! request reached the L3, tag-checked against the L3 array and fill
//! queue before issue *and* before fill, cancelled (never retried) under
//! resource pressure — and fill the L3 only: they carry no forward, so a
//! later demand either hits the L3 or merges with the in-flight fill.
//! With the site empty (the default) every new code path is inert and
//! the machine is cycle-identical to the pre-site uncore.

use crate::config::SimConfig;
use best_offset::{
    AccessOutcome, CacheAccess, PrefetchEvent, PrefetchSite, Prefetcher, TuneDirective,
};
use bosim_cache::policy::InsertCtx;
use bosim_cache::policy::PolicyKind;
use bosim_cache::{CacheArray, FillQueue, PrefetchQueue};
use bosim_dram::{MemConfig, MemorySystem, ReadCompletion};
use bosim_obs::{Event, EventKind, HostProfiler, ObsSite, Phase, Recorder};
use bosim_types::{CoreId, Cycle, LineAddr, ReqClass};
use std::collections::VecDeque;

/// Per-L2 fill-queue payload.
#[derive(Debug, Clone, Copy)]
struct L2Meta {
    /// Forward the block to the core's IL1 fill path.
    to_il1: bool,
    /// Forward the block to the core's DL1 fill path.
    to_dl1: bool,
}

/// One forward target recorded in an L3 fill-queue payload.
#[derive(Debug, Clone, Copy)]
struct Fwd {
    core: CoreId,
    class: ReqClass,
    to_il1: bool,
    to_dl1: bool,
}

/// L3 fill-queue payload: the cores waiting for the block.
#[derive(Debug, Clone)]
struct L3Meta {
    requester: CoreId,
    forwards: Vec<Fwd>,
}

/// A request waiting for an L2 fill-queue entry (back-pressure).
#[derive(Debug, Clone, Copy)]
struct StalledReq {
    line: LineAddr,
    class: ReqClass,
    ifetch: bool,
}

/// A request travelling to / waiting at the L3.
#[derive(Debug, Clone, Copy)]
struct L3Req {
    line: LineAddr,
    core: CoreId,
    class: ReqClass,
    ifetch: bool,
    /// The L3 access was already counted (stalled retries). Hit/miss
    /// classification is deferred to the arrival that *services* the
    /// request, so those counters stay monotonic — a measurement-window
    /// snapshot can never land between a count and a correction.
    counted: bool,
}

/// Uncore statistics (measurement windows snapshot and subtract these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UncoreStats {
    /// L2 read accesses from the core side (demand + L1 prefetch).
    pub l2_accesses: u64,
    /// ... of which hits with the prefetch bit clear.
    pub l2_hits: u64,
    /// ... of which hits with the prefetch bit set (§5.6).
    pub l2_prefetched_hits: u64,
    /// ... of which misses.
    pub l2_misses: u64,
    /// L2 misses merged into an in-flight fill (late prefetches included).
    pub l2_fill_merges: u64,
    /// L2 prefetch requests accepted into the prefetch queue.
    pub l2_prefetches_queued: u64,
    /// L2 prefetch requests sent to the L3.
    pub l2_prefetches_issued: u64,
    /// L2 prefetch requests cancelled (queue overflow or resource-full).
    pub l2_prefetches_cancelled: u64,
    /// L2 prefetch requests dropped because the line was already present
    /// or in flight.
    pub l2_prefetches_redundant: u64,
    /// Lines inserted into the L2 still carrying prefetch class.
    pub l2_prefetch_fills: u64,
    /// L3 read accesses.
    pub l3_accesses: u64,
    /// L3 hits.
    pub l3_hits: u64,
    /// L3 misses.
    pub l3_misses: u64,
    /// L3 misses merged into an in-flight L3 fill.
    pub l3_fill_merges: u64,
    /// L3-site prefetch candidates accepted into the L3 prefetch queue.
    pub l3_prefetches_queued: u64,
    /// L3-site prefetch requests issued to DRAM.
    pub l3_prefetches_issued: u64,
    /// L3-site prefetch requests cancelled (queue overflow or
    /// resource-full; §5.4: prefetches are cancelled, never retried).
    pub l3_prefetches_cancelled: u64,
    /// L3-site prefetch candidates dropped because the line was already
    /// resident, in flight, or queued.
    pub l3_prefetches_redundant: u64,
    /// Lines inserted into the L3 still carrying the L3-prefetch class.
    pub l3_prefetch_fills: u64,
    /// Writebacks sent to DRAM.
    pub dram_writebacks: u64,
}

/// Per-site prefetch-usefulness telemetry (the raw inputs of the
/// adaptive-control feedback loop; see `bosim-adapt`). One instance
/// tracks each core's L2 site; a single shared instance tracks the L3
/// site (where `prefetch_fills` counts *every* prefetch-class insertion
/// into the L3 — L2-issued prefetches fill the L3 on their way up, §5.4
/// — so the resolution invariant below covers them too).
///
/// Counters are cumulative; the epoch monitor snapshots and subtracts.
/// At any snapshot, `useful + unused_evicted <= prefetch_fills`: every
/// prefetch-filled line resolves at most once — its first hit from
/// above (useful) or its eviction with the prefetch bit still set
/// (unused).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchTelemetry {
    /// L2 read accesses from this core (demand + L1 prefetch).
    pub accesses: u64,
    /// ... of which missed (fill-queue merges included).
    pub misses: u64,
    /// L2 prefetch requests this core issued to the L3.
    pub issued: u64,
    /// Lines inserted into this core's L2 still carrying prefetch class.
    pub prefetch_fills: u64,
    /// First core-side touches (demand or L1 prefetch, like
    /// `l2_prefetched_hits`) of lines whose prefetch bit was still set.
    pub useful: u64,
    /// Prefetch-filled lines evicted with the prefetch bit still set.
    pub unused_evicted: u64,
    /// Demand requests that merged with (and promoted) an in-flight
    /// prefetch fill — correct but late prefetches.
    pub late_promotions: u64,
}

/// One core's private L2 complex.
#[derive(Debug)]
struct L2 {
    array: CacheArray,
    fq: FillQueue<L2Meta>,
    pq: PrefetchQueue,
    prefetcher: Box<dyn Prefetcher>,
    stalled: VecDeque<StalledReq>,
    /// (due cycle, line): L3-hit data arriving at the fill queue.
    ready_q: VecDeque<(Cycle, LineAddr)>,
    /// (due cycle, line): blocks forwarded up to the core (DL1/IL1).
    fill_out: VecDeque<(Cycle, LineAddr)>,
    sent_demand_this_cycle: bool,
    cand_buf: Vec<LineAddr>,
    telemetry: PrefetchTelemetry,
}

/// The shared uncore.
#[derive(Debug)]
pub struct Uncore {
    cfg: SimConfig,
    l2s: Vec<L2>,
    l3: CacheArray,
    l3_fq: FillQueue<L3Meta>,
    /// (due cycle, request): requests in flight towards the L3.
    l3_in: VecDeque<(Cycle, L3Req)>,
    l3_stalled: VecDeque<L3Req>,
    /// The L3 prefetch site's engine (`None` = site empty, the paper's
    /// machine).
    l3_prefetcher: Option<Box<dyn Prefetcher>>,
    /// The L3 site's own lowest-priority prefetch queue: candidate lines
    /// with the core whose access triggered them (for DRAM fairness
    /// accounting). Oldest entries are cancelled on overflow.
    l3_pq: VecDeque<(LineAddr, CoreId)>,
    /// Any request reached the L3 this cycle: L3 prefetch issue waits
    /// (lowest priority, mirroring the per-L2 demand gate).
    l3_saw_request: bool,
    /// Cumulative L3-site telemetry (shared, not per-core).
    l3_telemetry: PrefetchTelemetry,
    /// Candidate scratch buffer for the L3 prefetcher.
    l3_cand_buf: Vec<LineAddr>,
    mem: MemorySystem,
    /// Cached [`MemorySystem::next_event`] bound, valid while
    /// `mem_seen_version` matches [`MemorySystem::version`]. Amortizes
    /// the queue walk to once per DRAM state change instead of once per
    /// quiet cycle (see [`next_ready_after`](Self::next_ready_after)).
    mem_next: Cycle,
    /// The DRAM state version `mem_next` was computed at.
    mem_seen_version: u64,
    /// Dirty L3 victims waiting for a DRAM write-queue slot.
    wb_buf: VecDeque<(LineAddr, CoreId)>,
    completions: Vec<ReadCompletion>,
    /// Per-core scratch for [`drain_l3_fq`](Self::drain_l3_fq): does the
    /// core need a *new* L2 fill-queue entry for the forwarded block?
    fwd_needs_entry: Vec<bool>,
    /// Naive mode: poll every subsystem every cycle (no idle skipping
    /// inside [`tick`](Self::tick)); queues scan linearly.
    naive: bool,
    stats: UncoreStats,
    /// Cycle-domain event log (`None` = tracing disabled, the default;
    /// every hook below is then a single `if let` branch).
    recorder: Option<Recorder>,
    /// Scratch buffer for draining prefetcher-internal events (BO
    /// learning rounds and phase ends).
    pf_event_buf: Vec<PrefetchEvent>,
}

impl Uncore {
    /// Builds the uncore for `active_cores` cores.
    pub fn new(cfg: &SimConfig) -> Self {
        let naive = cfg.naive_hot_path;
        let l2s = (0..cfg.active_cores)
            .map(|i| L2 {
                array: CacheArray::new(
                    cfg.l2_size,
                    cfg.l2_ways,
                    PolicyKind::Lru,
                    cfg.active_cores,
                    cfg.seed ^ (i as u64 + 10),
                ),
                fq: if naive {
                    FillQueue::new_linear(cfg.l2_fill_queue)
                } else {
                    FillQueue::new(cfg.l2_fill_queue)
                },
                pq: if naive {
                    PrefetchQueue::new_linear(cfg.prefetch_queue)
                } else {
                    PrefetchQueue::new(cfg.prefetch_queue)
                },
                prefetcher: cfg.l2_prefetcher.build(cfg),
                stalled: VecDeque::new(),
                ready_q: VecDeque::new(),
                fill_out: VecDeque::new(),
                sent_demand_this_cycle: false,
                cand_buf: Vec::new(),
                telemetry: PrefetchTelemetry::default(),
            })
            .collect();
        let mut u = Uncore {
            l3: CacheArray::new(
                cfg.l3_size,
                cfg.l3_ways,
                cfg.l3_policy,
                cfg.active_cores,
                cfg.seed ^ 99,
            ),
            l3_fq: if naive {
                FillQueue::new_linear(cfg.l3_fill_queue)
            } else {
                FillQueue::new(cfg.l3_fill_queue)
            },
            l3_in: VecDeque::new(),
            l3_stalled: VecDeque::new(),
            l3_prefetcher: cfg.l3_prefetcher.as_ref().map(|h| h.build(cfg)),
            l3_pq: VecDeque::new(),
            l3_saw_request: false,
            l3_telemetry: PrefetchTelemetry::default(),
            l3_cand_buf: Vec::new(),
            mem: MemorySystem::new(MemConfig {
                num_cores: cfg.active_cores,
                ..Default::default()
            }),
            mem_next: 0,
            mem_seen_version: u64::MAX,
            wb_buf: VecDeque::new(),
            completions: Vec::new(),
            fwd_needs_entry: vec![false; cfg.active_cores],
            naive,
            stats: UncoreStats::default(),
            recorder: cfg.obs.events.then(|| Recorder::new(cfg.obs.max_events)),
            pf_event_buf: Vec::new(),
            l2s,
            cfg: cfg.clone(),
        };
        if u.recorder.is_some() {
            for l2 in &mut u.l2s {
                l2.prefetcher.set_event_sink(true);
            }
            if let Some(p) = u.l3_prefetcher.as_mut() {
                p.set_event_sink(true);
            }
        }
        u
    }

    /// Whether cycle-domain event tracing is active.
    pub fn events_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// Records an externally-produced event (core-side L1 events, epoch
    /// boundaries, tuning directives) into the shared log. A no-op when
    /// tracing is disabled.
    #[inline]
    pub fn record_event(&mut self, event: Event) {
        if let Some(r) = &mut self.recorder {
            r.record(event);
        }
    }

    /// The event log so far as `(events, dropped)`, or `None` when
    /// tracing is disabled.
    pub fn event_log(&self) -> Option<(&[Event], u64)> {
        self.recorder.as_ref().map(|r| (r.events(), r.dropped()))
    }

    /// Records one uncore-internal event.
    #[inline]
    fn emit(&mut self, cycle: Cycle, core: CoreId, site: ObsSite, kind: EventKind) {
        if let Some(r) = &mut self.recorder {
            r.record(Event {
                cycle,
                core: u32::from(core.0),
                site,
                kind,
            });
        }
    }

    /// Drains the prefetcher-internal events (best-offset round/phase
    /// ends) of the engine at `site` into the shared log. No-op unless
    /// tracing is enabled (the sinks are only armed then).
    fn drain_prefetcher_events(&mut self, c: usize, site: ObsSite, now: Cycle) {
        if self.recorder.is_none() {
            return;
        }
        let mut buf = std::mem::take(&mut self.pf_event_buf);
        match site {
            ObsSite::L3 => {
                if let Some(p) = self.l3_prefetcher.as_mut() {
                    p.drain_events(&mut buf);
                }
            }
            _ => self.l2s[c].prefetcher.drain_events(&mut buf),
        }
        for ev in buf.drain(..) {
            let kind = match ev {
                PrefetchEvent::RoundEnd {
                    round,
                    leader_offset,
                    leader_score,
                } => EventKind::RoundEnd {
                    round,
                    leader_offset,
                    leader_score,
                },
                PrefetchEvent::PhaseEnd {
                    best_offset,
                    best_score,
                    prefetch_on,
                    scores,
                } => EventKind::PhaseEnd {
                    best_offset,
                    best_score,
                    prefetch_on,
                    scores,
                },
            };
            self.emit(now, CoreId(c as u8), site, kind);
        }
        self.pf_event_buf = buf;
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> UncoreStats {
        self.stats
    }

    /// DRAM statistics (reads/writes/row behaviour).
    pub fn dram_stats(&self) -> bosim_dram::DramStats {
        self.mem.stats()
    }

    /// Access to the L2 prefetcher of a core (introspection for tests and
    /// examples).
    pub fn l2_prefetcher(&self, core: CoreId) -> &dyn Prefetcher {
        self.l2s[core.index()].prefetcher.as_ref()
    }

    /// Access to the L3 site's prefetcher, if the site is occupied.
    pub fn l3_prefetcher(&self) -> Option<&dyn Prefetcher> {
        self.l3_prefetcher.as_deref()
    }

    /// Snapshot of a core's cumulative L2-site prefetch-usefulness
    /// telemetry.
    pub fn prefetch_telemetry(&self, core: CoreId) -> PrefetchTelemetry {
        self.l2s[core.index()].telemetry
    }

    /// Snapshot of the shared L3 site's cumulative prefetch-usefulness
    /// telemetry. Counts prefetch-class lines in the L3 regardless of
    /// the issuing engine (L2 prefetches fill the L3 too, §5.4);
    /// `issued` counts only the L3 site's own DRAM requests.
    pub fn l3_prefetch_telemetry(&self) -> PrefetchTelemetry {
        self.l3_telemetry
    }

    /// Applies a runtime reconfiguration directive to a core's L2
    /// prefetcher. [`TuneDirective::SwitchPrefetcher`] is handled here —
    /// the named registry prefetcher is built fresh (cold state) and
    /// swapped in; everything else is delegated to the running
    /// prefetcher's [`Prefetcher::reconfigure`] hook. Returns whether
    /// the directive was applied.
    pub fn reconfigure_prefetcher(&mut self, core: CoreId, directive: &TuneDirective) -> bool {
        let l2 = &mut self.l2s[core.index()];
        match directive {
            TuneDirective::SwitchPrefetcher(name) => match crate::registry::registry().lookup(name)
            {
                Some(handle) if handle.supports_site(PrefetchSite::L2) => {
                    l2.prefetcher = handle.build(&self.cfg);
                    if self.recorder.is_some() {
                        l2.prefetcher.set_event_sink(true);
                    }
                    true
                }
                _ => false,
            },
            other => l2.prefetcher.reconfigure(other),
        }
    }

    /// Applies a runtime reconfiguration directive to the shared L3
    /// site. [`TuneDirective::SwitchPrefetcher`] rebuilds from the
    /// registry (the name must attach to the L3 site); other directives
    /// go to the running prefetcher. Every directive — switches
    /// included — is rejected when the site is empty: a configuration
    /// declared L3-prefetch-free stays that way for the whole run.
    pub fn reconfigure_l3_prefetcher(&mut self, directive: &TuneDirective) -> bool {
        if self.l3_prefetcher.is_none() {
            return false;
        }
        match directive {
            TuneDirective::SwitchPrefetcher(name) => {
                match crate::registry::registry().lookup(name) {
                    Some(handle) if handle.supports_site(PrefetchSite::L3) => {
                        let mut p = handle.build(&self.cfg);
                        if self.recorder.is_some() {
                            p.set_event_sink(true);
                        }
                        self.l3_prefetcher = Some(p);
                        true
                    }
                    _ => false,
                }
            }
            other => self
                .l3_prefetcher
                .as_mut()
                .expect("checked non-empty above") // bosim-lint: allow(P002, peeked non-empty above)
                .reconfigure(other),
        }
    }

    /// Core cycles one line transfer occupies on a DRAM channel's data
    /// bus (tBURST), for bus-occupancy telemetry.
    pub fn dram_line_transfer_cycles(&self) -> u64 {
        let t = &self.mem.config().timings;
        t.core(t.t_burst)
    }

    /// Number of independent DRAM channels.
    pub fn dram_channels(&self) -> usize {
        self.mem.config().channels
    }

    /// Lines currently resident in the shared L3 with the prefetch bit
    /// still set — the epoch series' cache-pollution gauge.
    pub fn l3_prefetched_lines(&self) -> u64 {
        self.l3.prefetched_lines()
    }

    /// A core read request (demand miss, DL1 prefetch, or ifetch) arrives
    /// at its private L2.
    pub fn core_read(
        &mut self,
        core: CoreId,
        line: LineAddr,
        class: ReqClass,
        ifetch: bool,
        now: Cycle,
    ) {
        let c = core.index();
        self.stats.l2_accesses += 1;
        self.l2s[c].telemetry.accesses += 1;
        let hit = self.l2s[c].array.access(line, false);
        match hit {
            Some(info) => {
                let outcome = if info.was_prefetch {
                    self.stats.l2_prefetched_hits += 1;
                    // First core-side touch of a prefetch-bit line: the
                    // fill was useful (the access cleared the bit, so
                    // this counts once per prefetched fill).
                    self.l2s[c].telemetry.useful += 1;
                    self.emit(now, core, ObsSite::L2, EventKind::FirstHit { line: line.0 });
                    AccessOutcome::PrefetchedHit
                } else {
                    self.stats.l2_hits += 1;
                    AccessOutcome::Hit
                };
                self.l2s[c]
                    .fill_out
                    .push_back((now + self.cfg.l2_latency, line));
                if !ifetch {
                    self.run_prefetcher(c, line, outcome, now);
                }
            }
            None => {
                self.stats.l2_misses += 1;
                self.l2s[c].telemetry.misses += 1;
                // CAM search of the fill queue: late-prefetch promotion.
                let mut late = false;
                let merged = {
                    let l2 = &mut self.l2s[c];
                    if let Some(e) = l2.fq.find_mut(line) {
                        if class == ReqClass::Demand {
                            if e.class == ReqClass::L2Prefetch {
                                // A correct-but-late prefetch: the demand
                                // caught the fill in flight.
                                l2.telemetry.late_promotions += 1;
                                late = true;
                            }
                            e.class = ReqClass::Demand;
                        }
                        e.payload.to_il1 |= ifetch;
                        e.payload.to_dl1 |= !ifetch;
                        true
                    } else {
                        false
                    }
                };
                if late {
                    self.emit(
                        now,
                        core,
                        ObsSite::L2,
                        EventKind::LateMerge { line: line.0 },
                    );
                }
                if merged {
                    self.stats.l2_fill_merges += 1;
                    // Also promote a matching in-flight L3 request.
                    self.promote_l3_inflight(core, line, ifetch);
                    if !ifetch {
                        self.run_prefetcher(c, line, AccessOutcome::Miss, now);
                    }
                    return;
                }
                // A pending prefetch-queue request for this line becomes
                // this demand miss.
                self.l2s[c].pq.remove(line);
                if !ifetch {
                    self.run_prefetcher(c, line, AccessOutcome::Miss, now);
                }
                let req = StalledReq {
                    line,
                    class,
                    ifetch,
                };
                self.forward_to_l3(core, req, now);
            }
        }
    }

    /// A demand for a line whose L2 entry was released (L3-miss window):
    /// the request may be in `l3_in`, `l3_stalled` or the L3 fill queue —
    /// promote it there so the forward reaches the core.
    fn promote_l3_inflight(&mut self, core: CoreId, line: LineAddr, ifetch: bool) {
        if let Some(e) = self.l3_fq.find_mut(line) {
            e.class = ReqClass::Demand;
            for f in &mut e.payload.forwards {
                if f.core == core {
                    f.class = ReqClass::Demand;
                    f.to_il1 |= ifetch;
                    f.to_dl1 |= !ifetch;
                }
            }
        }
        for (_, r) in self.l3_in.iter_mut() {
            if r.line == line && r.core == core {
                r.class = ReqClass::Demand;
            }
        }
        for r in self.l3_stalled.iter_mut() {
            if r.line == line && r.core == core {
                r.class = ReqClass::Demand;
            }
        }
    }

    /// Reserves the L2 fill-queue entry and sends the request towards the
    /// L3; stalls the request if no entry is free (§5.4: "a request is
    /// not issued until there is a free entry").
    fn forward_to_l3(&mut self, core: CoreId, req: StalledReq, now: Cycle) {
        let c = core.index();
        let meta = L2Meta {
            to_il1: req.ifetch,
            to_dl1: !req.ifetch && req.class != ReqClass::L2Prefetch,
        };
        if !self.l2s[c].fq.try_reserve(req.line, req.class, meta) {
            self.l2s[c].stalled.push_back(req);
            return;
        }
        if req.class != ReqClass::L2Prefetch {
            self.l2s[c].sent_demand_this_cycle = true;
        } else {
            self.emit(
                now,
                core,
                ObsSite::L2,
                EventKind::FillQueued { line: req.line.0 },
            );
        }
        self.l3_in.push_back((
            now + self.cfg.l2_latency,
            L3Req {
                line: req.line,
                core,
                class: req.class,
                ifetch: req.ifetch,
                counted: false,
            },
        ));
    }

    /// Runs the L2 prefetcher on an eligible access and queues its
    /// prefetch candidates.
    fn run_prefetcher(&mut self, c: usize, line: LineAddr, outcome: AccessOutcome, now: Cycle) {
        let mut cand = std::mem::take(&mut self.l2s[c].cand_buf);
        cand.clear();
        self.l2s[c]
            .prefetcher
            .on_access(CacheAccess { line, outcome }, &mut cand);
        self.drain_prefetcher_events(c, ObsSite::L2, now);
        for &target in &cand {
            let l2 = &mut self.l2s[c];
            // Redundancy checks: resident, in flight, or already queued.
            if l2.array.contains(target) || l2.fq.find(target).is_some() || l2.pq.contains(target) {
                self.stats.l2_prefetches_redundant += 1;
                continue;
            }
            self.stats.l2_prefetches_queued += 1;
            let before = l2.pq.cancelled;
            l2.pq.push(target);
            self.stats.l2_prefetches_cancelled += l2.pq.cancelled - before;
        }
        self.l2s[c].cand_buf = cand;
    }

    /// Runs the L3-site prefetcher on an eligible L3 access and queues
    /// its candidates into the site's own lowest-priority queue.
    fn run_l3_prefetcher(
        &mut self,
        core: CoreId,
        line: LineAddr,
        outcome: AccessOutcome,
        now: Cycle,
    ) {
        let Some(prefetcher) = self.l3_prefetcher.as_mut() else {
            return;
        };
        let mut cand = std::mem::take(&mut self.l3_cand_buf);
        cand.clear();
        prefetcher.on_access(CacheAccess { line, outcome }, &mut cand);
        self.drain_prefetcher_events(core.index(), ObsSite::L3, now);
        for &target in &cand {
            // Redundancy checks: resident, in flight, or already queued.
            if self.l3.contains(target)
                || self.l3_fq.find(target).is_some()
                || self.l3_pq.iter().any(|&(l, _)| l == target)
            {
                self.stats.l3_prefetches_redundant += 1;
                continue;
            }
            self.stats.l3_prefetches_queued += 1;
            if self.l3_pq.len() >= self.cfg.prefetch_queue {
                // Queue overflow cancels the oldest entry (§5.4: L2/L3
                // prefetches can be cancelled at any time).
                self.l3_pq.pop_front();
                self.stats.l3_prefetches_cancelled += 1;
            }
            self.l3_pq.push_back((target, core));
        }
        self.l3_cand_buf = cand;
    }

    /// Issues at most one L3-site prefetch to DRAM, only on cycles when
    /// no request reached the L3 (lowest priority, mirroring §5.4).
    /// Resource pressure cancels the request — prefetches are never
    /// retried.
    fn issue_l3_prefetch(&mut self, now: Cycle) {
        if self.l3_saw_request || self.l3_pq.is_empty() {
            return;
        }
        let Some((line, core)) = self.l3_pq.pop_front() else {
            return;
        };
        // Mandatory tag checks before issue: the block may have arrived
        // since the candidate was queued.
        if self.l3.contains(line) || self.l3_fq.find(line).is_some() {
            self.stats.l3_prefetches_redundant += 1;
            return;
        }
        if self.l3_fq.is_full()
            || !self.mem.can_accept_read(line, core)
            || self.mem.has_pending_read(line)
        {
            self.stats.l3_prefetches_cancelled += 1;
            self.emit(
                now,
                core,
                ObsSite::L3,
                EventKind::PrefetchDropped { line: line.0 },
            );
            return;
        }
        let reserved = self.l3_fq.try_reserve(
            line,
            ReqClass::L3Prefetch,
            L3Meta {
                requester: core,
                // No forward: the block fills the shared L3 only. A
                // later demand hits the L3 or merges with this entry.
                forwards: Vec::new(),
            },
        );
        debug_assert!(reserved, "checked for space above");
        let accepted = self.mem.enqueue_read(line, core, 0, now);
        debug_assert!(accepted, "checked for space above");
        self.stats.l3_prefetches_issued += 1;
        self.l3_telemetry.issued += 1;
        self.emit(
            now,
            core,
            ObsSite::L3,
            EventKind::PrefetchIssued { line: line.0 },
        );
        self.emit(
            now,
            core,
            ObsSite::L3,
            EventKind::FillQueued { line: line.0 },
        );
    }

    /// A dirty line written back from a core's DL1.
    pub fn core_writeback(&mut self, core: CoreId, line: LineAddr, now: Cycle) {
        let c = core.index();
        if self.l2s[c].array.mark_dirty(line) {
            return;
        }
        let evicted = self.l2s[c].array.insert(
            line,
            false,
            true,
            InsertCtx {
                demand: false,
                core,
            },
        );
        if let Some(ev) = evicted {
            if ev.prefetch {
                self.l2s[c].telemetry.unused_evicted += 1;
                self.emit(
                    now,
                    core,
                    ObsSite::L2,
                    EventKind::UnusedEvict { line: ev.line.0 },
                );
            }
            if ev.dirty {
                self.l3_writeback(core, ev.line, now);
            }
        }
    }

    /// A dirty line leaving an L2 (eviction) updates or allocates in the
    /// non-inclusive L3.
    fn l3_writeback(&mut self, core: CoreId, line: LineAddr, now: Cycle) {
        if self.l3.mark_dirty(line) {
            return;
        }
        let evicted = self.l3.insert(
            line,
            false,
            true,
            InsertCtx {
                demand: false,
                core,
            },
        );
        if let Some(ev) = evicted {
            if ev.prefetch {
                // An untouched prefetch-bit line fell out of the L3.
                self.l3_telemetry.unused_evicted += 1;
                self.emit(
                    now,
                    core,
                    ObsSite::L3,
                    EventKind::UnusedEvict { line: ev.line.0 },
                );
            }
            if ev.dirty {
                self.wb_buf.push_back((ev.line, core));
            }
        }
    }

    /// Processes a request arriving at the L3.
    fn l3_arrive(&mut self, mut req: L3Req, now: Cycle) {
        // Any arrival outranks the L3 prefetch site this cycle (§5.4:
        // prefetches have the lowest priority).
        self.l3_saw_request = true;
        let first_arrival = !req.counted;
        if first_arrival {
            self.stats.l3_accesses += 1;
            self.l3_telemetry.accesses += 1;
        }
        let hit = self.l3.access(req.line, false);
        if let Some(info) = hit {
            if info.was_prefetch {
                // First touch from above of a prefetch-bit L3 line: the
                // fill was useful (the access cleared the bit, so this
                // counts once per prefetched fill).
                self.l3_telemetry.useful += 1;
                self.emit(
                    now,
                    req.core,
                    ObsSite::L3,
                    EventKind::FirstHit { line: req.line.0 },
                );
            }
            // The L3-site prefetcher observes each request once, at its
            // first arrival (a stalled retry is the same request).
            if first_arrival && !req.ifetch {
                let outcome = if info.was_prefetch {
                    AccessOutcome::PrefetchedHit
                } else {
                    AccessOutcome::Hit
                };
                self.run_l3_prefetcher(req.core, req.line, outcome, now);
            }
            if req.counted {
                // A stalled-then-retried request whose block landed in
                // the L3 while it waited (another core's fill or a
                // writeback-allocate). Its L2 fill-queue entry was
                // released on the first (miss) arrival, so it must be
                // re-reserved before the L3-hit data can be accepted.
                // The request is recorded as a hit — no DRAM fetch of
                // its own services it (classification happens here, at
                // service time, never at the stalled first arrival).
                let l2 = &mut self.l2s[req.core.index()];
                let mut late = false;
                if let Some(e) = l2.fq.find_mut(req.line) {
                    if req.class == ReqClass::Demand {
                        if e.class == ReqClass::L2Prefetch {
                            l2.telemetry.late_promotions += 1;
                            late = true;
                        }
                        e.class = ReqClass::Demand;
                    }
                    e.payload.to_il1 |= req.ifetch;
                    e.payload.to_dl1 |= !req.ifetch && req.class != ReqClass::L2Prefetch;
                    if late {
                        self.emit(
                            now,
                            req.core,
                            ObsSite::L2,
                            EventKind::LateMerge { line: req.line.0 },
                        );
                    }
                } else if !l2.fq.try_reserve(
                    req.line,
                    req.class,
                    L2Meta {
                        to_il1: req.ifetch,
                        to_dl1: !req.ifetch && req.class != ReqClass::L2Prefetch,
                    },
                ) {
                    // No free L2 entry: the retry stays stalled.
                    self.l3_stalled.push_back(req);
                    return;
                }
            }
            self.stats.l3_hits += 1;
            // Data returns to the requesting L2 after the L3 latency.
            self.l2s[req.core.index()]
                .ready_q
                .push_back((now + self.cfg.l3_latency, req.line));
            return;
        }
        if first_arrival {
            self.l3_telemetry.misses += 1;
            if !req.ifetch {
                self.run_l3_prefetcher(req.core, req.line, AccessOutcome::Miss, now);
            }
        }
        // The miss is recorded at the terminal outcome below (merge,
        // fill-queue reservation, or prefetch cancellation) rather than
        // here: a stalled request stays unclassified until the retry
        // that services it, keeping every counter monotonic.
        req.counted = true;
        // §5.4: on an L3 miss, the L2 fill-queue entry is released
        // immediately ("the L1/L2 miss request becomes an L1/L2/L3 miss
        // request"); the forward from the L3 insertion stage re-reserves
        // it. Releasing *before* any resource check is what guarantees
        // forward progress under back-pressure.
        self.l2s[req.core.index()].fq.release(req.line);
        let fwd = Fwd {
            core: req.core,
            class: req.class,
            to_il1: req.ifetch,
            to_dl1: !req.ifetch && req.class != ReqClass::L2Prefetch,
        };
        // Merge into a pending L3 fill (the block is already on its way).
        let mut late_l3 = false;
        let mut late_l2 = false;
        if let Some(e) = self.l3_fq.find_mut(req.line) {
            if req.class == ReqClass::Demand {
                if e.class == ReqClass::L3Prefetch {
                    // The demand caught an L3-site prefetch in flight:
                    // correct but late, charged to the shared L3 site.
                    self.l3_telemetry.late_promotions += 1;
                    late_l3 = true;
                }
                if e.class == ReqClass::L2Prefetch && req.core == e.payload.requester {
                    // The issuing core's own demand caught its prefetch
                    // whose L2 entry was already released (L3-miss
                    // window): correct but late. Only the same-core
                    // merge counts — another core's demand leaves the
                    // issuer's (re-reserved) L2 entry prefetch-class,
                    // and a later same-core merge *there* would count
                    // the same prefetch a second time.
                    self.l2s[req.core.index()].telemetry.late_promotions += 1;
                    late_l2 = true;
                }
                e.class = ReqClass::Demand;
            }
            e.payload.forwards.push(fwd);
            self.stats.l3_misses += 1;
            self.stats.l3_fill_merges += 1;
            if late_l3 {
                self.emit(
                    now,
                    req.core,
                    ObsSite::L3,
                    EventKind::LateMerge { line: req.line.0 },
                );
            }
            if late_l2 {
                self.emit(
                    now,
                    req.core,
                    ObsSite::L2,
                    EventKind::LateMerge { line: req.line.0 },
                );
            }
            return;
        }
        // Need an L3 fill-queue entry and a DRAM read-queue slot.
        if self.l3_fq.is_full()
            || !self.mem.can_accept_read(req.line, req.core)
            || self.mem.has_pending_read(req.line)
        {
            if req.class == ReqClass::L2Prefetch {
                // Prefetches are cancelled, not retried (§5.4).
                self.stats.l3_misses += 1;
                self.stats.l2_prefetches_cancelled += 1;
                self.emit(
                    now,
                    req.core,
                    ObsSite::L2,
                    EventKind::PrefetchDropped { line: req.line.0 },
                );
            } else {
                self.l3_stalled.push_back(req);
            }
            return;
        }
        let reserved = self.l3_fq.try_reserve(
            req.line,
            req.class,
            L3Meta {
                requester: req.core,
                forwards: vec![fwd],
            },
        );
        debug_assert!(reserved, "checked for space above");
        self.stats.l3_misses += 1;
        let accepted = self.mem.enqueue_read(req.line, req.core, 0, now);
        debug_assert!(accepted, "checked for space above");
    }

    /// Drains at most one ready entry from the L3 fill queue into the L3
    /// array, forwarding the block to the waiting L2 fill queues.
    fn drain_l3_fq(&mut self, now: Cycle) {
        let Some(entry) = self.l3_fq.peek_ready() else {
            return;
        };
        // Every forward target needs an L2 fill-queue entry; otherwise
        // the insertion stalls this cycle (back-pressure). All forwards
        // of an entry carry the *same* line, so multiple forwards to one
        // core merge into a single L2 entry — and a core that already
        // holds an entry for the line (a retried demand re-reserved it)
        // needs no new one. Counting one free entry per *forward* here
        // would stall L3 fills that could in fact proceed.
        self.fwd_needs_entry.fill(false);
        for f in &entry.payload.forwards {
            self.fwd_needs_entry[f.core.index()] = true;
        }
        let line = entry.line;
        for (c, need) in self.fwd_needs_entry.iter().enumerate() {
            if *need && self.l2s[c].fq.is_full() && self.l2s[c].fq.find(line).is_none() {
                return;
            }
        }
        let entry = self.l3_fq.pop_ready().expect("peeked above"); // bosim-lint: allow(P002, pop follows a successful peek_ready)
        let demand = entry.class == ReqClass::Demand;
        // Mandatory tag check: no duplicates (§5.4).
        if !self.l3.contains(entry.line) {
            let evicted = self.l3.insert(
                entry.line,
                !demand,
                false,
                InsertCtx {
                    demand,
                    core: entry.payload.requester,
                },
            );
            if !demand {
                // Every prefetch-class insertion counts toward the L3
                // site's resolution invariant (L2 prefetches fill the
                // L3 on their way up, §5.4).
                self.l3_telemetry.prefetch_fills += 1;
                self.emit(
                    now,
                    entry.payload.requester,
                    ObsSite::L3,
                    EventKind::PrefetchFill { line: entry.line.0 },
                );
            }
            if entry.class == ReqClass::L3Prefetch {
                self.stats.l3_prefetch_fills += 1;
            }
            if let Some(ev) = evicted {
                if ev.prefetch {
                    self.l3_telemetry.unused_evicted += 1;
                    self.emit(
                        now,
                        entry.payload.requester,
                        ObsSite::L3,
                        EventKind::UnusedEvict { line: ev.line.0 },
                    );
                }
                if ev.dirty {
                    self.wb_buf.push_back((ev.line, entry.payload.requester));
                }
            }
        }
        if let Some(p) = self.l3_prefetcher.as_mut() {
            p.on_fill(entry.line, entry.class == ReqClass::L3Prefetch);
        }
        // Forward to the L2 fill queues (ready immediately: the block is
        // written into the L3 and forwarded simultaneously, §5.4).
        for f in entry.payload.forwards {
            let l2 = &mut self.l2s[f.core.index()];
            if let Some(e) = l2.fq.find_mut(entry.line) {
                // A retried demand re-reserved it already, or an earlier
                // forward of this entry targeted the same core: merge.
                if f.class == ReqClass::Demand {
                    e.class = ReqClass::Demand;
                }
                e.payload.to_il1 |= f.to_il1;
                e.payload.to_dl1 |= f.to_dl1;
                l2.fq.set_ready(entry.line);
                continue;
            }
            let ok = l2.fq.try_reserve(
                entry.line,
                f.class,
                L2Meta {
                    to_il1: f.to_il1,
                    to_dl1: f.to_dl1,
                },
            );
            debug_assert!(ok, "capacity checked above");
            l2.fq.set_ready(entry.line);
        }
    }

    /// Drains at most one ready entry from a core's L2 fill queue into
    /// the L2 array, notifying the prefetcher and forwarding to the core.
    fn drain_l2_fq(&mut self, c: usize, now: Cycle) {
        // First, mark entries whose L3-hit data has arrived.
        loop {
            match self.l2s[c].ready_q.front() {
                Some(&(t, line)) if t <= now => {
                    self.l2s[c].ready_q.pop_front();
                    self.l2s[c].fq.set_ready(line);
                }
                _ => break,
            }
        }
        let Some(entry) = self.l2s[c].fq.pop_ready() else {
            return;
        };
        let prefetched = entry.class == ReqClass::L2Prefetch;
        // Mandatory tag check before inserting a prefetched block (§5.4)
        // — applied to all fills: blocks must never be duplicated.
        if !self.l2s[c].array.contains(entry.line) {
            let evicted = self.l2s[c].array.insert(
                entry.line,
                prefetched,
                false,
                InsertCtx {
                    demand: !prefetched,
                    core: CoreId(c as u8),
                },
            );
            if prefetched {
                self.stats.l2_prefetch_fills += 1;
                self.l2s[c].telemetry.prefetch_fills += 1;
                self.emit(
                    now,
                    CoreId(c as u8),
                    ObsSite::L2,
                    EventKind::PrefetchFill { line: entry.line.0 },
                );
            }
            if let Some(ev) = evicted {
                if ev.prefetch {
                    // Evicted with the prefetch bit still set: fetched
                    // but never used.
                    self.l2s[c].telemetry.unused_evicted += 1;
                    self.emit(
                        now,
                        CoreId(c as u8),
                        ObsSite::L2,
                        EventKind::UnusedEvict { line: ev.line.0 },
                    );
                }
                if ev.dirty {
                    self.l3_writeback(CoreId(c as u8), ev.line, now);
                }
            }
        }
        self.l2s[c].prefetcher.on_fill(entry.line, prefetched);
        if entry.payload.to_dl1 || entry.payload.to_il1 {
            self.l2s[c].fill_out.push_back((now + 1, entry.line));
        }
    }

    /// Issues at most one prefetch-queue request to the L3, only when the
    /// core sent no demand request this cycle (lowest priority, §5.4).
    fn issue_prefetch(&mut self, c: usize, now: Cycle) {
        if self.l2s[c].sent_demand_this_cycle {
            return;
        }
        // Peek: if the L2 fill queue is full, leave the request queued.
        if self.l2s[c].fq.is_full() {
            return;
        }
        let Some(line) = self.l2s[c].pq.pop() else {
            return;
        };
        // Tag checks before issue (§6.3: mandatory for SBP, cheap and
        // harmless for the others).
        if self.l2s[c].array.contains(line) || self.l2s[c].fq.find(line).is_some() {
            self.stats.l2_prefetches_redundant += 1;
            return;
        }
        self.stats.l2_prefetches_issued += 1;
        self.l2s[c].telemetry.issued += 1;
        self.emit(
            now,
            CoreId(c as u8),
            ObsSite::L2,
            EventKind::PrefetchIssued { line: line.0 },
        );
        let req = StalledReq {
            line,
            class: ReqClass::L2Prefetch,
            ifetch: false,
        };
        self.forward_to_l3(CoreId(c as u8), req, now);
    }

    /// One-line state dump for stall diagnostics.
    pub fn debug_state(&self) -> String {
        let l2s: Vec<String> = self
            .l2s
            .iter()
            .map(|l2| {
                format!(
                    "fq={}/{} [{}] pq={} stalled={} ready_q={} out={}",
                    l2.fq.len(),
                    l2.fq.capacity(),
                    l2.fq
                        .iter()
                        .map(|e| format!(
                            "{:x}:{}{}",
                            e.line.0,
                            if e.is_ready() { "R" } else { "w" },
                            match e.class {
                                ReqClass::Demand => "D",
                                ReqClass::L1Prefetch => "1",
                                ReqClass::L2Prefetch => "2",
                                ReqClass::L3Prefetch => "3",
                            }
                        ))
                        .collect::<Vec<_>>()
                        .join(","),
                    l2.pq.len(),
                    l2.stalled.len(),
                    l2.ready_q.len(),
                    l2.fill_out.len(),
                )
            })
            .collect();
        format!(
            "l3_fq={}/{} [{}] l3_in={} l3_stalled={} l3_pq={} wb={} | L2: {}",
            self.l3_fq.len(),
            self.l3_fq.capacity(),
            self.l3_fq
                .iter()
                .map(|e| format!("{:x}:{}", e.line.0, if e.is_ready() { "R" } else { "w" }))
                .collect::<Vec<_>>()
                .join(","),
            self.l3_in.len(),
            self.l3_stalled.len(),
            self.l3_pq.len(),
            self.wb_buf.len(),
            l2s.join(" || ")
        )
    }

    /// Advances the uncore by one cycle. Returns `(core, line)` fills due
    /// for delivery to the cores via [`bosim_cpu::Core::fill`].
    ///
    /// Idle subsystems are skipped outright: each stage below is guarded
    /// by an O(1) occupancy / next-due check, so a quiescent uncore costs
    /// a handful of branches per cycle instead of polling every queue.
    /// The guards elide provable no-ops only — cycle-exact behaviour is
    /// identical to the fully-polled loop (the golden-stats test in
    /// `tests/tests/golden_stats.rs` pins this down).
    pub fn tick(
        &mut self,
        now: Cycle,
        fills: &mut Vec<(CoreId, LineAddr)>,
        prof: &mut HostProfiler,
    ) {
        // 1. DRAM: completions make L3 fill-queue entries ready.
        self.completions.clear();
        let l3_can_accept = !self.l3_fq.is_full();
        let mut comps = std::mem::take(&mut self.completions);
        let timer = prof.start(Phase::Dram);
        self.mem.tick(now, l3_can_accept, &mut comps);
        prof.stop(timer);
        for comp in &comps {
            self.l3_fq.set_ready(comp.line);
        }
        self.completions = comps;

        // 2. Requests arriving at the L3 (plus one stalled retry).
        if let Some(req) = self.l3_stalled.pop_front() {
            self.l3_arrive(req, now);
        }
        while let Some(&(t, req)) = self.l3_in.front() {
            if t > now {
                break;
            }
            self.l3_in.pop_front();
            self.l3_arrive(req, now);
        }

        // 3. L3 fill-queue drain (one insertion per cycle; O(1) no-op
        // when no entry is ready).
        if self.naive || self.l3_fq.has_ready() {
            self.drain_l3_fq(now);
        }

        // 3b. The L3 prefetch site issues at most one request, only on
        // cycles when no request reached the L3 (lowest priority). The
        // gate flag ages out every cycle, like the per-L2 demand gate.
        self.issue_l3_prefetch(now);
        self.l3_saw_request = false;

        // 4. Per-core L2 work.
        for c in 0..self.l2s.len() {
            let l2 = &mut self.l2s[c];
            let idle = !self.naive
                && !l2.fq.has_ready()
                && l2.stalled.is_empty()
                && l2.pq.is_empty()
                && l2.ready_q.front().is_none_or(|&(t, _)| t > now)
                && l2.fill_out.front().is_none_or(|&(t, _)| t > now);
            if idle {
                // The demand-priority flag still ages out after one cycle.
                l2.sent_demand_this_cycle = false;
                continue;
            }
            self.drain_l2_fq(c, now);
            // Retry one stalled demand request.
            if let Some(req) = self.l2s[c].stalled.pop_front() {
                // It may now merge with an in-flight fill.
                let l2 = &mut self.l2s[c];
                let mut late = false;
                if let Some(e) = l2.fq.find_mut(req.line) {
                    if req.class == ReqClass::Demand {
                        if e.class == ReqClass::L2Prefetch {
                            l2.telemetry.late_promotions += 1;
                            late = true;
                        }
                        e.class = ReqClass::Demand;
                    }
                    e.payload.to_il1 |= req.ifetch;
                    e.payload.to_dl1 |= !req.ifetch;
                    if late {
                        self.emit(
                            now,
                            CoreId(c as u8),
                            ObsSite::L2,
                            EventKind::LateMerge { line: req.line.0 },
                        );
                    }
                } else {
                    self.forward_to_l3(CoreId(c as u8), req, now);
                }
            }
            self.issue_prefetch(c, now);
            self.l2s[c].sent_demand_this_cycle = false;
            // Deliver due fills to the core.
            loop {
                match self.l2s[c].fill_out.front() {
                    Some(&(t, line)) if t <= now => {
                        self.l2s[c].fill_out.pop_front();
                        fills.push((CoreId(c as u8), line));
                    }
                    _ => break,
                }
            }
        }

        // 5. Drain the L3 writeback buffer into the DRAM write queues.
        while let Some(&(line, core)) = self.wb_buf.front() {
            if self.mem.enqueue_write(line, core, now) {
                self.wb_buf.pop_front();
                self.stats.dram_writebacks += 1;
            } else {
                break;
            }
        }
    }

    /// The earliest cycle ≥ `from` at which [`tick`](Self::tick) can do
    /// any work, or [`Cycle::MAX`] when the uncore is fully quiescent
    /// (nothing in flight anywhere — only a new core request wakes it).
    ///
    /// Used by the system loop to fast-forward through idle stretches;
    /// the bound is conservative (it may name a cycle where nothing
    /// happens) but never late (it never skips a state change).
    pub fn next_event_cycle(&self, from: Cycle) -> Cycle {
        // Cheap denials first: retries and drains act every cycle while
        // their queues hold anything (the L3 prefetch queue may issue on
        // any quiet cycle).
        if !self.l3_stalled.is_empty()
            || self.l3_fq.has_ready()
            || !self.wb_buf.is_empty()
            || !self.l3_pq.is_empty()
        {
            return from;
        }
        let mut t = Cycle::MAX;
        if let Some(&(d, _)) = self.l3_in.front() {
            if d <= from {
                return from;
            }
            t = t.min(d);
        }
        for l2 in &self.l2s {
            if l2.fq.has_ready() || !l2.stalled.is_empty() || !l2.pq.is_empty() {
                return from;
            }
            if let Some(&(d, _)) = l2.ready_q.front() {
                if d <= from {
                    return from;
                }
                t = t.min(d);
            }
            if let Some(&(d, _)) = l2.fill_out.front() {
                if d <= from {
                    return from;
                }
                t = t.min(d);
            }
        }
        // The queue bounds above are O(1); the DRAM bound walks every
        // queued request. When the uncore queues already cap the skip at
        // a few cycles AND the memory system is deeply queued, the walk
        // cannot pay for itself — decline the skip (returning `from`
        // means "step normally", which is always safe) instead of
        // scanning the memory system.
        const MIN_WORTHWHILE_SKIP: Cycle = 8;
        const CHEAP_MEM_SCAN: usize = 16;
        if t <= from + MIN_WORTHWHILE_SKIP && self.mem.queue_depth() > CHEAP_MEM_SCAN {
            return from;
        }
        match self.mem.next_event(from) {
            Some(e) if e <= from => from,
            Some(e) => t.min(e),
            None => t,
        }
    }

    /// The next cycle (strictly after `now`) the scheduled loop must
    /// tick this uncore at — the wake-up it posts to the event wheel
    /// right after a tick. [`Cycle::MAX`] means fully quiescent: only a
    /// new core request re-arms it (the system re-posts on dispatch).
    ///
    /// Same one-sided contract as
    /// [`next_event_cycle`](Self::next_event_cycle): early wake-ups are
    /// no-op ticks, late
    /// ones never happen. Unlike that method this one has no
    /// "walk-not-worth-it" decline heuristic — the expensive DRAM queue
    /// walk is cached and re-done only when [`MemorySystem::version`]
    /// moves, so even deeply-queued memory phases pay for it once per
    /// state change rather than once per cycle. The demand-priority
    /// flags need no term here: a set `sent_demand_this_cycle` flag only
    /// matters to a later prefetch issue, which requires a non-empty
    /// prefetch queue — and any non-empty prefetch queue already pins
    /// the wake-up to the very next cycle.
    pub fn next_ready_after(&mut self, now: Cycle) -> Cycle {
        let from = now + 1;
        if !self.l3_stalled.is_empty()
            || self.l3_fq.has_ready()
            || !self.wb_buf.is_empty()
            || !self.l3_pq.is_empty()
        {
            return from;
        }
        let mut t = Cycle::MAX;
        if let Some(&(d, _)) = self.l3_in.front() {
            if d <= from {
                return from;
            }
            t = t.min(d);
        }
        for l2 in &self.l2s {
            if l2.fq.has_ready() || !l2.stalled.is_empty() || !l2.pq.is_empty() {
                return from;
            }
            if let Some(&(d, _)) = l2.ready_q.front() {
                if d <= from {
                    return from;
                }
                t = t.min(d);
            }
            if let Some(&(d, _)) = l2.fill_out.front() {
                if d <= from {
                    return from;
                }
                t = t.min(d);
            }
        }
        // DRAM bound, amortized: while the version holds still the bank
        // and queue state is frozen, so the previously computed bound
        // stays exact. Recompute only on a state change or once the
        // cached bound is no longer in the future.
        if self.mem.version() != self.mem_seen_version || self.mem_next <= now {
            self.mem_next = self.mem.next_event(from).unwrap_or(Cycle::MAX);
            self.mem_seen_version = self.mem.version();
        }
        t.min(self.mem_next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PrefetcherHandle;
    use bosim_types::PageSize;

    fn uncore(prefetcher: PrefetcherHandle) -> Uncore {
        let cfg = SimConfig {
            active_cores: 1,
            page: PageSize::M4,
            l2_prefetcher: prefetcher,
            ..Default::default()
        };
        Uncore::new(&cfg)
    }

    /// Throwaway disabled profiler for test tick calls.
    fn prof() -> HostProfiler {
        HostProfiler::disabled()
    }

    fn run_to_fill(
        u: &mut Uncore,
        start: Cycle,
        max: Cycle,
    ) -> Option<(Cycle, Vec<(CoreId, LineAddr)>)> {
        let mut fills = Vec::new();
        for now in start..start + max {
            u.tick(now, &mut fills, &mut prof());
            if !fills.is_empty() {
                return Some((now, fills));
            }
        }
        None
    }

    #[test]
    fn demand_miss_goes_to_dram_and_returns() {
        let mut u = uncore(crate::prefetchers::none());
        u.core_read(CoreId(0), LineAddr(0x1234), ReqClass::Demand, false, 0);
        let (t, fills) = run_to_fill(&mut u, 0, 5000).expect("fill arrives");
        assert_eq!(fills[0], (CoreId(0), LineAddr(0x1234)));
        // L2 lookup (11) + DRAM (>= 104) + drains.
        assert!(t >= 100, "too fast: {t}");
        let s = u.stats();
        assert_eq!(s.l2_misses, 1);
        assert_eq!(s.l3_misses, 1);
        // The block is now resident in both L2 and L3 (non-inclusive fill).
        u.core_read(CoreId(0), LineAddr(0x1234), ReqClass::Demand, false, t + 1);
        assert_eq!(u.stats().l2_hits, 1);
    }

    #[test]
    fn l3_hit_is_much_faster_than_dram() {
        let mut u = uncore(crate::prefetchers::none());
        u.core_read(CoreId(0), LineAddr(0x99), ReqClass::Demand, false, 0);
        let (t1, _) = run_to_fill(&mut u, 0, 5000).expect("dram fill");
        // Evict nothing; read again from another "L2-cold" state by
        // invalidating the L2 copy only.
        // (Simulate: new uncore sharing nothing — instead re-request a
        // line that is in L3 but not L2.)
        // Simplest: request the same line again after evicting from L2 is
        // hard here; instead check stats shape: second request hits L2.
        u.core_read(CoreId(0), LineAddr(0x99), ReqClass::Demand, false, t1 + 1);
        assert_eq!(u.stats().l2_hits, 1);
        assert!(t1 >= 104);
    }

    #[test]
    fn next_line_prefetcher_fills_ahead() {
        let mut u = uncore(crate::prefetchers::next_line());
        u.core_read(CoreId(0), LineAddr(0x1000), ReqClass::Demand, false, 0);
        let mut fills = Vec::new();
        for now in 0..6000 {
            u.tick(now, &mut fills, &mut prof());
        }
        let s = u.stats();
        assert_eq!(s.l2_prefetches_issued, 1, "{s:?}");
        assert_eq!(s.l2_prefetch_fills, 1, "X+1 should be filled: {s:?}");
        // The prefetched line is resident: an access is a prefetched hit.
        u.core_read(CoreId(0), LineAddr(0x1001), ReqClass::Demand, false, 6001);
        assert_eq!(u.stats().l2_prefetched_hits, 1);
    }

    #[test]
    fn late_prefetch_promotion_on_inflight_line() {
        let mut u = uncore(crate::prefetchers::next_line());
        // Demand X triggers prefetch X+1; demand X+1 arrives while the
        // prefetch is still in flight -> merge, single DRAM read.
        u.core_read(CoreId(0), LineAddr(0x2000), ReqClass::Demand, false, 0);
        let mut fills = Vec::new();
        for now in 0..40 {
            u.tick(now, &mut fills, &mut prof());
        }
        u.core_read(CoreId(0), LineAddr(0x2001), ReqClass::Demand, false, 40);
        for now in 40..6000 {
            u.tick(now, &mut fills, &mut prof());
        }
        let got: std::collections::HashSet<u64> = fills.iter().map(|&(_, l)| l.0).collect();
        assert!(got.contains(&0x2001), "promoted prefetch must reach core");
        let s = u.stats();
        assert!(
            s.l2_fill_merges + s.l3_fill_merges + s.l3_hits >= 1,
            "{s:?}"
        );
    }

    #[test]
    fn writebacks_reach_dram() {
        let mut u = uncore(crate::prefetchers::none());
        // Fill many dirty lines through core writebacks; force L2 and L3
        // evictions until DRAM writes happen.
        for i in 0..200_000u64 {
            u.core_writeback(CoreId(0), LineAddr(i * 64), i);
            let mut fills = Vec::new();
            u.tick(i, &mut fills, &mut prof());
        }
        assert!(u.dram_stats().writes > 0, "{:?}", u.dram_stats());
    }

    #[test]
    fn prefetches_have_lowest_priority() {
        // A prefetch queued in the same cycle as a demand request must
        // not reach the L3 that cycle (§5.4: lowest priority).
        let mut u = uncore(crate::prefetchers::next_line());
        u.core_read(CoreId(0), LineAddr(0x7000), ReqClass::Demand, false, 0);
        let before = u.stats().l2_prefetches_issued;
        let mut fills = Vec::new();
        u.tick(0, &mut fills, &mut prof()); // demand was sent this cycle: prefetch waits
        assert_eq!(u.stats().l2_prefetches_issued, before);
        u.tick(1, &mut fills, &mut prof()); // no demand: the prefetch may go
        assert_eq!(u.stats().l2_prefetches_issued, before + 1);
    }

    #[test]
    fn redundant_prefetches_are_dropped() {
        let mut u = uncore(crate::prefetchers::next_line());
        // Fill X+1, then miss on X: the candidate X+1 is resident.
        u.core_read(CoreId(0), LineAddr(0x8001), ReqClass::Demand, false, 0);
        let mut fills = Vec::new();
        for now in 0..6000 {
            u.tick(now, &mut fills, &mut prof());
        }
        u.core_read(CoreId(0), LineAddr(0x8000), ReqClass::Demand, false, 6000);
        let s = u.stats();
        assert!(
            s.l2_prefetches_redundant >= 1,
            "prefetch of a resident line must be dropped: {s:?}"
        );
    }

    #[test]
    fn ampm_prefetcher_integrates() {
        let mut u = uncore(crate::prefetchers::ampm_default());
        let mut fills = Vec::new();
        let mut now = 0;
        for i in 0..12u64 {
            u.core_read(
                CoreId(0),
                LineAddr(0x9000 + i),
                ReqClass::Demand,
                false,
                now,
            );
            for _ in 0..400 {
                u.tick(now, &mut fills, &mut prof());
                now += 1;
            }
        }
        let s = u.stats();
        assert!(
            s.l2_prefetches_issued > 0,
            "AMPM must prefetch on a sequential pattern: {s:?}"
        );
    }

    #[test]
    fn writeback_allocate_cascades_to_l3() {
        let mut u = uncore(crate::prefetchers::none());
        // Write back enough dirty lines to one L2 set to force dirty
        // evictions into the L3 (write-allocate on writeback).
        // L2: 1024 sets; lines k*1024 share set 0; 8 ways overflow at 9.
        for k in 0..12u64 {
            u.core_writeback(CoreId(0), LineAddr(k * 1024), 0);
        }
        let s = u.stats();
        let _ = s;
        // The L3 must now hold the evicted dirty lines: reading one back
        // is an L3 hit, not a DRAM access.
        u.core_read(CoreId(0), LineAddr(0), ReqClass::Demand, false, 0);
        let mut fills = Vec::new();
        for now in 0..200 {
            u.tick(now, &mut fills, &mut prof());
        }
        assert_eq!(u.stats().l3_hits, 1, "{:?}", u.stats());
        assert!(!fills.is_empty(), "L3 hit must return data quickly");
    }

    /// Regression (over-reservation): two forwards of the *same line* to
    /// one core merge into a single L2 fill-queue entry, so the L3 drain
    /// must count one needed entry, not one per forward. With a 1-entry
    /// L2 fill queue the old per-forward count demanded two free slots —
    /// impossible — and the fill stalled forever.
    #[test]
    fn same_line_forwards_to_one_core_need_one_entry() {
        let cfg = SimConfig {
            active_cores: 1,
            page: PageSize::M4,
            l2_prefetcher: crate::prefetchers::none(),
            l2_fill_queue: 1,
            ..Default::default()
        };
        let mut u = Uncore::new(&cfg);
        let line = LineAddr(0x3000);
        let mut fills = Vec::new();
        // First demand: reserves the single L2 entry, reaches the L3 at
        // +l2_latency, misses, releases the entry and goes to DRAM.
        u.core_read(CoreId(0), line, ReqClass::Demand, false, 0);
        for now in 0..20 {
            u.tick(now, &mut fills, &mut prof());
        }
        // Re-request of the same line while the L3 fill is in flight:
        // re-reserves the L2 entry and *merges* at the L3 fill queue —
        // the entry now carries two forwards for core 0.
        u.core_read(CoreId(0), line, ReqClass::Demand, false, 20);
        for now in 21..40 {
            u.tick(now, &mut fills, &mut prof());
        }
        assert_eq!(u.stats().l3_fill_merges, 1, "{:?}", u.stats());
        assert!(fills.is_empty(), "DRAM not done yet");
        let (_, got) = run_to_fill(&mut u, 40, 5000).expect("fill must not stall");
        assert_eq!(got[0], (CoreId(0), line));
    }

    /// Regression: `drain_l3_fq` used a hard-coded 8-core scratch array
    /// and panicked for larger machines. The scratch is sized from
    /// `active_cores` now, matching the builder's core-count bound.
    #[test]
    fn uncore_handles_more_than_eight_cores() {
        let cfg = SimConfig {
            active_cores: 9,
            page: PageSize::M4,
            l2_prefetcher: crate::prefetchers::none(),
            ..Default::default()
        };
        assert!(cfg.validate().is_ok(), "builder must agree with uncore");
        let mut u = Uncore::new(&cfg);
        u.core_read(CoreId(8), LineAddr(0x9999), ReqClass::Demand, false, 0);
        let (_, fills) = run_to_fill(&mut u, 0, 5000).expect("fill arrives");
        assert_eq!(fills[0], (CoreId(8), LineAddr(0x9999)));
    }

    /// Regression (L3 accounting): a request that misses, stalls on a
    /// full L3 fill queue, and finds the block in the L3 when retried is
    /// serviced as a hit — and must be *recorded* as one. Hit/miss
    /// classification is deferred to the arrival that services the
    /// request (a stalled request is unclassified), so the counters are
    /// monotonic and `hits + misses == accesses` holds at quiescence.
    #[test]
    fn stalled_then_retried_request_recorded_as_hit() {
        let cfg = SimConfig {
            active_cores: 1,
            page: PageSize::M4,
            l2_prefetcher: crate::prefetchers::none(),
            l3_fill_queue: 1,
            ..Default::default()
        };
        let mut u = Uncore::new(&cfg);
        let mut fills = Vec::new();
        // A occupies the single L3 fill-queue entry (DRAM takes ≥104
        // cycles); B arrives behind it and stalls, its access counted
        // but its hit/miss classification pending.
        u.core_read(CoreId(0), LineAddr(0x5000), ReqClass::Demand, false, 0);
        for now in 0..15 {
            u.tick(now, &mut fills, &mut prof());
        }
        let b = LineAddr(0x7000);
        u.core_read(CoreId(0), b, ReqClass::Demand, false, 15);
        for now in 15..30 {
            u.tick(now, &mut fills, &mut prof());
        }
        let s = u.stats();
        assert_eq!((s.l3_accesses, s.l3_hits, s.l3_misses), (2, 0, 1), "{s:?}");
        // While B waits, dirty same-set writebacks evict B's line from
        // the L2 into the L3 (write-allocate): the block lands in the L3
        // before the retry can re-issue.
        // L2 has 1024 sets, so lines k*1024 + 0x7000 share B's set.
        u.core_writeback(CoreId(0), b, 30);
        for k in 1..=9u64 {
            u.core_writeback(CoreId(0), LineAddr(b.0 + k * 1024), 30);
        }
        assert!(fills.is_empty(), "nothing delivered yet");
        // The next retry hits in the L3: miss reclassified as a hit, and
        // the block still reaches the core (the released L2 entry is
        // re-reserved).
        let (_, got) = run_to_fill(&mut u, 30, 5000).expect("B must be serviced");
        assert_eq!(got[0], (CoreId(0), b));
        let s = u.stats();
        assert_eq!((s.l3_accesses, s.l3_hits, s.l3_misses), (2, 1, 1), "{s:?}");
    }

    #[test]
    fn telemetry_counts_useful_fills() {
        let mut u = uncore(crate::prefetchers::next_line());
        u.core_read(CoreId(0), LineAddr(0x1000), ReqClass::Demand, false, 0);
        let mut fills = Vec::new();
        for now in 0..6000 {
            u.tick(now, &mut fills, &mut prof());
        }
        let t = u.prefetch_telemetry(CoreId(0));
        assert_eq!((t.issued, t.prefetch_fills), (1, 1), "{t:?}");
        assert_eq!(t.useful, 0, "not touched yet");
        // First demand touch of the prefetched X+1: useful.
        u.core_read(CoreId(0), LineAddr(0x1001), ReqClass::Demand, false, 6000);
        let t = u.prefetch_telemetry(CoreId(0));
        assert_eq!(t.useful, 1, "{t:?}");
        assert!(t.useful + t.unused_evicted <= t.prefetch_fills);
        // A second touch of the same line is a plain hit, not useful.
        u.core_read(CoreId(0), LineAddr(0x1001), ReqClass::Demand, false, 6001);
        assert_eq!(u.prefetch_telemetry(CoreId(0)).useful, 1);
    }

    #[test]
    fn telemetry_counts_late_promotions() {
        let mut u = uncore(crate::prefetchers::next_line());
        // Demand X queues prefetch X+1; once the prefetch has issued into
        // the fill queue, a demand for X+1 merges with it (late).
        u.core_read(CoreId(0), LineAddr(0x2000), ReqClass::Demand, false, 0);
        let mut fills = Vec::new();
        for now in 0..30 {
            u.tick(now, &mut fills, &mut prof());
        }
        assert_eq!(u.stats().l2_prefetches_issued, 1, "prefetch in flight");
        u.core_read(CoreId(0), LineAddr(0x2001), ReqClass::Demand, false, 30);
        for now in 30..6000 {
            u.tick(now, &mut fills, &mut prof());
        }
        let t = u.prefetch_telemetry(CoreId(0));
        assert_eq!(t.late_promotions, 1, "{t:?}");
    }

    #[test]
    fn telemetry_counts_unused_evicted() {
        let mut u = uncore(crate::prefetchers::next_line());
        let mut fills = Vec::new();
        let mut now = 0;
        // Prefetch-fill lines in set 0 (stride = L2 set count), never
        // touching the prefetched ones; overflowing the 8-way set evicts
        // untouched prefetch-bit lines.
        for k in 1..=24u64 {
            u.core_read(
                CoreId(0),
                LineAddr(k * 1024 - 1),
                ReqClass::Demand,
                false,
                now,
            );
            for _ in 0..2000 {
                u.tick(now, &mut fills, &mut prof());
                now += 1;
            }
        }
        let t = u.prefetch_telemetry(CoreId(0));
        assert!(t.unused_evicted > 0, "{t:?}");
        assert!(t.useful + t.unused_evicted <= t.prefetch_fills, "{t:?}");
    }

    #[test]
    fn reconfigure_applies_directives_and_switches_prefetchers() {
        let mut u = uncore(crate::prefetchers::bo_default());
        assert!(u.reconfigure_prefetcher(CoreId(0), &TuneDirective::SetDegree(2)));
        assert!(!u.reconfigure_prefetcher(CoreId(0), &TuneDirective::SetDegree(9)));
        assert!(u.reconfigure_prefetcher(CoreId(0), &TuneDirective::SetEnabled(false)));
        // Switch to a registered prefetcher: fresh state, new name.
        assert!(
            u.reconfigure_prefetcher(CoreId(0), &TuneDirective::SwitchPrefetcher("none".into()))
        );
        assert_eq!(u.l2_prefetcher(CoreId(0)).name(), "none");
        // Unknown names are rejected, prefetcher unchanged.
        assert!(!u.reconfigure_prefetcher(
            CoreId(0),
            &TuneDirective::SwitchPrefetcher("definitely-not-registered".into())
        ));
        assert_eq!(u.l2_prefetcher(CoreId(0)).name(), "none");
    }

    #[test]
    fn empty_l3_site_rejects_every_directive() {
        // A configuration declared L3-prefetch-free must stay that way:
        // even a SwitchPrefetcher directive cannot conjure an engine
        // into the empty site mid-run.
        let mut u = uncore(crate::prefetchers::bo_default());
        assert!(u.l3_prefetcher().is_none());
        for d in [
            TuneDirective::SwitchPrefetcher("next-line".into()),
            TuneDirective::SetEnabled(false),
            TuneDirective::SetDegree(1),
        ] {
            assert!(!u.reconfigure_l3_prefetcher(&d), "{d}");
        }
        assert!(u.l3_prefetcher().is_none(), "site must stay empty");
    }

    #[test]
    fn occupied_l3_site_switches_and_gates() {
        let cfg = SimConfig {
            active_cores: 1,
            page: PageSize::M4,
            l2_prefetcher: crate::prefetchers::none(),
            l3_prefetcher: Some(crate::prefetchers::next_line()),
            ..Default::default()
        };
        let mut u = Uncore::new(&cfg);
        assert!(u.reconfigure_l3_prefetcher(&TuneDirective::SetEnabled(false)));
        assert!(u.reconfigure_l3_prefetcher(&TuneDirective::SwitchPrefetcher("offset-4".into())));
        assert_eq!(u.l3_prefetcher().expect("occupied").name(), "fixed-offset");
        // L1D-only specs cannot be switched into the L3 site.
        assert!(!u.reconfigure_l3_prefetcher(&TuneDirective::SwitchPrefetcher("stride".into())));
    }

    #[test]
    fn prefetch_queue_cancellation_counts() {
        let mut u = uncore(crate::prefetchers::next_line());
        // Burst of misses on one cycle: candidates pile into the 8-entry
        // prefetch queue; with no demand gaps they cannot issue, so the
        // queue overflows and cancels the oldest.
        for i in 0..32u64 {
            u.core_read(
                CoreId(0),
                LineAddr(0x4000 + i * 2),
                ReqClass::Demand,
                false,
                0,
            );
        }
        let s = u.stats();
        assert!(
            s.l2_prefetches_cancelled > 0,
            "queue should overflow: {s:?}"
        );
    }
}
