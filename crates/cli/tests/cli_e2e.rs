//! End-to-end driver tests: generate a trace, replay it through
//! `bosim run`/`bosim sweep`, and check the emitted report JSON —
//! the same loop the CI ingest-smoke step runs through the binary.

use bosim_cli::{dispatch, CliError};
use std::path::{Path, PathBuf};

fn strs(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

/// A per-test scratch directory under the target tmpdir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bosim_cli_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn gen_run_round_trip_produces_report_json() {
    let dir = scratch("run");
    let trace = dir.join("libq.champsim");
    dispatch(&strs(&[
        "gen",
        "--bench",
        "462",
        "--uops",
        "60000",
        "--format",
        "champsim",
        "--out",
        trace.to_str().unwrap(),
    ]))
    .expect("gen succeeds");
    assert!(trace.exists());

    // The acceptance shape: a ChampSim trace through l2:bo, with a
    // warm-up sampling plan, producing a report JSON.
    dispatch(&strs(&[
        "run",
        "--trace",
        trace.to_str().unwrap(),
        "--stack",
        "l2:bo",
        "--baseline",
        "l2:none",
        "--instructions",
        "20000",
        "--warmup",
        "4000",
        "--skip",
        "1000",
        "--report",
        "cli_run_e2e",
        "--out",
        dir.to_str().unwrap(),
    ]))
    .expect("run succeeds");
    let json = read(&dir.join("cli_run_e2e.json"));
    assert!(json.contains("\"name\": \"cli_run_e2e\""), "{json}");
    assert!(json.contains("\"metric\": \"speedup\""), "{json}");
    assert!(json.contains("\"benchmark\": \"libq\""), "{json}");
    // The sampled subject config label carries the plan.
    assert!(json.contains("@skip1k"), "{json}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_runs_a_corpus_manifest() {
    let dir = scratch("sweep");
    let trace = dir.join("mix.addr");
    dispatch(&strs(&[
        "gen",
        "--bench",
        "470",
        "--uops",
        "40000",
        "--format",
        "addr-text",
        "--out",
        trace.to_str().unwrap(),
    ]))
    .expect("gen succeeds");
    // Relative path: resolved against the manifest's directory.
    let manifest = dir.join("corpus.toml");
    std::fs::write(
        &manifest,
        "name = \"cli-sweep-e2e\"\n\
         instructions = 8000\n\
         warmup = 2000\n\
         [[trace]]\n\
         path = \"mix.addr\"\n\
         [[stack]]\n\
         stack = \"l2:bo\"\n\
         baseline = \"l2:none\"\n\
         [[stack]]\n\
         stack = \"l2:next-line\"\n\
         baseline = \"l2:none\"\n",
    )
    .unwrap();
    dispatch(&strs(&[
        "sweep",
        "--corpus",
        manifest.to_str().unwrap(),
        "--out",
        dir.to_str().unwrap(),
    ]))
    .expect("sweep succeeds");
    let json = read(&dir.join("cli_sweep_e2e.json"));
    assert!(json.contains("\"series\": \"l2:bo\""), "{json}");
    assert!(json.contains("\"series\": \"l2:next-line\""), "{json}");
    assert!(json.contains("\"benchmark\": \"mix\""), "{json}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn inspect_summarises_every_format() {
    let dir = scratch("inspect");
    for format in ["native", "champsim", "addr-text", "addr-bin"] {
        let trace = dir.join(format!("t_{format}.bin"));
        dispatch(&strs(&[
            "gen",
            "--bench",
            "433",
            "--uops",
            "20000",
            "--format",
            format,
            "--out",
            trace.to_str().unwrap(),
        ]))
        .expect("gen succeeds");
        // The `.bin` extension is deliberately unknown: inspect must
        // honour the explicit --format instead of detection.
        dispatch(&strs(&[
            "inspect",
            trace.to_str().unwrap(),
            "--format",
            format,
        ]))
        .unwrap_or_else(|e| panic!("inspect {format}: {e}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_exports_perfetto_json_that_check_trace_accepts() {
    let dir = scratch("trace");
    let trace = dir.join("libq.champsim");
    dispatch(&strs(&[
        "gen",
        "--bench",
        "462",
        "--uops",
        "40000",
        "--format",
        "champsim",
        "--out",
        trace.to_str().unwrap(),
    ]))
    .expect("gen succeeds");
    let out = dir.join("trace.json");
    dispatch(&strs(&[
        "trace",
        "--trace",
        trace.to_str().unwrap(),
        "--stack",
        "l2:bo",
        "--instructions",
        "15000",
        "--warmup",
        "3000",
        "--out",
        out.to_str().unwrap(),
    ]))
    .expect("trace succeeds");
    let text = read(&out);
    assert!(text.starts_with(r#"{"traceEvents":["#), "{text}");
    dispatch(&strs(&["check-trace", out.to_str().unwrap()])).expect("export validates");
    // The checker rejects structurally broken documents.
    let broken = dir.join("broken.json");
    std::fs::write(&broken, r#"{"traceEvents":[{"ph":"i"}]}"#).unwrap();
    assert!(matches!(
        dispatch(&strs(&["check-trace", broken.to_str().unwrap()])),
        Err(CliError::Failed(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_with_obs_flags_writes_trace_profile_and_epoch_artifacts() {
    let dir = scratch("obs_run");
    let trace = dir.join("mcf.champsim");
    dispatch(&strs(&[
        "gen",
        "--bench",
        "429",
        "--uops",
        "40000",
        "--format",
        "champsim",
        "--out",
        trace.to_str().unwrap(),
    ]))
    .expect("gen succeeds");
    dispatch(&strs(&[
        "run",
        "--trace",
        trace.to_str().unwrap(),
        "--stack",
        "l2:bo",
        "--instructions",
        "15000",
        "--warmup",
        "3000",
        "--report",
        "cli_obs_e2e",
        "--out",
        dir.to_str().unwrap(),
        "--events",
        "--profile",
    ]))
    .expect("run succeeds");
    assert!(dir.join("cli_obs_e2e.json").exists(), "report missing");
    let perfetto = read(&dir.join("cli_obs_e2e.trace.json"));
    assert!(perfetto.contains(r#""traceEvents""#), "{perfetto}");
    let profile = read(&dir.join("cli_obs_e2e.profile.json"));
    assert!(profile.contains("total_nanos"), "{profile}");
    // The stream file always exists; whether it has rows depends on
    // the run outlasting the 50k-cycle default epoch (pinned by the
    // workspace observability tests, not here).
    let epochs = read(&dir.join("cli_obs_e2e.epochs.jsonl"));
    for line in epochs.lines() {
        assert!(line.contains("\"ipc\""), "{line}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn inspect_json_emits_a_parseable_document() {
    let dir = scratch("inspect_json");
    let trace = dir.join("t.champsim");
    dispatch(&strs(&[
        "gen",
        "--bench",
        "433",
        "--uops",
        "20000",
        "--format",
        "champsim",
        "--out",
        trace.to_str().unwrap(),
    ]))
    .expect("gen succeeds");
    // The library path prints to stdout; exercise the flag end to end
    // through the binary-equivalent dispatch and re-derive the document
    // the command builds to check it parses.
    dispatch(&strs(&[
        "inspect",
        trace.to_str().unwrap(),
        "--format",
        "champsim",
        "--json",
    ]))
    .expect("inspect --json succeeds");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_invocations_fail_with_usage_errors() {
    assert!(matches!(dispatch(&strs(&["run"])), Err(CliError::Usage(_))));
    assert!(matches!(
        dispatch(&strs(&["run", "--trace", "x", "--bogus", "y"])),
        Err(CliError::Usage(_))
    ));
    // A missing trace file is a runtime failure, not a usage error.
    assert!(matches!(
        dispatch(&strs(&["run", "--trace", "/nonexistent/x.champsim"])),
        Err(CliError::Failed(_))
    ));
    // A corrupt trace reports the decode diagnosis with its offset.
    let dir = scratch("corrupt");
    let bad = dir.join("bad.champsim");
    std::fs::write(&bad, vec![0u8; 70]).unwrap(); // 64-byte record + 6 stray bytes
    match dispatch(&strs(&["run", "--trace", bad.to_str().unwrap()])) {
        Err(CliError::Failed(msg)) => {
            assert!(msg.contains("byte offset 64"), "{msg}");
        }
        other => panic!("unexpected {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
