//! End-to-end driver tests: generate a trace, replay it through
//! `bosim run`/`bosim sweep`, and check the emitted report JSON —
//! the same loop the CI ingest-smoke step runs through the binary.

use bosim_cli::{dispatch, CliError};
use std::path::{Path, PathBuf};

fn strs(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

/// A per-test scratch directory under the target tmpdir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bosim_cli_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn gen_run_round_trip_produces_report_json() {
    let dir = scratch("run");
    let trace = dir.join("libq.champsim");
    dispatch(&strs(&[
        "gen",
        "--bench",
        "462",
        "--uops",
        "60000",
        "--format",
        "champsim",
        "--out",
        trace.to_str().unwrap(),
    ]))
    .expect("gen succeeds");
    assert!(trace.exists());

    // The acceptance shape: a ChampSim trace through l2:bo, with a
    // warm-up sampling plan, producing a report JSON.
    dispatch(&strs(&[
        "run",
        "--trace",
        trace.to_str().unwrap(),
        "--stack",
        "l2:bo",
        "--baseline",
        "l2:none",
        "--instructions",
        "20000",
        "--warmup",
        "4000",
        "--skip",
        "1000",
        "--report",
        "cli_run_e2e",
        "--out",
        dir.to_str().unwrap(),
    ]))
    .expect("run succeeds");
    let json = read(&dir.join("cli_run_e2e.json"));
    assert!(json.contains("\"name\": \"cli_run_e2e\""), "{json}");
    assert!(json.contains("\"metric\": \"speedup\""), "{json}");
    assert!(json.contains("\"benchmark\": \"libq\""), "{json}");
    // The sampled subject config label carries the plan.
    assert!(json.contains("@skip1k"), "{json}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_runs_a_corpus_manifest() {
    let dir = scratch("sweep");
    let trace = dir.join("mix.addr");
    dispatch(&strs(&[
        "gen",
        "--bench",
        "470",
        "--uops",
        "40000",
        "--format",
        "addr-text",
        "--out",
        trace.to_str().unwrap(),
    ]))
    .expect("gen succeeds");
    // Relative path: resolved against the manifest's directory.
    let manifest = dir.join("corpus.toml");
    std::fs::write(
        &manifest,
        "name = \"cli-sweep-e2e\"\n\
         instructions = 8000\n\
         warmup = 2000\n\
         [[trace]]\n\
         path = \"mix.addr\"\n\
         [[stack]]\n\
         stack = \"l2:bo\"\n\
         baseline = \"l2:none\"\n\
         [[stack]]\n\
         stack = \"l2:next-line\"\n\
         baseline = \"l2:none\"\n",
    )
    .unwrap();
    dispatch(&strs(&[
        "sweep",
        "--corpus",
        manifest.to_str().unwrap(),
        "--out",
        dir.to_str().unwrap(),
    ]))
    .expect("sweep succeeds");
    let json = read(&dir.join("cli_sweep_e2e.json"));
    assert!(json.contains("\"series\": \"l2:bo\""), "{json}");
    assert!(json.contains("\"series\": \"l2:next-line\""), "{json}");
    assert!(json.contains("\"benchmark\": \"mix\""), "{json}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn inspect_summarises_every_format() {
    let dir = scratch("inspect");
    for format in ["native", "champsim", "addr-text", "addr-bin"] {
        let trace = dir.join(format!("t_{format}.bin"));
        dispatch(&strs(&[
            "gen",
            "--bench",
            "433",
            "--uops",
            "20000",
            "--format",
            format,
            "--out",
            trace.to_str().unwrap(),
        ]))
        .expect("gen succeeds");
        // The `.bin` extension is deliberately unknown: inspect must
        // honour the explicit --format instead of detection.
        dispatch(&strs(&[
            "inspect",
            trace.to_str().unwrap(),
            "--format",
            format,
        ]))
        .unwrap_or_else(|e| panic!("inspect {format}: {e}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_invocations_fail_with_usage_errors() {
    assert!(matches!(dispatch(&strs(&["run"])), Err(CliError::Usage(_))));
    assert!(matches!(
        dispatch(&strs(&["run", "--trace", "x", "--bogus", "y"])),
        Err(CliError::Usage(_))
    ));
    // A missing trace file is a runtime failure, not a usage error.
    assert!(matches!(
        dispatch(&strs(&["run", "--trace", "/nonexistent/x.champsim"])),
        Err(CliError::Failed(_))
    ));
    // A corrupt trace reports the decode diagnosis with its offset.
    let dir = scratch("corrupt");
    let bad = dir.join("bad.champsim");
    std::fs::write(&bad, vec![0u8; 70]).unwrap(); // 64-byte record + 6 stray bytes
    match dispatch(&strs(&["run", "--trace", bad.to_str().unwrap()])) {
        Err(CliError::Failed(msg)) => {
            assert!(msg.contains("byte offset 64"), "{msg}");
        }
        other => panic!("unexpected {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
