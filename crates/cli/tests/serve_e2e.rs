//! `bosim serve` end-to-end through the built binary: corpus manifest
//! in, checkpointed sharded sweep out — including a hard child-process
//! `SIGKILL` mid-sweep (a real dead process, not a cooperative stop)
//! followed by a resume that must reproduce the uninterrupted report
//! byte for byte. The in-process abort-hook matrix (shard counts ×
//! kill points) lives in `tests/tests/serve_resume.rs`.

use bosim_cli::dispatch;
use std::path::{Path, PathBuf};
use std::process::Command;

fn strs(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bosim_serve_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Generates the corpus traces and writes a manifest describing a
/// (2 traces × 2 paired stacks) grid; returns the manifest path.
fn write_corpus(dir: &Path, name: &str) -> PathBuf {
    for (bench, file) in [("462", "libq.champsim"), ("470", "lbm.champsim")] {
        dispatch(&strs(&[
            "gen",
            "--bench",
            bench,
            "--uops",
            "60000",
            "--format",
            "champsim",
            "--out",
            dir.join(file).to_str().unwrap(),
        ]))
        .expect("gen succeeds");
    }
    let manifest = dir.join("corpus.toml");
    std::fs::write(
        &manifest,
        format!(
            "name = \"{name}\"\n\
             instructions = 12000\n\
             warmup = 3000\n\
             [[trace]]\n\
             path = \"libq.champsim\"\n\
             [[trace]]\n\
             path = \"lbm.champsim\"\n\
             [[stack]]\n\
             stack = \"l2:bo\"\n\
             baseline = \"l2:none\"\n\
             [[stack]]\n\
             stack = \"l2:next-line\"\n\
             baseline = \"l2:none\"\n"
        ),
    )
    .expect("manifest");
    manifest
}

fn journal_rows(path: &Path) -> usize {
    std::fs::read_to_string(path)
        .map(|t| t.lines().count().saturating_sub(1))
        .unwrap_or(0)
}

fn read_bytes(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn serve_cli_completes_resumes_idempotently_and_honours_abort_after() {
    let dir = scratch("cli");
    let manifest = write_corpus(&dir, "serve-cli-e2e");
    let ref_out = dir.join("ref");
    let serve_args = |out: &Path, extra: &[&str]| -> Vec<String> {
        let mut v = strs(&[
            "serve",
            "--corpus",
            manifest.to_str().unwrap(),
            "--shards",
            "2",
            "--out",
            out.to_str().unwrap(),
        ]);
        v.extend(strs(extra));
        v
    };

    // Uninterrupted reference run, in process.
    dispatch(&serve_args(&ref_out, &[])).expect("serve completes");
    let reference = read_bytes(&ref_out.join("serve_cli_e2e.json"));
    assert!(!reference.is_empty());
    let stream = std::fs::read_to_string(ref_out.join("serve_cli_e2e.stream.jsonl")).unwrap();
    assert!(
        stream.lines().next().unwrap().contains("\"resume\""),
        "{stream}"
    );
    assert!(
        stream.lines().last().unwrap().contains("\"report\""),
        "{stream}"
    );

    // --abort-after through the real binary: exit code 1, exactly N
    // rows checkpointed, and a binary rerun resumes to the same bytes.
    let kill_out = dir.join("abort");
    let status = Command::new(env!("CARGO_BIN_EXE_bosim"))
        .args(serve_args(&kill_out, &["--abort-after", "2"]))
        .status()
        .expect("spawn bosim serve");
    assert_eq!(status.code(), Some(1), "an aborted sweep must exit 1");
    let journal = kill_out.join("serve_cli_e2e.journal.jsonl");
    assert_eq!(journal_rows(&journal), 2, "checkpoint holds exactly N rows");
    assert!(!kill_out.join("serve_cli_e2e.json").exists());
    let status = Command::new(env!("CARGO_BIN_EXE_bosim"))
        .args(serve_args(&kill_out, &[]))
        .status()
        .expect("spawn resume");
    assert!(status.success(), "resume must exit 0");
    assert_eq!(
        read_bytes(&kill_out.join("serve_cli_e2e.json")),
        reference,
        "binary kill+resume must be byte-identical to the uninterrupted run"
    );

    // A completed sweep reruns as a no-op with the same bytes.
    dispatch(&serve_args(&kill_out, &[])).expect("idempotent rerun");
    assert_eq!(read_bytes(&kill_out.join("serve_cli_e2e.json")), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkilled_serve_process_resumes_byte_identically() {
    let dir = scratch("sigkill");
    let manifest = write_corpus(&dir, "serve-kill-e2e");

    // Uninterrupted reference.
    let ref_out = dir.join("ref");
    dispatch(&strs(&[
        "serve",
        "--corpus",
        manifest.to_str().unwrap(),
        "--shards",
        "2",
        "--out",
        ref_out.to_str().unwrap(),
    ]))
    .expect("reference serve");
    let reference = read_bytes(&ref_out.join("serve_kill_e2e.json"));

    // Launch the binary and SIGKILL it as soon as the journal shows a
    // completed row: a hard process death mid-append window, no
    // cooperative shutdown path involved.
    let out = dir.join("killed");
    let mut child = Command::new(env!("CARGO_BIN_EXE_bosim"))
        .args(strs(&[
            "serve",
            "--corpus",
            manifest.to_str().unwrap(),
            "--shards",
            "2",
            "--out",
            out.to_str().unwrap(),
        ]))
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn bosim serve");
    let journal = out.join("serve_kill_e2e.journal.jsonl");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        if journal_rows(&journal) >= 1 {
            break;
        }
        if child.try_wait().expect("poll child").is_some() {
            break; // tiny machine finished the whole grid first
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no journal row appeared within the deadline"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let _ = child.kill(); // SIGKILL on unix; no-op if already exited
    let _ = child.wait();

    let rows_after_kill = journal_rows(&journal);
    // Resume in process and prove nothing checkpointed was re-run:
    // the journal only grows, and the report matches the reference.
    let summary = bosim_cli::serve(
        bosim_cli::commands::sweep_experiment(
            &bosim_cli::corpus::load(&manifest).expect("manifest loads"),
        )
        .expect("experiment assembles"),
        &{
            let mut o = bosim_cli::ServeOptions::new(&out);
            o.shards = 2;
            o
        },
    )
    .expect("resume completes");
    assert_eq!(
        summary.resumed, rows_after_kill,
        "every row the killed process checkpointed is trusted"
    );
    assert_eq!(summary.ran, summary.total - rows_after_kill);
    assert_eq!(
        read_bytes(&out.join("serve_kill_e2e.json")),
        reference,
        "SIGKILL + resume must be byte-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
