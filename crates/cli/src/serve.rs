//! The `bosim serve` sweep service: a corpus-scale grid runner with a
//! persistent job queue, worker shards, work stealing, checkpointed
//! resume and an incremental report stream.
//!
//! # Lifecycle
//!
//! [`serve`] plans the experiment ([`Experiment::plan`]), opens (or
//! creates) the journal under the output directory
//! ([`Journal`]), and replays every row a
//! previous run already completed — those jobs are **never re-executed**
//! (dedup by [job key](bosim_bench::ExperimentPlan::job_key), guarded
//! by the plan [fingerprint](bosim_bench::ExperimentPlan::fingerprint)).
//! The remaining jobs are dealt across worker shards
//! ([`ShardQueues`]) which steal from each
//! other when they run dry. Each completion is appended to the journal
//! and echoed to the stream file *before* the next job is handed out,
//! so a `SIGKILL` at any instant loses at most the in-flight jobs.
//!
//! # Determinism
//!
//! The final report is **always** assembled from the journaled rows,
//! sorted by job index
//! ([`ExperimentPlan::report_json_from_rows`]) —
//! an uninterrupted run and any kill+resume sequence walk the exact
//! same assembly path over the exact same row set, so their report
//! files are byte-identical. Completion order, shard count, work
//! stealing and crash timing can only change *when* rows appear, never
//! what the report says.
//!
//! # Artifacts
//!
//! For an experiment named `N` under the output directory `D`:
//! `D/N.journal.jsonl` (the checkpoint journal), `D/N.stream.jsonl`
//! (one [`StreamEvent`] per resume/row/abort/report, flushed as it
//! happens), and `D/N.json` (the final report, written only when the
//! grid is complete). See `docs/SERVE.md`.

use crate::commands::CliError;
use crate::queue::Journal;
use crate::shard::ShardQueues;
use bosim::run_job;
use bosim_bench::{Experiment, ExperimentPlan, JobRow};
use bosim_stats::Json;
use std::collections::BTreeMap;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;

/// Tuning and test knobs for one [`serve`] invocation.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker shard count (clamped to at least 1).
    pub shards: usize,
    /// Soft-abort hook: stop handing out work after this many jobs have
    /// been journaled *by this process* (the crash/restart harness and
    /// the CI smoke test; `--abort-after` / `BOSIM_SERVE_ABORT_AFTER`).
    pub abort_after: Option<u64>,
    /// Output directory for the journal, stream and report files.
    pub out_dir: PathBuf,
}

impl ServeOptions {
    /// Defaults: one shard per core, no abort hook, the standard report
    /// directory.
    pub fn new(out_dir: impl Into<PathBuf>) -> ServeOptions {
        ServeOptions {
            shards: bosim::default_threads(),
            abort_after: None,
            out_dir: out_dir.into(),
        }
    }
}

/// One line of the incremental stream file: progress as it happens.
///
/// `event` is `"resume"` (journal replayed; `done` jobs were already
/// complete), `"row"` (one job just completed; `row` carries its
/// journal row), `"abort"` (the abort hook fired) or `"report"` (grid
/// complete; the final report was written). `done`/`total` count
/// completed vs planned jobs at the moment of the event.
// bosim-lint: schema(serve-stream-event)
#[derive(Debug, Clone, PartialEq)]
pub struct StreamEvent {
    /// Event kind: `resume`, `row`, `abort` or `report`.
    pub event: String,
    /// Jobs complete (journaled) at this moment.
    pub done: u64,
    /// Total jobs in the grid.
    pub total: u64,
    /// The completed job's journal row (for `row` events).
    pub row: Option<Json>,
}

impl StreamEvent {
    /// The compact JSON form written as one stream line.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("event", Json::from(self.event.as_str())),
            ("done", Json::UInt(self.done)),
            ("total", Json::UInt(self.total)),
            ("row", Json::from(self.row.clone())),
        ])
    }
}

/// What one [`serve`] invocation did.
#[derive(Debug)]
pub struct ServeSummary {
    /// Total jobs in the grid.
    pub total: usize,
    /// Jobs recovered from the journal (not re-executed).
    pub resumed: usize,
    /// Jobs executed by this process.
    pub ran: usize,
    /// Of [`ran`](Self::ran), jobs a shard stole from another's deque.
    pub stolen: usize,
    /// Duplicate journal rows dropped on resume.
    pub duplicates: u64,
    /// Stale journal rows skipped on resume.
    pub stale: u64,
    /// Whether a torn final journal line was recovered on resume.
    pub torn_recovered: bool,
    /// Whether the abort hook stopped the sweep early.
    pub aborted: bool,
    /// The final report path (written only when the grid completed).
    pub report_path: Option<PathBuf>,
    /// The checkpoint journal path.
    pub journal_path: PathBuf,
    /// The incremental stream path.
    pub stream_path: PathBuf,
}

struct Stream {
    path: PathBuf,
    file: std::fs::File,
    total: u64,
}

impl Stream {
    fn open(path: PathBuf, total: u64) -> Result<Stream, CliError> {
        let file = std::fs::File::options()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| CliError::Failed(format!("cannot open {}: {e}", path.display())))?;
        Ok(Stream { path, file, total })
    }

    fn emit(&mut self, event: &str, done: u64, row: Option<Json>) -> Result<(), CliError> {
        let line = StreamEvent {
            event: event.to_string(),
            done,
            total: self.total,
            row,
        }
        .to_json()
        .to_string();
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .and_then(|()| self.file.flush())
            .map_err(|e| CliError::Failed(format!("cannot write {}: {e}", self.path.display())))
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `experiment` as a checkpointed, sharded sweep. See the [module
/// docs](self) for lifecycle and determinism.
///
/// # Errors
///
/// [`CliError::Failed`] on plan errors, journal/stream I/O failures, a
/// journal belonging to a different plan, or a panicking job. The
/// journal keeps every row completed before the failure, so a rerun
/// resumes instead of restarting.
pub fn serve(experiment: Experiment, opts: &ServeOptions) -> Result<ServeSummary, CliError> {
    let plan = experiment
        .plan()
        .map_err(|e| CliError::Failed(format!("cannot plan sweep: {e}")))?;
    serve_plan(&plan, opts)
}

fn serve_plan(plan: &ExperimentPlan, opts: &ServeOptions) -> Result<ServeSummary, CliError> {
    let total = plan.jobs().len();
    let journal_path = opts.out_dir.join(format!("{}.journal.jsonl", plan.name()));
    let stream_path = opts.out_dir.join(format!("{}.stream.jsonl", plan.name()));
    let report_path = opts.out_dir.join(format!("{}.json", plan.name()));

    let (mut journal, load) = Journal::open(&journal_path, plan)
        .map_err(|e| CliError::Failed(format!("cannot resume sweep: {e}")))?;
    let mut rows: BTreeMap<usize, JobRow> = load.rows;
    if load.torn_recovered {
        eprintln!("[bosim serve] recovered a torn final journal line (crash mid-append)");
    }
    if load.duplicates > 0 || load.stale > 0 {
        eprintln!(
            "[bosim serve] journal replay: dropped {} duplicate and {} stale row(s)",
            load.duplicates, load.stale
        );
    }
    let resumed = rows.len();
    let mut stream = Stream::open(stream_path.clone(), total as u64)?;
    stream.emit("resume", resumed as u64, None)?;

    let pending: Vec<usize> = (0..total).filter(|i| !rows.contains_key(i)).collect();
    let shards = opts.shards.max(1).min(pending.len().max(1));
    eprintln!(
        "[bosim serve] {}: {} jobs total, {} resumed from journal, {} to run on {} shard(s)",
        plan.name(),
        total,
        resumed,
        pending.len(),
        shards,
    );

    let queues = ShardQueues::partition(&pending, shards);
    let stop = AtomicBool::new(false);
    let mut ran = 0usize;
    let mut stolen = 0usize;
    let mut aborted = false;
    let mut failure: Option<String> = None;

    type Done = (
        crate::shard::ShardJob,
        Result<Box<bosim::SimResult>, String>,
    );
    std::thread::scope(|s| -> Result<(), CliError> {
        let (tx, rx) = mpsc::channel::<Done>();
        for shard in 0..shards {
            let tx = tx.clone();
            let queues = &queues;
            let stop = &stop;
            let jobs = plan.jobs();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let Some(sj) = queues.next(shard) else { break };
                    let res = catch_unwind(AssertUnwindSafe(|| Box::new(run_job(&jobs[sj.job]))))
                        .map_err(panic_message);
                    if tx.send((sj, res)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        for (sj, res) in rx {
            match res {
                // Once the abort hook has fired, in-flight completions
                // are discarded, exactly as a real crash would lose
                // them: the journal holds precisely the rows completed
                // before the "kill", which is what the crash/restart
                // harness relies on.
                Ok(_) if aborted => {}
                Ok(result) => {
                    let row = plan.row(sj.job, &result);
                    journal
                        .append(&row)
                        .map_err(|e| CliError::Failed(format!("cannot checkpoint: {e}")))?;
                    rows.insert(sj.job, row.clone());
                    ran += 1;
                    if sj.stolen {
                        stolen += 1;
                    }
                    stream.emit("row", rows.len() as u64, Some(row.to_json()))?;
                    if opts.abort_after.is_some_and(|n| (ran as u64) >= n) && !aborted {
                        aborted = true;
                        stop.store(true, Ordering::Relaxed);
                    }
                }
                Err(message) => {
                    let job = &plan.jobs()[sj.job];
                    failure.get_or_insert_with(|| {
                        format!(
                            "job {} [{}] panicked: {message}",
                            job.bench.name,
                            job.config.label()
                        )
                    });
                    stop.store(true, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    })?;

    if let Some(message) = failure {
        return Err(CliError::Failed(format!(
            "sweep failed: {message} (completed rows are checkpointed in {}; rerun to resume)",
            journal_path.display()
        )));
    }

    let complete = rows.len() == total;
    if aborted {
        stream.emit("abort", rows.len() as u64, None)?;
        eprintln!(
            "[bosim serve] abort hook fired after {ran} job(s); {} of {total} journaled",
            rows.len()
        );
    }
    let mut final_report = None;
    if complete {
        let doc = plan
            .report_json_from_rows(&rows)
            .map_err(|e| CliError::Failed(format!("cannot assemble report: {e}")))?;
        std::fs::write(&report_path, doc.to_pretty()).map_err(|e| {
            CliError::Failed(format!("cannot write {}: {e}", report_path.display()))
        })?;
        stream.emit("report", rows.len() as u64, None)?;
        eprintln!("[bosim serve] report written to {}", report_path.display());
        final_report = Some(report_path);
    }

    Ok(ServeSummary {
        total,
        resumed,
        ran,
        stolen,
        duplicates: load.duplicates,
        stale: load.stale,
        torn_recovered: load.torn_recovered,
        aborted,
        report_path: final_report,
        journal_path,
        stream_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_events_round_trip() {
        let e = StreamEvent {
            event: "row".to_string(),
            done: 3,
            total: 12,
            row: Some(Json::obj([("job", Json::UInt(2))])),
        };
        let doc = Json::parse(&e.to_json().to_string()).unwrap();
        assert_eq!(doc.get("event").and_then(Json::as_str), Some("row"));
        assert_eq!(doc.get("done").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("total").and_then(Json::as_f64), Some(12.0));
        assert!(doc.get("row").is_some());
        // Non-row events carry an explicit null row.
        let e = StreamEvent {
            event: "resume".to_string(),
            done: 0,
            total: 12,
            row: None,
        };
        assert!(e.to_json().to_string().contains("\"row\":null"));
    }
}
