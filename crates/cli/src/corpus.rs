//! The sweep corpus manifest: a hand-rolled, zero-dependency parser for
//! the TOML subset `bosim sweep` consumes.
//!
//! A manifest names a set of traces and a set of prefetcher stacks; the
//! sweep runs every (trace × stack) cell. The accepted grammar is a
//! strict TOML subset — top-level `key = value` pairs, `[[trace]]` and
//! `[[stack]]` array sections, string/integer values, `#` comments —
//! parsed line by line with errors naming the offending line:
//!
//! ```toml
//! name = "server-mix"          # experiment id (JSON file stem)
//! instructions = 200000        # optional run-window overrides
//! warmup = 50000
//! skip = 1000000               # optional trace sampling
//! window = 100000
//! interval = 1000000
//!
//! [[trace]]
//! path = "traces/mcf.champsim" # relative to the manifest
//! format = "champsim"          # optional: auto-detected otherwise
//! name = "mcf"                 # optional: file stem otherwise
//!
//! [[stack]]
//! stack = "l2:bo"
//! baseline = "l2:none"         # optional: arm reports speedup over it
//! ```

use std::fmt;
use std::path::{Path, PathBuf};

/// One trace entry of a manifest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceEntry {
    /// Trace file path (resolved relative to the manifest's directory).
    pub path: PathBuf,
    /// Explicit format name; `None` auto-detects.
    pub format: Option<String>,
    /// Report name; `None` uses the file stem.
    pub name: Option<String>,
}

/// One prefetcher-stack entry of a manifest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StackEntry {
    /// The subject stack, e.g. `"l1:stride+l2:bo"`.
    pub stack: String,
    /// Optional baseline stack the arm reports speedups against.
    pub baseline: Option<String>,
}

/// A parsed corpus manifest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Corpus {
    /// Experiment id (JSON file stem); defaults to `"sweep"`.
    pub name: String,
    /// The traces.
    pub traces: Vec<TraceEntry>,
    /// The stacks.
    pub stacks: Vec<StackEntry>,
    /// Measured-instruction override.
    pub instructions: Option<u64>,
    /// Warm-up-instruction override.
    pub warmup: Option<u64>,
    /// Sampling: µops skipped once.
    pub skip: Option<u64>,
    /// Sampling: µops kept per window.
    pub window: Option<u64>,
    /// Sampling: µops between window starts.
    pub interval: Option<u64>,
}

/// A manifest parse error, naming the 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusError {
    /// 1-based line number (0 for whole-file errors).
    pub line: usize,
    /// What was wrong.
    pub what: String,
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "corpus manifest: {}", self.what)
        } else {
            write!(f, "corpus manifest line {}: {}", self.line, self.what)
        }
    }
}

impl std::error::Error for CorpusError {}

/// A parsed scalar value.
enum Value {
    Str(String),
    Int(u64),
}

impl Value {
    fn as_str(&self, line: usize, key: &str) -> Result<String, CorpusError> {
        match self {
            Value::Str(s) => Ok(s.clone()),
            Value::Int(_) => Err(CorpusError {
                line,
                what: format!("{key} expects a string value"),
            }),
        }
    }

    fn as_int(&self, line: usize, key: &str) -> Result<u64, CorpusError> {
        match self {
            Value::Int(n) => Ok(*n),
            Value::Str(_) => Err(CorpusError {
                line,
                what: format!("{key} expects an integer value"),
            }),
        }
    }
}

/// Strips a `#` comment, respecting double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(raw: &str, line: usize) -> Result<Value, CorpusError> {
    let raw = raw.trim();
    if let Some(body) = raw.strip_prefix('"') {
        let Some(body) = body.strip_suffix('"') else {
            return Err(CorpusError {
                line,
                what: format!("unterminated string {raw:?}"),
            });
        };
        if body.contains('"') {
            return Err(CorpusError {
                line,
                what: format!("embedded quote in string {raw:?}"),
            });
        }
        return Ok(Value::Str(body.to_string()));
    }
    raw.replace('_', "")
        .parse::<u64>()
        .map(Value::Int)
        .map_err(|_| CorpusError {
            line,
            what: format!("bad value {raw:?} (expected a \"string\" or a non-negative integer)"),
        })
}

/// Which section the parser is in.
enum Section {
    Top,
    Trace,
    Stack,
}

/// Parses manifest `text`; relative trace paths are resolved against
/// `base_dir` (the manifest's directory).
///
/// # Errors
///
/// Returns a [`CorpusError`] naming the line of the first syntax
/// problem, an unknown key/section, or a structurally empty manifest
/// (no traces or no stacks).
pub fn parse(text: &str, base_dir: &Path) -> Result<Corpus, CorpusError> {
    let mut corpus = Corpus {
        name: "sweep".to_string(),
        ..Default::default()
    };
    let mut section = Section::Top;
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(head) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            match head.trim() {
                "trace" => {
                    corpus.traces.push(TraceEntry::default());
                    section = Section::Trace;
                }
                "stack" => {
                    corpus.stacks.push(StackEntry::default());
                    section = Section::Stack;
                }
                other => {
                    return Err(CorpusError {
                        line: line_no,
                        what: format!("unknown section [[{other}]] (expected trace or stack)"),
                    })
                }
            }
            continue;
        }
        if line.starts_with('[') {
            return Err(CorpusError {
                line: line_no,
                what: format!(
                    "unexpected section {line:?}: only [[trace]] and [[stack]] are supported"
                ),
            });
        }
        let Some((key, raw_value)) = line.split_once('=') else {
            return Err(CorpusError {
                line: line_no,
                what: format!("expected key = value, got {line:?}"),
            });
        };
        let key = key.trim();
        let value = parse_value(raw_value, line_no)?;
        match section {
            Section::Top => match key {
                "name" => corpus.name = value.as_str(line_no, key)?,
                "instructions" => corpus.instructions = Some(value.as_int(line_no, key)?),
                "warmup" => corpus.warmup = Some(value.as_int(line_no, key)?),
                "skip" => corpus.skip = Some(value.as_int(line_no, key)?),
                "window" => corpus.window = Some(value.as_int(line_no, key)?),
                "interval" => corpus.interval = Some(value.as_int(line_no, key)?),
                other => {
                    return Err(CorpusError {
                        line: line_no,
                        what: format!(
                            "unknown top-level key {other:?} (accepted: name, instructions, \
                             warmup, skip, window, interval)"
                        ),
                    })
                }
            },
            Section::Trace => {
                let entry = corpus.traces.last_mut().expect("section pushed an entry"); // bosim-lint: allow(P002, section header push precedes every entry line)
                match key {
                    "path" => {
                        let p = PathBuf::from(value.as_str(line_no, key)?);
                        entry.path = if p.is_absolute() { p } else { base_dir.join(p) };
                    }
                    "format" => entry.format = Some(value.as_str(line_no, key)?),
                    "name" => entry.name = Some(value.as_str(line_no, key)?),
                    other => {
                        return Err(CorpusError {
                            line: line_no,
                            what: format!(
                                "unknown [[trace]] key {other:?} (accepted: path, format, name)"
                            ),
                        })
                    }
                }
            }
            Section::Stack => {
                let entry = corpus.stacks.last_mut().expect("section pushed an entry"); // bosim-lint: allow(P002, section header push precedes every entry line)
                match key {
                    "stack" => entry.stack = value.as_str(line_no, key)?,
                    "baseline" => entry.baseline = Some(value.as_str(line_no, key)?),
                    other => {
                        return Err(CorpusError {
                            line: line_no,
                            what: format!(
                                "unknown [[stack]] key {other:?} (accepted: stack, baseline)"
                            ),
                        })
                    }
                }
            }
        }
    }
    for (i, t) in corpus.traces.iter().enumerate() {
        if t.path.as_os_str().is_empty() {
            return Err(CorpusError {
                line: 0,
                what: format!("[[trace]] entry {} has no path", i + 1),
            });
        }
    }
    for (i, s) in corpus.stacks.iter().enumerate() {
        if s.stack.is_empty() {
            return Err(CorpusError {
                line: 0,
                what: format!("[[stack]] entry {} has no stack", i + 1),
            });
        }
    }
    if corpus.traces.is_empty() {
        return Err(CorpusError {
            line: 0,
            what: "no [[trace]] entries".to_string(),
        });
    }
    if corpus.stacks.is_empty() {
        return Err(CorpusError {
            line: 0,
            what: "no [[stack]] entries".to_string(),
        });
    }
    Ok(corpus)
}

/// Reads and parses a manifest file; relative trace paths resolve
/// against the file's directory.
///
/// # Errors
///
/// Returns I/O failures as a line-0 [`CorpusError`], and parse errors
/// as-is.
pub fn load(path: &Path) -> Result<Corpus, CorpusError> {
    let text = std::fs::read_to_string(path).map_err(|e| CorpusError {
        line: 0,
        what: format!("cannot read {}: {e}", path.display()),
    })?;
    parse(&text, path.parent().unwrap_or(Path::new(".")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# a corpus
name = "server-mix"
instructions = 200_000
warmup = 50000

[[trace]]
path = "traces/mcf.champsim"
format = "champsim"
name = "mcf"      # display name

[[trace]]
path = "/abs/astar.addr"

[[stack]]
stack = "l2:bo"
baseline = "l2:none"

[[stack]]
stack = "l1:stride+l2:bo+l3:next-line"
"#;

    #[test]
    fn sample_manifest_parses() {
        let c = parse(SAMPLE, Path::new("/corpus")).unwrap();
        assert_eq!(c.name, "server-mix");
        assert_eq!(c.instructions, Some(200_000));
        assert_eq!(c.warmup, Some(50_000));
        assert_eq!(c.skip, None);
        assert_eq!(c.traces.len(), 2);
        // Relative paths resolve against the manifest directory.
        assert_eq!(
            c.traces[0].path,
            PathBuf::from("/corpus/traces/mcf.champsim")
        );
        assert_eq!(c.traces[0].format.as_deref(), Some("champsim"));
        assert_eq!(c.traces[0].name.as_deref(), Some("mcf"));
        // Absolute paths pass through.
        assert_eq!(c.traces[1].path, PathBuf::from("/abs/astar.addr"));
        assert_eq!(c.stacks.len(), 2);
        assert_eq!(c.stacks[0].baseline.as_deref(), Some("l2:none"));
        assert_eq!(c.stacks[1].stack, "l1:stride+l2:bo+l3:next-line");
        assert_eq!(c.stacks[1].baseline, None);
    }

    #[test]
    fn comments_respect_quotes() {
        let c = parse(
            "name = \"a#b\"\n[[trace]]\npath = \"t.addr\"\n[[stack]]\nstack = \"l2:bo\"\n",
            Path::new("."),
        )
        .unwrap();
        assert_eq!(c.name, "a#b");
    }

    #[test]
    fn errors_name_the_line() {
        let err = parse("nonsense\n", Path::new(".")).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"), "{err}");

        let err = parse("[[bogus]]\n", Path::new(".")).unwrap_err();
        assert!(err.what.contains("[[bogus]]"), "{err}");

        let err = parse("[trace]\n", Path::new(".")).unwrap_err();
        assert!(err.what.contains("[[trace]]"), "{err}");

        let err = parse("name = \"unterminated\n", Path::new(".")).unwrap_err();
        assert!(err.what.contains("unterminated"), "{err}");

        let err = parse("instructions = \"ten\"\n", Path::new(".")).unwrap_err();
        assert!(err.what.contains("integer"), "{err}");

        let err = parse("mystery = 5\n", Path::new(".")).unwrap_err();
        assert!(err.what.contains("mystery"), "{err}");

        let err = parse("[[trace]]\nspeed = 9\n", Path::new(".")).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn structural_emptiness_is_rejected() {
        assert!(parse("name = \"x\"\n", Path::new("."))
            .unwrap_err()
            .what
            .contains("[[trace]]"));
        let only_traces = "[[trace]]\npath = \"t.addr\"\n";
        assert!(parse(only_traces, Path::new("."))
            .unwrap_err()
            .what
            .contains("[[stack]]"));
        let missing_path = "[[trace]]\nname = \"x\"\n[[stack]]\nstack = \"l2:bo\"\n";
        assert!(parse(missing_path, Path::new("."))
            .unwrap_err()
            .what
            .contains("no path"));
        let missing_stack = "[[trace]]\npath = \"t.addr\"\n[[stack]]\nbaseline = \"l2:none\"\n";
        assert!(parse(missing_stack, Path::new("."))
            .unwrap_err()
            .what
            .contains("no stack"));
    }
}
