//! The `bosim` subcommands: `run`, `sweep`, `serve`, `inspect`, `gen`,
//! `trace`, `check-trace`.

use crate::args::{ParsedArgs, UsageError};
use crate::corpus::{self, Corpus};
use bosim::{SimConfig, SimConfigBuilder, System};
use bosim_bench::{Experiment, Report};
use bosim_obs::{perfetto, ObsConfig, ObsReport};
use bosim_stats::{Align, Json, Table};
use bosim_trace::{
    addr, analyze, capture, champsim, file, suite, BenchmarkSpec, ExternalSpec, SampleSpec,
    TraceFormat,
};
use bosim_types::PageSize;
use std::path::{Path, PathBuf};

/// A CLI failure, split by exit code.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation: unknown command/option, missing argument
    /// (exit code 2).
    Usage(String),
    /// A runtime failure: unreadable trace, failed experiment, ...
    /// (exit code 1).
    Failed(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Failed(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for CliError {}

impl From<UsageError> for CliError {
    fn from(e: UsageError) -> Self {
        CliError::Usage(e.0)
    }
}

/// The `--help` text.
pub const USAGE: &str = "\
bosim — trace-driven Best-Offset prefetching simulator

USAGE:
  bosim run --trace FILE [--stack STACK] [options]   replay one trace
  bosim sweep --corpus FILE [options]                run a (trace x stack) grid
  bosim serve --corpus FILE [options]                checkpointed sharded sweep
  bosim inspect FILE [--format F] [--uops N] [--json] summarise a trace
  bosim gen --bench ID --out FILE [options]          write a synthetic trace
  bosim trace --trace FILE --out FILE [options]      replay + Perfetto export
  bosim check-trace FILE                             validate trace-event JSON

RUN OPTIONS:
  --trace FILE          the trace to replay (required)
  --format F            native | champsim | addr-text | addr-bin (default: auto-detect)
  --name N              benchmark name in reports (default: file stem)
  --stack S             prefetcher stack, e.g. l2:bo or l1:stride+l2:bo+l3:next-line
                        (default: the Table 1 machine, next-line at L2)
  --baseline S          baseline stack; the run reports speedup over it
  --cores N             active cores (default 1)
  --page P              4KB | 4MB (default 4KB)
  --instructions N      measured instructions (default BOSIM_INSTRUCTIONS or 1000000)
  --warmup N            warm-up instructions (default BOSIM_WARMUP or 200000)
  --skip N              sampling: discard the first N uops of the trace
  --window N            sampling: keep N uops per sample
  --interval N          sampling: distance between sample starts, in uops
  --report NAME         report id / JSON file stem (default: run_<name>)
  --out DIR             report directory (default BOSIM_REPORT_DIR or target/reports)
  --threads N           worker threads
  --reps N              run the grid N times and fail unless every repetition
                        is bit-identical (determinism harness; default 1)
  --events              also record an event trace: writes <report>.trace.json
                        (Perfetto) and <report>.epochs.jsonl next to the report
  --profile             also profile the host: writes <report>.profile.json

SWEEP OPTIONS:
  --corpus FILE         the corpus manifest (see docs/TRACES.md)
  --out DIR, --threads N, --reps N  as above

SERVE OPTIONS:
  --corpus FILE         the corpus manifest (see docs/TRACES.md)
  --shards N            worker shard count (default: all cores)
  --out DIR             journal/stream/report directory (default as above)
  --abort-after N       test hook: checkpoint N jobs, then stop with exit 1
                        (also BOSIM_SERVE_ABORT_AFTER); rerunning resumes
  Completed jobs checkpoint to <name>.journal.jsonl and stream to
  <name>.stream.jsonl; a killed serve resumes exactly (docs/SERVE.md).

GEN OPTIONS:
  --bench ID            synthetic suite id (433, 462, ... or phase, thrash)
  --uops N              trace length in uops (default 100000)
  --out FILE            output path (required)
  --format F            native | champsim | addr-text | addr-bin (default: native)

TRACE OPTIONS:
  --out FILE            Perfetto/Chrome trace-event JSON output path (required)
  plus the run machine options (--trace, --format, --name, --stack, --cores,
  --page, --instructions, --warmup, --skip, --window, --interval); the replay
  runs with full observability (events, epoch metrics, host profile).

Formats, sampling semantics and a worked walkthrough: docs/TRACES.md;
the event catalogue and export schemas: docs/OBSERVABILITY.md.
";

/// Entry point: dispatches `args` (without the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for bad invocations and
/// [`CliError::Failed`] for runtime failures; messages are ready to
/// print on stderr.
pub fn dispatch(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("check-trace") => cmd_check_trace(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!(
            "unknown command {other:?} (expected run, sweep, serve, inspect, \
             gen, trace or check-trace; see bosim --help)"
        ))),
        None => Err(CliError::Usage(format!("no command given\n\n{USAGE}"))),
    }
}

/// Rejects stray positional arguments (commands taking options only).
fn no_positionals(p: &ParsedArgs, cmd: &str) -> Result<(), CliError> {
    match p.positionals() {
        [] => Ok(()),
        [first, ..] => Err(CliError::Usage(format!(
            "bosim {cmd} takes no positional arguments (unexpected {first:?})"
        ))),
    }
}

/// Resolves a trace path + optional format name into an [`ExternalSpec`].
fn external_spec(
    path: &Path,
    format: Option<&str>,
    name: Option<&str>,
) -> Result<ExternalSpec, CliError> {
    let spec = match format {
        Some(f) => {
            let format = TraceFormat::from_name(f).map_err(|e| CliError::Usage(e.to_string()))?;
            ExternalSpec::new(path, format)
        }
        None => ExternalSpec::detect(path).map_err(|e| CliError::Failed(e.to_string()))?,
    };
    Ok(match name {
        Some(n) => spec.named(n),
        None => spec,
    })
}

/// Applies a `+`-separated stack of site-qualified registry names to a
/// builder (`l1:stride+l2:bo+l3:next-line`; a bare name means L2).
fn apply_stack(mut builder: SimConfigBuilder, stack: &str) -> Result<SimConfigBuilder, CliError> {
    for part in stack.split('+') {
        let part = part.trim();
        if part.is_empty() {
            return Err(CliError::Usage(format!(
                "empty component in stack {stack:?}"
            )));
        }
        builder = builder
            .site(part)
            .map_err(|e| CliError::Usage(format!("stack {stack:?}: {e}")))?;
    }
    Ok(builder)
}

fn parse_page(p: &str) -> Result<PageSize, CliError> {
    match p.to_ascii_lowercase().as_str() {
        "4kb" | "4k" => Ok(PageSize::K4),
        "4mb" | "4m" => Ok(PageSize::M4),
        other => Err(CliError::Usage(format!(
            "unknown page size {other:?} (expected 4KB or 4MB)"
        ))),
    }
}

/// Builds the sampling plan out of individually optional knobs.
fn sample_spec(
    skip: Option<u64>,
    window: Option<u64>,
    interval: Option<u64>,
) -> Option<SampleSpec> {
    if skip.is_none() && window.is_none() && interval.is_none() {
        return None;
    }
    Some(SampleSpec {
        skip: skip.unwrap_or(0),
        window: window.unwrap_or(0),
        interval: interval.unwrap_or(0),
    })
}

/// Shared machine-configuration assembly for `run` and `sweep`.
struct MachineParams {
    cores: Option<u64>,
    page: Option<PageSize>,
    instructions: Option<u64>,
    warmup: Option<u64>,
    sample: Option<SampleSpec>,
}

impl MachineParams {
    fn configure(&self, stack: Option<&str>) -> Result<SimConfig, CliError> {
        let mut b = SimConfig::builder();
        if let Some(c) = self.cores {
            b = b.cores(c as usize);
        }
        if let Some(p) = self.page {
            b = b.page(p);
        }
        if let Some(n) = self.instructions {
            b = b.instructions(n);
        }
        if let Some(n) = self.warmup {
            b = b.warmup(n);
        }
        if let Some(s) = self.sample {
            b = b.sample(s);
        }
        if let Some(stack) = stack {
            b = apply_stack(b, stack)?;
        }
        b.build()
            .map_err(|e| CliError::Usage(format!("invalid configuration: {e}")))
    }
}

/// Runs an assembled experiment and emits its report to `out`.
fn emit(experiment: Experiment, out: Option<&str>) -> Result<(), CliError> {
    let report = experiment
        .run()
        .map_err(|e| CliError::Failed(format!("experiment failed: {e}")))?;
    report.print();
    let dir = out.map(PathBuf::from).unwrap_or_else(Report::default_dir);
    let path = report
        .write_json(&dir)
        .map_err(|e| CliError::Failed(format!("cannot write report JSON: {e}")))?;
    eprintln!("[bosim] report written to {}", path.display());
    Ok(())
}

fn sanitize_id(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.is_empty() {
        out.push('t');
    }
    out
}

/// Replays `bench` once on `cfg` with the given observability switches
/// and returns the collected report.
fn instrumented_run(
    mut cfg: SimConfig,
    bench: &BenchmarkSpec,
    obs: ObsConfig,
) -> Result<ObsReport, CliError> {
    cfg.obs = obs;
    System::new(&cfg, bench).run().obs.ok_or_else(|| {
        CliError::Failed("instrumented run produced no observability report".to_string())
    })
}

fn write_artifact(path: &Path, text: &str) -> Result<(), CliError> {
    std::fs::write(path, text)
        .map_err(|e| CliError::Failed(format!("cannot write {}: {e}", path.display())))?;
    eprintln!("[bosim] wrote {}", path.display());
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let p = ParsedArgs::parse_with_flags(
        args,
        &[
            "trace",
            "format",
            "name",
            "stack",
            "baseline",
            "cores",
            "page",
            "instructions",
            "warmup",
            "skip",
            "window",
            "interval",
            "report",
            "out",
            "threads",
            "reps",
        ],
        &["events", "profile"],
    )?;
    no_positionals(&p, "run")?;
    let trace = p.require("trace")?;
    let ext = external_spec(Path::new(trace), p.get("format"), p.get("name"))?;
    // Load once up front so decode errors surface as a typed message,
    // not a worker panic mid-grid.
    ext.load()
        .map_err(|e| CliError::Failed(format!("cannot ingest {trace}: {e}")))?;
    let bench = BenchmarkSpec::from_trace(ext);

    let machine = MachineParams {
        cores: p.get_u64("cores")?,
        page: p.get("page").map(parse_page).transpose()?,
        instructions: p.get_u64("instructions")?,
        warmup: p.get_u64("warmup")?,
        sample: sample_spec(
            p.get_u64("skip")?,
            p.get_u64("window")?,
            p.get_u64("interval")?,
        ),
    };
    let subject = machine.configure(p.get("stack"))?;
    let report_name = p
        .get("report")
        .map(str::to_string)
        .unwrap_or_else(|| format!("run_{}", sanitize_id(&bench.name)));
    let title = format!("{} on {}", subject.label(), bench.name);

    // With --events / --profile, the measured experiment is followed by
    // one instrumented replay of the subject configuration: the extra
    // run keeps observability out of the timing-sensitive experiment
    // workers, and the golden-stats invariant guarantees it reproduces
    // the measured counters exactly.
    let obs_artifacts = (p.flag("events") || p.flag("profile")).then(|| {
        let dir = p
            .get("out")
            .map(PathBuf::from)
            .unwrap_or_else(Report::default_dir);
        (dir, subject.clone(), bench.clone(), title.clone())
    });

    let mut e = Experiment::new(report_name.clone(), title).benchmarks(vec![bench]);
    e = match p.get("baseline") {
        Some(baseline) => e.arm_vs(
            p.get("stack").unwrap_or("default").to_string(),
            subject,
            machine.configure(Some(baseline))?,
        ),
        None => e.arm(p.get("stack").unwrap_or("default").to_string(), subject),
    };
    if let Some(t) = p.get_u64("threads")? {
        e = e.threads(t as usize);
    }
    if let Some(r) = p.get_u64("reps")? {
        e = e.reps(r as usize);
    }
    emit(e, p.get("out"))?;

    if let Some((dir, cfg, bench, title)) = obs_artifacts {
        std::fs::create_dir_all(&dir)
            .map_err(|e| CliError::Failed(format!("cannot create {}: {e}", dir.display())))?;
        let events = p.flag("events");
        let obs = ObsConfig {
            events,
            epochs: events,
            epoch_stream: events.then(|| dir.join(format!("{report_name}.epochs.jsonl"))),
            profile: p.flag("profile"),
            ..ObsConfig::default()
        };
        let report = instrumented_run(cfg, &bench, obs)?;
        if events {
            let path = dir.join(format!("{report_name}.trace.json"));
            write_artifact(&path, &perfetto::trace_json(&report, &title).to_string())?;
            eprintln!(
                "[bosim] wrote {} ({} events recorded, {} dropped, {} epochs)",
                dir.join(format!("{report_name}.epochs.jsonl")).display(),
                report.events.len(),
                report.dropped_events,
                report.epochs.len(),
            );
        }
        if let Some(profile) = &report.profile.0 {
            let path = dir.join(format!("{report_name}.profile.json"));
            write_artifact(&path, &profile.to_json().to_pretty())?;
        }
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), CliError> {
    let p = ParsedArgs::parse(
        args,
        &[
            "trace",
            "format",
            "name",
            "stack",
            "cores",
            "page",
            "instructions",
            "warmup",
            "skip",
            "window",
            "interval",
            "out",
        ],
    )?;
    no_positionals(&p, "trace")?;
    let trace = p.require("trace")?;
    let out = PathBuf::from(p.require("out")?);
    let ext = external_spec(Path::new(trace), p.get("format"), p.get("name"))?;
    ext.load()
        .map_err(|e| CliError::Failed(format!("cannot ingest {trace}: {e}")))?;
    let bench = BenchmarkSpec::from_trace(ext);
    let machine = MachineParams {
        cores: p.get_u64("cores")?,
        page: p.get("page").map(parse_page).transpose()?,
        instructions: p.get_u64("instructions")?,
        warmup: p.get_u64("warmup")?,
        sample: sample_spec(
            p.get_u64("skip")?,
            p.get_u64("window")?,
            p.get_u64("interval")?,
        ),
    };
    let subject = machine.configure(p.get("stack"))?;
    let title = format!("{} on {}", subject.label(), bench.name);
    let report = instrumented_run(subject, &bench, ObsConfig::all())?;
    write_artifact(&out, &perfetto::trace_json(&report, &title).to_string())?;
    println!(
        "{}: {} events recorded ({} dropped), {} epochs, host profile {}",
        out.display(),
        report.events.len(),
        report.dropped_events,
        report.epochs.len(),
        if report.profile.0.is_some() {
            "attached"
        } else {
            "absent"
        },
    );
    Ok(())
}

/// Structural validation of a Chrome/Perfetto trace-event document:
/// a `traceEvents` array whose elements carry a string `name` and `ph`,
/// and (for non-metadata events) numeric `ts`, `pid` and `tid`.
///
/// # Errors
///
/// Returns a human-readable description of the first structural
/// violation.
pub fn check_trace_events(doc: &Json) -> Result<usize, String> {
    let events = doc
        .get("traceEvents")
        .ok_or_else(|| "missing top-level \"traceEvents\" key".to_string())?;
    let arr = events
        .as_arr()
        .ok_or_else(|| "\"traceEvents\" is not an array".to_string())?;
    for (i, e) in arr.iter().enumerate() {
        for key in ["name", "ph"] {
            if e.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("event {i}: missing string {key:?}"));
            }
        }
        let ph = e.get("ph").and_then(Json::as_str).unwrap_or_default();
        // Metadata records ("M") carry no timestamp; everything else
        // must be placeable on a track.
        let required: &[&str] = if ph == "M" {
            &["pid", "tid"]
        } else {
            &["ts", "pid", "tid"]
        };
        for key in required {
            if !e.get(key).is_some_and(Json::is_number) {
                return Err(format!("event {i} (ph {ph:?}): missing numeric {key:?}"));
            }
        }
    }
    Ok(arr.len())
}

fn cmd_check_trace(args: &[String]) -> Result<(), CliError> {
    let p = ParsedArgs::parse(args, &[])?;
    let [path] = p.positionals() else {
        return Err(CliError::Usage(
            "check-trace takes exactly one trace-event JSON file argument".to_string(),
        ));
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Failed(format!("cannot read {path}: {e}")))?;
    let doc =
        Json::parse(&text).map_err(|e| CliError::Failed(format!("{path}: not valid JSON: {e}")))?;
    let n = check_trace_events(&doc).map_err(|m| CliError::Failed(format!("{path}: {m}")))?;
    println!("{path}: valid trace-event JSON ({n} events)");
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), CliError> {
    let p = ParsedArgs::parse(args, &["corpus", "out", "threads", "reps"])?;
    no_positionals(&p, "sweep")?;
    let manifest = p.require("corpus")?;
    let corpus = corpus::load(Path::new(manifest)).map_err(|e| CliError::Failed(e.to_string()))?;
    let mut e = sweep_experiment(&corpus)?;
    if let Some(t) = p.get_u64("threads")? {
        e = e.threads(t as usize);
    }
    if let Some(r) = p.get_u64("reps")? {
        e = e.reps(r as usize);
    }
    emit(e, p.get("out"))
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let p = ParsedArgs::parse(args, &["corpus", "out", "shards", "abort-after"])?;
    no_positionals(&p, "serve")?;
    let manifest = p.require("corpus")?;
    let corpus = corpus::load(Path::new(manifest)).map_err(|e| CliError::Failed(e.to_string()))?;
    let experiment = sweep_experiment(&corpus)?;
    let out_dir = p
        .get("out")
        .map(PathBuf::from)
        .unwrap_or_else(Report::default_dir);
    let mut opts = crate::serve::ServeOptions::new(out_dir);
    if let Some(s) = p.get_u64("shards")? {
        opts.shards = s as usize;
    }
    opts.abort_after = match p.get_u64("abort-after")? {
        Some(n) => Some(n),
        None => std::env::var("BOSIM_SERVE_ABORT_AFTER")
            .ok()
            .and_then(|v| v.parse().ok()),
    };
    let summary = crate::serve::serve(experiment, &opts)?;
    if summary.aborted {
        // The abort hook is a deliberate mid-sweep stop (test harness /
        // CI kill+resume): exit non-zero so drivers notice the sweep is
        // not finished, with the checkpoint ready to resume from.
        return Err(CliError::Failed(format!(
            "serve stopped by --abort-after with {} of {} jobs journaled; \
             rerun the same command to resume from {}",
            summary.resumed + summary.ran,
            summary.total,
            summary.journal_path.display()
        )));
    }
    println!(
        "serve complete: {} jobs ({} resumed, {} run, {} stolen); report {}",
        summary.total,
        summary.resumed,
        summary.ran,
        summary.stolen,
        summary
            .report_path
            .as_deref()
            .unwrap_or_else(|| Path::new("<unwritten>"))
            .display()
    );
    Ok(())
}

/// Assembles the (trace × stack) experiment a corpus describes.
///
/// # Errors
///
/// Returns [`CliError::Failed`] for unreadable/undecodable traces and
/// [`CliError::Usage`] for invalid stacks or a baseline-mixing corpus.
pub fn sweep_experiment(corpus: &Corpus) -> Result<Experiment, CliError> {
    // The experiment harness reports either raw metrics or ratios —
    // reject a mixed corpus with a better message than the harness's.
    let with = corpus.stacks.iter().find(|s| s.baseline.is_some());
    let without = corpus.stacks.iter().find(|s| s.baseline.is_none());
    if let (Some(w), Some(wo)) = (with, without) {
        return Err(CliError::Usage(format!(
            "corpus mixes stacks with and without baselines ({:?} vs {:?}): \
             give every stack a baseline, or none",
            w.stack, wo.stack
        )));
    }
    let mut benchmarks = Vec::new();
    for t in &corpus.traces {
        let ext = external_spec(&t.path, t.format.as_deref(), t.name.as_deref())?;
        ext.load()
            .map_err(|e| CliError::Failed(format!("cannot ingest {}: {e}", t.path.display())))?;
        benchmarks.push(BenchmarkSpec::from_trace(ext));
    }
    let machine = MachineParams {
        cores: None,
        page: None,
        instructions: corpus.instructions,
        warmup: corpus.warmup,
        sample: sample_spec(corpus.skip, corpus.window, corpus.interval),
    };
    let mut e = Experiment::new(
        sanitize_id(&corpus.name),
        format!("corpus sweep: {}", corpus.name),
    )
    .benchmarks(benchmarks);
    for s in &corpus.stacks {
        let subject = machine.configure(Some(&s.stack))?;
        e = match &s.baseline {
            Some(b) => e.arm_vs(s.stack.clone(), subject, machine.configure(Some(b))?),
            None => e.arm(s.stack.clone(), subject),
        };
    }
    Ok(e)
}

fn cmd_inspect(args: &[String]) -> Result<(), CliError> {
    let p = ParsedArgs::parse_with_flags(args, &["format", "uops"], &["json"])?;
    let [path] = p.positionals() else {
        return Err(CliError::Usage(
            "inspect takes exactly one trace file argument".to_string(),
        ));
    };
    let ext = external_spec(Path::new(path), p.get("format"), None)?;
    let mut src = ext
        .load()
        .map_err(|e| CliError::Failed(format!("cannot ingest {path}: {e}")))?;
    let lap = src.lap_len();
    let n = p.get_u64("uops")?.unwrap_or(1_000_000).min(lap as u64) as usize;
    let uops = capture(&mut src, n);
    let s = analyze::summarize(&uops);
    let pats = analyze::stride_patterns(&uops, 64.max(n as u64 / 1000));
    let hist = analyze::line_stride_histogram(&uops, 22);

    if p.flag("json") {
        let doc = Json::obj([
            ("name", Json::from(ext.name.as_str())),
            ("format", Json::from(ext.format.to_string())),
            ("lap_uops", Json::UInt(lap as u64)),
            (
                "summary",
                Json::obj([
                    ("uops", Json::UInt(s.uops)),
                    ("loads", Json::UInt(s.loads)),
                    ("stores", Json::UInt(s.stores)),
                    ("branches", Json::UInt(s.branches)),
                    ("taken_branches", Json::UInt(s.taken_branches)),
                    ("fp_ops", Json::UInt(s.fp_ops)),
                    ("load_ratio", Json::Num(s.load_ratio())),
                    ("data_footprint_bytes", Json::UInt(s.data_footprint_bytes())),
                    ("distinct_pages", Json::UInt(s.distinct_pages)),
                    ("code_lines", Json::UInt(s.code_lines)),
                ]),
            ),
            (
                "stride_patterns",
                Json::arr(pats.iter().map(|pat| {
                    Json::obj([
                        ("pc", Json::UInt(pat.pc)),
                        ("stride", Json::Int(pat.stride)),
                        ("regularity", Json::Num(pat.regularity)),
                        ("count", Json::UInt(pat.count)),
                    ])
                })),
            ),
            (
                "line_stride_histogram",
                Json::arr(hist.iter().map(|&(stride, count)| {
                    Json::obj([
                        ("line_stride", Json::Int(stride)),
                        ("occurrences", Json::UInt(count)),
                    ])
                })),
            ),
        ]);
        println!("{}", doc.to_pretty());
        return Ok(());
    }

    println!("# {} ({} format)", ext.name, ext.format);
    let mut t = Table::new(["property", "value"]);
    t.align([Align::Left, Align::Right]);
    t.row(["trace length (uops/lap)".to_string(), lap.to_string()]);
    t.row(["analysed uops".to_string(), s.uops.to_string()]);
    t.row(["loads".to_string(), s.loads.to_string()]);
    t.row(["stores".to_string(), s.stores.to_string()]);
    t.row(["branches".to_string(), s.branches.to_string()]);
    t.row(["taken branches".to_string(), s.taken_branches.to_string()]);
    t.row(["fp ops".to_string(), s.fp_ops.to_string()]);
    t.row(["load ratio".to_string(), format!("{:.3}", s.load_ratio())]);
    t.row([
        "data footprint".to_string(),
        format!("{} KB", s.data_footprint_bytes() >> 10),
    ]);
    t.row(["distinct pages".to_string(), s.distinct_pages.to_string()]);
    t.row(["code lines".to_string(), s.code_lines.to_string()]);
    println!("{t}");

    if !pats.is_empty() {
        println!("# top per-PC strides");
        let mut t = Table::new(["pc", "stride", "regularity", "count"]);
        t.align([Align::Right, Align::Right, Align::Right, Align::Right]);
        for pat in pats.iter().take(8) {
            t.row([
                format!("{:#x}", pat.pc),
                pat.stride.to_string(),
                format!("{:.2}", pat.regularity),
                pat.count.to_string(),
            ]);
        }
        println!("{t}");
    }

    if !hist.is_empty() {
        println!("# top line strides (4MB regions)");
        let mut t = Table::new(["line stride", "occurrences"]);
        t.align([Align::Right, Align::Right]);
        for &(stride, count) in hist.iter().take(8) {
            t.row([stride.to_string(), count.to_string()]);
        }
        println!("{t}");
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), CliError> {
    let p = ParsedArgs::parse(args, &["bench", "uops", "out", "format"])?;
    no_positionals(&p, "gen")?;
    let id = p.require("bench")?;
    let out = PathBuf::from(p.require("out")?);
    let n = p.get_u64("uops")?.unwrap_or(100_000) as usize;
    if n == 0 {
        // Every decoder rejects an empty trace, so writing one would
        // only defer the failure to the next `run`/`inspect`.
        return Err(CliError::Usage(
            "--uops 0 would write an empty trace (every format rejects those on load)".to_string(),
        ));
    }
    let format = match p.get("format") {
        Some(f) => TraceFormat::from_name(f).map_err(|e| CliError::Usage(e.to_string()))?,
        None => TraceFormat::Native,
    };
    let spec = suite::benchmark(id).ok_or_else(|| {
        let ids: Vec<String> = suite::suite().iter().map(|b| b.short.clone()).collect();
        CliError::Usage(format!(
            "unknown benchmark id {id:?} (available: {}, phase, thrash)",
            ids.join(", ")
        ))
    })?;
    let uops = capture(&mut spec.build(), n);
    let bytes = match format {
        TraceFormat::Native => file::encode(&uops),
        TraceFormat::ChampSim => champsim::encode(&uops),
        TraceFormat::AddrText | TraceFormat::AddrBin => {
            let accesses = addr::accesses_of(&uops);
            if accesses.is_empty() {
                return Err(CliError::Failed(format!(
                    "benchmark {id} produced no memory accesses in {n} uops — \
                     an address trace would be empty"
                )));
            }
            match format {
                TraceFormat::AddrText => addr::encode_text(&accesses).into_bytes(),
                _ => addr::encode_binary(&accesses),
            }
        }
    };
    std::fs::write(&out, &bytes)
        .map_err(|e| CliError::Failed(format!("cannot write {}: {e}", out.display())))?;
    println!(
        "wrote {} ({} format, {} uops captured, {} bytes)",
        out.display(),
        format,
        n,
        bytes.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_components_resolve_through_the_registry() {
        let cfg = apply_stack(SimConfig::builder(), "l1:stride+l2:bo+l3:next-line")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(cfg.label(), "4KB/1-core/l1:stride+l2:BO+l3:next-line");
        // Bad components carry the registry's diagnosis.
        let err = apply_stack(SimConfig::builder(), "l3:stride").unwrap_err();
        assert!(err.to_string().contains("does not attach"), "{err}");
        assert!(apply_stack(SimConfig::builder(), "l2:bo++l3:bo").is_err());
    }

    #[test]
    fn pages_parse_case_insensitively() {
        assert_eq!(parse_page("4kb").unwrap(), PageSize::K4);
        assert_eq!(parse_page("4MB").unwrap(), PageSize::M4);
        assert!(parse_page("2MB").is_err());
    }

    #[test]
    fn sample_knobs_fold_into_a_spec() {
        assert_eq!(sample_spec(None, None, None), None);
        assert_eq!(
            sample_spec(Some(10), None, None),
            Some(SampleSpec::skip(10))
        );
        assert_eq!(
            sample_spec(Some(1), Some(2), Some(3)),
            Some(SampleSpec::periodic(1, 2, 3))
        );
    }

    #[test]
    fn unknown_commands_and_ids_are_usage_errors() {
        assert!(matches!(
            dispatch(&["frobnicate".to_string()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(dispatch(&[]), Err(CliError::Usage(_))));
        let err = cmd_gen(&[
            "--bench".to_string(),
            "999".to_string(),
            "--out".to_string(),
            "/tmp/x".to_string(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("999"), "{err}");
    }

    #[test]
    fn sanitize_makes_file_stems() {
        assert_eq!(sanitize_id("433.milc-like"), "433_milc_like");
        assert_eq!(sanitize_id(""), "t");
    }

    #[test]
    fn check_trace_events_accepts_the_format_and_names_violations() {
        let good = Json::parse(
            r#"{"traceEvents":[
                {"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"x"}},
                {"name":"prefetch_issued","ph":"i","ts":10,"pid":1,"tid":2,"args":{}}
            ]}"#,
        )
        .unwrap();
        assert_eq!(check_trace_events(&good), Ok(2));

        let top = Json::parse(r#"{"events":[]}"#).unwrap();
        assert!(check_trace_events(&top)
            .unwrap_err()
            .contains("traceEvents"));
        // A non-metadata event without a timestamp is a violation; the
        // same record as metadata is fine.
        let no_ts =
            Json::parse(r#"{"traceEvents":[{"name":"e","ph":"i","pid":1,"tid":2}]}"#).unwrap();
        assert!(check_trace_events(&no_ts).unwrap_err().contains("ts"));
        let meta =
            Json::parse(r#"{"traceEvents":[{"name":"e","ph":"M","pid":1,"tid":2}]}"#).unwrap();
        assert_eq!(check_trace_events(&meta), Ok(1));
        let bad_name = Json::parse(r#"{"traceEvents":[{"name":7,"ph":"i"}]}"#).unwrap();
        assert!(check_trace_events(&bad_name).unwrap_err().contains("name"));
    }
}
