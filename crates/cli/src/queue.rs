//! The persistent job queue behind `bosim serve`: an append-only,
//! line-oriented JSON journal of completed grid cells.
//!
//! The journal is the sweep's only durable state. Its first line is a
//! [`JournalHeader`] binding the file to one
//! [`ExperimentPlan`] — the plan name, job
//! count and [fingerprint](bosim_bench::ExperimentPlan::fingerprint) —
//! and every following line is one completed
//! [`JobRow`] in completion order. Completion
//! order is *not* meaningful: the final report is assembled from rows
//! keyed by job index, so two journals holding the same row set in any
//! order produce byte-identical reports.
//!
//! Resume semantics ([`Journal::open`]):
//!
//! * a header naming a different plan (name, job count or fingerprint)
//!   is a hard [`QueueError::PlanMismatch`] — grids are never mixed;
//! * duplicate rows for a job keep the first occurrence and are
//!   counted, never double-applied;
//! * rows whose key does not match the plan's key for that index
//!   (stale entries injected by hand or by a corrupted writer) are
//!   skipped and counted, never trusted;
//! * a torn **final** line — the signature of a crash mid-append — is
//!   detected, counted, and truncated away so the next append starts
//!   on a clean boundary. Corruption anywhere *else* is a hard
//!   [`QueueError::Corrupt`]: only the tail can legitimately tear.
//!
//! Nothing here reads a clock: recovery is a pure function of the file
//! bytes and the plan (lint rule D002 holds for this module).

use bosim_bench::{ExperimentPlan, JobRow};
use bosim_stats::Json;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Journal schema identifier (the header's `schema` field).
pub const JOURNAL_SCHEMA: &str = "bosim-serve-journal";

/// Journal format version (the header's `version` field).
pub const JOURNAL_VERSION: u64 = 1;

/// The journal's first line: binds the file to one experiment plan.
// bosim-lint: schema(serve-journal-header)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Always [`JOURNAL_SCHEMA`].
    pub schema: String,
    /// Always [`JOURNAL_VERSION`].
    pub version: u64,
    /// The experiment id the journal belongs to.
    pub name: String,
    /// The plan fingerprint
    /// ([`ExperimentPlan::fingerprint`]).
    pub fingerprint: String,
    /// Total jobs in the plan's grid.
    pub jobs: u64,
}

impl JournalHeader {
    /// The header for `plan`.
    pub fn of(plan: &ExperimentPlan) -> JournalHeader {
        JournalHeader {
            schema: JOURNAL_SCHEMA.to_string(),
            version: JOURNAL_VERSION,
            name: plan.name().to_string(),
            fingerprint: plan.fingerprint(),
            jobs: plan.jobs().len() as u64,
        }
    }

    /// The compact JSON form written as the journal's first line.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(self.schema.as_str())),
            ("version", Json::UInt(self.version)),
            ("name", Json::from(self.name.as_str())),
            ("fingerprint", Json::from(self.fingerprint.as_str())),
            ("jobs", Json::UInt(self.jobs)),
        ])
    }

    fn from_json(doc: &Json) -> Result<JournalHeader, String> {
        let s = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("header is missing string field {key:?}"))
        };
        let u = |key: &str| match doc.get(key) {
            Some(&Json::UInt(v)) => Ok(v),
            Some(&Json::Int(v)) if v >= 0 => Ok(v as u64),
            _ => Err(format!("header is missing integer field {key:?}")),
        };
        Ok(JournalHeader {
            schema: s("schema")?,
            version: u("version")?,
            name: s("name")?,
            fingerprint: s("fingerprint")?,
            jobs: u("jobs")?,
        })
    }
}

/// A failure opening, reading or appending a journal.
#[derive(Debug)]
pub enum QueueError {
    /// I/O failure on the journal file.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The journal belongs to a different plan (name, job count or
    /// fingerprint mismatch) or its header is unreadable.
    PlanMismatch {
        /// Human-readable diagnosis.
        what: String,
    },
    /// A non-final journal line is corrupt. Only the final line may
    /// tear (crash mid-append); damage elsewhere means the file cannot
    /// be trusted.
    Corrupt {
        /// 1-based line number of the damaged line.
        line: usize,
        /// What failed to parse.
        what: String,
    },
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::Io { path, error } => {
                write!(f, "journal {}: {error}", path.display())
            }
            QueueError::PlanMismatch { what } => {
                write!(f, "journal does not match this sweep: {what}")
            }
            QueueError::Corrupt { line, what } => {
                write!(
                    f,
                    "journal line {line} is corrupt ({what}); only the final line may \
                     tear — refusing to resume from a damaged journal"
                )
            }
        }
    }
}

impl std::error::Error for QueueError {}

/// What [`Journal::open`] recovered from an existing journal file.
#[derive(Debug, Default)]
pub struct JournalLoad {
    /// One row per already-completed job, keyed by job index.
    pub rows: BTreeMap<usize, JobRow>,
    /// Duplicate rows dropped (first occurrence kept).
    pub duplicates: u64,
    /// Rows skipped because their key did not match the plan.
    pub stale: u64,
    /// Whether a torn final line was detected and truncated away.
    pub torn_recovered: bool,
}

/// An open journal: resumed state plus an append handle.
///
/// Appends are line-atomic in practice (one `write` + flush per row)
/// and the loader tolerates a torn tail, so a `SIGKILL` at any moment
/// loses at most the row being written — never a previously journaled
/// one.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for `plan`, replaying
    /// any rows a previous run already completed. See the [module
    /// docs](self) for the recovery rules.
    ///
    /// # Errors
    ///
    /// [`QueueError::Io`] on filesystem failures,
    /// [`QueueError::PlanMismatch`] when the file belongs to a
    /// different plan, [`QueueError::Corrupt`] on non-tail damage.
    pub fn open(path: &Path, plan: &ExperimentPlan) -> Result<(Journal, JournalLoad), QueueError> {
        let io = |error: std::io::Error| QueueError::Io {
            path: path.to_path_buf(),
            error,
        };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(io)?;
            }
        }
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io(e)),
        };

        let mut load = JournalLoad::default();
        let mut keep_bytes = bytes.len();

        if bytes.is_empty() {
            let mut file = std::fs::File::options()
                .create(true)
                .append(true)
                .open(path)
                .map_err(io)?;
            let header = JournalHeader::of(plan).to_json().to_string();
            file.write_all(header.as_bytes()).map_err(io)?;
            file.write_all(b"\n").map_err(io)?;
            file.flush().map_err(io)?;
            return Ok((
                Journal {
                    path: path.to_path_buf(),
                    file,
                },
                load,
            ));
        }

        // Split into (start_offset, line) records; a missing trailing
        // newline marks the final record as suspect by construction.
        let mut lines: Vec<(usize, &[u8])> = Vec::new();
        let mut start = 0usize;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                lines.push((start, &bytes[start..i]));
                start = i + 1;
            }
        }
        let unterminated = start < bytes.len();
        if unterminated {
            lines.push((start, &bytes[start..]));
        }

        let n = lines.len();
        let mut parsed: Vec<(usize, Json)> = Vec::new();
        for (idx, &(off, line)) in lines.iter().enumerate() {
            let last = idx + 1 == n;
            let text = std::str::from_utf8(line).ok();
            match text.and_then(|t| Json::parse(t).ok()) {
                Some(doc) => parsed.push((off, doc)),
                None if last => {
                    // Torn tail: truncate it away below.
                    load.torn_recovered = true;
                    keep_bytes = off;
                }
                None => {
                    return Err(QueueError::Corrupt {
                        line: idx + 1,
                        what: "not valid JSON".to_string(),
                    })
                }
            }
        }

        let Some((_, header_doc)) = parsed.first() else {
            return Err(QueueError::PlanMismatch {
                what: "file holds no readable header line".to_string(),
            });
        };
        let header = JournalHeader::from_json(header_doc)
            .map_err(|what| QueueError::PlanMismatch { what })?;
        let want = JournalHeader::of(plan);
        if header != want {
            return Err(QueueError::PlanMismatch {
                what: format!(
                    "header {:?} vs this plan {:?}",
                    header.to_json().to_string(),
                    want.to_json().to_string()
                ),
            });
        }

        for (idx, (off, doc)) in parsed.iter().enumerate().skip(1) {
            let last = idx + 1 == parsed.len() && keep_bytes == bytes.len();
            match JobRow::from_json(doc) {
                Ok(row) => {
                    let stale = row.job >= plan.jobs().len() || plan.job_key(row.job) != row.key;
                    if stale {
                        load.stale += 1;
                    } else if let Entry::Vacant(slot) = load.rows.entry(row.job) {
                        slot.insert(row);
                    } else {
                        load.duplicates += 1;
                    }
                }
                Err(e) if last => {
                    // Valid JSON but not a valid row, in final
                    // position: a tear can end exactly on a brace.
                    let _ = e;
                    load.torn_recovered = true;
                    keep_bytes = *off;
                }
                Err(e) => {
                    return Err(QueueError::Corrupt {
                        line: idx + 1,
                        what: e.to_string(),
                    })
                }
            }
        }

        let file = std::fs::File::options()
            .append(true)
            .open(path)
            .map_err(io)?;
        if keep_bytes < bytes.len() {
            file.set_len(keep_bytes as u64).map_err(io)?;
        }
        Ok((
            Journal {
                path: path.to_path_buf(),
                file,
            },
            load,
        ))
    }

    /// Appends one completed row and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// [`QueueError::Io`] on write failures.
    pub fn append(&mut self, row: &JobRow) -> Result<(), QueueError> {
        let mut line = row.to_json().to_string();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|error| QueueError::Io {
                path: self.path.clone(),
                error,
            })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bosim::SimConfig;
    use bosim_bench::Experiment;
    use bosim_types::SplitMix64;

    fn plan(n_bench: usize) -> ExperimentPlan {
        let ids: Vec<&str> = ["456", "444", "462", "429", "433"][..n_bench].to_vec();
        Experiment::new("queue_test", "queue test")
            .benchmark_ids(&ids)
            .arm("base", SimConfig::default())
            .arm(
                "bo",
                SimConfig::default().with_prefetcher(bosim::prefetchers::bo_default()),
            )
            .plan()
            .unwrap()
    }

    fn fake_row(plan: &ExperimentPlan, job: usize, salt: f64) -> JobRow {
        JobRow {
            job,
            key: plan.job_key(job).to_string(),
            benchmark: format!("b{job}"),
            config: format!("c{job}"),
            ipc: 1.0 + salt,
            dram_per_ki: 2.0 + salt,
            summary: Json::obj([("ipc", Json::Num(1.0 + salt))]),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bosim_queue_{}_{name}", std::process::id()))
    }

    #[test]
    fn fresh_journal_writes_header_and_replays_empty() {
        let p = plan(2);
        let path = tmp("fresh.jsonl");
        let _ = std::fs::remove_file(&path);
        let (_, load) = Journal::open(&path, &p).unwrap();
        assert!(load.rows.is_empty());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.starts_with("{\"schema\":\"bosim-serve-journal\""),
            "{text}"
        );
        // Reopening the untouched journal is a no-op resume.
        let (_, load) = Journal::open(&path, &p).unwrap();
        assert!(load.rows.is_empty());
        assert!(!load.torn_recovered);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn random_interleavings_replay_to_the_same_row_set() {
        // Property: whatever completion order (work stealing, shard
        // count, scheduling) produced the journal, and whatever
        // duplicates a retried writer appended, replay yields exactly
        // one row per job with first-occurrence content.
        let p = plan(3);
        let n = p.jobs().len();
        let mut rng = SplitMix64::new(0x5eed);
        for trial in 0..20 {
            let path = tmp(&format!("interleave_{trial}.jsonl"));
            let _ = std::fs::remove_file(&path);
            let (mut journal, _) = Journal::open(&path, &p).unwrap();

            // A random permutation (Fisher–Yates) with random repeats.
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let mut expected: BTreeMap<usize, JobRow> = BTreeMap::new();
            for &job in &order {
                let first = fake_row(&p, job, (job as f64) / 7.0);
                journal.append(&first).unwrap();
                expected.insert(job, first);
                if rng.next_u64().is_multiple_of(3) {
                    // A duplicate with different content must lose.
                    journal.append(&fake_row(&p, job, 99.0)).unwrap();
                }
            }
            drop(journal);

            let (_, load) = Journal::open(&path, &p).unwrap();
            // Compare serialized forms: a row whose f64 happens to be
            // integral round-trips to Json::UInt (same bytes, different
            // variant), and bytes are what the report is built from.
            let ser = |rows: &BTreeMap<usize, JobRow>| -> BTreeMap<usize, String> {
                rows.iter()
                    .map(|(&j, r)| (j, r.to_json().to_string()))
                    .collect()
            };
            assert_eq!(ser(&load.rows), ser(&expected), "trial {trial}");
            assert_eq!(load.stale, 0);
            assert!(!load.torn_recovered);
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn stale_rows_are_skipped_not_trusted() {
        let p = plan(2);
        let path = tmp("stale.jsonl");
        let _ = std::fs::remove_file(&path);
        let (mut journal, _) = Journal::open(&path, &p).unwrap();
        journal.append(&fake_row(&p, 0, 0.0)).unwrap();
        // A row with a wrong key (say, from a corrupted writer).
        let mut bad = fake_row(&p, 1, 0.0);
        bad.key = "462#9|0000000000000000".to_string();
        journal.append(&bad).unwrap();
        // And one whose index is out of range entirely.
        let mut wild = fake_row(&p, 0, 0.0);
        wild.job = 999;
        journal.append(&wild).unwrap();
        drop(journal);

        let (_, load) = Journal::open(&path, &p).unwrap();
        assert_eq!(load.rows.len(), 1);
        assert_eq!(load.stale, 2);
        assert!(load.rows.contains_key(&0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_recovered_and_truncated() {
        let p = plan(2);
        for cut in [1, 5, 17] {
            let path = tmp(&format!("torn_{cut}.jsonl"));
            let _ = std::fs::remove_file(&path);
            let (mut journal, _) = Journal::open(&path, &p).unwrap();
            journal.append(&fake_row(&p, 0, 0.0)).unwrap();
            journal.append(&fake_row(&p, 1, 0.5)).unwrap();
            drop(journal);

            // Simulate a crash mid-append: a trailing partial line.
            let intact = std::fs::read(&path).unwrap();
            let mut torn = intact.clone();
            let full_line = fake_row(&p, 2, 0.25).to_json().to_string();
            torn.extend_from_slice(&full_line.as_bytes()[..cut.min(full_line.len())]);
            std::fs::write(&path, &torn).unwrap();

            let (mut journal, load) = Journal::open(&path, &p).unwrap();
            assert!(load.torn_recovered, "cut {cut}: tear must be surfaced");
            assert_eq!(load.rows.len(), 2);
            // The tail was truncated away, so the next append starts on
            // a clean line boundary.
            journal.append(&fake_row(&p, 2, 0.25)).unwrap();
            drop(journal);
            let (_, load) = Journal::open(&path, &p).unwrap();
            assert!(!load.torn_recovered);
            assert_eq!(load.rows.len(), 3);
            assert_eq!(
                std::fs::read(&path).unwrap().len(),
                intact.len() + full_line.len() + 1
            );
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let p = plan(2);
        let path = tmp("midfile.jsonl");
        let _ = std::fs::remove_file(&path);
        let (mut journal, _) = Journal::open(&path, &p).unwrap();
        journal.append(&fake_row(&p, 0, 0.0)).unwrap();
        drop(journal);
        // Damage the *first* row, then append a valid-looking tail: the
        // damage is no longer final, so it must not be "recovered".
        let mut text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"job\":0"), "{text}");
        text = text.replace("\"job\":0", "\"job\":");
        text.push_str(&fake_row(&p, 1, 0.5).to_json().to_string());
        text.push('\n');
        std::fs::write(&path, &text).unwrap();
        match Journal::open(&path, &p) {
            Err(QueueError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_plans_are_rejected() {
        let p2 = plan(2);
        let p3 = plan(3);
        let path = tmp("mismatch.jsonl");
        let _ = std::fs::remove_file(&path);
        let (mut journal, _) = Journal::open(&path, &p2).unwrap();
        journal.append(&fake_row(&p2, 0, 0.0)).unwrap();
        drop(journal);
        match Journal::open(&path, &p3) {
            Err(QueueError::PlanMismatch { .. }) => {}
            other => panic!("expected PlanMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }
}
