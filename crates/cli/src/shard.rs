//! Worker-shard partitioning with work-stealing for `bosim serve`.
//!
//! The pending job list is dealt round-robin across `shards` deques
//! ([`ShardQueues::partition`]), so every shard starts with an even
//! slice of the (benchmark × arm) grid. Each shard pops its own deque
//! from the front; when it runs dry it steals from the *back* of the
//! first non-empty victim in a deterministic scan order
//! ([`ShardQueues::next`]). Stealing from the back keeps a straggler
//! shard working the front of its own queue while idle shards drain its
//! tail — an mcf-like benchmark that runs ~50x longer than its
//! neighbours (see `BENCH_throughput.json`) no longer serializes the
//! sweep's tail behind one worker.
//!
//! Which shard runs which job is *scheduling*, not *semantics*: every
//! completed job becomes the same journal row wherever it ran, and the
//! report is assembled from rows by job index, so work stealing cannot
//! perturb the final report bytes.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One pending job handed to a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardJob {
    /// Job index into the plan's job list.
    pub job: usize,
    /// True when the job came from another shard's deque.
    pub stolen: bool,
}

/// Per-shard pending-job deques with work-stealing. See the [module
/// docs](self).
pub struct ShardQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
}

impl ShardQueues {
    /// Deals `pending` round-robin across `shards` deques (at least
    /// one), preserving plan order within each shard.
    pub fn partition(pending: &[usize], shards: usize) -> ShardQueues {
        let shards = shards.max(1);
        let mut queues: Vec<VecDeque<usize>> = (0..shards).map(|_| VecDeque::new()).collect();
        for (i, &job) in pending.iter().enumerate() {
            queues[i % shards].push_back(job);
        }
        ShardQueues {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// The shard count.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// The next job for `shard`: its own front, else the back of the
    /// first non-empty victim scanning `shard+1, shard+2, ...`
    /// round-robin. `None` means every deque is empty and the shard can
    /// retire.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn next(&self, shard: usize) -> Option<ShardJob> {
        assert!(shard < self.queues.len(), "shard {shard} out of range");
        let own = {
            // bosim-lint: allow(P002, deque mutexes guard plain pop operations that cannot panic)
            let mut q = self.queues[shard].lock().expect("shard deque poisoned");
            q.pop_front()
        };
        if let Some(job) = own {
            return Some(ShardJob { job, stolen: false });
        }
        for step in 1..self.queues.len() {
            let victim = (shard + step) % self.queues.len();
            // bosim-lint: allow(P002, deque mutexes guard plain pop operations that cannot panic)
            let mut q = self.queues[victim].lock().expect("shard deque poisoned");
            if let Some(job) = q.pop_back() {
                return Some(ShardJob { job, stolen: true });
            }
        }
        None
    }

    /// Jobs still queued across all shards (racy under concurrency;
    /// exact once workers stop).
    pub fn remaining(&self) -> usize {
        self.queues
            .iter()
            // bosim-lint: allow(P002, deque mutexes guard plain len reads that cannot panic)
            .map(|q| q.lock().expect("shard deque poisoned").len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bosim_types::SplitMix64;
    use std::collections::BTreeSet;

    #[test]
    fn partition_deals_round_robin() {
        let q = ShardQueues::partition(&[0, 1, 2, 3, 4], 2);
        assert_eq!(q.shards(), 2);
        assert_eq!(q.remaining(), 5);
        // Shard 0 gets 0,2,4 in order; shard 1 gets 1,3.
        let mut own0 = Vec::new();
        for _ in 0..3 {
            let j = q.next(0).unwrap();
            assert!(!j.stolen);
            own0.push(j.job);
        }
        assert_eq!(own0, [0, 2, 4]);
        // Shard 0 now steals from shard 1's back.
        let s = q.next(0).unwrap();
        assert!(s.stolen);
        assert_eq!(s.job, 3);
        assert_eq!(
            q.next(1).unwrap(),
            ShardJob {
                job: 1,
                stolen: false
            }
        );
        assert_eq!(q.next(0), None);
        assert_eq!(q.next(1), None);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let q = ShardQueues::partition(&[7, 8], 0);
        assert_eq!(q.shards(), 1);
        assert_eq!(
            q.next(0),
            Some(ShardJob {
                job: 7,
                stolen: false
            })
        );
    }

    #[test]
    fn every_job_runs_exactly_once_under_any_interleaving() {
        // Property: random interleavings of shard pops — the model of
        // arbitrary host scheduling, including heavy stealing — always
        // dispense each job exactly once, for any shard count.
        let jobs: Vec<usize> = (0..23).collect();
        let mut rng = SplitMix64::new(0xdada);
        for shards in [1, 2, 3, 5, 8] {
            for trial in 0..20 {
                let q = ShardQueues::partition(&jobs, shards);
                let mut seen = BTreeSet::new();
                let mut live: Vec<usize> = (0..shards).collect();
                while !live.is_empty() {
                    let pick = (rng.next_u64() % live.len() as u64) as usize;
                    let shard = live[pick];
                    match q.next(shard) {
                        Some(j) => {
                            assert!(
                                seen.insert(j.job),
                                "shards {shards} trial {trial}: job {} dispensed twice",
                                j.job
                            );
                        }
                        None => {
                            live.remove(pick);
                        }
                    }
                }
                assert_eq!(seen.len(), jobs.len(), "shards {shards} trial {trial}");
                assert_eq!(q.remaining(), 0);
            }
        }
    }

    #[test]
    fn concurrent_shards_dispense_disjoint_jobs() {
        let jobs: Vec<usize> = (0..200).collect();
        let q = ShardQueues::partition(&jobs, 4);
        let taken: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|me| {
                    let q = &q;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(j) = q.next(me) {
                            mine.push(j.job);
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<usize> = taken.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, jobs, "each job exactly once across all shards");
    }
}
