//! # bosim-cli — the `bosim` command-line driver
//!
//! Opens the simulator to real workloads from the shell: point `bosim`
//! at a ChampSim or raw address trace and a prefetcher stack, and it
//! assembles the same validated [`SimConfig`](bosim::SimConfig) +
//! [`Experiment`](bosim_bench::Experiment) pipeline the figure binaries
//! use, emitting the usual text tables and JSON reports.
//!
//! ```text
//! bosim run --trace mcf.champsim --stack l2:bo --baseline l2:none
//! bosim sweep --corpus corpus.toml
//! bosim serve --corpus corpus.toml --shards 4
//! bosim inspect mcf.champsim
//! bosim gen --bench 462 --uops 200000 --out libq.champsim --format champsim
//! ```
//!
//! `bosim serve` is the long-running form of `sweep`: the grid lives in
//! a persistent job [queue] with a checkpoint journal, worker [shard]s
//! steal work from each other, and a killed sweep resumes exactly where
//! it left off ([`serve()`], `docs/SERVE.md`).
//!
//! Everything is dependency-free: argument parsing ([`args`]) and the
//! corpus manifest parser ([`corpus`], a strict TOML subset) are
//! hand-rolled, like `bosim_stats::Json`. The command implementations
//! live in [`commands`] and are exercised directly by the integration
//! tests — the binary in `main.rs` is a thin exit-code wrapper.
//!
//! Trace formats, sampling semantics and a worked walkthrough are
//! documented in `docs/TRACES.md`; the crate map lives in
//! `docs/ARCHITECTURE.md`.

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod corpus;
pub mod queue;
pub mod serve;
pub mod shard;

pub use commands::{dispatch, CliError, USAGE};
pub use serve::{serve, ServeOptions, ServeSummary};
