//! The `bosim` binary: parse argv, dispatch, map errors to exit codes
//! (2 = usage, 1 = runtime failure).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match bosim_cli::dispatch(&args) {
        Ok(()) => {}
        Err(e @ bosim_cli::CliError::Usage(_)) => {
            eprintln!("bosim: {e}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("bosim: {e}");
            std::process::exit(1);
        }
    }
}
