//! Minimal dependency-free command-line parsing.
//!
//! The workspace ships no external crates (see the root manifest), so
//! argument handling is hand-rolled, like `bosim_stats::Json`. The
//! model is deliberately small: positional arguments plus `--key value`
//! (or `--key=value`) options; every option takes a value, and each
//! subcommand validates its own option names so typos are reported with
//! the accepted set.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A usage error: unknown option, missing value, bad number, ...
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for UsageError {}

/// Parsed command-line arguments: positionals in order, options by
/// name (last occurrence wins).
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
    flags: BTreeSet<String>,
}

impl ParsedArgs {
    /// Parses `args`, accepting only the option names in `allowed`.
    ///
    /// # Errors
    ///
    /// Returns a [`UsageError`] for an option outside `allowed` (the
    /// message lists the accepted set) or a trailing option with no
    /// value.
    pub fn parse(args: &[String], allowed: &[&str]) -> Result<Self, UsageError> {
        Self::parse_with_flags(args, allowed, &[])
    }

    /// Parses `args` like [`parse`](Self::parse), but additionally
    /// accepts the names in `flags` as value-less boolean switches
    /// (`--events`), queried with [`flag`](Self::flag).
    ///
    /// # Errors
    ///
    /// Returns a [`UsageError`] for an option outside `allowed` ∪
    /// `flags`, a valued option with no value, or a flag given an
    /// inline value (`--events=yes`).
    pub fn parse_with_flags(
        args: &[String],
        allowed: &[&str],
        flags: &[&str],
    ) -> Result<Self, UsageError> {
        let mut out = ParsedArgs::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(body) = a.strip_prefix("--") {
                let (key, inline_value) = match body.split_once('=') {
                    Some((k, v)) => (k.to_string(), Some(v.to_string())),
                    None => (body.to_string(), None),
                };
                if flags.contains(&key.as_str()) {
                    if let Some(v) = inline_value {
                        return Err(UsageError(format!(
                            "option --{key} is a flag and takes no value (got {v:?})"
                        )));
                    }
                    out.flags.insert(key);
                    continue;
                }
                if !allowed.contains(&key.as_str()) {
                    return Err(UsageError(format!(
                        "unknown option --{key} (accepted: {})",
                        allowed
                            .iter()
                            .map(|o| format!("--{o}"))
                            .chain(flags.iter().map(|o| format!("--{o}")))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )));
                }
                let value = match inline_value {
                    Some(v) => v,
                    None => {
                        let next = it
                            .next()
                            .cloned()
                            .ok_or_else(|| UsageError(format!("option --{key} needs a value")))?;
                        // A following option is a missing value, not a
                        // value: `run --trace --stack l2:bo` must not
                        // read the trace path as "--stack". Values
                        // genuinely starting with `--` can be passed
                        // as `--key=--value`.
                        if next.starts_with("--") {
                            return Err(UsageError(format!(
                                "option --{key} needs a value (got {next:?}; use \
                                 --{key}={next} if that really is the value)"
                            )));
                        }
                        next
                    }
                };
                out.options.insert(key, value);
            } else {
                out.positionals.push(a.clone());
            }
        }
        Ok(out)
    }

    /// The positional arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The value of option `key`, if given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether the boolean flag `key` was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.contains(key)
    }

    /// A required option.
    ///
    /// # Errors
    ///
    /// Returns a [`UsageError`] naming the missing option.
    pub fn require(&self, key: &str) -> Result<&str, UsageError> {
        self.get(key)
            .ok_or_else(|| UsageError(format!("missing required option --{key}")))
    }

    /// An optional `u64` option.
    ///
    /// # Errors
    ///
    /// Returns a [`UsageError`] when the value is present but not a
    /// non-negative integer.
    pub fn get_u64(&self, key: &str) -> Result<Option<u64>, UsageError> {
        self.get(key)
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|e| UsageError(format!("option --{key}: bad integer {v:?}: {e}")))
            })
            .transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_and_options_mix() {
        let p = ParsedArgs::parse(
            &strs(&["file.trace", "--stack", "l2:bo", "--cores=2", "extra"]),
            &["stack", "cores"],
        )
        .unwrap();
        assert_eq!(p.positionals(), &["file.trace", "extra"]);
        assert_eq!(p.get("stack"), Some("l2:bo"));
        assert_eq!(p.get_u64("cores").unwrap(), Some(2));
        assert_eq!(p.get("missing"), None);
    }

    #[test]
    fn unknown_option_lists_the_accepted_set() {
        let err = ParsedArgs::parse(&strs(&["--sack", "x"]), &["stack"]).unwrap_err();
        assert!(err.0.contains("--sack"), "{err}");
        assert!(err.0.contains("--stack"), "{err}");
    }

    #[test]
    fn missing_value_and_bad_number_are_reported() {
        assert!(ParsedArgs::parse(&strs(&["--stack"]), &["stack"]).is_err());
        let p = ParsedArgs::parse(&strs(&["--cores", "two"]), &["cores"]).unwrap();
        assert!(p.get_u64("cores").is_err());
        assert!(p.require("absent").is_err());
    }

    #[test]
    fn a_following_option_is_not_a_value() {
        let err = ParsedArgs::parse(&strs(&["--trace", "--stack", "l2:bo"]), &["trace", "stack"])
            .unwrap_err();
        assert!(err.0.contains("--trace needs a value"), "{err}");
        // The explicit `=` form still allows option-looking values.
        let p = ParsedArgs::parse(&strs(&["--trace=--weird"]), &["trace"]).unwrap();
        assert_eq!(p.get("trace"), Some("--weird"));
    }

    #[test]
    fn last_occurrence_wins() {
        let p = ParsedArgs::parse(&strs(&["--n", "1", "--n", "2"]), &["n"]).unwrap();
        assert_eq!(p.get("n"), Some("2"));
    }

    #[test]
    fn flags_take_no_value_and_do_not_swallow_the_next_argument() {
        let p = ParsedArgs::parse_with_flags(
            &strs(&["--events", "--stack", "l2:bo"]),
            &["stack"],
            &["events", "profile"],
        )
        .unwrap();
        assert!(p.flag("events"));
        assert!(!p.flag("profile"));
        assert_eq!(p.get("stack"), Some("l2:bo"));
        // An inline value on a flag is a usage error, not silently
        // ignored truthiness.
        let err =
            ParsedArgs::parse_with_flags(&strs(&["--events=yes"]), &[], &["events"]).unwrap_err();
        assert!(err.0.contains("takes no value"), "{err}");
        // Unknown-option messages list flags alongside valued options.
        let err =
            ParsedArgs::parse_with_flags(&strs(&["--evens"]), &["stack"], &["events"]).unwrap_err();
        assert!(err.0.contains("--events"), "{err}");
    }
}
