//! AMPM-lite: a scaled-down Access Map Pattern Matching prefetcher
//! (Ishii, Inaba & Hiraki, JILP 2011 — winner of DPC-1).
//!
//! The BO paper's context: "the Sandbox prefetcher matches or even
//! slightly outperforms the more complex AMPM prefetcher that won the
//! 2009 Data Prefetching Championship" (§2). This implementation lets the
//! repo reproduce that three-way comparison as an extension experiment.
//!
//! AMPM tracks per-zone *access maps* (a bit per line). On an access to
//! line position `p` it tests candidate strides `d`: if positions `p-d`
//! and `p-2d` were both accessed, the pattern `…, p-2d, p-d, p` predicts
//! `p+d` (and `p+2d` at degree 2). Unlike offset prefetchers it needs no
//! learning phase, but also has no notion of timeliness.

use best_offset::{CacheAccess, Prefetcher};
use bosim_types::{LineAddr, PageSize};

/// Lines per access map (a 16KB zone).
const ZONE_LINES: u64 = 256;
const ZONE_WORDS: usize = (ZONE_LINES / 64) as usize;

/// AMPM-lite configuration.
#[derive(Debug, Clone)]
pub struct AmpmConfig {
    /// Tracked zones (total table entries; default 64 ≈ 2KB of maps).
    pub zones: usize,
    /// Zone-table associativity.
    pub ways: usize,
    /// Largest candidate stride tested (default 32 lines).
    pub max_stride: i64,
    /// Maximum prefetches issued per access (default 2).
    pub degree: usize,
}

impl Default for AmpmConfig {
    fn default() -> Self {
        AmpmConfig {
            zones: 64,
            ways: 4,
            max_stride: 32,
            degree: 2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Zone {
    valid: bool,
    tag: u64,
    map: [u64; ZONE_WORDS],
    lru: u8,
}

const EMPTY_ZONE: Zone = Zone {
    valid: false,
    tag: 0,
    map: [0; ZONE_WORDS],
    lru: 0,
};

/// The AMPM-lite L2 prefetcher.
#[derive(Debug)]
pub struct AmpmPrefetcher {
    cfg: AmpmConfig,
    page: PageSize,
    sets: usize,
    zones: Vec<Zone>,
    issued: u64,
}

#[inline]
fn map_get(map: &[u64; ZONE_WORDS], pos: i64) -> bool {
    if !(0..ZONE_LINES as i64).contains(&pos) {
        return false;
    }
    map[(pos / 64) as usize] & (1 << (pos % 64)) != 0
}

impl AmpmPrefetcher {
    /// Creates an AMPM-lite prefetcher.
    ///
    /// # Panics
    ///
    /// Panics unless `zones / ways` is a power of two and
    /// `max_stride`/`degree` are at least 1.
    pub fn new(cfg: AmpmConfig, page: PageSize) -> Self {
        assert!(cfg.ways >= 1 && cfg.zones >= cfg.ways);
        let sets = cfg.zones / cfg.ways;
        assert!(sets.is_power_of_two());
        assert!(cfg.max_stride >= 1 && cfg.degree >= 1);
        let mut zones = vec![EMPTY_ZONE; cfg.zones];
        for (i, z) in zones.iter_mut().enumerate() {
            z.lru = (i % cfg.ways) as u8;
        }
        AmpmPrefetcher {
            sets,
            zones,
            issued: 0,
            cfg,
            page,
        }
    }

    /// Creates an AMPM-lite prefetcher with default parameters.
    pub fn with_defaults(page: PageSize) -> Self {
        Self::new(AmpmConfig::default(), page)
    }

    /// Prefetch requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Finds (allocating if needed) the zone for a line; returns the
    /// zone index.
    fn zone_for(&mut self, zone_id: u64) -> usize {
        let set = (zone_id as usize) & (self.sets - 1);
        let base = set * self.cfg.ways;
        let ways = self.cfg.ways;
        let slice = &mut self.zones[base..base + ways];
        let way = match slice.iter().position(|z| z.valid && z.tag == zone_id) {
            Some(w) => w,
            None => {
                let w = (0..ways)
                    .max_by_key(|&i| {
                        (if slice[i].valid { 0u16 } else { 256 }) + slice[i].lru as u16
                    })
                    .expect("non-empty set"); // bosim-lint: allow(P002, replacement set is structurally non-empty)
                slice[w].valid = true;
                slice[w].tag = zone_id;
                slice[w].map = [0; ZONE_WORDS];
                w
            }
        };
        // Move to MRU.
        let old = slice[way].lru;
        for z in slice.iter_mut() {
            if z.lru < old {
                z.lru += 1;
            }
        }
        slice[way].lru = 0;
        base + way
    }
}

impl Prefetcher for AmpmPrefetcher {
    fn on_access(&mut self, access: CacheAccess, out: &mut Vec<LineAddr>) {
        if !access.outcome.is_eligible() {
            return;
        }
        let line = access.line;
        let zone_id = line.0 / ZONE_LINES;
        let pos = (line.0 % ZONE_LINES) as i64;
        let zi = self.zone_for(zone_id);
        // Record this access.
        self.zones[zi].map[(pos / 64) as usize] |= 1 << (pos % 64);
        let map = self.zones[zi].map;
        // Pattern match: two prior accesses at stride d predict p+d.
        let mut budget = self.cfg.degree;
        for d in 1..=self.cfg.max_stride {
            if budget == 0 {
                break;
            }
            for dir in [d, -d] {
                if budget == 0 {
                    break;
                }
                if map_get(&map, pos - dir) && map_get(&map, pos - 2 * dir) {
                    if let Some(target) = line.checked_offset(dir, self.page) {
                        // Skip already-observed lines within the map.
                        let tpos = pos + dir;
                        if (0..ZONE_LINES as i64).contains(&tpos) && map_get(&map, tpos) {
                            continue;
                        }
                        if !out.contains(&target) {
                            out.push(target);
                            self.issued += 1;
                            budget -= 1;
                        }
                    }
                }
            }
        }
    }

    fn on_fill(&mut self, _line: LineAddr, _prefetched: bool) {}

    fn name(&self) -> &'static str {
        "AMPM"
    }

    fn page_size(&self) -> PageSize {
        self.page
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use best_offset::AccessOutcome;

    fn access(p: &mut AmpmPrefetcher, line: u64) -> Vec<LineAddr> {
        let mut out = Vec::new();
        p.on_access(
            CacheAccess {
                line: LineAddr(line),
                outcome: AccessOutcome::Miss,
            },
            &mut out,
        );
        out
    }

    #[test]
    fn sequential_pattern_prefetches_next_lines() {
        let mut p = AmpmPrefetcher::with_defaults(PageSize::M4);
        let base = 10 * ZONE_LINES;
        assert!(access(&mut p, base).is_empty());
        assert!(access(&mut p, base + 1).is_empty());
        let reqs = access(&mut p, base + 2);
        assert!(
            reqs.contains(&LineAddr(base + 3)),
            "pattern ..,p-2,p-1,p predicts p+1: {reqs:?}"
        );
    }

    #[test]
    fn strided_pattern_prefetches_with_stride() {
        let mut p = AmpmPrefetcher::with_defaults(PageSize::M4);
        let base = 20 * ZONE_LINES;
        access(&mut p, base);
        access(&mut p, base + 5);
        let reqs = access(&mut p, base + 10);
        assert!(
            reqs.contains(&LineAddr(base + 15)),
            "stride-5 pattern must predict +5: {reqs:?}"
        );
    }

    #[test]
    fn backwards_stream_prefetches_downwards() {
        let mut p = AmpmPrefetcher::with_defaults(PageSize::M4);
        let base = 30 * ZONE_LINES + 100;
        access(&mut p, base);
        access(&mut p, base - 1);
        let reqs = access(&mut p, base - 2);
        assert!(
            reqs.contains(&LineAddr(base - 3)),
            "descending stream must prefetch downwards: {reqs:?}"
        );
    }

    #[test]
    fn random_isolated_accesses_stay_quiet() {
        let mut p = AmpmPrefetcher::with_defaults(PageSize::M4);
        let mut issued = 0;
        for i in 0..200u64 {
            // Spread accesses over many zones: no pattern forms.
            issued += access(&mut p, bosim_types::mix64(i) >> 30).len();
        }
        assert!(issued < 10, "random traffic should stay quiet: {issued}");
    }

    #[test]
    fn degree_budget_is_respected() {
        let cfg = AmpmConfig {
            degree: 1,
            ..Default::default()
        };
        let mut p = AmpmPrefetcher::new(cfg, PageSize::M4);
        let base = 40 * ZONE_LINES;
        for i in 0..8 {
            let reqs = access(&mut p, base + i);
            assert!(reqs.len() <= 1, "degree 1 exceeded: {reqs:?}");
        }
    }

    #[test]
    fn page_boundaries_respected() {
        let mut p = AmpmPrefetcher::with_defaults(PageSize::K4);
        // 4KB page = 64 lines; zone = 256 lines spans 4 pages.
        let base = 50 * ZONE_LINES + 61;
        access(&mut p, base);
        access(&mut p, base + 1);
        let reqs = access(&mut p, base + 2); // line 63 of the page
        for r in &reqs {
            assert!(
                r.same_page(LineAddr(base), PageSize::K4),
                "prefetch crossed the page: {r:?}"
            );
        }
    }

    #[test]
    fn zone_eviction_forgets_old_maps() {
        let cfg = AmpmConfig {
            zones: 4,
            ways: 4,
            ..Default::default()
        };
        let mut p = AmpmPrefetcher::new(cfg, PageSize::M4);
        // Train a pattern in zone 0, then touch 4 other zones to evict it.
        access(&mut p, 0);
        access(&mut p, 1);
        for z in 1..=4u64 {
            access(&mut p, z * ZONE_LINES);
        }
        // Zone 0 must have been evicted: the old history is gone.
        let reqs = access(&mut p, 2);
        assert!(
            !reqs.contains(&LineAddr(3)),
            "evicted zone must not retain its map: {reqs:?}"
        );
    }
}
