//! The Sandbox prefetcher (SBP), Pugsley et al. HPCA 2014, as adapted for
//! comparison in §6.3 of the BO paper.
//!
//! "Our SBP uses the same list of offsets as the BO prefetcher (52
//! positive offsets) and the same number of scores (52). Our SBP uses a
//! 2048-bit Bloom filter indexed with 3 hashing functions. The evaluation
//! period is 256 L2 accesses (miss or prefetched hit). When line X is
//! accessed, we check in the Bloom filter for X, X−D, X−2D and X−3D,
//! incrementing the score on every hit. ... It can also issue 1, 2 or 3
//! prefetch requests for the same offset depending on the score for that
//! offset."
//!
//! Sandboxing evaluates one candidate offset at a time with *fake*
//! prefetches recorded in the Bloom filter — prefetch timeliness is never
//! observed, which is exactly the weakness BO addresses.

use best_offset::{CacheAccess, OffsetList, Prefetcher};
use bosim_types::{mix64, LineAddr, PageSize};

/// A small Bloom filter used as the prefetch sandbox.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    hashes: u32,
}

impl BloomFilter {
    /// Creates a filter of `num_bits` bits (power of two) probed with
    /// `hashes` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `num_bits` is not a power of two or `hashes == 0`.
    pub fn new(num_bits: usize, hashes: u32) -> Self {
        assert!(num_bits.is_power_of_two() && num_bits >= 64);
        assert!(hashes >= 1);
        BloomFilter {
            bits: vec![0; num_bits / 64],
            num_bits,
            hashes,
        }
    }

    #[inline]
    fn bit_index(&self, value: u64, k: u32) -> usize {
        (mix64(value ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) as usize)
            & (self.num_bits - 1)
    }

    /// Inserts a value.
    pub fn insert(&mut self, value: u64) {
        for k in 0..self.hashes {
            let b = self.bit_index(value, k);
            self.bits[b / 64] |= 1 << (b % 64);
        }
    }

    /// Tests membership (false positives possible, never negatives).
    pub fn contains(&self, value: u64) -> bool {
        (0..self.hashes).all(|k| {
            let b = self.bit_index(value, k);
            self.bits[b / 64] & (1 << (b % 64)) != 0
        })
    }

    /// Clears the filter (done between evaluation periods).
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }
}

/// SBP tuning parameters.
#[derive(Debug, Clone)]
pub struct SbpConfig {
    /// Candidate offsets (default: the BO paper's 52-entry list, §6.3).
    pub offsets: OffsetList,
    /// Bloom filter size in bits (default 2048).
    pub bloom_bits: usize,
    /// Bloom hash functions (default 3).
    pub bloom_hashes: u32,
    /// Evaluation period in eligible L2 accesses (default 256).
    pub period: u32,
    /// Score cutoff to prefetch with an offset at all (degree 1).
    pub cutoff1: u32,
    /// Score cutoff to also prefetch `X + 2D` (degree 2).
    pub cutoff2: u32,
    /// Score cutoff to also prefetch `X + 3D` (degree 3).
    pub cutoff3: u32,
    /// Maximum prefetch requests per access across all active offsets.
    pub max_requests_per_access: usize,
}

impl Default for SbpConfig {
    fn default() -> Self {
        // Cutoffs follow the original SBP's accuracy thresholds scaled to
        // the 256-access period with up to 4 sandbox hits per access:
        // degree 1 at 25% coverage, degree 2/3 when the pattern persists
        // across 2-3 offsets of lookahead.
        SbpConfig {
            offsets: OffsetList::paper_default(),
            bloom_bits: 2048,
            bloom_hashes: 3,
            period: 256,
            cutoff1: 64,
            cutoff2: 320,
            cutoff3: 640,
            max_requests_per_access: 4,
        }
    }
}

/// The Sandbox prefetcher.
#[derive(Debug)]
pub struct SandboxPrefetcher {
    cfg: SbpConfig,
    page: PageSize,
    sandbox: BloomFilter,
    /// Latest completed-evaluation score per offset.
    scores: Vec<u32>,
    /// Score being accumulated for the offset under evaluation.
    eval_score: u32,
    /// Index of the offset currently being evaluated.
    eval_idx: usize,
    /// Accesses so far in the current evaluation period.
    accesses: u32,
    /// Active prefetch plan: `(offset, degree)` sorted by score, best
    /// first. Rebuilt when an evaluation period completes.
    plan: Vec<(i64, u32)>,
    issued: u64,
}

impl SandboxPrefetcher {
    /// Creates an SBP with the given configuration.
    pub fn new(cfg: SbpConfig, page: PageSize) -> Self {
        let n = cfg.offsets.len();
        let sandbox = BloomFilter::new(cfg.bloom_bits, cfg.bloom_hashes);
        SandboxPrefetcher {
            sandbox,
            scores: vec![0; n],
            eval_score: 0,
            eval_idx: 0,
            accesses: 0,
            plan: Vec::new(),
            issued: 0,
            cfg,
            page,
        }
    }

    /// Creates an SBP with the §6.3 defaults.
    pub fn with_defaults(page: PageSize) -> Self {
        Self::new(SbpConfig::default(), page)
    }

    /// Latest per-offset scores (offset-list order).
    pub fn scores(&self) -> &[u32] {
        &self.scores
    }

    /// The current prefetch plan as `(offset, degree)` pairs.
    pub fn plan(&self) -> &[(i64, u32)] {
        &self.plan
    }

    /// Total prefetch requests issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    fn degree_for(&self, score: u32) -> u32 {
        if score >= self.cfg.cutoff3 {
            3
        } else if score >= self.cfg.cutoff2 {
            2
        } else if score >= self.cfg.cutoff1 {
            1
        } else {
            0
        }
    }

    fn rebuild_plan(&mut self) {
        let mut scored: Vec<(u32, i64)> = self
            .scores
            .iter()
            .zip(self.cfg.offsets.iter())
            .filter_map(|(&s, d)| {
                if self.degree_for(s) > 0 {
                    Some((s, d))
                } else {
                    None
                }
            })
            .collect();
        // Highest score first; ties by smaller |offset| (deterministic).
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.abs().cmp(&b.1.abs())));
        self.plan = scored
            .into_iter()
            .map(|(s, d)| (d, self.degree_for(s)))
            .collect();
    }

    fn end_period(&mut self) {
        self.scores[self.eval_idx] = self.eval_score;
        self.eval_idx = (self.eval_idx + 1) % self.cfg.offsets.len();
        self.eval_score = 0;
        self.accesses = 0;
        self.sandbox.clear();
        self.rebuild_plan();
    }
}

impl Prefetcher for SandboxPrefetcher {
    fn on_access(&mut self, access: CacheAccess, out: &mut Vec<LineAddr>) {
        if !access.outcome.is_eligible() {
            return;
        }
        let x = access.line;
        let d = self.cfg.offsets.get(self.eval_idx);

        // --- Sandbox evaluation of the candidate offset ---
        // Check X, X-D, X-2D, X-3D against the fake prefetches.
        for k in 0..4 {
            let probe = x.0 as i64 - k * d;
            if probe >= 0 && self.sandbox.contains(probe as u64) {
                self.eval_score += 1;
            }
        }
        // Fake prefetch X+D (page-bounded like a real one).
        if let Some(fake) = x.checked_offset(d, self.page) {
            self.sandbox.insert(fake.0);
        }
        self.accesses += 1;
        if self.accesses >= self.cfg.period {
            self.end_period();
        }

        // --- Real prefetching according to the current plan ---
        let mut budget = self.cfg.max_requests_per_access;
        for &(offset, degree) in &self.plan {
            for mult in 1..=degree as i64 {
                if budget == 0 {
                    return;
                }
                if let Some(target) = x.checked_offset(offset * mult, self.page) {
                    if !out.contains(&target) {
                        out.push(target);
                        self.issued += 1;
                        budget -= 1;
                    }
                }
            }
        }
    }

    fn on_fill(&mut self, _line: LineAddr, _prefetched: bool) {
        // The sandbox records fake prefetches only; real fills are not
        // observed — SBP is blind to timeliness by construction.
    }

    fn name(&self) -> &'static str {
        "SBP"
    }

    fn page_size(&self) -> PageSize {
        self.page
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use best_offset::AccessOutcome;

    fn access(p: &mut SandboxPrefetcher, line: u64) -> Vec<LineAddr> {
        let mut out = Vec::new();
        p.on_access(
            CacheAccess {
                line: LineAddr(line),
                outcome: AccessOutcome::Miss,
            },
            &mut out,
        );
        out
    }

    #[test]
    fn bloom_filter_membership() {
        let mut b = BloomFilter::new(2048, 3);
        assert!(!b.contains(42));
        b.insert(42);
        assert!(b.contains(42));
        b.clear();
        assert!(!b.contains(42));
    }

    #[test]
    fn bloom_filter_false_positive_rate_is_low_when_sparse() {
        let mut b = BloomFilter::new(2048, 3);
        for v in 0..64 {
            b.insert(v);
        }
        let fp = (1000u64..6000).filter(|&v| b.contains(v)).count();
        assert!(fp < 100, "false positives: {fp}/5000");
    }

    #[test]
    fn no_prefetch_before_any_evaluation() {
        let mut p = SandboxPrefetcher::with_defaults(PageSize::M4);
        // Plan is empty until a period completes with a passing score.
        assert!(access(&mut p, 1000).is_empty());
    }

    #[test]
    fn sequential_stream_activates_offsets() {
        let mut p = SandboxPrefetcher::with_defaults(PageSize::M4);
        let mut line = 4096u64;
        // Run enough periods to evaluate several candidates; candidate 1
        // (offset 1) on a sequential stream scores ~4 hits/access.
        for _ in 0..256 * 4 {
            access(&mut p, line);
            line += 1;
        }
        assert!(
            !p.plan().is_empty(),
            "sequential stream must activate at least offset 1"
        );
        // Offset 1 should be planned with maximal degree.
        let d1 = p.plan().iter().find(|&&(d, _)| d == 1);
        assert_eq!(d1, Some(&(1, 3)));
        let reqs = access(&mut p, line);
        assert!(!reqs.is_empty());
        assert!(reqs.contains(&LineAddr(line + 1)));
    }

    #[test]
    fn random_traffic_stays_off() {
        let mut p = SandboxPrefetcher::with_defaults(PageSize::M4);
        let mut x = 7u64;
        for _ in 0..256 * 55 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            access(&mut p, x >> 20);
        }
        assert!(
            p.plan().is_empty(),
            "no offset should pass the accuracy cutoff on random traffic"
        );
    }

    #[test]
    fn request_budget_is_respected() {
        let cfg = SbpConfig {
            max_requests_per_access: 2,
            ..Default::default()
        };
        let mut p = SandboxPrefetcher::new(cfg, PageSize::M4);
        for line in 8192u64..8192 + 256 * 8 {
            let reqs = access(&mut p, line);
            assert!(reqs.len() <= 2, "budget exceeded: {}", reqs.len());
        }
    }

    #[test]
    fn page_boundaries_respected() {
        let mut p = SandboxPrefetcher::with_defaults(PageSize::K4);
        for line in 0u64..256 * 6 {
            let reqs = access(&mut p, line);
            for r in reqs {
                assert!(
                    r.same_page(LineAddr(line), PageSize::K4),
                    "prefetch crossed page"
                );
            }
        }
    }
}
