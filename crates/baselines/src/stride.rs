//! The DL1 stride prefetcher (§5.5).
//!
//! "It features a 64-entry prefetch table accessed with the PC of
//! load/store micro-ops. Each entry contains a tag (the PC), a last
//! address, a stride, a 4-bit confidence counter and some bits for LRU
//! management. The prefetch table is updated at retirement ... to
//! guarantee that memory accesses are seen in program order. However,
//! prefetch requests are issued when a load/store accesses the DL1 cache."
//!
//! Prefetch address: `currentaddr + 16 × stride` (the paper's empirically
//! chosen distance factor), filtered through a 16-entry recent-prefetch
//! filter, then translated by the TLB2 before being issued (done by the
//! simulator; a TLB2 miss drops the request).

use best_offset::{L1Prefetcher, TuneDirective};
use bosim_types::VirtAddr;

const CONF_MAX: u8 = 15;

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    valid: bool,
    pc: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    lru: u8,
}

/// Configuration of the DL1 stride prefetcher.
#[derive(Debug, Clone)]
pub struct StrideConfig {
    /// Table entries (paper: 64).
    pub entries: usize,
    /// Associativity of the PC-indexed table (paper: unspecified; 8-way).
    pub ways: usize,
    /// Prefetch distance factor (paper: 16, determined empirically).
    pub distance: i64,
    /// Recent-prefetch filter size (paper: 16 lines).
    pub filter_entries: usize,
}

impl Default for StrideConfig {
    fn default() -> Self {
        StrideConfig {
            entries: 64,
            ways: 8,
            distance: 16,
            filter_entries: 16,
        }
    }
}

impl StrideConfig {
    /// Validates the parameters [`StridePrefetcher::new`] would otherwise
    /// panic on (used by configuration validation so an invalid spec is
    /// reported before any simulation runs).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.ways < 1 || self.entries < self.ways {
            return Err(format!(
                "stride table needs entries ({}) >= ways ({}) >= 1",
                self.entries, self.ways
            ));
        }
        let sets = self.entries / self.ways;
        if !sets.is_power_of_two() {
            return Err(format!(
                "stride table set count {sets} (entries {} / ways {}) must be a power of two",
                self.entries, self.ways
            ));
        }
        if self.filter_entries < 1 {
            return Err("stride recent-prefetch filter needs at least one entry".into());
        }
        Ok(())
    }
}

/// The PC-indexed DL1 stride prefetcher.
#[derive(Debug)]
pub struct StridePrefetcher {
    cfg: StrideConfig,
    sets: usize,
    table: Vec<StrideEntry>,
    /// 16-entry FIFO of recently prefetched virtual *lines*.
    filter: Vec<u64>,
    filter_pos: usize,
    issued: u64,
    trained: u64,
    /// External gate imposed by an adaptive tuning policy
    /// (`TuneDirective::SetEnabled`); training keeps running while gated.
    enabled: bool,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is divisible by `ways` into a power-of-two
    /// set count.
    pub fn new(cfg: StrideConfig) -> Self {
        assert!(cfg.ways >= 1 && cfg.entries >= cfg.ways);
        let sets = cfg.entries / cfg.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(cfg.filter_entries >= 1);
        StridePrefetcher {
            sets,
            table: vec![StrideEntry::default(); cfg.entries],
            filter: vec![u64::MAX; cfg.filter_entries],
            filter_pos: 0,
            issued: 0,
            trained: 0,
            enabled: true,
            cfg,
        }
    }

    /// Creates the paper-default 64-entry prefetcher.
    pub fn with_defaults() -> Self {
        Self::new(StrideConfig::default())
    }

    /// Requests issued (pre-TLB).
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Retirement-time table updates performed.
    pub fn trained(&self) -> u64 {
        self.trained
    }

    #[inline]
    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    fn set_slice(&mut self, set: usize) -> &mut [StrideEntry] {
        let w = self.cfg.ways;
        &mut self.table[set * w..(set + 1) * w]
    }

    fn touch_lru(set: &mut [StrideEntry], way: usize) {
        let old = set[way].lru;
        for e in set.iter_mut() {
            if e.lru < old {
                e.lru += 1;
            }
        }
        set[way].lru = 0;
    }

    /// Trains the table at retirement, in program order (§5.5).
    pub fn on_retire(&mut self, pc: u64, vaddr: VirtAddr) {
        self.trained += 1;
        let set_idx = self.set_of(pc);
        let set = self.set_slice(set_idx);
        let way = set.iter().position(|e| e.valid && e.pc == pc);
        match way {
            Some(w) => {
                let cur = vaddr.0;
                let e = &mut set[w];
                if e.stride != 0 && cur as i64 == e.last_addr as i64 + e.stride {
                    e.confidence = (e.confidence + 1).min(CONF_MAX);
                } else {
                    e.confidence = 0;
                }
                e.stride = cur as i64 - e.last_addr as i64;
                e.last_addr = cur;
                Self::touch_lru(set, w);
            }
            None => {
                // Allocate the LRU way.
                let w = (0..set.len())
                    .max_by_key(|&i| if set[i].valid { set[i].lru } else { u8::MAX })
                    .expect("non-empty set"); // bosim-lint: allow(P002, replacement set is structurally non-empty)
                set[w] = StrideEntry {
                    valid: true,
                    pc,
                    last_addr: vaddr.0,
                    stride: 0,
                    confidence: 0,
                    lru: set[w].lru,
                };
                Self::touch_lru(set, w);
            }
        }
    }

    /// Issue check at DL1 access time (miss or prefetched hit): returns
    /// the virtual prefetch address if the entry is fully confident.
    ///
    /// The caller must still translate through the TLB2 (dropping on a
    /// TLB2 miss) and perform line-level dedup against the MSHRs.
    pub fn on_access(&mut self, pc: u64, vaddr: VirtAddr) -> Option<VirtAddr> {
        if !self.enabled {
            return None;
        }
        let distance = self.cfg.distance;
        let set_idx = self.set_of(pc);
        let set = self.set_slice(set_idx);
        let e = set.iter().find(|e| e.valid && e.pc == pc)?;
        if e.stride == 0 || e.confidence < CONF_MAX {
            return None;
        }
        let target = vaddr.0 as i64 + distance * e.stride;
        if target < 0 {
            return None;
        }
        let target = target as u64;
        let line = target >> 6;
        // 16-entry filter: skip lines prefetched recently.
        if self.filter.contains(&line) {
            return None;
        }
        self.filter[self.filter_pos] = line;
        self.filter_pos = (self.filter_pos + 1) % self.filter.len();
        self.issued += 1;
        Some(VirtAddr(target))
    }
}

/// The L1D-site attach point: the core drives training/issue through
/// this trait when the stride prefetcher is plugged in via the registry
/// (`l1:stride`).
impl L1Prefetcher for StridePrefetcher {
    fn on_retire(&mut self, pc: u64, vaddr: VirtAddr) {
        StridePrefetcher::on_retire(self, pc, vaddr);
    }

    fn on_access(&mut self, pc: u64, vaddr: VirtAddr) -> Option<VirtAddr> {
        StridePrefetcher::on_access(self, pc, vaddr)
    }

    fn name(&self) -> &'static str {
        "stride"
    }

    fn reconfigure(&mut self, directive: &TuneDirective) -> bool {
        match directive {
            TuneDirective::SetEnabled(on) => {
                self.enabled = *on;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stride_trains_to_full_confidence() {
        let mut p = StridePrefetcher::with_defaults();
        let pc = 0x400100;
        // Need stride established + 15 confirmations.
        for i in 0..20 {
            p.on_retire(pc, VirtAddr(0x1000 + i * 96));
        }
        let got = p.on_access(pc, VirtAddr(0x1000 + 20 * 96));
        assert_eq!(
            got,
            Some(VirtAddr(0x1000 + 20 * 96 + 16 * 96)),
            "prefetch at current + 16*stride"
        );
    }

    #[test]
    fn no_issue_before_confidence() {
        let mut p = StridePrefetcher::with_defaults();
        let pc = 0x400100;
        for i in 0..5 {
            p.on_retire(pc, VirtAddr(0x1000 + i * 64));
        }
        assert_eq!(p.on_access(pc, VirtAddr(0x2000)), None);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::with_defaults();
        let pc = 0x400200;
        for i in 0..20 {
            p.on_retire(pc, VirtAddr(0x1000 + i * 64));
        }
        assert!(p.on_access(pc, VirtAddr(0x9000)).is_some());
        // Break the pattern.
        p.on_retire(pc, VirtAddr(0x100000));
        assert_eq!(
            p.on_access(pc, VirtAddr(0x100000)),
            None,
            "confidence must reset on a stride break"
        );
    }

    #[test]
    fn zero_stride_never_prefetches() {
        let mut p = StridePrefetcher::with_defaults();
        let pc = 0x400300;
        for _ in 0..40 {
            p.on_retire(pc, VirtAddr(0x7000));
        }
        assert_eq!(p.on_access(pc, VirtAddr(0x7000)), None);
    }

    #[test]
    fn filter_suppresses_repeats() {
        let mut p = StridePrefetcher::with_defaults();
        let pc = 0x400400;
        for i in 0..20 {
            p.on_retire(pc, VirtAddr(0x1000 + i * 8));
        }
        // Stride 8 -> distance 128 bytes; consecutive accesses target the
        // same 64B line, so the filter must block the duplicates.
        let a = p.on_access(pc, VirtAddr(0x2000));
        let b = p.on_access(pc, VirtAddr(0x2008));
        assert!(a.is_some());
        assert!(b.is_none(), "same-line prefetch must be filtered");
    }

    #[test]
    fn distinct_pcs_do_not_interfere() {
        let mut p = StridePrefetcher::with_defaults();
        // Two loads in a loop with different strides; both reach
        // confidence despite interleaved training.
        for i in 0..20u64 {
            p.on_retire(0x400500, VirtAddr(0x10000 + i * 64));
            p.on_retire(0x400504, VirtAddr(0x90000 + i * 256));
        }
        assert_eq!(
            p.on_access(0x400500, VirtAddr(0x20000)),
            Some(VirtAddr(0x20000 + 16 * 64))
        );
        assert_eq!(
            p.on_access(0x400504, VirtAddr(0xA0000)),
            Some(VirtAddr(0xA0000 + 16 * 256))
        );
    }

    #[test]
    fn external_gate_stops_issue_but_not_training() {
        let mut p = StridePrefetcher::with_defaults();
        let pc = 0x400600;
        assert!(L1Prefetcher::reconfigure(
            &mut p,
            &TuneDirective::SetEnabled(false)
        ));
        // Training continues while gated...
        for i in 0..20 {
            L1Prefetcher::on_retire(&mut p, pc, VirtAddr(0x1000 + i * 64));
        }
        assert_eq!(L1Prefetcher::on_access(&mut p, pc, VirtAddr(0x2000)), None);
        // ...so re-enabling issues immediately from the warm table.
        assert!(L1Prefetcher::reconfigure(
            &mut p,
            &TuneDirective::SetEnabled(true)
        ));
        assert!(L1Prefetcher::on_access(&mut p, pc, VirtAddr(0x2000)).is_some());
        assert_eq!(L1Prefetcher::name(&p), "stride");
        assert!(!L1Prefetcher::reconfigure(
            &mut p,
            &TuneDirective::SetDegree(2)
        ));
    }

    #[test]
    fn config_validation_matches_constructor_panics() {
        assert!(StrideConfig::default().validate().is_ok());
        let bad_sets = StrideConfig {
            entries: 24,
            ways: 8,
            ..Default::default()
        };
        assert!(bad_sets.validate().unwrap_err().contains("power of two"));
        let bad_ways = StrideConfig {
            entries: 4,
            ways: 8,
            ..Default::default()
        };
        assert!(bad_ways.validate().is_err());
        let bad_filter = StrideConfig {
            filter_entries: 0,
            ..Default::default()
        };
        assert!(bad_filter.validate().unwrap_err().contains("filter"));
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let cfg = StrideConfig {
            entries: 8,
            ways: 8,
            ..Default::default()
        };
        let mut p = StridePrefetcher::new(cfg);
        // 9 PCs map to the single set; the first must be evicted.
        for pc in 0..9u64 {
            for i in 0..20 {
                p.on_retire(0x400000 + pc * 4, VirtAddr(0x1000 * (pc + 1) + i * 64));
            }
        }
        // PC 0 was LRU and evicted: no prefetch.
        assert_eq!(p.on_access(0x400000, VirtAddr(0x500000)), None);
        // PC 8 is present and confident.
        assert!(p
            .on_access(0x400000 + 8 * 4, VirtAddr(0x9000 * 9))
            .is_some());
    }
}
