//! Fixed-offset prefetchers, including the default next-line prefetcher.
//!
//! The baseline L2 prefetcher is "a simple next-line prefetcher with
//! prefetch bits" (§5.6): on a miss or prefetched hit for line `X`, it
//! prefetches `X + 1`. Figure 7 and Figure 8 generalise this to arbitrary
//! fixed offsets.

use best_offset::{CacheAccess, Prefetcher, TuneDirective};
use bosim_types::{LineAddr, PageSize};

/// An L2 prefetcher with a constant offset `D` (degree one).
///
/// `D = 1` is the paper's baseline next-line prefetcher.
#[derive(Debug, Clone)]
pub struct FixedOffsetPrefetcher {
    offset: i64,
    page: PageSize,
    issued: u64,
    /// External gate imposed by an adaptive tuning policy
    /// (`TuneDirective::SetEnabled`).
    enabled: bool,
}

impl FixedOffsetPrefetcher {
    /// Creates a fixed-offset prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `offset == 0`.
    pub fn new(offset: i64, page: PageSize) -> Self {
        assert!(offset != 0, "offset 0 is not a prefetch");
        FixedOffsetPrefetcher {
            offset,
            page,
            issued: 0,
            enabled: true,
        }
    }

    /// The paper's baseline: next-line prefetching (`D = 1`).
    pub fn next_line(page: PageSize) -> Self {
        Self::new(1, page)
    }

    /// The constant offset.
    pub fn offset(&self) -> i64 {
        self.offset
    }

    /// Number of prefetch requests issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

impl Prefetcher for FixedOffsetPrefetcher {
    fn on_access(&mut self, access: CacheAccess, out: &mut Vec<LineAddr>) {
        if !self.enabled || !access.outcome.is_eligible() {
            return;
        }
        if let Some(target) = access.line.checked_offset(self.offset, self.page) {
            out.push(target);
            self.issued += 1;
        }
    }

    fn on_fill(&mut self, _line: LineAddr, _prefetched: bool) {}

    fn name(&self) -> &'static str {
        if self.offset == 1 {
            "next-line"
        } else {
            "fixed-offset"
        }
    }

    fn page_size(&self) -> PageSize {
        self.page
    }

    fn reconfigure(&mut self, directive: &TuneDirective) -> bool {
        match directive {
            TuneDirective::SetEnabled(on) => {
                self.enabled = *on;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use best_offset::AccessOutcome;

    fn run(p: &mut FixedOffsetPrefetcher, line: u64, outcome: AccessOutcome) -> Vec<LineAddr> {
        let mut out = Vec::new();
        p.on_access(
            CacheAccess {
                line: LineAddr(line),
                outcome,
            },
            &mut out,
        );
        out
    }

    #[test]
    fn next_line_prefetches_x_plus_1() {
        let mut p = FixedOffsetPrefetcher::next_line(PageSize::K4);
        assert_eq!(run(&mut p, 10, AccessOutcome::Miss), vec![LineAddr(11)]);
        assert_eq!(
            run(&mut p, 20, AccessOutcome::PrefetchedHit),
            vec![LineAddr(21)]
        );
        assert!(run(&mut p, 30, AccessOutcome::Hit).is_empty());
        assert_eq!(p.issued(), 2);
    }

    #[test]
    fn page_boundary_respected() {
        let mut p = FixedOffsetPrefetcher::new(5, PageSize::K4);
        assert!(run(&mut p, 60, AccessOutcome::Miss).is_empty());
        assert_eq!(run(&mut p, 58, AccessOutcome::Miss), vec![LineAddr(63)]);
    }

    #[test]
    fn large_offsets_work_with_superpages() {
        let mut p = FixedOffsetPrefetcher::new(200, PageSize::M4);
        assert_eq!(run(&mut p, 100, AccessOutcome::Miss), vec![LineAddr(300)]);
        let mut p4k = FixedOffsetPrefetcher::new(200, PageSize::K4);
        assert!(run(&mut p4k, 100, AccessOutcome::Miss).is_empty());
    }

    #[test]
    fn negative_offset_supported() {
        let mut p = FixedOffsetPrefetcher::new(-2, PageSize::M4);
        assert_eq!(run(&mut p, 100, AccessOutcome::Miss), vec![LineAddr(98)]);
    }

    #[test]
    fn external_gate_stops_issue() {
        let mut p = FixedOffsetPrefetcher::next_line(PageSize::M4);
        assert!(p.reconfigure(&TuneDirective::SetEnabled(false)));
        assert!(run(&mut p, 10, AccessOutcome::Miss).is_empty());
        assert_eq!(p.issued(), 0);
        assert!(p.reconfigure(&TuneDirective::SetEnabled(true)));
        assert_eq!(run(&mut p, 10, AccessOutcome::Miss), vec![LineAddr(11)]);
        assert!(!p.reconfigure(&TuneDirective::SetDegree(2)), "unsupported");
    }

    #[test]
    fn names() {
        assert_eq!(
            FixedOffsetPrefetcher::next_line(PageSize::K4).name(),
            "next-line"
        );
        assert_eq!(
            FixedOffsetPrefetcher::new(5, PageSize::K4).name(),
            "fixed-offset"
        );
    }
}
