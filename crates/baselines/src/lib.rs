//! Baseline prefetchers evaluated against Best-Offset in the paper.
//!
//! * [`FixedOffsetPrefetcher`] — constant-offset prefetching; `D = 1` is
//!   the default L2 next-line prefetcher of the baseline (§5.6, Figures
//!   5, 7, 8),
//! * [`SandboxPrefetcher`] — Pugsley et al.'s SBP as adapted in §6.3
//!   (52-offset list, 2048-bit Bloom filter, 256-access periods),
//! * [`StridePrefetcher`] — the PC-indexed DL1 stride prefetcher (§5.5),
//! * [`AmpmPrefetcher`] — an AMPM-lite extension (the DPC-1 winner the
//!   paper positions SBP against).
//!
//! All line-address prefetchers implement the level-agnostic
//! [`best_offset::Prefetcher`] trait (attachable to the L2 or L3 site);
//! the DL1 stride prefetcher implements [`best_offset::L1Prefetcher`]
//! because it works on virtual addresses and trains in program order.

#![warn(missing_docs)]

mod ampm;
mod fixed;
mod sandbox;
mod stride;

pub use ampm::{AmpmConfig, AmpmPrefetcher};
pub use fixed::FixedOffsetPrefetcher;
pub use sandbox::{BloomFilter, SandboxPrefetcher, SbpConfig};
pub use stride::{StrideConfig, StridePrefetcher};
