//! Trace model and synthetic SPEC-CPU2006-like workloads for `bosim`.
//!
//! The paper's simulator is trace driven (§5): traces of the committed
//! instruction stream feed a timing model. This crate provides:
//!
//! * the µop record model ([`MicroOp`], [`UopKind`], [`Reg`]),
//! * the [`TraceSource`] abstraction and a looping [`ReplaySource`],
//! * a binary trace file format ([`file`]),
//! * the synthetic benchmark machinery ([`synth`]) and the 29-entry
//!   SPEC-CPU2006-like [`suite`], substituting for the proprietary SPEC
//!   traces (see `DESIGN.md`),
//! * the §5.1 cache-thrashing micro-benchmark ([`suite::thrasher`]),
//! * trace analysis utilities ([`analyze`]): instruction mix, per-PC
//!   stride detection, line-stride histograms.
//!
//! # Examples
//!
//! ```
//! use bosim_trace::{suite, TraceSource};
//!
//! let spec = suite::benchmark("462").expect("libquantum-like exists");
//! let mut src = spec.build();
//! let uop = src.next_uop();
//! assert!(uop.pc > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod file;
mod kernels;
mod record;
mod source;
pub mod suite;
pub mod synth;

pub use record::{BranchInfo, MemRef, MicroOp, Reg, UopKind, NUM_REGS};
pub use source::{capture, ReplaySource, TraceSource};
pub use synth::{BenchmarkSpec, KernelCfg, Schedule, SynthSource};
