//! Trace model, synthetic workloads and external trace ingestion for
//! `bosim`.
//!
//! The paper's simulator is trace driven (§5): traces of the committed
//! instruction stream feed a timing model. This crate provides:
//!
//! * the µop record model ([`MicroOp`], [`UopKind`], [`Reg`]),
//! * the [`TraceSource`] abstraction and a looping [`ReplaySource`],
//! * the native binary trace file format ([`mod@file`]),
//! * **external trace ingestion** ([`ingest`]): ChampSim-compatible
//!   64-byte instruction records ([`champsim`]) and raw text/binary
//!   address traces ([`addr`]), with format auto-detection
//!   ([`TraceFormat::detect`]) — point the simulator at a real captured
//!   workload instead of a synthesised one,
//! * **trace sampling** ([`sample`]): warm-up skip and periodic
//!   measurement windows ([`SampleSpec`]) composing with any source,
//! * the synthetic benchmark machinery ([`synth`]) and the 29-entry
//!   SPEC-CPU2006-like [`suite`], substituting for the proprietary SPEC
//!   traces (see `DESIGN.md`),
//! * the §5.1 cache-thrashing micro-benchmark ([`suite::thrasher`]),
//! * trace analysis utilities ([`analyze`]): instruction mix, per-PC
//!   stride detection, line-stride histograms.
//!
//! On-disk format specifications live in `docs/TRACES.md`.
//!
//! # Examples
//!
//! Synthetic benchmarks build straight from the suite:
//!
//! ```
//! use bosim_trace::{suite, TraceSource};
//!
//! let spec = suite::benchmark("462").expect("libquantum-like exists");
//! let mut src = spec.build();
//! let uop = src.next_uop();
//! assert!(uop.pc > 0);
//! ```
//!
//! External traces go through [`ExternalSpec`] (or the `bosim` CLI):
//!
//! ```no_run
//! use bosim_trace::{BenchmarkSpec, ExternalSpec, SampleSpec, SampledSource};
//!
//! // A ChampSim trace, auto-detected, as an experiment benchmark...
//! let bench = BenchmarkSpec::from_trace(
//!     ExternalSpec::detect("traces/mcf.champsim").expect("detectable"),
//! );
//! // ...whose source can be sampled: skip 1M µops, keep 100k of each 1M.
//! let sampled = SampledSource::new(
//!     bench.source().expect("loads"),
//!     SampleSpec::periodic(1_000_000, 100_000, 1_000_000),
//! );
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod analyze;
pub mod artifact;
pub mod champsim;
pub mod file;
pub mod ingest;
mod kernels;
mod record;
pub mod sample;
mod source;
pub mod suite;
pub mod synth;

pub use artifact::{ArtifactCounters, ArtifactStore};
pub use ingest::{ExternalSpec, TraceError, TraceFormat};
pub use record::{BranchInfo, MemRef, MicroOp, Reg, UopKind, NUM_REGS};
pub use sample::{SampleSpec, SampledSource};
pub use source::{capture, ReplaySource, TraceSource};
pub use synth::{BenchmarkSpec, KernelCfg, Schedule, SynthSource};
