//! Access-pattern kernel implementations behind [`crate::synth`].
//!
//! Each kernel emits one loop iteration of µops at a time, with stable
//! per-slot PCs (so the PC-indexed DL1 stride prefetcher of §5.5 sees real
//! loops), explicit register dependences (so the core model's scoreboard
//! reproduces serialisation of pointer chases vs. the MLP of streams), and
//! deterministic pseudo-random decisions.

use crate::record::{BranchInfo, MemRef, MicroOp, Reg, UopKind};
use crate::synth::{
    layout, BranchyCfg, ChaseCfg, ComputeCfg, GatherCfg, KernelCfg, ScanWriteCfg, StreamCfg,
};
use bosim_types::{mix64, SplitMix64, VirtAddr, LINE_BYTES};

/// Full-period LCG multiplier for power-of-two moduli (a ≡ 1 mod 4).
const LCG_MUL: u64 = 6364136223846793005;

/// µop emitter with automatic PC advance (4 bytes per µop).
struct Emitter<'a> {
    out: &'a mut Vec<MicroOp>,
    pc: u64,
}

impl<'a> Emitter<'a> {
    fn new(out: &'a mut Vec<MicroOp>, pc: u64) -> Self {
        Emitter { out, pc }
    }

    fn op(&mut self, kind: UopKind, dst: Option<Reg>, srcs: [Option<Reg>; 2]) {
        self.out.push(MicroOp {
            pc: self.pc,
            kind,
            dst,
            srcs,
            mem: None,
            branch: None,
        });
        self.pc += 4;
    }

    fn load(&mut self, vaddr: u64, dst: Reg, addr_src: Option<Reg>) {
        self.out.push(MicroOp {
            pc: self.pc,
            kind: UopKind::Load,
            dst: Some(dst),
            srcs: [addr_src, None],
            mem: Some(MemRef {
                vaddr: VirtAddr(vaddr),
                size: 8,
            }),
            branch: None,
        });
        self.pc += 4;
    }

    fn store(&mut self, vaddr: u64, data_src: Option<Reg>) {
        self.out.push(MicroOp {
            pc: self.pc,
            kind: UopKind::Store,
            dst: None,
            srcs: [data_src, None],
            mem: Some(MemRef {
                vaddr: VirtAddr(vaddr),
                size: 8,
            }),
            branch: None,
        });
        self.pc += 4;
    }

    fn branch(&mut self, taken: bool, target: u64) {
        self.out.push(MicroOp {
            pc: self.pc,
            kind: UopKind::CondBranch,
            dst: None,
            srcs: [None, None],
            mem: None,
            branch: Some(BranchInfo { taken, target }),
        });
        self.pc += 4;
    }
}

/// Instantiated kernel state: one variant per [`KernelCfg`].
#[derive(Debug)]
pub(crate) enum KernelState {
    Stream(Stream),
    Chase(Chase),
    Gather(Gather),
    Compute(Compute),
    Branchy(Branchy),
    ScanWrite(ScanWrite),
}

impl KernelState {
    pub(crate) fn new(cfg: &KernelCfg, idx: usize, seed: u64) -> Self {
        match cfg {
            KernelCfg::Stream(c) => KernelState::Stream(Stream::new(c.clone(), idx, seed)),
            KernelCfg::Chase(c) => KernelState::Chase(Chase::new(c.clone(), idx, seed)),
            KernelCfg::Gather(c) => KernelState::Gather(Gather::new(c.clone(), idx, seed)),
            KernelCfg::Compute(c) => KernelState::Compute(Compute::new(c.clone(), idx, seed)),
            KernelCfg::Branchy(c) => KernelState::Branchy(Branchy::new(c.clone(), idx, seed)),
            KernelCfg::ScanWrite(c) => KernelState::ScanWrite(ScanWrite::new(c.clone(), idx, seed)),
        }
    }

    pub(crate) fn emit(&mut self, out: &mut Vec<MicroOp>) {
        match self {
            KernelState::Stream(k) => k.emit(out),
            KernelState::Chase(k) => k.emit(out),
            KernelState::Gather(k) => k.emit(out),
            KernelState::Compute(k) => k.emit(out),
            KernelState::Branchy(k) => k.emit(out),
            KernelState::ScanWrite(k) => k.emit(out),
        }
    }
}

/// Interleaved constant-stride streams.
#[derive(Debug)]
pub(crate) struct Stream {
    cfg: StreamCfg,
    code: u64,
    r: u8,
    cursors: Vec<u64>,
    pat_pos: Vec<usize>,
    /// In-line load position per stream (0..loads_per_line).
    sub: Vec<u32>,
    cur: usize,
    loads_since_store: u32,
    base: u64,
}

impl Stream {
    fn new(cfg: StreamCfg, idx: usize, _seed: u64) -> Self {
        assert!(cfg.streams >= 1, "need at least one stream");
        assert!(!cfg.pattern.is_empty(), "empty stride pattern");
        assert!(cfg.region_bytes >= LINE_BYTES, "region too small");
        assert!(cfg.loads_per_line >= 1, "loads_per_line must be >= 1");
        let n = cfg.streams as usize;
        Stream {
            code: layout::code_base(idx),
            r: layout::reg_base(idx),
            cursors: vec![0; n],
            pat_pos: vec![0; n],
            sub: vec![0; n],
            cur: 0,
            loads_since_store: 0,
            base: layout::data_base(idx),
            cfg,
        }
    }

    fn emit(&mut self, out: &mut Vec<MicroOp>) {
        let s = self.cur;
        self.cur = (self.cur + 1) % self.cursors.len();
        // Each stream accesses its own sub-region so streams do not alias.
        let stream_base = self.base + s as u64 * self.cfg.region_bytes.next_power_of_two() * 2;
        // Several loads walk each touched line before it advances.
        let in_line = (self.sub[s] as u64 * 8) % LINE_BYTES;
        let addr = stream_base + self.cursors[s] + in_line;

        let addr_reg = Reg(self.r);
        let data_reg = Reg(self.r + 2);
        let mut e = Emitter::new(out, self.code + s as u64 * 4096);
        // Induction-variable update: address is ready quickly (high MLP).
        e.op(UopKind::Int, Some(addr_reg), [Some(addr_reg), None]);
        e.load(addr, data_reg, Some(addr_reg));
        let kind = if self.cfg.fp {
            UopKind::Fp
        } else {
            UopKind::Int
        };
        for j in 0..self.cfg.compute_per_load {
            let c = Reg(self.r + 3 + (j % 3) as u8);
            e.op(kind, Some(c), [Some(data_reg), Some(c)]);
        }
        if self.cfg.store_every > 0 {
            self.loads_since_store += 1;
            if self.loads_since_store >= self.cfg.store_every {
                self.loads_since_store = 0;
                e.store(addr, Some(data_reg));
            }
        }
        e.branch(true, self.code + s as u64 * 4096);

        // Advance within the line, then along the stride pattern.
        self.sub[s] += 1;
        if self.sub[s] >= self.cfg.loads_per_line {
            self.sub[s] = 0;
            let step = self.cfg.pattern[self.pat_pos[s]];
            self.pat_pos[s] = (self.pat_pos[s] + 1) % self.cfg.pattern.len();
            let delta = step * LINE_BYTES as i64;
            let region = self.cfg.region_bytes;
            let next = self.cursors[s] as i64 + delta;
            self.cursors[s] = next.rem_euclid(region as i64) as u64;
        }
    }
}

/// Dependent pointer chase over a full-period LCG permutation walk.
#[derive(Debug)]
pub(crate) struct Chase {
    cfg: ChaseCfg,
    code: u64,
    r: u8,
    base: u64,
    mask: u64,
    idx: Vec<u64>,
    incs: Vec<u64>,
    cur: usize,
    loads_since_branch: u32,
    rng: SplitMix64,
}

impl Chase {
    fn new(cfg: ChaseCfg, idx_k: usize, seed: u64) -> Self {
        assert!(cfg.chains >= 1, "need at least one chain");
        let lines = (cfg.region_bytes / LINE_BYTES).next_power_of_two().max(64);
        let n = cfg.chains as usize;
        let mut rng = SplitMix64::new(seed ^ 0xC4A5E);
        let idx = (0..n).map(|_| rng.next_below(lines)).collect();
        // Odd increments give full period for power-of-two moduli.
        let incs = (0..n).map(|_| rng.next_u64() | 1).collect();
        Chase {
            code: layout::code_base(idx_k),
            r: layout::reg_base(idx_k),
            base: layout::data_base(idx_k),
            mask: lines - 1,
            idx,
            incs,
            cur: 0,
            loads_since_branch: 0,
            rng,
            cfg,
        }
    }

    fn emit(&mut self, out: &mut Vec<MicroOp>) {
        let c = self.cur;
        self.cur = (self.cur + 1) % self.idx.len();
        let chain_reg = Reg(self.r + 2 + (c % 6) as u8);
        let addr = self.base + self.idx[c] * LINE_BYTES;
        let mut e = Emitter::new(out, self.code);
        // The load's address depends on the previous load of the same
        // chain: true pointer chasing, serialised by memory latency.
        e.load(addr, chain_reg, Some(chain_reg));
        for _ in 0..self.cfg.compute_per_load {
            e.op(UopKind::Int, Some(chain_reg), [Some(chain_reg), None]);
        }
        if self.cfg.branch_every > 0 {
            self.loads_since_branch += 1;
            if self.loads_since_branch >= self.cfg.branch_every {
                self.loads_since_branch = 0;
                // Data-dependent branch: essentially unpredictable.
                let taken = self.rng.chance(1, 2);
                e.branch(taken, self.code + 256);
            }
        }
        e.branch(true, self.code);
        self.idx[c] = (self.idx[c].wrapping_mul(LCG_MUL).wrapping_add(self.incs[c])) & self.mask;
    }
}

/// Indexed gather: sequential index loads + dependent pseudo-random loads.
#[derive(Debug)]
pub(crate) struct Gather {
    cfg: GatherCfg,
    code: u64,
    r: u8,
    index_base: u64,
    data_base: u64,
    data_lines: u64,
    cursor: u64,
    ctr: u64,
    seed: u64,
}

impl Gather {
    fn new(cfg: GatherCfg, idx: usize, seed: u64) -> Self {
        let data_lines = (cfg.data_region_bytes / LINE_BYTES).max(64);
        Gather {
            code: layout::code_base(idx),
            r: layout::reg_base(idx),
            index_base: layout::data_base(idx),
            data_base: layout::data_base2(idx),
            data_lines,
            cursor: 0,
            ctr: 0,
            seed,
            cfg,
        }
    }

    fn emit(&mut self, out: &mut Vec<MicroOp>) {
        let addr_reg = Reg(self.r);
        let idx_reg = Reg(self.r + 2);
        let data_reg = Reg(self.r + 3);
        let mut e = Emitter::new(out, self.code);
        // Sequential index load (prefetchable).
        e.op(UopKind::Int, Some(addr_reg), [Some(addr_reg), None]);
        e.load(self.index_base + self.cursor, idx_reg, Some(addr_reg));
        // Gathered data load: address depends on the loaded index.
        let g = mix64(self.ctr ^ self.seed) % self.data_lines;
        e.load(self.data_base + g * LINE_BYTES, data_reg, Some(idx_reg));
        for j in 0..self.cfg.compute_per_pair {
            let c = Reg(self.r + 4 + (j % 3) as u8);
            e.op(UopKind::Int, Some(c), [Some(data_reg), Some(c)]);
        }
        e.branch(true, self.code);
        self.cursor = (self.cursor + 8) % self.cfg.index_region_bytes.max(64);
        self.ctr += 1;
    }
}

/// Compute-dominated loop.
#[derive(Debug)]
pub(crate) struct Compute {
    cfg: ComputeCfg,
    code: u64,
    r: u8,
    resident_base: u64,
    cursor: u64,
    iter: u64,
    rng: SplitMix64,
}

impl Compute {
    fn new(cfg: ComputeCfg, idx: usize, seed: u64) -> Self {
        assert!(cfg.ops_per_iter >= 1);
        assert!(cfg.chain_len >= 1);
        assert!(cfg.code_blocks >= 1);
        Compute {
            code: layout::code_base(idx),
            r: layout::reg_base(idx),
            resident_base: layout::data_base(idx),
            cursor: 0,
            iter: 0,
            rng: SplitMix64::new(seed ^ 0xC0301),
            cfg,
        }
    }

    fn emit(&mut self, out: &mut Vec<MicroOp>) {
        let block = (self.iter % self.cfg.code_blocks as u64) * 4096;
        let next_block = ((self.iter + 1) % self.cfg.code_blocks as u64) * 4096;
        self.iter += 1;
        let mut e = Emitter::new(out, self.code + block);
        let nchains = 4u32;
        for j in 0..self.cfg.ops_per_iter {
            if self.cfg.load_every > 0 && j % self.cfg.load_every == 0 {
                let addr_reg = Reg(self.r);
                e.op(UopKind::Int, Some(addr_reg), [Some(addr_reg), None]);
                e.load(
                    self.resident_base + self.cursor,
                    Reg(self.r + 2),
                    Some(addr_reg),
                );
                self.cursor = (self.cursor + 64) % self.cfg.resident_bytes.max(64);
                continue;
            }
            let chain = (j / self.cfg.chain_len) % nchains;
            let c = Reg(self.r + 3 + (chain % 5) as u8);
            let kind = if self.rng.chance(self.cfg.div_permille as u64, 1000) {
                if self.rng.chance(self.cfg.fp_permille as u64, 1000) {
                    UopKind::FpDiv
                } else {
                    UopKind::IntDiv
                }
            } else if self.rng.chance(self.cfg.fp_permille as u64, 1000) {
                UopKind::Fp
            } else {
                UopKind::Int
            };
            e.op(kind, Some(c), [Some(c), None]);
        }
        e.branch(true, self.code + next_block);
    }
}

/// Branchy kernel with a mix of predictable and data-dependent branches.
#[derive(Debug)]
pub(crate) struct Branchy {
    cfg: BranchyCfg,
    code: u64,
    r: u8,
    resident_base: u64,
    cursor: u64,
    iter: u64,
    rng: SplitMix64,
}

impl Branchy {
    fn new(cfg: BranchyCfg, idx: usize, seed: u64) -> Self {
        assert!(cfg.ops_per_branch >= 1);
        assert!(cfg.code_blocks >= 1);
        Branchy {
            code: layout::code_base(idx),
            r: layout::reg_base(idx),
            resident_base: layout::data_base(idx),
            cursor: 0,
            iter: 0,
            rng: SplitMix64::new(seed ^ 0xB9A2C4),
            cfg,
        }
    }

    fn emit(&mut self, out: &mut Vec<MicroOp>) {
        let block = (self.iter % self.cfg.code_blocks as u64) * 4096;
        let next_block = ((self.iter + 1) % self.cfg.code_blocks as u64) * 4096;
        self.iter += 1;
        let mut e = Emitter::new(out, self.code + block);
        for j in 0..self.cfg.ops_per_branch {
            if self.cfg.load_every > 0 && j % self.cfg.load_every == 0 {
                let addr_reg = Reg(self.r);
                e.op(UopKind::Int, Some(addr_reg), [Some(addr_reg), None]);
                e.load(
                    self.resident_base + self.cursor,
                    Reg(self.r + 2),
                    Some(addr_reg),
                );
                self.cursor = (self.cursor + 8 * 64 + 8) % self.cfg.resident_bytes.max(64);
                continue;
            }
            let c = Reg(self.r + 3 + (j % 4) as u8);
            e.op(UopKind::Int, Some(c), [Some(c), None]);
        }
        // Mid-block conditional branch: either loop-like (always taken) or
        // data dependent (random direction).
        let predictable = self.rng.chance(self.cfg.predictable_permille as u64, 1000);
        let taken = if predictable {
            true
        } else {
            self.rng.chance(self.cfg.taken_permille as u64, 1000)
        };
        e.branch(taken, self.code + block + 2048);
        e.branch(true, self.code + next_block);
    }
}

/// Sequential write scan: the §5.1 cache-thrashing micro-benchmark.
#[derive(Debug)]
pub(crate) struct ScanWrite {
    cfg: ScanWriteCfg,
    code: u64,
    r: u8,
    base: u64,
    cursor: u64,
}

impl ScanWrite {
    fn new(cfg: ScanWriteCfg, idx: usize, _seed: u64) -> Self {
        assert!(cfg.stores_per_iter >= 1);
        assert!(cfg.region_bytes >= LINE_BYTES);
        ScanWrite {
            code: layout::code_base(idx),
            r: layout::reg_base(idx),
            base: layout::data_base(idx),
            cursor: 0,
            cfg,
        }
    }

    fn emit(&mut self, out: &mut Vec<MicroOp>) {
        let addr_reg = Reg(self.r);
        let mut e = Emitter::new(out, self.code);
        for _ in 0..self.cfg.stores_per_iter {
            e.op(UopKind::Int, Some(addr_reg), [Some(addr_reg), None]);
            e.store(self.base + self.cursor, Some(Reg(self.r + 2)));
            for _ in 0..self.cfg.compute_per_store {
                e.op(
                    UopKind::Int,
                    Some(Reg(self.r + 3)),
                    [Some(Reg(self.r + 3)), None],
                );
            }
            self.cursor = (self.cursor + LINE_BYTES) % self.cfg.region_bytes;
        }
        e.branch(true, self.code);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(k: &mut KernelState, iters: usize) -> Vec<MicroOp> {
        let mut out = Vec::new();
        for _ in 0..iters {
            k.emit(&mut out);
        }
        out
    }

    #[test]
    fn stream_pattern_5_lines_per_2_accesses() {
        // The lbm-like [3, 2] pattern: line deltas must cycle 3,2,3,2...
        let cfg = KernelCfg::Stream(StreamCfg {
            streams: 1,
            region_bytes: 1 << 24,
            pattern: vec![3, 2],
            loads_per_line: 1,
            compute_per_load: 0,
            fp: false,
            store_every: 0,
        });
        let mut k = KernelState::new(&cfg, 0, 7);
        let uops = collect(&mut k, 100);
        let lines: Vec<u64> = uops
            .iter()
            .filter(|u| u.is_load())
            .map(|u| u.mem.unwrap().vaddr.0 / 64)
            .collect();
        for (i, w) in lines.windows(2).enumerate() {
            let expect = if i % 2 == 0 { 3 } else { 2 };
            assert_eq!(w[1] - w[0], expect, "at access {i}");
        }
    }

    #[test]
    fn chase_loads_depend_on_own_previous_value() {
        let cfg = KernelCfg::Chase(ChaseCfg {
            region_bytes: 1 << 20,
            chains: 2,
            compute_per_load: 1,
            branch_every: 0,
        });
        let mut k = KernelState::new(&cfg, 0, 9);
        let uops = collect(&mut k, 10);
        let loads: Vec<&MicroOp> = uops.iter().filter(|u| u.is_load()).collect();
        assert_eq!(loads.len(), 10);
        for l in &loads {
            // Address source register equals destination: serialised chain.
            assert_eq!(l.srcs[0], l.dst);
        }
        // Two chains use two distinct registers.
        let regs: std::collections::HashSet<_> = loads.iter().map(|l| l.dst).collect();
        assert_eq!(regs.len(), 2);
    }

    #[test]
    fn chase_addresses_cover_region_irregularly() {
        let cfg = KernelCfg::Chase(ChaseCfg {
            region_bytes: 1 << 16, // 1024 lines
            chains: 1,
            compute_per_load: 0,
            branch_every: 0,
        });
        let mut k = KernelState::new(&cfg, 0, 11);
        let uops = collect(&mut k, 512);
        let lines: Vec<u64> = uops
            .iter()
            .filter(|u| u.is_load())
            .map(|u| u.mem.unwrap().vaddr.0 / 64)
            .collect();
        // Full-period LCG: no repeats within the period.
        let set: std::collections::HashSet<_> = lines.iter().collect();
        assert_eq!(set.len(), lines.len());
        // Not sequential: consecutive deltas vary.
        let deltas: std::collections::HashSet<i64> = lines
            .windows(2)
            .map(|w| w[1] as i64 - w[0] as i64)
            .collect();
        assert!(deltas.len() > 10, "chase looks too regular");
    }

    #[test]
    fn gather_data_load_depends_on_index_load() {
        let cfg = KernelCfg::Gather(GatherCfg {
            index_region_bytes: 1 << 20,
            data_region_bytes: 1 << 24,
            compute_per_pair: 2,
        });
        let mut k = KernelState::new(&cfg, 0, 13);
        let uops = collect(&mut k, 5);
        let loads: Vec<&MicroOp> = uops.iter().filter(|u| u.is_load()).collect();
        assert_eq!(loads.len(), 10);
        // Every second load (the gather) must consume the index register
        // written by the preceding load.
        for pair in loads.chunks(2) {
            assert_eq!(pair[1].srcs[0], pair[0].dst);
        }
    }

    #[test]
    fn scan_write_is_sequential_stores() {
        let cfg = KernelCfg::ScanWrite(ScanWriteCfg {
            region_bytes: 1 << 20,
            stores_per_iter: 4,
            compute_per_store: 1,
        });
        let mut k = KernelState::new(&cfg, 0, 17);
        let uops = collect(&mut k, 8);
        let lines: Vec<u64> = uops
            .iter()
            .filter(|u| u.is_store())
            .map(|u| u.mem.unwrap().vaddr.0 / 64)
            .collect();
        assert_eq!(lines.len(), 32);
        for w in lines.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn compute_kernel_cycles_code_blocks() {
        let cfg = KernelCfg::Compute(ComputeCfg {
            ops_per_iter: 4,
            fp_permille: 500,
            div_permille: 10,
            chain_len: 2,
            resident_bytes: 4096,
            load_every: 0,
            code_blocks: 16,
        });
        let mut k = KernelState::new(&cfg, 0, 19);
        let uops = collect(&mut k, 64);
        let blocks: std::collections::HashSet<u64> = uops
            .iter()
            .map(|u| (u.pc - layout::code_base(0)) / 4096)
            .collect();
        assert_eq!(blocks.len(), 16, "should touch all 16 code blocks");
    }

    #[test]
    fn branchy_kernel_has_not_taken_branches() {
        let cfg = KernelCfg::Branchy(BranchyCfg {
            ops_per_branch: 2,
            taken_permille: 500,
            predictable_permille: 0,
            resident_bytes: 4096,
            load_every: 0,
            code_blocks: 1,
        });
        let mut k = KernelState::new(&cfg, 0, 23);
        let uops = collect(&mut k, 200);
        let branches: Vec<bool> = uops
            .iter()
            .filter_map(|u| u.branch.map(|b| b.taken))
            .collect();
        assert!(branches.iter().any(|&t| t));
        assert!(branches.iter().any(|&t| !t));
    }
}
