//! Shared, size-bounded, disk-spillable decoded-trace artifact store.
//!
//! Decoding an external trace is the expensive part of pointing a sweep
//! at a corpus: a (benchmark × arm) grid replays each file in many
//! cells, and `bosim serve` runs many worker shards in one process. The
//! [`ArtifactStore`] makes each decode happen **once per host process**:
//!
//! * entries are keyed by `(path, format, len, mtime)` — rewriting a
//!   trace file (new length or modification time) invalidates its entry
//!   and retires every stale generation for that path;
//! * the decode runs **under the store lock**, so two shards requesting
//!   the same trace concurrently share one decode — the second blocks
//!   briefly and then hits ([`ArtifactCounters::decodes`] stays 1);
//! * the resident set is **size-bounded** ([`ArtifactStore::new`], or
//!   `BOSIM_ARTIFACT_BYTES` for [`ArtifactStore::global`]): when an
//!   insert pushes the store over budget, least-recently-used entries
//!   are spilled to the cache directory in the native `.btrace` format
//!   (an exact round trip) instead of being re-decoded from the source
//!   format on the next request;
//! * spilled entries reload byte-identically — the native encode/decode
//!   pair is lossless — and a vanished or corrupt spill file degrades
//!   to a fresh decode of the original, never an error.
//!
//! The store reads *file* timestamps (`metadata().modified()`) for
//! freshness only; it never reads the wall clock and nothing in it
//! feeds simulated state, so cache hits vs misses cannot change results
//! — only how fast they arrive.

use crate::ingest::{decode_file, ExternalSpec, TraceError};
use crate::{file, MicroOp};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::SystemTime;

/// Default resident-set budget for the process-global store (1 GiB).
pub const DEFAULT_CAPACITY_BYTES: u64 = 1 << 30;

/// 64-bit FNV-1a over the key's debug form — names spill files
/// restart-stably (`DefaultHasher` is randomly seeded per process).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Identity of one decoded artifact: the source file, how it was
/// decoded, and the file generation (length + mtime) it was decoded
/// from.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct ArtifactKey {
    path: PathBuf,
    format: &'static str,
    len: u64,
    mtime: Option<SystemTime>,
}

enum Slot {
    /// Decoded and in memory.
    Resident {
        uops: Arc<Vec<MicroOp>>,
        bytes: u64,
        last_use: u64,
    },
    /// Evicted to a native-format spill file in the cache directory.
    Spilled { spill: PathBuf, bytes: u64 },
}

/// Monotonic usage counters for observability and tests.
///
/// `decodes` counts source-format decodes (the expensive path), `hits`
/// in-memory reuse, `reloads` spill-file reloads, `spills` evictions
/// written to disk, and `invalidations` stale generations retired
/// because their file changed underneath them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArtifactCounters {
    /// Source-format decodes performed.
    pub decodes: u64,
    /// Requests served from the resident set.
    pub hits: u64,
    /// Entries spilled to disk by the size bound.
    pub spills: u64,
    /// Spilled entries reloaded from their spill file.
    pub reloads: u64,
    /// Stale entries retired on file change.
    pub invalidations: u64,
}

struct StoreInner {
    entries: BTreeMap<ArtifactKey, Slot>,
    tick: u64,
    counters: ArtifactCounters,
}

/// The shared decoded-trace store. See the [module docs](self).
pub struct ArtifactStore {
    capacity_bytes: u64,
    spill_dir: PathBuf,
    inner: Mutex<StoreInner>,
}

impl ArtifactStore {
    /// A store bounded to `capacity_bytes` of resident decoded µops,
    /// spilling evictions under `spill_dir` (created on first spill).
    pub fn new(capacity_bytes: u64, spill_dir: impl Into<PathBuf>) -> Self {
        ArtifactStore {
            capacity_bytes,
            spill_dir: spill_dir.into(),
            inner: Mutex::new(StoreInner {
                entries: BTreeMap::new(),
                tick: 0,
                counters: ArtifactCounters::default(),
            }),
        }
    }

    /// The process-global store used by [`ExternalSpec::load`]:
    /// capacity from `BOSIM_ARTIFACT_BYTES` (default
    /// [`DEFAULT_CAPACITY_BYTES`]), spill directory from
    /// `BOSIM_ARTIFACT_DIR` (default `bosim-artifacts-<pid>` under the
    /// system temp dir). Both are read once, at first use.
    pub fn global() -> &'static ArtifactStore {
        static GLOBAL: OnceLock<ArtifactStore> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let capacity = std::env::var("BOSIM_ARTIFACT_BYTES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_CAPACITY_BYTES);
            let dir = std::env::var_os("BOSIM_ARTIFACT_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|| {
                    std::env::temp_dir().join(format!("bosim-artifacts-{}", std::process::id()))
                });
            ArtifactStore::new(capacity, dir)
        })
    }

    /// A snapshot of the usage counters.
    pub fn counters(&self) -> ArtifactCounters {
        self.lock().counters
    }

    /// Bytes of decoded µops currently resident in memory.
    pub fn resident_bytes(&self) -> u64 {
        self.lock()
            .entries
            .values()
            .map(|s| match *s {
                Slot::Resident { bytes, .. } => bytes,
                Slot::Spilled { .. } => 0,
            })
            .sum()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        // bosim-lint: allow(P002, store mutex poisons only if a decode panicked)
        self.inner.lock().expect("artifact store poisoned")
    }

    /// Loads the decoded µops for `spec`, decoding at most once per
    /// file generation per process. See the [module docs](self) for the
    /// sharing, eviction and invalidation semantics.
    ///
    /// # Errors
    ///
    /// Returns the wrapped per-format decode error, and I/O errors
    /// reading the source file or its metadata.
    pub fn load(&self, spec: &ExternalSpec) -> Result<Arc<Vec<MicroOp>>, TraceError> {
        let meta = std::fs::metadata(&spec.path).map_err(|e| TraceError::Io {
            path: spec.path.clone(),
            error: e,
        })?;
        let key = ArtifactKey {
            path: spec.path.clone(),
            format: spec.format.name(),
            len: meta.len(),
            mtime: meta.modified().ok(),
        };

        // The lock is held across the decode on purpose: a second shard
        // asking for the same trace blocks here and then hits, rather
        // than racing into a duplicate decode.
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;

        enum Probe {
            Hit(Arc<Vec<MicroOp>>),
            Spilled(PathBuf, u64),
            Miss,
        }
        let probe = match inner.entries.get_mut(&key) {
            Some(Slot::Resident { uops, last_use, .. }) => {
                *last_use = tick;
                Probe::Hit(Arc::clone(uops))
            }
            Some(Slot::Spilled { spill, bytes }) => Probe::Spilled(spill.clone(), *bytes),
            None => Probe::Miss,
        };
        match probe {
            Probe::Hit(uops) => {
                inner.counters.hits += 1;
                return Ok(uops);
            }
            Probe::Spilled(spill, bytes) => {
                if let Some(uops) = read_spill(&spill) {
                    let uops = Arc::new(uops);
                    inner.counters.reloads += 1;
                    inner.entries.insert(
                        key.clone(),
                        Slot::Resident {
                            uops: Arc::clone(&uops),
                            bytes,
                            last_use: tick,
                        },
                    );
                    self.enforce_capacity(&mut inner, &key);
                    return Ok(uops);
                }
                // Spill file vanished or is corrupt: fall through to a
                // fresh decode of the original.
                inner.entries.remove(&key);
            }
            Probe::Miss => {}
        }

        // Retire stale generations of the same (path, format): the file
        // changed underneath us, and their spill files with it.
        let stale: Vec<ArtifactKey> = inner
            .entries
            .keys()
            .filter(|k| k.path == key.path && k.format == key.format)
            .cloned()
            .collect();
        for k in stale {
            if let Some(Slot::Spilled { spill, .. }) = inner.entries.remove(&k) {
                let _ = std::fs::remove_file(spill);
            }
            inner.counters.invalidations += 1;
        }

        let uops = Arc::new(decode_file(&spec.path, spec.format)?);
        inner.counters.decodes += 1;
        let bytes = (uops.len() * std::mem::size_of::<MicroOp>()) as u64;
        inner.entries.insert(
            key.clone(),
            Slot::Resident {
                uops: Arc::clone(&uops),
                bytes,
                last_use: tick,
            },
        );
        self.enforce_capacity(&mut inner, &key);
        Ok(uops)
    }

    /// Spills least-recently-used resident entries (never `keep`) until
    /// the resident set fits the budget. A spill-write failure drops
    /// the entry instead — correctness-neutral, it just re-decodes
    /// later.
    fn enforce_capacity(&self, inner: &mut StoreInner, keep: &ArtifactKey) {
        loop {
            let resident: u64 = inner
                .entries
                .values()
                .map(|s| match *s {
                    Slot::Resident { bytes, .. } => bytes,
                    Slot::Spilled { .. } => 0,
                })
                .sum();
            if resident <= self.capacity_bytes {
                return;
            }
            let victim = inner
                .entries
                .iter()
                .filter(|(k, _)| *k != keep)
                .filter_map(|(k, s)| match s {
                    Slot::Resident { last_use, .. } => Some((*last_use, k.clone())),
                    Slot::Spilled { .. } => None,
                })
                .min();
            let Some((_, vkey)) = victim else {
                // Only `keep` is resident and it alone exceeds the
                // budget: keep it — the caller holds an Arc anyway.
                return;
            };
            let Some(Slot::Resident { uops, bytes, .. }) = inner.entries.remove(&vkey) else {
                return;
            };
            let spill = self.spill_dir.join(format!(
                "{:016x}.btrace",
                fnv64(format!("{vkey:?}").as_bytes())
            ));
            let written = std::fs::create_dir_all(&self.spill_dir).is_ok()
                && std::fs::write(&spill, file::encode(&uops)).is_ok();
            if written {
                inner.counters.spills += 1;
                inner.entries.insert(vkey, Slot::Spilled { spill, bytes });
            }
        }
    }
}

fn read_spill(spill: &std::path::Path) -> Option<Vec<MicroOp>> {
    let buf = std::fs::read(spill).ok()?;
    file::decode(&buf).ok().filter(|u| !u.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::TraceFormat;
    use crate::source::capture;
    use crate::suite;
    use std::time::Duration;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bosim_artifact_{}_{name}", std::process::id()))
    }

    fn write_trace(name: &str, uops_n: usize, seed: &str) -> (PathBuf, Vec<MicroOp>) {
        let uops = capture(&mut suite::benchmark(seed).unwrap().build(), uops_n);
        let path = tmp(name);
        std::fs::write(&path, file::encode(&uops)).unwrap();
        (path, uops)
    }

    #[test]
    fn concurrent_requests_share_one_decode() {
        let (path, _) = write_trace("share.btrace", 200, "462");
        let store = ArtifactStore::new(u64::MAX, tmp("share_spill"));
        let spec = ExternalSpec::new(&path, TraceFormat::Native);
        let (a, b) = std::thread::scope(|s| {
            let ja = s.spawn(|| store.load(&spec).unwrap());
            let jb = s.spawn(|| store.load(&spec).unwrap());
            (ja.join().unwrap(), jb.join().unwrap())
        });
        assert!(Arc::ptr_eq(&a, &b), "both shards must share one decode");
        let c = store.counters();
        assert_eq!(c.decodes, 1, "probe counter: exactly one decode");
        assert_eq!(c.hits, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn eviction_spills_and_reloads_byte_identically() {
        let (pa, ua) = write_trace("evict_a.btrace", 300, "462");
        let (pb, _) = write_trace("evict_b.btrace", 300, "470");
        let spill_dir = tmp("evict_spill");
        // Capacity of one µop: every insert evicts everything else.
        let store = ArtifactStore::new(std::mem::size_of::<MicroOp>() as u64, &spill_dir);
        let a = store
            .load(&ExternalSpec::new(&pa, TraceFormat::Native))
            .unwrap();
        assert_eq!(*a, ua);
        store
            .load(&ExternalSpec::new(&pb, TraceFormat::Native))
            .unwrap();
        let c = store.counters();
        assert_eq!(c.decodes, 2);
        assert!(c.spills >= 1, "loading B must spill A: {c:?}");
        assert!(store.resident_bytes() > 0);

        // Deleting the *source* proves the reload comes from the spill.
        std::fs::remove_file(&pa).unwrap();
        let err = store.load(&ExternalSpec::new(&pa, TraceFormat::Native));
        assert!(err.is_err(), "metadata probe needs the source file");
        // Restore the source bytes (same content => same len; mtime
        // changes, but we reset it below to keep the key identical).
        let meta_b = std::fs::metadata(&pb).unwrap();
        std::fs::write(&pa, file::encode(&ua)).unwrap();
        let _ = meta_b; // silence unused in case of platform quirks

        let spec_a = ExternalSpec::new(&pa, TraceFormat::Native);
        let a2 = store.load(&spec_a).unwrap();
        // Whether this served via spill reload (key preserved) or a
        // fresh decode (mtime moved), the bytes must match exactly.
        assert_eq!(*a2, ua, "reload must be byte-identical");

        for p in [pa, pb] {
            let _ = std::fs::remove_file(p);
        }
        let _ = std::fs::remove_dir_all(&spill_dir);
    }

    #[test]
    fn spill_reload_is_exact_with_stable_mtime() {
        let (pa, ua) = write_trace("spillrt_a.btrace", 250, "429");
        let (pb, _) = write_trace("spillrt_b.btrace", 250, "433");
        let spill_dir = tmp("spillrt_spill");
        let store = ArtifactStore::new(std::mem::size_of::<MicroOp>() as u64, &spill_dir);
        let spec_a = ExternalSpec::new(&pa, TraceFormat::Native);
        let a = store.load(&spec_a).unwrap();
        store
            .load(&ExternalSpec::new(&pb, TraceFormat::Native))
            .unwrap();
        // A was spilled; this reload must come from the spill file.
        let a2 = store.load(&spec_a).unwrap();
        assert_eq!(*a2, *a, "spill round trip must be exact");
        assert_eq!(*a2, ua);
        let c = store.counters();
        assert_eq!(c.reloads, 1, "served from spill, not re-decoded: {c:?}");
        assert_eq!(c.decodes, 2);
        for p in [pa, pb] {
            let _ = std::fs::remove_file(p);
        }
        let _ = std::fs::remove_dir_all(&spill_dir);
    }

    #[test]
    fn stale_mtime_invalidates() {
        let (path, uops) = write_trace("stale.btrace", 150, "444");
        let store = ArtifactStore::new(u64::MAX, tmp("stale_spill"));
        let spec = ExternalSpec::new(&path, TraceFormat::Native);
        store.load(&spec).unwrap();
        // Same bytes, same length — but a bumped mtime is a new file
        // generation and must re-decode.
        let old = std::fs::metadata(&path).unwrap().modified().unwrap();
        let f = std::fs::File::options().write(true).open(&path).unwrap();
        f.set_modified(old + Duration::from_secs(7)).unwrap();
        drop(f);
        let again = store.load(&spec).unwrap();
        assert_eq!(*again, uops);
        let c = store.counters();
        assert_eq!(c.decodes, 2, "stale mtime must re-decode: {c:?}");
        assert_eq!(c.invalidations, 1, "stale generation retired: {c:?}");
        assert_eq!(c.hits, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn vanished_spill_degrades_to_fresh_decode() {
        let (pa, ua) = write_trace("vanish_a.btrace", 200, "471");
        let (pb, _) = write_trace("vanish_b.btrace", 200, "462");
        let spill_dir = tmp("vanish_spill");
        let store = ArtifactStore::new(std::mem::size_of::<MicroOp>() as u64, &spill_dir);
        let spec_a = ExternalSpec::new(&pa, TraceFormat::Native);
        store.load(&spec_a).unwrap();
        store
            .load(&ExternalSpec::new(&pb, TraceFormat::Native))
            .unwrap();
        // Nuke the spill directory out from under the store.
        std::fs::remove_dir_all(&spill_dir).unwrap();
        let a = store.load(&spec_a).unwrap();
        assert_eq!(*a, ua);
        let c = store.counters();
        assert_eq!(c.decodes, 3, "lost spill falls back to decode: {c:?}");
        assert_eq!(c.reloads, 0);
        for p in [pa, pb] {
            let _ = std::fs::remove_file(p);
        }
    }
}
