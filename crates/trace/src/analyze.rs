//! Trace analysis utilities.
//!
//! Answers the questions the paper's §3 asks of a workload before
//! choosing a prefetcher: what is the instruction mix, which line-stride
//! patterns appear (and with what period), and how large is the touched
//! working set. Used by the examples, by `bosim inspect`, and by tests
//! validating that the synthetic suite exhibits the patterns it claims
//! to.
//!
//! Everything here renders into user-visible `inspect` output, so the
//! module is determinism-sensitive (lint rule D001): all aggregation
//! uses ordered containers, making the output byte-stable across runs —
//! equal-count entries tie-break by ascending key, never by hash order.

use crate::record::{MicroOp, UopKind};
use std::collections::BTreeMap;

/// Instruction-mix and memory-behaviour summary of a trace window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// µops analysed.
    pub uops: u64,
    /// Data loads.
    pub loads: u64,
    /// Data stores.
    pub stores: u64,
    /// Branches (all kinds).
    pub branches: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// FP operations.
    pub fp_ops: u64,
    /// Distinct 64-byte lines touched by data accesses.
    pub distinct_lines: u64,
    /// Distinct 4KB pages touched by data accesses.
    pub distinct_pages: u64,
    /// Distinct instruction lines (code footprint).
    pub code_lines: u64,
}

impl TraceSummary {
    /// Loads per µop (memory intensity).
    pub fn load_ratio(&self) -> f64 {
        if self.uops == 0 {
            0.0
        } else {
            self.loads as f64 / self.uops as f64
        }
    }

    /// Touched data footprint in bytes (distinct lines × 64).
    pub fn data_footprint_bytes(&self) -> u64 {
        self.distinct_lines * 64
    }
}

/// Summarises a µop window.
pub fn summarize(uops: &[MicroOp]) -> TraceSummary {
    let mut s = TraceSummary::default();
    let mut lines = std::collections::BTreeSet::new();
    let mut pages = std::collections::BTreeSet::new();
    let mut code = std::collections::BTreeSet::new();
    for u in uops {
        s.uops += 1;
        code.insert(u.pc >> 6);
        match u.kind {
            UopKind::Load => s.loads += 1,
            UopKind::Store => s.stores += 1,
            UopKind::Fp | UopKind::FpDiv => s.fp_ops += 1,
            _ => {}
        }
        if u.kind.is_branch() {
            s.branches += 1;
            if u.branch.map(|b| b.taken).unwrap_or(false) {
                s.taken_branches += 1;
            }
        }
        if let Some(m) = u.mem {
            lines.insert(m.vaddr.0 >> 6);
            pages.insert(m.vaddr.0 >> 12);
        }
    }
    s.distinct_lines = lines.len() as u64;
    s.distinct_pages = pages.len() as u64;
    s.code_lines = code.len() as u64;
    s
}

/// A detected per-PC stride pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct StridePattern {
    /// The load/store PC.
    pub pc: u64,
    /// Dominant byte stride between successive accesses of this PC.
    pub stride: i64,
    /// Fraction (0..=1) of successive accesses exhibiting that stride.
    pub regularity: f64,
    /// Occurrences of this PC in the window.
    pub count: u64,
}

/// Detects, per memory-accessing PC, the dominant access stride — the
/// information the DL1 stride prefetcher (§5.5) extracts in hardware.
///
/// Returns patterns sorted by decreasing occurrence count; PCs seen fewer
/// than `min_count` times are skipped.
pub fn stride_patterns(uops: &[MicroOp], min_count: u64) -> Vec<StridePattern> {
    struct PcState {
        last: u64,
        strides: BTreeMap<i64, u64>,
        count: u64,
    }
    let mut per_pc: BTreeMap<u64, PcState> = BTreeMap::new();
    for u in uops {
        let Some(m) = u.mem else { continue };
        let e = per_pc.entry(u.pc).or_insert(PcState {
            last: m.vaddr.0,
            strides: BTreeMap::new(),
            count: 0,
        });
        if e.count > 0 {
            let stride = m.vaddr.0 as i64 - e.last as i64;
            *e.strides.entry(stride).or_insert(0) += 1;
        }
        e.last = m.vaddr.0;
        e.count += 1;
    }
    let mut out: Vec<StridePattern> = per_pc
        .into_iter()
        .filter(|(_, st)| st.count >= min_count)
        .map(|(pc, st)| {
            let total: u64 = st.strides.values().sum();
            let (&stride, &n) = st
                .strides
                .iter()
                .max_by_key(|&(_, &n)| n)
                .unwrap_or((&0, &0));
            StridePattern {
                pc,
                stride,
                regularity: if total == 0 {
                    0.0
                } else {
                    n as f64 / total as f64
                },
                count: st.count,
            }
        })
        .collect();
    // Stable sort over the PC-ordered map: equal counts keep ascending
    // PC order, so the ranking is reproducible byte for byte.
    out.sort_by_key(|p| std::cmp::Reverse(p.count));
    out
}

/// Histogram of *line* strides within memory regions of
/// `2^region_shift` bytes — what an L2 offset prefetcher observes per
/// region (interleaved streams live in different regions, so strides are
/// tracked per region like the stream detectors of §2 do). Returns
/// `(line_stride, occurrences)` sorted by decreasing occurrence.
pub fn line_stride_histogram(uops: &[MicroOp], region_shift: u32) -> Vec<(i64, u64)> {
    let mut hist: BTreeMap<i64, u64> = BTreeMap::new();
    let mut last: BTreeMap<u64, u64> = BTreeMap::new();
    for u in uops {
        let Some(m) = u.mem else { continue };
        let line = m.vaddr.0 >> 6;
        let region = m.vaddr.0 >> region_shift;
        if let Some(&prev) = last.get(&region) {
            if line != prev {
                *hist.entry(line as i64 - prev as i64).or_insert(0) += 1;
            }
        }
        last.insert(region, line);
    }
    let mut out: Vec<(i64, u64)> = hist.into_iter().collect();
    // Stable sort over stride-ordered entries: ties rank by ascending
    // stride.
    out.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::capture;
    use crate::suite;

    #[test]
    fn summary_counts_mix() {
        let spec = suite::benchmark("470").expect("exists");
        let uops = capture(&mut spec.build(), 20_000);
        let s = summarize(&uops);
        assert_eq!(s.uops, 20_000);
        assert!(s.loads > 1_000, "{s:?}");
        assert!(s.stores > 100, "lbm-like is store-heavy: {s:?}");
        assert!(s.branches > 1_000);
        assert!(s.fp_ops > 1_000, "lbm-like is FP: {s:?}");
        assert!(s.load_ratio() > 0.1 && s.load_ratio() < 0.6);
    }

    #[test]
    fn resident_benchmarks_revisit_lines_streaming_ones_do_not() {
        let resident = summarize(&capture(
            &mut suite::benchmark("444").unwrap().build(),
            300_000,
        ));
        let streaming = summarize(&capture(
            &mut suite::benchmark("410").unwrap().build(),
            300_000,
        ));
        // New-lines-per-load: a resident loop revisits its buffer, a
        // streaming benchmark keeps touching fresh lines.
        let r = resident.distinct_lines as f64 / resident.loads as f64;
        let s = streaming.distinct_lines as f64 / streaming.loads as f64;
        assert!(r < s, "resident {r:.4} vs streaming {s:.4}");
        // And the resident footprint stays bounded by its buffer.
        assert!(resident.data_footprint_bytes() <= 256 << 10);
    }

    #[test]
    fn gcc_like_has_large_code_footprint() {
        let gcc = summarize(&capture(
            &mut suite::benchmark("403").unwrap().build(),
            60_000,
        ));
        let quantum = summarize(&capture(
            &mut suite::benchmark("462").unwrap().build(),
            60_000,
        ));
        assert!(
            gcc.code_lines > quantum.code_lines * 3,
            "gcc {} vs libquantum {}",
            gcc.code_lines,
            quantum.code_lines
        );
    }

    #[test]
    fn stride_patterns_find_the_planted_stride() {
        let spec = suite::benchmark("465").expect("tonto-like");
        let uops = capture(&mut spec.build(), 50_000);
        let pats = stride_patterns(&uops, 100);
        assert!(!pats.is_empty());
        // tonto-like has PC-stable strided loads: at least one regular
        // pattern must be detected (in-line sub-strides cap regularity
        // below 1.0).
        assert!(
            pats.iter().any(|p| p.regularity > 0.8 && p.stride != 0),
            "{pats:?}"
        );
    }

    #[test]
    fn line_stride_histogram_shows_lbm_pattern() {
        let spec = suite::benchmark("470").expect("lbm-like");
        let uops = capture(&mut spec.build(), 80_000);
        let hist = line_stride_histogram(&uops, 22);
        // The [3,2] pattern must put strides 3 and 2 among the most
        // common non-zero strides within each 4MB region.
        let top: Vec<i64> = hist.iter().take(4).map(|&(s, _)| s).collect();
        assert!(
            top.contains(&3) && top.contains(&2),
            "expected the 3/2 line strides near the top: {top:?}"
        );
    }

    #[test]
    fn analysis_output_is_byte_stable() {
        // Regression: these tables feed `bosim inspect`, whose output
        // must be identical across runs. HashMap aggregation made the
        // rendering depend on per-process hash seeds; the ordered
        // containers pin it down. Two independent analyses of the same
        // window must render byte-identically, and equal-count entries
        // must rank by ascending key.
        let spec = suite::benchmark("403").expect("gcc-like exists");
        let uops = capture(&mut spec.build(), 60_000);
        let render = |uops: &[MicroOp]| {
            let mut s = String::new();
            for p in stride_patterns(uops, 16) {
                s.push_str(&format!(
                    "{:x} {} {:.4} {}\n",
                    p.pc, p.stride, p.regularity, p.count
                ));
            }
            for (stride, n) in line_stride_histogram(uops, 22) {
                s.push_str(&format!("{stride} {n}\n"));
            }
            s
        };
        assert_eq!(render(&uops), render(&uops));

        let pats = stride_patterns(&uops, 16);
        for w in pats.windows(2) {
            if w[0].count == w[1].count {
                assert!(w[0].pc < w[1].pc, "ties must rank by ascending PC");
            }
        }
        let hist = line_stride_histogram(&uops, 22);
        for w in hist.windows(2) {
            assert!(w[0].1 >= w[1].1);
            if w[0].1 == w[1].1 {
                assert!(w[0].0 < w[1].0, "ties must rank by ascending stride");
            }
        }
    }

    #[test]
    fn empty_window_is_sane() {
        let s = summarize(&[]);
        assert_eq!(s.uops, 0);
        assert_eq!(s.load_ratio(), 0.0);
        assert!(stride_patterns(&[], 1).is_empty());
        assert!(line_stride_histogram(&[], 22).is_empty());
    }
}
