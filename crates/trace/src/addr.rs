//! Raw address traces: `R/W <hex-addr>` text and packed binary u64.
//!
//! The least common denominator of memory-system research: a bare
//! sequence of data addresses, no instruction stream. Cache-simulator
//! corpora (Dinero-style traces, teaching datasets, custom pin tools)
//! ship in this shape. This module lowers such traces to [`MicroOp`]s
//! with a *synthetic instruction stream* so the full timing model — and
//! in particular the PC-indexed L1 stride prefetcher — still functions.
//!
//! # Formats
//!
//! **Text** (one access per line; blank lines and `#` comments ignored):
//!
//! ```text
//! R 0x7f3a00401000
//! W 7f3a00401040          # the 0x prefix is optional
//! ```
//!
//! **Binary**: consecutive little-endian `u64` words; bit 63 set marks a
//! store, bits 0..=62 are the byte address. (Addresses above 2^63 do not
//! survive this packing — practical virtual addresses fit.)
//!
//! # Synthetic instruction stream
//!
//! Access `i` is assigned `pc = 0x0040_0000 + (i mod 256) * 4`: a
//! 256-instruction loop body, so each synthetic PC recurs every 256
//! accesses and per-PC stride detectors see a regular load slot, while
//! branch predictors see no branches at all (the trace carries no
//! control flow to model). Loads write rotating destination registers
//! with no sources, so the synthetic stream adds no false dependences.

use crate::record::{MemRef, MicroOp, Reg, UopKind};
use crate::source::ReplaySource;
use bosim_types::VirtAddr;
use std::fmt;
use std::io::{BufRead, Read};
use std::path::Path;

/// Direction of one raw access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessDir {
    /// A data read (lowers to [`UopKind::Load`]).
    Read,
    /// A data write (lowers to [`UopKind::Store`]).
    Write,
}

/// One raw trace entry: direction + byte address.
pub type RawAccess = (AccessDir, u64);

/// Errors produced while decoding raw address traces.
#[derive(Debug)]
pub enum AddrTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A text line failed to parse.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        what: String,
    },
    /// The binary stream ended inside a u64 word.
    Truncated {
        /// Byte offset at which the partial word starts.
        offset: u64,
        /// Bytes of the partial word that were present.
        have: usize,
    },
    /// The trace contained no accesses.
    Empty,
}

impl fmt::Display for AddrTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrTraceError::Io(e) => write!(f, "address trace i/o error: {e}"),
            AddrTraceError::BadLine { line, what } => {
                write!(f, "address trace line {line}: {what}")
            }
            AddrTraceError::Truncated { offset, have } => write!(
                f,
                "address trace truncated: partial word at byte offset {offset} \
                 ({have} of 8 bytes)"
            ),
            AddrTraceError::Empty => write!(f, "address trace contains no accesses"),
        }
    }
}

impl std::error::Error for AddrTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AddrTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AddrTraceError {
    fn from(e: std::io::Error) -> Self {
        AddrTraceError::Io(e)
    }
}

/// Parses the text format from `reader`.
///
/// # Errors
///
/// Returns [`AddrTraceError::BadLine`] naming the 1-based line of the
/// first malformed entry, and [`AddrTraceError::Empty`] when no access
/// survives comment/blank stripping.
pub fn parse_text(reader: impl Read) -> Result<Vec<RawAccess>, AddrTraceError> {
    let mut out = Vec::new();
    for (i, line) in std::io::BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut parts = body.split_whitespace();
        let tag = parts.next().expect("non-empty body has a first token"); // bosim-lint: allow(P002, body checked non-empty before tokenising)
        let dir = match tag {
            "R" | "r" => AccessDir::Read,
            "W" | "w" => AccessDir::Write,
            other => {
                return Err(AddrTraceError::BadLine {
                    line: i + 1,
                    what: format!("unknown access tag {other:?} (expected R or W)"),
                })
            }
        };
        let Some(addr_str) = parts.next() else {
            return Err(AddrTraceError::BadLine {
                line: i + 1,
                what: "missing address after access tag".to_string(),
            });
        };
        let digits = addr_str
            .strip_prefix("0x")
            .or_else(|| addr_str.strip_prefix("0X"))
            .unwrap_or(addr_str);
        let addr = u64::from_str_radix(digits, 16).map_err(|e| AddrTraceError::BadLine {
            line: i + 1,
            what: format!("bad hex address {addr_str:?}: {e}"),
        })?;
        if let Some(extra) = parts.next() {
            return Err(AddrTraceError::BadLine {
                line: i + 1,
                what: format!("trailing token {extra:?}"),
            });
        }
        out.push((dir, addr));
    }
    if out.is_empty() {
        return Err(AddrTraceError::Empty);
    }
    Ok(out)
}

/// Bit marking a store in the binary format.
pub const WRITE_BIT: u64 = 1 << 63;

/// Parses the binary format (little-endian u64 words, bit 63 = store)
/// from `reader`.
///
/// # Errors
///
/// Returns [`AddrTraceError::Truncated`] naming the byte offset of a
/// partial trailing word, and [`AddrTraceError::Empty`] for a wordless
/// stream.
pub fn parse_binary(mut reader: impl Read) -> Result<Vec<RawAccess>, AddrTraceError> {
    let mut out = Vec::new();
    let mut buf = [0u8; 8];
    let mut offset: u64 = 0;
    loop {
        let mut have = 0;
        while have < 8 {
            let n = reader.read(&mut buf[have..])?;
            if n == 0 {
                break;
            }
            have += n;
        }
        if have == 0 {
            break;
        }
        if have < 8 {
            return Err(AddrTraceError::Truncated { offset, have });
        }
        let word = u64::from_le_bytes(buf);
        let dir = if word & WRITE_BIT != 0 {
            AccessDir::Write
        } else {
            AccessDir::Read
        };
        out.push((dir, word & !WRITE_BIT));
        offset += 8;
    }
    if out.is_empty() {
        return Err(AddrTraceError::Empty);
    }
    Ok(out)
}

/// Packs accesses into the binary format (the inverse of
/// [`parse_binary`]). Used by `bosim gen` and the round-trip tests.
pub fn encode_binary(accesses: &[RawAccess]) -> Vec<u8> {
    let mut out = Vec::with_capacity(accesses.len() * 8);
    for &(dir, addr) in accesses {
        let word = (addr & !WRITE_BIT)
            | match dir {
                AccessDir::Read => 0,
                AccessDir::Write => WRITE_BIT,
            };
        out.extend_from_slice(&word.to_le_bytes());
    }
    out
}

/// Renders accesses in the text format (the inverse of [`parse_text`]).
pub fn encode_text(accesses: &[RawAccess]) -> String {
    let mut out = String::with_capacity(accesses.len() * 20);
    for &(dir, addr) in accesses {
        let tag = match dir {
            AccessDir::Read => 'R',
            AccessDir::Write => 'W',
        };
        out.push_str(&format!("{tag} {addr:#x}\n"));
    }
    out
}

/// Reduces a µop stream to its raw data-access sequence — the inverse
/// direction of [`lower`], used when exporting richer traces to the
/// address formats (`bosim gen`, the ingest smoke, tests).
pub fn accesses_of(uops: &[MicroOp]) -> Vec<RawAccess> {
    uops.iter()
        .filter_map(|u| {
            u.mem.map(|m| {
                let dir = if u.is_store() {
                    AccessDir::Write
                } else {
                    AccessDir::Read
                };
                (dir, m.vaddr.0)
            })
        })
        .collect()
}

/// Code base of the synthetic instruction stream.
const SYNTH_PC_BASE: u64 = 0x0040_0000;
/// Synthetic loop-body length, in instructions.
const SYNTH_PC_PERIOD: u64 = 256;

/// Lowers raw accesses to µops under the synthetic instruction stream
/// described in the [module docs](self).
pub fn lower(accesses: &[RawAccess]) -> Vec<MicroOp> {
    accesses
        .iter()
        .enumerate()
        .map(|(i, &(dir, addr))| {
            let (kind, dst) = match dir {
                AccessDir::Read => (UopKind::Load, Some(Reg((i % 8) as u8))),
                AccessDir::Write => (UopKind::Store, None),
            };
            MicroOp {
                pc: SYNTH_PC_BASE + (i as u64 % SYNTH_PC_PERIOD) * 4,
                kind,
                dst,
                srcs: [None, None],
                mem: Some(MemRef {
                    vaddr: VirtAddr(addr),
                    size: 8,
                }),
                branch: None,
            }
        })
        .collect()
}

/// Loads a text address trace into a looping [`ReplaySource`].
///
/// # Errors
///
/// Returns I/O and parse errors (see [`AddrTraceError`]).
pub fn load_text(path: &Path, name: &str) -> Result<ReplaySource, AddrTraceError> {
    let accesses = parse_text(std::fs::File::open(path)?)?;
    Ok(ReplaySource::new(name, lower(&accesses)))
}

/// Loads a binary address trace into a looping [`ReplaySource`].
///
/// # Errors
///
/// Returns I/O and parse errors (see [`AddrTraceError`]).
pub fn load_binary(path: &Path, name: &str) -> Result<ReplaySource, AddrTraceError> {
    let accesses = parse_binary(std::io::BufReader::new(std::fs::File::open(path)?))?;
    Ok(ReplaySource::new(name, lower(&accesses)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_parses_tags_prefixes_and_comments() {
        let src = "# header comment\nR 0x1000\nw 2040   # trailing comment\n\nR 0XFF\n";
        let acc = parse_text(src.as_bytes()).unwrap();
        assert_eq!(
            acc,
            vec![
                (AccessDir::Read, 0x1000),
                (AccessDir::Write, 0x2040),
                (AccessDir::Read, 0xFF),
            ]
        );
    }

    #[test]
    fn text_errors_name_the_line() {
        let err = parse_text("R 0x10\nX 0x20\n".as_bytes()).unwrap_err();
        match &err {
            AddrTraceError::BadLine { line, what } => {
                assert_eq!(*line, 2);
                assert!(what.contains("\"X\""), "{what}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(matches!(
            parse_text("R zz\n".as_bytes()),
            Err(AddrTraceError::BadLine { line: 1, .. })
        ));
        assert!(matches!(
            parse_text("R\n".as_bytes()),
            Err(AddrTraceError::BadLine { line: 1, .. })
        ));
        assert!(matches!(
            parse_text("R 0x10 extra\n".as_bytes()),
            Err(AddrTraceError::BadLine { line: 1, .. })
        ));
    }

    #[test]
    fn empty_traces_are_rejected() {
        assert!(matches!(
            parse_text("# only comments\n".as_bytes()),
            Err(AddrTraceError::Empty)
        ));
        assert!(matches!(parse_binary(&[][..]), Err(AddrTraceError::Empty)));
    }

    #[test]
    fn binary_round_trips_and_flags_writes() {
        let acc = vec![
            (AccessDir::Read, 0x4000),
            (AccessDir::Write, 0x4040),
            (AccessDir::Read, (1 << 62) | 0x80),
        ];
        let parsed = parse_binary(&encode_binary(&acc)[..]).unwrap();
        assert_eq!(parsed, acc);
    }

    #[test]
    fn binary_truncation_names_the_offset() {
        let bytes = encode_binary(&[(AccessDir::Read, 0x10), (AccessDir::Write, 0x20)]);
        match parse_binary(&bytes[..11]) {
            Err(AddrTraceError::Truncated { offset, have }) => {
                assert_eq!(offset, 8);
                assert_eq!(have, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn text_round_trips_through_encode() {
        let acc = vec![(AccessDir::Write, 0xABC0), (AccessDir::Read, 0x40)];
        assert_eq!(parse_text(encode_text(&acc).as_bytes()).unwrap(), acc);
    }

    #[test]
    fn lowering_assigns_a_periodic_synthetic_pc() {
        let acc: Vec<RawAccess> = (0..600)
            .map(|i| (AccessDir::Read, 0x10_0000 + i * 64))
            .collect();
        let uops = lower(&acc);
        assert_eq!(uops.len(), 600);
        assert_eq!(uops[0].pc, SYNTH_PC_BASE);
        assert_eq!(uops[1].pc, SYNTH_PC_BASE + 4);
        // The PC stream wraps, so per-PC stride detection has history.
        assert_eq!(uops[256].pc, uops[0].pc);
        assert_eq!(uops[0].kind, UopKind::Load);
        assert_eq!(uops[0].mem.unwrap().vaddr.0, 0x10_0000);
        // Same recurring PC sees a constant address stride.
        let d1 = uops[256].mem.unwrap().vaddr.0 - uops[0].mem.unwrap().vaddr.0;
        let d2 = uops[512].mem.unwrap().vaddr.0 - uops[256].mem.unwrap().vaddr.0;
        assert_eq!(d1, d2);
    }

    #[test]
    fn lowered_stores_have_no_dst() {
        let uops = lower(&[(AccessDir::Write, 0x40)]);
        assert_eq!(uops[0].kind, UopKind::Store);
        assert!(uops[0].dst.is_none());
    }

    #[test]
    fn file_loaders_round_trip() {
        let dir = std::env::temp_dir();
        let tpath = dir.join(format!("bosim_addr_test_{}.addr", std::process::id()));
        let bpath = dir.join(format!("bosim_addr_test_{}.addrbin", std::process::id()));
        let acc = vec![(AccessDir::Read, 0x9000), (AccessDir::Write, 0x9040)];
        std::fs::write(&tpath, encode_text(&acc)).unwrap();
        std::fs::write(&bpath, encode_binary(&acc)).unwrap();
        let t = load_text(&tpath, "t").unwrap();
        let b = load_binary(&bpath, "b").unwrap();
        assert_eq!(t.lap_len(), 2);
        assert_eq!(b.lap_len(), 2);
        let _ = std::fs::remove_file(&tpath);
        let _ = std::fs::remove_file(&bpath);
    }
}
