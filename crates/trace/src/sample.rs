//! Trace sampling: warm-up skip and periodic measurement windows.
//!
//! Replaying a full captured trace is rarely what an experiment wants:
//! the interesting behaviour sits past an initialisation phase, and a
//! long trace is well approximated by periodic samples (the SimPoint
//! family of methodologies; the paper itself stitches 20 × 50M-instr
//! samples per benchmark, §5). [`SampleSpec`] describes such a plan and
//! [`SampledSource`] applies it to *any* [`TraceSource`]:
//!
//! ```
//! use bosim_trace::{MicroOp, ReplaySource, SampleSpec, SampledSource, TraceSource};
//!
//! let uops: Vec<MicroOp> = (0..100).map(|i| MicroOp::nop(i * 4)).collect();
//! let inner = ReplaySource::new("t", uops);
//! // Skip 10 µops once, then keep 5 out of every 20.
//! let spec = SampleSpec { skip: 10, window: 5, interval: 20 };
//! let mut sampled = SampledSource::new(inner, spec);
//! assert_eq!(sampled.next_uop().pc, 10 * 4); // first kept µop
//! ```

use crate::record::MicroOp;
use crate::source::TraceSource;
use std::fmt;

/// A sampling plan over a µop stream.
///
/// Semantics, in stream order:
///
/// 1. discard the first `skip` µops (one-time warm-up skip);
/// 2. if `interval > 0`, repeat forever: deliver `window` µops, then
///    discard `interval - window` µops (periodic interval sampling);
///    with `interval == 0` every µop after the skip is delivered.
///
/// Sources are infinite (finite traces loop), so sampling never runs
/// dry — it only thins the stream. The default (`skip = 0`,
/// `interval = 0`) passes the stream through untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SampleSpec {
    /// µops discarded once, before anything is delivered.
    pub skip: u64,
    /// µops delivered per sample (only meaningful when `interval > 0`).
    pub window: u64,
    /// Distance between sample starts, in µops of the underlying
    /// stream. `0` disables periodic sampling.
    pub interval: u64,
}

impl SampleSpec {
    /// A plan that only skips a warm-up prefix.
    pub fn skip(skip: u64) -> Self {
        SampleSpec {
            skip,
            window: 0,
            interval: 0,
        }
    }

    /// A plan keeping `window` µops out of every `interval`, after an
    /// initial `skip`.
    pub fn periodic(skip: u64, window: u64, interval: u64) -> Self {
        SampleSpec {
            skip,
            window,
            interval,
        }
    }

    /// True when the plan delivers the stream unchanged.
    pub fn is_passthrough(&self) -> bool {
        self.skip == 0 && self.interval == 0
    }

    /// Validates the plan.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint: a periodic plan
    /// (`interval > 0`) needs `1 <= window <= interval`, and a window
    /// without an interval is meaningless.
    pub fn validate(&self) -> Result<(), String> {
        if self.interval == 0 {
            if self.window != 0 {
                return Err(format!(
                    "window {} without an interval: set interval > 0 for periodic \
                     sampling, or window = 0 for skip-only",
                    self.window
                ));
            }
            return Ok(());
        }
        if self.window == 0 {
            return Err(format!(
                "interval {} with window 0 would deliver no µops",
                self.interval
            ));
        }
        if self.window > self.interval {
            return Err(format!(
                "window {} exceeds interval {}",
                self.window, self.interval
            ));
        }
        Ok(())
    }
}

impl fmt::Display for SampleSpec {
    /// Compact plan label: `skip10k`, `skip10k+5k/20k`, `passthrough`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn compact(n: u64) -> String {
            if n >= 1_000_000 && n.is_multiple_of(1_000_000) {
                format!("{}M", n / 1_000_000)
            } else if n >= 1_000 && n.is_multiple_of(1_000) {
                format!("{}k", n / 1_000)
            } else {
                n.to_string()
            }
        }
        if self.is_passthrough() {
            return write!(f, "passthrough");
        }
        if self.skip > 0 {
            write!(f, "skip{}", compact(self.skip))?;
            if self.interval > 0 {
                write!(f, "+")?;
            }
        }
        if self.interval > 0 {
            write!(f, "{}/{}", compact(self.window), compact(self.interval))?;
        }
        Ok(())
    }
}

/// Applies a [`SampleSpec`] to an inner [`TraceSource`].
///
/// The wrapper is itself a `TraceSource`, so it composes with replayed
/// files, external traces and the synthetic generators alike.
#[derive(Debug)]
pub struct SampledSource<S> {
    inner: S,
    spec: SampleSpec,
    /// µops still to deliver in the current window (`u64::MAX` once the
    /// plan has degenerated to pass-through).
    left_in_window: u64,
    skipped: bool,
}

impl<S: TraceSource> SampledSource<S> {
    /// Wraps `inner` with the sampling plan `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`SampleSpec::validate`] — configuration
    /// layers (`SimConfig`, the CLI) validate earlier and report typed
    /// errors; reaching here with a bad plan is a programming error.
    pub fn new(inner: S, spec: SampleSpec) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid SampleSpec: {e}"); // bosim-lint: allow(P003, documented Panics contract; SampleSpec::validate is checked by config layers)
        }
        SampledSource {
            inner,
            spec,
            left_in_window: if spec.interval == 0 {
                u64::MAX
            } else {
                spec.window
            },
            skipped: false,
        }
    }

    /// The sampling plan.
    pub fn spec(&self) -> SampleSpec {
        self.spec
    }
}

impl<S: TraceSource> TraceSource for SampledSource<S> {
    fn next_uop(&mut self) -> MicroOp {
        if !self.skipped {
            for _ in 0..self.spec.skip {
                self.inner.next_uop();
            }
            self.skipped = true;
        }
        if self.left_in_window == 0 {
            for _ in 0..(self.spec.interval - self.spec.window) {
                self.inner.next_uop();
            }
            self.left_in_window = self.spec.window;
        }
        if self.left_in_window != u64::MAX {
            self.left_in_window -= 1;
        }
        self.inner.next_uop()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{capture, ReplaySource};

    fn counting_source(n: u64) -> ReplaySource {
        ReplaySource::new("count", (0..n).map(MicroOp::nop).collect())
    }

    #[test]
    fn passthrough_is_identity() {
        let mut plain = counting_source(16);
        let mut sampled = SampledSource::new(counting_source(16), SampleSpec::default());
        assert_eq!(capture(&mut sampled, 40), capture(&mut plain, 40));
    }

    #[test]
    fn skip_discards_a_prefix_once() {
        let mut s = SampledSource::new(counting_source(10), SampleSpec::skip(3));
        let pcs: Vec<u64> = (0..9).map(|_| s.next_uop().pc).collect();
        // 3..9, then the loop wraps to 0 with no second skip.
        assert_eq!(pcs, vec![3, 4, 5, 6, 7, 8, 9, 0, 1]);
    }

    #[test]
    fn periodic_windows_thin_the_stream() {
        // Keep 2 of every 5: 0,1, 5,6, 10,11, ...
        let mut s = SampledSource::new(counting_source(100), SampleSpec::periodic(0, 2, 5));
        let pcs: Vec<u64> = (0..6).map(|_| s.next_uop().pc).collect();
        assert_eq!(pcs, vec![0, 1, 5, 6, 10, 11]);
    }

    #[test]
    fn skip_composes_with_periodic_windows() {
        let mut s = SampledSource::new(counting_source(100), SampleSpec::periodic(10, 1, 4));
        let pcs: Vec<u64> = (0..3).map(|_| s.next_uop().pc).collect();
        assert_eq!(pcs, vec![10, 14, 18]);
    }

    #[test]
    fn window_equal_to_interval_keeps_everything_after_skip() {
        let mut s = SampledSource::new(counting_source(8), SampleSpec::periodic(1, 3, 3));
        let pcs: Vec<u64> = (0..5).map(|_| s.next_uop().pc).collect();
        assert_eq!(pcs, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn validation_rejects_malformed_plans() {
        assert!(SampleSpec::default().validate().is_ok());
        assert!(SampleSpec::skip(5).validate().is_ok());
        assert!(SampleSpec::periodic(0, 10, 10).validate().is_ok());
        // window without interval
        assert!(SampleSpec {
            skip: 0,
            window: 5,
            interval: 0
        }
        .validate()
        .is_err());
        // zero-width window
        assert!(SampleSpec::periodic(0, 0, 10).validate().is_err());
        // window wider than the interval
        assert!(SampleSpec::periodic(0, 11, 10).validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid SampleSpec")]
    fn wrapper_panics_on_invalid_spec() {
        let _ = SampledSource::new(counting_source(4), SampleSpec::periodic(0, 2, 1));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(SampleSpec::default().to_string(), "passthrough");
        assert_eq!(SampleSpec::skip(10_000).to_string(), "skip10k");
        assert_eq!(
            SampleSpec::periodic(1_000_000, 500, 2_000).to_string(),
            "skip1M+500/2k"
        );
        assert_eq!(SampleSpec::periodic(0, 5_000, 20_000).to_string(), "5k/20k");
    }

    #[test]
    fn name_passes_through() {
        let s = SampledSource::new(counting_source(4), SampleSpec::skip(1));
        assert_eq!(s.name(), "count");
    }
}
