//! Trace sources: anything that can feed the core model with µops.

use crate::record::MicroOp;

/// A source of micro-ops for one simulated core.
///
/// Sources are *infinite*: the simulator decides how many instructions to
/// run. Finite recorded traces are replayed in a loop by
/// [`ReplaySource`], mirroring the paper's sample-stitching methodology
/// (§5: 20 samples of 50M instructions stitched together and, for our
/// shorter runs, cycled).
pub trait TraceSource: std::fmt::Debug {
    /// Produces the next µop on the traced path.
    fn next_uop(&mut self) -> MicroOp;

    /// Human-readable benchmark name (e.g. `"433.milc-like"`).
    fn name(&self) -> &str;
}

/// Replays a recorded µop vector in an endless loop.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    name: String,
    uops: Vec<MicroOp>,
    pos: usize,
}

impl ReplaySource {
    /// Creates a looping replayer over `uops`.
    ///
    /// # Panics
    ///
    /// Panics if `uops` is empty.
    pub fn new(name: impl Into<String>, uops: Vec<MicroOp>) -> Self {
        assert!(!uops.is_empty(), "cannot replay an empty trace");
        ReplaySource {
            name: name.into(),
            uops,
            pos: 0,
        }
    }

    /// Length of one replay lap.
    pub fn lap_len(&self) -> usize {
        self.uops.len()
    }
}

impl TraceSource for ReplaySource {
    fn next_uop(&mut self) -> MicroOp {
        let u = self.uops[self.pos];
        self.pos += 1;
        if self.pos == self.uops.len() {
            self.pos = 0;
        }
        u
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Adapter capturing the first `n` µops of a source into a vector
/// (useful for writing trace files and for tests).
pub fn capture(src: &mut dyn TraceSource, n: usize) -> Vec<MicroOp> {
    (0..n).map(|_| src.next_uop()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MicroOp;

    #[test]
    fn replay_loops() {
        let uops = vec![MicroOp::nop(0), MicroOp::nop(4), MicroOp::nop(8)];
        let mut r = ReplaySource::new("t", uops);
        let pcs: Vec<u64> = (0..7).map(|_| r.next_uop().pc).collect();
        assert_eq!(pcs, vec![0, 4, 8, 0, 4, 8, 0]);
    }

    #[test]
    fn capture_takes_n() {
        let uops = vec![MicroOp::nop(0), MicroOp::nop(4)];
        let mut r = ReplaySource::new("t", uops);
        assert_eq!(capture(&mut r, 5).len(), 5);
    }

    #[test]
    #[should_panic]
    fn empty_replay_panics() {
        ReplaySource::new("t", vec![]);
    }
}
