//! Trace sources: anything that can feed the core model with µops.

use crate::record::MicroOp;

/// A source of micro-ops for one simulated core.
///
/// Sources are *infinite*: the simulator decides how many instructions to
/// run. Finite recorded traces are replayed in a loop by
/// [`ReplaySource`], mirroring the paper's sample-stitching methodology
/// (§5: 20 samples of 50M instructions stitched together and, for our
/// shorter runs, cycled).
///
/// Anything producing µops can drive a core — synthetic generators,
/// replayed files, externally ingested ChampSim or address traces, or a
/// custom implementation:
///
/// ```
/// use bosim_trace::{MicroOp, TraceSource};
///
/// /// An endless stream of no-ops at one PC.
/// #[derive(Debug)]
/// struct Idle;
/// impl TraceSource for Idle {
///     fn next_uop(&mut self) -> MicroOp { MicroOp::nop(0x400000) }
///     fn name(&self) -> &str { "idle" }
/// }
///
/// let mut src: Box<dyn TraceSource> = Box::new(Idle);
/// assert_eq!(src.next_uop().pc, 0x400000);
/// ```
pub trait TraceSource: std::fmt::Debug + Send {
    /// Produces the next µop on the traced path.
    fn next_uop(&mut self) -> MicroOp;

    /// Human-readable benchmark name (e.g. `"433.milc-like"`).
    fn name(&self) -> &str;

    /// Appends the next `n` µops to `out` in one call — the batched
    /// path behind the core's decode ring, amortizing the per-µop
    /// virtual dispatch of [`next_uop`](Self::next_uop). Must be
    /// equivalent to `n` consecutive `next_uop` calls; the default
    /// implementation is exactly that, and sources with cheap bulk
    /// access (e.g. [`ReplaySource`]) override it with block copies.
    fn next_block(&mut self, out: &mut Vec<MicroOp>, n: usize) {
        out.reserve(n);
        for _ in 0..n {
            out.push(self.next_uop());
        }
    }
}

/// Boxed sources are sources, so dynamically-chosen streams (file
/// replay vs synthetic) compose with wrappers like
/// [`SampledSource`](crate::SampledSource).
impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_uop(&mut self) -> MicroOp {
        (**self).next_uop()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn next_block(&mut self, out: &mut Vec<MicroOp>, n: usize) {
        (**self).next_block(out, n)
    }
}

/// Replays a recorded µop vector in an endless loop.
///
/// The vector is held behind an [`Arc`](std::sync::Arc), so cloning a
/// replayer — and handing the same decoded trace to every cell of an
/// experiment grid — shares one allocation.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    name: String,
    uops: std::sync::Arc<Vec<MicroOp>>,
    pos: usize,
}

impl ReplaySource {
    /// Creates a looping replayer over `uops`.
    ///
    /// # Panics
    ///
    /// Panics if `uops` is empty.
    pub fn new(name: impl Into<String>, uops: Vec<MicroOp>) -> Self {
        ReplaySource::from_shared(name, std::sync::Arc::new(uops))
    }

    /// Creates a looping replayer over an already-shared µop vector
    /// (no copy — used by the external-trace decode cache).
    ///
    /// # Panics
    ///
    /// Panics if `uops` is empty.
    pub fn from_shared(name: impl Into<String>, uops: std::sync::Arc<Vec<MicroOp>>) -> Self {
        assert!(!uops.is_empty(), "cannot replay an empty trace");
        ReplaySource {
            name: name.into(),
            uops,
            pos: 0,
        }
    }

    /// Length of one replay lap.
    pub fn lap_len(&self) -> usize {
        self.uops.len()
    }
}

impl TraceSource for ReplaySource {
    fn next_uop(&mut self) -> MicroOp {
        let u = self.uops[self.pos];
        self.pos += 1;
        if self.pos == self.uops.len() {
            self.pos = 0;
        }
        u
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_block(&mut self, out: &mut Vec<MicroOp>, n: usize) {
        let mut left = n;
        while left > 0 {
            let take = left.min(self.uops.len() - self.pos);
            out.extend_from_slice(&self.uops[self.pos..self.pos + take]);
            self.pos += take;
            if self.pos == self.uops.len() {
                self.pos = 0;
            }
            left -= take;
        }
    }
}

/// Adapter capturing the first `n` µops of a source into a vector
/// (useful for writing trace files and for tests).
pub fn capture(src: &mut dyn TraceSource, n: usize) -> Vec<MicroOp> {
    (0..n).map(|_| src.next_uop()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MicroOp;

    #[test]
    fn next_block_matches_per_uop_replay() {
        let uops = vec![MicroOp::nop(0), MicroOp::nop(4), MicroOp::nop(8)];
        let mut a = ReplaySource::new("t", uops.clone());
        let mut b = ReplaySource::new("t", uops);
        // A block straddling two loop wrap-arounds must equal the same
        // number of single-µop pulls.
        let mut block = Vec::new();
        a.next_block(&mut block, 8);
        let singles: Vec<MicroOp> = (0..8).map(|_| b.next_uop()).collect();
        assert_eq!(block, singles);
        // And the cursor positions agree afterwards.
        assert_eq!(a.next_uop(), b.next_uop());
    }

    #[test]
    fn replay_loops() {
        let uops = vec![MicroOp::nop(0), MicroOp::nop(4), MicroOp::nop(8)];
        let mut r = ReplaySource::new("t", uops);
        let pcs: Vec<u64> = (0..7).map(|_| r.next_uop().pc).collect();
        assert_eq!(pcs, vec![0, 4, 8, 0, 4, 8, 0]);
    }

    #[test]
    fn capture_takes_n() {
        let uops = vec![MicroOp::nop(0), MicroOp::nop(4)];
        let mut r = ReplaySource::new("t", uops);
        assert_eq!(capture(&mut r, 5).len(), 5);
    }

    #[test]
    #[should_panic]
    fn empty_replay_panics() {
        ReplaySource::new("t", vec![]);
    }
}
