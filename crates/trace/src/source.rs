//! Trace sources: anything that can feed the core model with µops.

use crate::record::MicroOp;

/// A source of micro-ops for one simulated core.
///
/// Sources are *infinite*: the simulator decides how many instructions to
/// run. Finite recorded traces are replayed in a loop by
/// [`ReplaySource`], mirroring the paper's sample-stitching methodology
/// (§5: 20 samples of 50M instructions stitched together and, for our
/// shorter runs, cycled).
///
/// Anything producing µops can drive a core — synthetic generators,
/// replayed files, externally ingested ChampSim or address traces, or a
/// custom implementation:
///
/// ```
/// use bosim_trace::{MicroOp, TraceSource};
///
/// /// An endless stream of no-ops at one PC.
/// #[derive(Debug)]
/// struct Idle;
/// impl TraceSource for Idle {
///     fn next_uop(&mut self) -> MicroOp { MicroOp::nop(0x400000) }
///     fn name(&self) -> &str { "idle" }
/// }
///
/// let mut src: Box<dyn TraceSource> = Box::new(Idle);
/// assert_eq!(src.next_uop().pc, 0x400000);
/// ```
pub trait TraceSource: std::fmt::Debug {
    /// Produces the next µop on the traced path.
    fn next_uop(&mut self) -> MicroOp;

    /// Human-readable benchmark name (e.g. `"433.milc-like"`).
    fn name(&self) -> &str;
}

/// Boxed sources are sources, so dynamically-chosen streams (file
/// replay vs synthetic) compose with wrappers like
/// [`SampledSource`](crate::SampledSource).
impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_uop(&mut self) -> MicroOp {
        (**self).next_uop()
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Replays a recorded µop vector in an endless loop.
///
/// The vector is held behind an [`Arc`](std::sync::Arc), so cloning a
/// replayer — and handing the same decoded trace to every cell of an
/// experiment grid — shares one allocation.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    name: String,
    uops: std::sync::Arc<Vec<MicroOp>>,
    pos: usize,
}

impl ReplaySource {
    /// Creates a looping replayer over `uops`.
    ///
    /// # Panics
    ///
    /// Panics if `uops` is empty.
    pub fn new(name: impl Into<String>, uops: Vec<MicroOp>) -> Self {
        ReplaySource::from_shared(name, std::sync::Arc::new(uops))
    }

    /// Creates a looping replayer over an already-shared µop vector
    /// (no copy — used by the external-trace decode cache).
    ///
    /// # Panics
    ///
    /// Panics if `uops` is empty.
    pub fn from_shared(name: impl Into<String>, uops: std::sync::Arc<Vec<MicroOp>>) -> Self {
        assert!(!uops.is_empty(), "cannot replay an empty trace");
        ReplaySource {
            name: name.into(),
            uops,
            pos: 0,
        }
    }

    /// Length of one replay lap.
    pub fn lap_len(&self) -> usize {
        self.uops.len()
    }
}

impl TraceSource for ReplaySource {
    fn next_uop(&mut self) -> MicroOp {
        let u = self.uops[self.pos];
        self.pos += 1;
        if self.pos == self.uops.len() {
            self.pos = 0;
        }
        u
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Adapter capturing the first `n` µops of a source into a vector
/// (useful for writing trace files and for tests).
pub fn capture(src: &mut dyn TraceSource, n: usize) -> Vec<MicroOp> {
    (0..n).map(|_| src.next_uop()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MicroOp;

    #[test]
    fn replay_loops() {
        let uops = vec![MicroOp::nop(0), MicroOp::nop(4), MicroOp::nop(8)];
        let mut r = ReplaySource::new("t", uops);
        let pcs: Vec<u64> = (0..7).map(|_| r.next_uop().pc).collect();
        assert_eq!(pcs, vec![0, 4, 8, 0, 4, 8, 0]);
    }

    #[test]
    fn capture_takes_n() {
        let uops = vec![MicroOp::nop(0), MicroOp::nop(4)];
        let mut r = ReplaySource::new("t", uops);
        assert_eq!(capture(&mut r, 5).len(), 5);
    }

    #[test]
    #[should_panic]
    fn empty_replay_panics() {
        ReplaySource::new("t", vec![]);
    }
}
