//! The micro-op trace record.
//!
//! The paper's simulator is trace driven (§5): each trace records the
//! committed (correct-path) instruction stream. A [`MicroOp`] carries
//! everything the timing model needs: PC, operation class, register
//! dependences, memory reference, and branch outcome.

use bosim_types::VirtAddr;

/// An architectural register name in the trace's virtual register file.
///
/// The synthetic generators use a 64-register namespace; dependences are
/// expressed through these names and resolved by the core model's
/// scoreboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

/// Number of architectural registers in the trace namespace.
pub const NUM_REGS: usize = 64;

impl Reg {
    /// The register index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Operation class of a micro-op, determining its execution latency and
/// which pipeline resources it uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UopKind {
    /// Simple integer ALU operation (1 cycle).
    Int,
    /// Integer multiply (3 cycles).
    IntMul,
    /// Integer divide (20 cycles, unpipelined in spirit).
    IntDiv,
    /// Floating-point add/mul (3 cycles).
    Fp,
    /// Floating-point divide / sqrt (18 cycles).
    FpDiv,
    /// Data load (latency from the memory hierarchy).
    Load,
    /// Data store (address generation; data leaves via the store buffer).
    Store,
    /// Conditional branch (direction predicted by TAGE).
    CondBranch,
    /// Unconditional direct jump (always taken).
    Jump,
    /// Indirect branch (target predicted by ITTAGE).
    IndirectBranch,
    /// No-op / fence placeholder.
    Nop,
}

impl UopKind {
    /// Fixed execution latency in cycles (loads/stores excluded: their
    /// latency comes from the memory hierarchy).
    #[inline]
    pub fn exec_latency(self) -> u64 {
        match self {
            UopKind::Int | UopKind::Nop | UopKind::Store => 1,
            UopKind::CondBranch | UopKind::Jump | UopKind::IndirectBranch => 1,
            UopKind::IntMul | UopKind::Fp => 3,
            UopKind::FpDiv => 18,
            UopKind::IntDiv => 20,
            UopKind::Load => 1, // address generation only
        }
    }

    /// True for any branch kind.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            UopKind::CondBranch | UopKind::Jump | UopKind::IndirectBranch
        )
    }

    /// True for loads and stores.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, UopKind::Load | UopKind::Store)
    }
}

/// A data memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Virtual byte address accessed.
    pub vaddr: VirtAddr,
    /// Access size in bytes (informational; caches work on 64B lines).
    pub size: u8,
}

/// Branch outcome information recorded in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Whether the branch was taken on the traced (correct) path.
    pub taken: bool,
    /// Branch target virtual address (valid when taken).
    pub target: u64,
}

/// One traced micro-op.
///
/// `Copy` and small by design: the synthetic generators produce tens of
/// millions of these per second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroOp {
    /// Virtual address of the instruction.
    pub pc: u64,
    /// Operation class.
    pub kind: UopKind,
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// Up to two source registers.
    pub srcs: [Option<Reg>; 2],
    /// Data memory reference for loads/stores.
    pub mem: Option<MemRef>,
    /// Branch outcome for branch kinds.
    pub branch: Option<BranchInfo>,
}

impl MicroOp {
    /// A simple integer ALU op with no dependences, useful as filler.
    pub fn nop(pc: u64) -> Self {
        MicroOp {
            pc,
            kind: UopKind::Nop,
            dst: None,
            srcs: [None, None],
            mem: None,
            branch: None,
        }
    }

    /// True if this µop is a load.
    #[inline]
    pub fn is_load(&self) -> bool {
        self.kind == UopKind::Load
    }

    /// True if this µop is a store.
    #[inline]
    pub fn is_store(&self) -> bool {
        self.kind == UopKind::Store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_are_ordered_sensibly() {
        assert!(UopKind::Int.exec_latency() < UopKind::IntMul.exec_latency());
        assert!(UopKind::IntMul.exec_latency() < UopKind::IntDiv.exec_latency());
        assert!(UopKind::Fp.exec_latency() < UopKind::FpDiv.exec_latency());
    }

    #[test]
    fn branch_predicate() {
        assert!(UopKind::CondBranch.is_branch());
        assert!(UopKind::Jump.is_branch());
        assert!(UopKind::IndirectBranch.is_branch());
        assert!(!UopKind::Load.is_branch());
    }

    #[test]
    fn mem_predicate() {
        assert!(UopKind::Load.is_mem());
        assert!(UopKind::Store.is_mem());
        assert!(!UopKind::Int.is_mem());
    }

    #[test]
    fn microop_is_small() {
        // Keep the record compact: generators stream millions of these.
        assert!(std::mem::size_of::<MicroOp>() <= 64);
    }

    #[test]
    fn nop_has_no_side_effects() {
        let n = MicroOp::nop(0x400000);
        assert_eq!(n.pc, 0x400000);
        assert!(n.dst.is_none() && n.mem.is_none() && n.branch.is_none());
    }
}
