//! The synthetic SPEC-CPU2006-like benchmark suite.
//!
//! One spec per SPEC CPU2006 benchmark evaluated in the paper, named after
//! it (`"433.milc-like"`). Each reproduces the access-pattern *class* the
//! paper attributes to that benchmark (see Figure 8's analysis and the
//! per-benchmark remarks in §6):
//!
//! * `433.milc-like` — strides peaking at offsets multiple of 32;
//! * `459.GemsFDTD-like` — line-stride pattern `[29,29,30]` (period 88/3);
//! * `470.lbm-like` — pattern `[3,2]` (peaks at multiples of 5, secondary
//!   peaks at 5k+3), store-heavy;
//! * `462.libquantum-like` — long sequential bandwidth-bound streams;
//! * `429.mcf-like` — serial pointer chase plus a prefetchable stream
//!   component;
//! * compute-bound benchmarks (416, 444, 453, ...) are cache-resident.
//!
//! Working sets are scaled relative to the simulated 512KB L2 / 8MB L3 so
//! the resident / L3-fitting / streaming split matches the paper's
//! platform.

use crate::synth::{
    BenchmarkSpec, BranchyCfg, ChaseCfg, ComputeCfg, GatherCfg, KernelCfg, ScanWriteCfg, Schedule,
    StreamCfg,
};
use bosim_types::mix64;

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

fn seed_for(name: &str) -> u64 {
    name.bytes().fold(0xB0_5EED, |h, b| mix64(h ^ b as u64))
}

fn spec(short: &str, name: &str, kernels: Vec<KernelCfg>, schedule: Schedule) -> BenchmarkSpec {
    let full = format!("{short}.{name}-like");
    BenchmarkSpec {
        seed: seed_for(&full),
        name: full,
        short: short.to_string(),
        kernels,
        schedule,
        external: None,
    }
}

fn stream(
    streams: u32,
    region_bytes: u64,
    pattern: Vec<i64>,
    loads_per_line: u32,
    compute_per_load: u32,
    fp: bool,
    store_every: u32,
) -> KernelCfg {
    KernelCfg::Stream(StreamCfg {
        streams,
        region_bytes,
        pattern,
        loads_per_line,
        compute_per_load,
        fp,
        store_every,
    })
}

fn chase(region_bytes: u64, chains: u32, compute_per_load: u32, branch_every: u32) -> KernelCfg {
    KernelCfg::Chase(ChaseCfg {
        region_bytes,
        chains,
        compute_per_load,
        branch_every,
    })
}

fn gather(index_bytes: u64, data_bytes: u64, compute_per_pair: u32) -> KernelCfg {
    KernelCfg::Gather(GatherCfg {
        index_region_bytes: index_bytes,
        data_region_bytes: data_bytes,
        compute_per_pair,
    })
}

fn compute(
    ops_per_iter: u32,
    fp_permille: u32,
    chain_len: u32,
    resident_bytes: u64,
    load_every: u32,
    code_blocks: u32,
) -> KernelCfg {
    KernelCfg::Compute(ComputeCfg {
        ops_per_iter,
        fp_permille,
        div_permille: 5,
        chain_len,
        resident_bytes,
        load_every,
        code_blocks,
    })
}

fn branchy(
    ops_per_branch: u32,
    predictable_permille: u32,
    resident_bytes: u64,
    load_every: u32,
    code_blocks: u32,
) -> KernelCfg {
    KernelCfg::Branchy(BranchyCfg {
        ops_per_branch,
        taken_permille: 500,
        predictable_permille,
        resident_bytes,
        load_every,
        code_blocks,
    })
}

/// A phase-shifting synthetic workload for adaptive-control experiments
/// (not part of the paper's 29-benchmark suite).
///
/// The schedule alternates coarse phases with opposite prefetch
/// characters:
///
/// * **stream** — long unit-stride load streams: offset prefetching is
///   hugely profitable, and the spare bandwidth rewards aggression;
/// * **gather** — `A[B[i]]` over a DRAM-sized table: the sequential
///   index stream keeps an offset learner scoring, so prefetch stays on
///   while most issues target random gather lines — pure pollution and
///   bandwidth waste;
/// * **chase** — a serialised pointer chase where prefetching can
///   neither help nor learn.
///
/// No static prefetcher configuration is right for every phase, which is
/// exactly the gap epoch-based runtime reconfiguration (`bosim-adapt`)
/// is meant to close.
pub fn phase_shift() -> BenchmarkSpec {
    spec(
        "phase",
        "shift",
        vec![
            stream(2, 64 * MB, vec![1], 4, 2, false, 0),
            gather(16 * MB, 192 * MB, 2),
            chase(96 * MB, 2, 2, 0),
        ],
        // Iteration counts chosen so each phase spans a comparable
        // number of *cycles* (a chase iteration costs ~20x a stream
        // iteration) and several adaptation epochs.
        Schedule::Phased(vec![(0, 8_000), (1, 8_000), (0, 8_000), (2, 1_600)]),
    )
}

/// The §5.1 cache-thrashing micro-benchmark run on the non-measured cores
/// in the 2-core and 4-core configurations.
pub fn thrasher() -> BenchmarkSpec {
    spec(
        "thrash",
        "scanwrite",
        vec![KernelCfg::ScanWrite(ScanWriteCfg {
            region_bytes: 256 * MB,
            stores_per_iter: 8,
            compute_per_store: 0,
        })],
        Schedule::Interleaved(vec![1]),
    )
}

/// All 29 benchmark specs, in SPEC-id order (the order of the paper's
/// figure x-axes).
pub fn suite() -> Vec<BenchmarkSpec> {
    vec![
        b400(),
        b401(),
        b403(),
        b410(),
        b416(),
        b429(),
        b433(),
        b434(),
        b435(),
        b436(),
        b437(),
        b444(),
        b445(),
        b447(),
        b450(),
        b453(),
        b454(),
        b456(),
        b458(),
        b459(),
        b462(),
        b464(),
        b465(),
        b470(),
        b471(),
        b473(),
        b481(),
        b482(),
        b483(),
    ]
}

/// Looks a benchmark up by its short id (e.g. `"433"`). The extras
/// outside the 29-benchmark suite resolve too: `"phase"` (the
/// [`phase_shift`] workload) and `"thrash"` (the §5.1 micro-benchmark).
pub fn benchmark(short: &str) -> Option<BenchmarkSpec> {
    suite()
        .into_iter()
        .chain([phase_shift(), thrasher()])
        .find(|b| b.short == short)
}

/// The short ids of the memory-intensive subset shown in Figure 13
/// ("omitted benchmarks access the DRAM infrequently").
pub fn fig13_subset() -> Vec<&'static str> {
    vec![
        "403", "410", "429", "433", "434", "436", "437", "447", "450", "459", "462", "470", "471",
        "473", "481", "483",
    ]
}

fn b400() -> BenchmarkSpec {
    // perlbench: branchy interpreter, large-ish code, mostly resident data.
    spec(
        "400",
        "perlbench",
        vec![
            branchy(6, 700, 192 * KB, 3, 48),
            compute(12, 100, 3, 64 * KB, 4, 24),
        ],
        Schedule::Interleaved(vec![2, 1]),
    )
}

fn b401() -> BenchmarkSpec {
    // bzip2: sequential scan + random accesses within a ~4MB block.
    spec(
        "401",
        "bzip2",
        vec![
            stream(2, 16 * MB, vec![1], 6, 4, false, 4),
            gather(4 * MB, 4 * MB, 4),
        ],
        Schedule::Interleaved(vec![2, 1]),
    )
}

fn b403() -> BenchmarkSpec {
    // gcc: big code footprint, many short streams, pointer-ish IR walks.
    spec(
        "403",
        "gcc",
        vec![
            compute(10, 50, 2, 256 * KB, 3, 96),
            stream(4, 12 * MB, vec![1], 6, 2, false, 6),
            chase(8 * MB, 2, 2, 0),
        ],
        Schedule::Phased(vec![(0, 40), (1, 30), (2, 15)]),
    )
}

fn b410() -> BenchmarkSpec {
    // bwaves: big multi-stream unit-stride FP solver, memory bound.
    spec(
        "410",
        "bwaves",
        vec![stream(5, 96 * MB, vec![1], 8, 5, true, 8)],
        Schedule::Interleaved(vec![1]),
    )
}

fn b416() -> BenchmarkSpec {
    // gamess: FP compute, cache resident.
    spec(
        "416",
        "gamess",
        vec![compute(16, 700, 2, 96 * KB, 5, 8)],
        Schedule::Interleaved(vec![1]),
    )
}

fn b429() -> BenchmarkSpec {
    // mcf: dominant serial pointer chase over a huge graph plus a
    // prefetchable arc-array stream; low IPC, benefits somewhat from
    // offset prefetching on the stream part (why BADSCORE>1 hurts it).
    spec(
        "429",
        "mcf",
        vec![
            chase(192 * MB, 2, 3, 6),
            stream(2, 48 * MB, vec![1, 2], 4, 2, false, 5),
        ],
        Schedule::Interleaved(vec![3, 2]),
    )
}

fn b433() -> BenchmarkSpec {
    // milc: lattice QCD; line-stride 32 streams => offset peaks at
    // multiples of 32, benefits from very large offsets with superpages.
    spec(
        "433",
        "milc",
        vec![
            stream(3, 96 * MB, vec![32], 4, 6, true, 6),
            compute(10, 800, 2, 128 * KB, 0, 4),
        ],
        Schedule::Interleaved(vec![4, 1]),
    )
}

fn b434() -> BenchmarkSpec {
    // zeusmp: strided stencil streams, moderate intensity.
    spec(
        "434",
        "zeusmp",
        vec![
            stream(4, 48 * MB, vec![2], 6, 6, true, 8),
            compute(10, 800, 2, 128 * KB, 0, 4),
        ],
        Schedule::Interleaved(vec![3, 1]),
    )
}

fn b435() -> BenchmarkSpec {
    // gromacs: MD compute with small gathers, mostly resident.
    spec(
        "435",
        "gromacs",
        vec![
            compute(14, 700, 2, 160 * KB, 4, 8),
            gather(2 * MB, 3 * MB, 6),
        ],
        Schedule::Interleaved(vec![4, 1]),
    )
}

fn b436() -> BenchmarkSpec {
    // cactusADM: stencil with large-stride plane accesses.
    spec(
        "436",
        "cactusADM",
        vec![
            stream(3, 64 * MB, vec![16], 6, 6, true, 6),
            compute(8, 800, 2, 96 * KB, 0, 4),
        ],
        Schedule::Interleaved(vec![3, 1]),
    )
}

fn b437() -> BenchmarkSpec {
    // leslie3d: many interleaved unit/short-stride streams.
    spec(
        "437",
        "leslie3d",
        vec![stream(7, 48 * MB, vec![1], 6, 4, true, 7)],
        Schedule::Interleaved(vec![1]),
    )
}

fn b444() -> BenchmarkSpec {
    // namd: FP compute, resident.
    spec(
        "444",
        "namd",
        vec![compute(18, 750, 3, 192 * KB, 6, 6)],
        Schedule::Interleaved(vec![1]),
    )
}

fn b445() -> BenchmarkSpec {
    // gobmk: branchy game tree, resident.
    spec(
        "445",
        "gobmk",
        vec![
            branchy(5, 550, 256 * KB, 3, 32),
            compute(10, 100, 3, 64 * KB, 4, 16),
        ],
        Schedule::Interleaved(vec![3, 1]),
    )
}

fn b447() -> BenchmarkSpec {
    // dealII: FP with medium streams (FE matrix sweeps).
    spec(
        "447",
        "dealII",
        vec![
            stream(3, 24 * MB, vec![1], 8, 5, true, 6),
            compute(12, 700, 2, 256 * KB, 4, 12),
        ],
        Schedule::Interleaved(vec![2, 3]),
    )
}

fn b450() -> BenchmarkSpec {
    // soplex: sparse LP — strided sweeps + gathers.
    spec(
        "450",
        "soplex",
        vec![
            stream(3, 32 * MB, vec![1, 2], 4, 3, true, 6),
            gather(8 * MB, 24 * MB, 3),
        ],
        Schedule::Interleaved(vec![2, 1]),
    )
}

fn b453() -> BenchmarkSpec {
    // povray: FP compute, branchy-ish, resident.
    spec(
        "453",
        "povray",
        vec![
            compute(14, 750, 2, 96 * KB, 5, 12),
            branchy(8, 750, 64 * KB, 4, 12),
        ],
        Schedule::Interleaved(vec![3, 1]),
    )
}

fn b454() -> BenchmarkSpec {
    // calculix: FP compute + moderate streams, mostly resident.
    spec(
        "454",
        "calculix",
        vec![
            compute(16, 750, 2, 256 * KB, 5, 8),
            stream(2, 8 * MB, vec![1], 8, 5, true, 8),
        ],
        Schedule::Interleaved(vec![4, 1]),
    )
}

fn b456() -> BenchmarkSpec {
    // hmmer: dense dynamic-programming sweeps, L2-resident.
    spec(
        "456",
        "hmmer",
        vec![stream(2, 320 * KB, vec![1], 8, 6, false, 3)],
        Schedule::Interleaved(vec![1]),
    )
}

fn b458() -> BenchmarkSpec {
    // sjeng: branchy search + hash-table probes (~L3 resident).
    spec(
        "458",
        "sjeng",
        vec![branchy(6, 500, 128 * KB, 4, 24), gather(MB, 6 * MB, 5)],
        Schedule::Interleaved(vec![4, 1]),
    )
}

fn b459() -> BenchmarkSpec {
    // GemsFDTD: stride pattern [29,29,30] — offset peaks near multiples
    // of 29.33 (the paper: 29, 59, 88, 117, ...).
    spec(
        "459",
        "GemsFDTD",
        vec![
            stream(3, 96 * MB, vec![29, 29, 30], 4, 5, true, 6),
            compute(8, 800, 2, 128 * KB, 0, 4),
        ],
        Schedule::Interleaved(vec![4, 1]),
    )
}

fn b462() -> BenchmarkSpec {
    // libquantum: long unit-stride streams, very memory intensive,
    // sustains high IPC given bandwidth; timeliness crucial.
    spec(
        "462",
        "libquantum",
        vec![stream(2, 128 * MB, vec![1], 8, 3, false, 4)],
        Schedule::Interleaved(vec![1]),
    )
}

fn b464() -> BenchmarkSpec {
    // h264ref: motion-search block streams + compute, ~1MB hot set.
    spec(
        "464",
        "h264ref",
        vec![
            stream(4, MB, vec![1], 6, 4, false, 5),
            compute(12, 300, 2, 256 * KB, 4, 16),
        ],
        Schedule::Interleaved(vec![2, 3]),
    )
}

fn b465() -> BenchmarkSpec {
    // tonto: FP compute with PC-stable strided loads — the DL1 stride
    // prefetcher shines here (paper: up to +39%).
    spec(
        "465",
        "tonto",
        vec![
            stream(4, 24 * MB, vec![4], 8, 6, true, 8),
            compute(12, 800, 2, 128 * KB, 0, 6),
        ],
        Schedule::Interleaved(vec![3, 1]),
    )
}

fn b470() -> BenchmarkSpec {
    // lbm: stride pattern [3,2] — peaks at multiples of 5, secondary
    // peaks at 5k+3; store-heavy (fluid update), memory bound.
    spec(
        "470",
        "lbm",
        vec![stream(3, 128 * MB, vec![3, 2], 6, 4, true, 2)],
        Schedule::Interleaved(vec![1]),
    )
}

fn b471() -> BenchmarkSpec {
    // omnetpp: event heap + pointer-rich objects: chase + gathers.
    spec(
        "471",
        "omnetpp",
        vec![
            chase(32 * MB, 3, 3, 8),
            gather(8 * MB, 24 * MB, 4),
            stream(1, 4 * MB, vec![1], 8, 3, false, 6),
        ],
        Schedule::Interleaved(vec![3, 2, 1]),
    )
}

fn b473() -> BenchmarkSpec {
    // astar: pathfinding over grids: gathers + short streams, branchy.
    spec(
        "473",
        "astar",
        vec![
            gather(8 * MB, 24 * MB, 4),
            branchy(5, 600, 256 * KB, 3, 16),
            stream(2, 8 * MB, vec![1], 8, 3, false, 8),
        ],
        Schedule::Interleaved(vec![3, 2, 1]),
    )
}

fn b481() -> BenchmarkSpec {
    // wrf: weather stencil, mixed strides, FP.
    spec(
        "481",
        "wrf",
        vec![
            stream(4, 48 * MB, vec![1, 1, 2], 6, 5, true, 7),
            compute(10, 800, 2, 192 * KB, 0, 8),
        ],
        Schedule::Interleaved(vec![3, 1]),
    )
}

fn b482() -> BenchmarkSpec {
    // sphinx3: acoustic scoring: streaming reads + FP compute.
    spec(
        "482",
        "sphinx3",
        vec![
            stream(3, 12 * MB, vec![1], 8, 5, true, 0),
            compute(10, 700, 2, 128 * KB, 4, 8),
        ],
        Schedule::Interleaved(vec![2, 1]),
    )
}

fn b483() -> BenchmarkSpec {
    // xalancbmk: DOM walks: pointer chase, big code, branchy.
    spec(
        "483",
        "xalancbmk",
        vec![
            chase(24 * MB, 2, 2, 6),
            branchy(5, 650, 256 * KB, 3, 64),
            stream(1, 4 * MB, vec![1], 8, 2, false, 0),
        ],
        Schedule::Interleaved(vec![2, 2, 1]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{capture, TraceSource};

    #[test]
    fn suite_has_29_benchmarks_in_spec_order() {
        let s = suite();
        assert_eq!(s.len(), 29);
        let shorts: Vec<&str> = s.iter().map(|b| b.short.as_str()).collect();
        let mut sorted = shorts.clone();
        sorted.sort();
        assert_eq!(shorts, sorted, "suite must be in SPEC-id order");
        assert_eq!(shorts.first(), Some(&"400"));
        assert_eq!(shorts.last(), Some(&"483"));
    }

    #[test]
    fn all_specs_build_and_generate() {
        for spec in suite() {
            let mut src = spec.build();
            let uops = capture(&mut src, 5_000);
            assert_eq!(uops.len(), 5_000, "{}", spec.name);
            let loads = uops.iter().filter(|u| u.is_load()).count();
            // Every benchmark does at least *some* memory work.
            assert!(loads > 0, "{} has no loads", spec.name);
        }
    }

    #[test]
    fn lookup_by_short_id() {
        assert_eq!(benchmark("433").unwrap().name, "433.milc-like");
        assert!(benchmark("999").is_none());
    }

    #[test]
    fn thrasher_is_store_dominated() {
        let mut src = thrasher().build();
        let uops = capture(&mut src, 2_000);
        let stores = uops.iter().filter(|u| u.is_store()).count();
        assert!(stores * 3 > uops.len(), "thrasher must be store heavy");
    }

    #[test]
    fn seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> = suite().iter().map(|b| b.seed).collect();
        assert_eq!(seeds.len(), 29);
    }

    #[test]
    fn fig13_subset_ids_exist() {
        for id in fig13_subset() {
            assert!(benchmark(id).is_some(), "{id} missing");
        }
    }

    #[test]
    fn memory_bound_benchmarks_touch_many_distinct_lines() {
        for id in ["410", "429", "433", "459", "462", "470"] {
            let spec = benchmark(id).unwrap();
            let mut src = spec.build();
            let mut lines = std::collections::HashSet::new();
            for _ in 0..50_000 {
                let u = src.next_uop();
                if let Some(m) = u.mem {
                    lines.insert(m.vaddr.0 >> 6);
                }
            }
            assert!(lines.len() > 500, "{id} touched only {} lines", lines.len());
        }
    }
}
