//! Binary trace serialisation.
//!
//! The paper's methodology stitches recorded trace samples (§5); this
//! module provides an equivalent capability: capture any [`TraceSource`]
//! prefix to a compact binary buffer or file and replay it later.
//!
//! Format (little endian), per record (30 bytes fixed):
//!
//! ```text
//! u64 pc | u8 kind | u8 dst(0xFF=none) | u8 src0 | u8 src1
//! u64 mem_vaddr (kind-gated) | u8 mem_size | u8 branch_flags | u64 target
//! ```
//!
//! A 16-byte header carries a magic, version and record count.

use crate::record::{BranchInfo, MemRef, MicroOp, Reg, UopKind};
use crate::source::{ReplaySource, TraceSource};
use bosim_types::VirtAddr;
use std::fmt;
use std::fs::File;
use std::io::{Read as _, Write as _};
use std::path::Path;

pub(crate) const MAGIC: u32 = 0xB05_7ACE;
const VERSION: u16 = 1;

/// Byte length of the file header (magic, version, reserved, count).
pub const HEADER_BYTES: usize = 16;

/// Errors produced while encoding or decoding trace files.
///
/// Decode errors name both the record index and the absolute byte
/// offset of the failure, so a corrupt external trace is diagnosable
/// with a hex editor.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The buffer does not start with the trace magic number.
    BadMagic,
    /// The format version is not supported.
    BadVersion(u16),
    /// The buffer ended in the middle of the header or a record.
    Truncated {
        /// Index of the partial record (0 when the header itself is
        /// short).
        record: usize,
        /// Byte offset at which the partial header/record starts.
        offset: usize,
    },
    /// A field held an invalid encoding (e.g. unknown µop kind).
    Corrupt {
        /// Which field was invalid.
        what: &'static str,
        /// Index of the record carrying it.
        record: usize,
        /// Absolute byte offset of the invalid field.
        offset: usize,
    },
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file i/o error: {e}"),
            TraceFileError::BadMagic => write!(f, "not a bosim trace file (bad magic)"),
            TraceFileError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceFileError::Truncated { record, offset } => write!(
                f,
                "trace file truncated at record {record} (byte offset {offset})"
            ),
            TraceFileError::Corrupt {
                what,
                record,
                offset,
            } => write!(
                f,
                "corrupt trace field: {what} in record {record} (byte offset {offset})"
            ),
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceFileError {
    fn from(e: std::io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

fn kind_to_u8(k: UopKind) -> u8 {
    match k {
        UopKind::Int => 0,
        UopKind::IntMul => 1,
        UopKind::IntDiv => 2,
        UopKind::Fp => 3,
        UopKind::FpDiv => 4,
        UopKind::Load => 5,
        UopKind::Store => 6,
        UopKind::CondBranch => 7,
        UopKind::Jump => 8,
        UopKind::IndirectBranch => 9,
        UopKind::Nop => 10,
    }
}

fn kind_from_u8(v: u8) -> Option<UopKind> {
    Some(match v {
        0 => UopKind::Int,
        1 => UopKind::IntMul,
        2 => UopKind::IntDiv,
        3 => UopKind::Fp,
        4 => UopKind::FpDiv,
        5 => UopKind::Load,
        6 => UopKind::Store,
        7 => UopKind::CondBranch,
        8 => UopKind::Jump,
        9 => UopKind::IndirectBranch,
        10 => UopKind::Nop,
        _ => return None,
    })
}

fn reg_to_u8(r: Option<Reg>) -> u8 {
    r.map(|r| r.0).unwrap_or(0xFF)
}

fn reg_from_u8(v: u8) -> Option<Reg> {
    if v == 0xFF {
        None
    } else {
        Some(Reg(v))
    }
}

/// A little-endian byte reader over a borrowed slice (keeps the file
/// format dependency-free).
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        debug_assert!(self.buf.len() >= N, "caller checks remaining()");
        let (head, tail) = self.buf.split_at(N);
        self.buf = tail;
        head.try_into().expect("split_at(N) yields N bytes") // bosim-lint: allow(P002, split_at(N) yields exactly N bytes)
    }

    fn u8(&mut self) -> u8 {
        self.take::<1>()[0]
    }

    fn u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take::<2>())
    }

    fn u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take::<4>())
    }

    fn u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take::<8>())
    }
}

/// Encodes µops into a standalone binary buffer.
pub fn encode(uops: &[MicroOp]) -> Vec<u8> {
    let mut b = Vec::with_capacity(16 + uops.len() * 30);
    b.extend_from_slice(&MAGIC.to_le_bytes());
    b.extend_from_slice(&VERSION.to_le_bytes());
    b.extend_from_slice(&0u16.to_le_bytes()); // reserved
    b.extend_from_slice(&(uops.len() as u64).to_le_bytes());
    for u in uops {
        b.extend_from_slice(&u.pc.to_le_bytes());
        b.push(kind_to_u8(u.kind));
        b.push(reg_to_u8(u.dst));
        b.push(reg_to_u8(u.srcs[0]));
        b.push(reg_to_u8(u.srcs[1]));
        match u.mem {
            Some(m) => {
                b.extend_from_slice(&m.vaddr.0.to_le_bytes());
                b.push(m.size);
            }
            None => {
                b.extend_from_slice(&0u64.to_le_bytes());
                b.push(0);
            }
        }
        match u.branch {
            Some(br) => {
                b.push(if br.taken { 3 } else { 1 });
                b.extend_from_slice(&br.target.to_le_bytes());
            }
            None => {
                b.push(0);
                b.extend_from_slice(&0u64.to_le_bytes());
            }
        }
    }
    b
}

/// Decodes a buffer produced by [`encode`].
///
/// # Errors
///
/// Returns a [`TraceFileError`] when the magic/version are wrong, the
/// buffer is truncated, or a field is invalid; truncation and
/// corruption errors name the record index and byte offset.
pub fn decode(buf: &[u8]) -> Result<Vec<MicroOp>, TraceFileError> {
    let total = buf.len();
    let mut buf = Reader::new(buf);
    if buf.remaining() < HEADER_BYTES {
        return Err(TraceFileError::Truncated {
            record: 0,
            offset: 0,
        });
    }
    if buf.u32_le() != MAGIC {
        return Err(TraceFileError::BadMagic);
    }
    let version = buf.u16_le();
    if version != VERSION {
        return Err(TraceFileError::BadVersion(version));
    }
    let _reserved = buf.u16_le();
    let n = buf.u64_le() as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    const REC: usize = 8 + 4 + 9 + 9;
    for record in 0..n {
        let rec_offset = total - buf.remaining();
        if buf.remaining() < REC {
            return Err(TraceFileError::Truncated {
                record,
                offset: rec_offset,
            });
        }
        let pc = buf.u64_le();
        let kind = kind_from_u8(buf.u8()).ok_or(TraceFileError::Corrupt {
            what: "uop kind",
            record,
            offset: rec_offset + 8,
        })?;
        let dst = reg_from_u8(buf.u8());
        let s0 = reg_from_u8(buf.u8());
        let s1 = reg_from_u8(buf.u8());
        let vaddr = buf.u64_le();
        let size = buf.u8();
        let mem = if kind.is_mem() {
            Some(MemRef {
                vaddr: VirtAddr(vaddr),
                size,
            })
        } else {
            None
        };
        let bflags = buf.u8();
        let target = buf.u64_le();
        let branch = if bflags & 1 != 0 {
            Some(BranchInfo {
                taken: bflags & 2 != 0,
                target,
            })
        } else {
            None
        };
        out.push(MicroOp {
            pc,
            kind,
            dst,
            srcs: [s0, s1],
            mem,
            branch,
        });
    }
    Ok(out)
}

/// Captures `n` µops from `src` and writes them to `path`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn record_to_file(
    src: &mut dyn TraceSource,
    n: usize,
    path: &Path,
) -> Result<(), TraceFileError> {
    let uops = crate::source::capture(src, n);
    let bytes = encode(&uops);
    let mut f = File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Loads a trace file into a looping [`ReplaySource`].
///
/// # Errors
///
/// Returns decode or I/O errors; an empty trace is rejected as
/// [`TraceFileError::Corrupt`].
pub fn load_replay(path: &Path, name: &str) -> Result<ReplaySource, TraceFileError> {
    let mut f = File::open(path)?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    let uops = decode(&buf)?;
    if uops.is_empty() {
        return Err(TraceFileError::Corrupt {
            what: "empty trace",
            record: 0,
            offset: HEADER_BYTES,
        });
    }
    Ok(ReplaySource::new(name, uops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::capture;
    use crate::suite;

    #[test]
    fn roundtrip_preserves_uops() {
        let spec = suite::benchmark("470").unwrap();
        let uops = capture(&mut spec.build(), 3_000);
        let encoded = encode(&uops);
        let decoded = decode(&encoded).unwrap();
        assert_eq!(uops, decoded);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = decode(&[0u8; 32]).unwrap_err();
        assert!(matches!(err, TraceFileError::BadMagic));
    }

    #[test]
    fn truncation_is_detected_with_record_and_offset() {
        let uops = capture(&mut suite::benchmark("462").unwrap().build(), 10);
        let encoded = encode(&uops);
        let err = decode(&encoded[..encoded.len() - 3]).unwrap_err();
        const REC: usize = 30;
        match err {
            TraceFileError::Truncated { record, offset } => {
                // The last record is the partial one, and the offset
                // points at where it begins.
                assert_eq!(record, 9);
                assert_eq!(offset, HEADER_BYTES + 9 * REC);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A short header reports record 0 / offset 0.
        assert!(matches!(
            decode(&encoded[..10]).unwrap_err(),
            TraceFileError::Truncated {
                record: 0,
                offset: 0
            }
        ));
    }

    #[test]
    fn bad_kind_byte_names_record_and_offset() {
        let uops = capture(&mut suite::benchmark("462").unwrap().build(), 10);
        let mut encoded = encode(&uops);
        const REC: usize = 30;
        // Corrupt the kind byte of record 4 (offset 8 within a record).
        let at = HEADER_BYTES + 4 * REC + 8;
        encoded[at] = 0xEE;
        let err = decode(&encoded).unwrap_err();
        match err {
            TraceFileError::Corrupt {
                what,
                record,
                offset,
            } => {
                assert_eq!(what, "uop kind");
                assert_eq!(record, 4);
                assert_eq!(offset, at);
            }
            other => panic!("unexpected {other:?}"),
        }
        let msg = decode(&encoded).unwrap_err().to_string();
        assert!(msg.contains("record 4"), "{msg}");
        assert!(msg.contains(&format!("byte offset {at}")), "{msg}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("bosim_trace_test_{}.btrace", std::process::id()));
        let spec = suite::benchmark("456").unwrap();
        record_to_file(&mut spec.build(), 500, &path).unwrap();
        let mut replay = load_replay(&path, "456-replayed").unwrap();
        assert_eq!(replay.lap_len(), 500);
        let replayed = capture(&mut replay, 500);
        let original = capture(&mut spec.build(), 500);
        assert_eq!(replayed, original);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(TraceFileError::BadMagic.to_string().contains("magic"));
        assert!(TraceFileError::BadVersion(9).to_string().contains('9'));
    }
}
