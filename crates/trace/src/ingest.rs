//! External trace ingestion: formats, detection, and the file-backed
//! workload description.
//!
//! This is the front door for pointing the simulator at a trace you did
//! not synthesise: name a file and a [`TraceFormat`] (or let
//! [`TraceFormat::detect`] sniff it), get back a looping
//! [`ReplaySource`] ready to drive a core. The
//! plain-data [`ExternalSpec`] form of the same information rides inside
//! [`BenchmarkSpec`](crate::BenchmarkSpec) so file-backed workloads flow
//! through the `Experiment` grid machinery exactly like synthetic ones.
//!
//! ```no_run
//! use bosim_trace::{ExternalSpec, TraceSource};
//!
//! let spec = ExternalSpec::detect("traces/mcf.champsim").expect("known format");
//! let mut src = spec.load().expect("decodes");
//! let uop = src.next_uop();
//! ```
//!
//! See `docs/TRACES.md` for the on-disk format specifications.

use crate::artifact::ArtifactStore;
use crate::source::ReplaySource;
use crate::{addr, champsim, file};
use std::fmt;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The on-disk trace formats the simulator ingests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// The native `bosim` µop format (`trace::file`): 16-byte header
    /// with magic + record count, 30-byte records. Extension `.btrace`.
    Native,
    /// ChampSim-compatible 64-byte instruction records
    /// ([`champsim`]). Extensions `.champsim`, `.champsimtrace`.
    ChampSim,
    /// Text address trace, `R/W <hex-addr>` per line ([`addr`]).
    /// Extensions `.addr`, `.atrace`, `.txt`.
    AddrText,
    /// Binary address trace, little-endian u64 words with bit 63 as the
    /// store flag ([`addr`]). Extensions `.addrbin`, `.abin`.
    AddrBin,
}

impl TraceFormat {
    /// All formats, in detection-priority order.
    pub const ALL: [TraceFormat; 4] = [
        TraceFormat::Native,
        TraceFormat::ChampSim,
        TraceFormat::AddrText,
        TraceFormat::AddrBin,
    ];

    /// The canonical CLI name (`"native"`, `"champsim"`, `"addr-text"`,
    /// `"addr-bin"`).
    pub fn name(self) -> &'static str {
        match self {
            TraceFormat::Native => "native",
            TraceFormat::ChampSim => "champsim",
            TraceFormat::AddrText => "addr-text",
            TraceFormat::AddrBin => "addr-bin",
        }
    }

    /// Parses a CLI format name (the inverse of [`name`](Self::name)).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownFormat`] listing the valid names.
    pub fn from_name(name: &str) -> Result<Self, TraceError> {
        match name.trim().to_ascii_lowercase().as_str() {
            "native" | "btrace" => Ok(TraceFormat::Native),
            "champsim" => Ok(TraceFormat::ChampSim),
            "addr-text" | "addr_text" | "addrtext" => Ok(TraceFormat::AddrText),
            "addr-bin" | "addr_bin" | "addrbin" => Ok(TraceFormat::AddrBin),
            _ => Err(TraceError::UnknownFormat {
                what: format!(
                    "unknown trace format {name:?} (expected one of: native, champsim, \
                     addr-text, addr-bin)"
                ),
            }),
        }
    }

    /// Detects the format of `path` from its first bytes and extension:
    /// the native magic wins outright; otherwise the extension decides
    /// (see the variant docs for the recognised ones).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownFormat`] when neither magic nor
    /// extension identify the file, and I/O errors from the probe read.
    pub fn detect(path: &Path) -> Result<Self, TraceError> {
        let mut head = [0u8; 4];
        let mut f = std::fs::File::open(path).map_err(|e| TraceError::Io {
            path: path.to_path_buf(),
            error: e,
        })?;
        let n = f.read(&mut head).map_err(|e| TraceError::Io {
            path: path.to_path_buf(),
            error: e,
        })?;
        if n == 4 && u32::from_le_bytes(head) == file::MAGIC {
            return Ok(TraceFormat::Native);
        }
        let ext = path
            .extension()
            .and_then(|e| e.to_str())
            .unwrap_or_default()
            .to_ascii_lowercase();
        match ext.as_str() {
            "btrace" => Ok(TraceFormat::Native),
            "champsim" | "champsimtrace" => Ok(TraceFormat::ChampSim),
            "addr" | "atrace" | "txt" => Ok(TraceFormat::AddrText),
            "addrbin" | "abin" => Ok(TraceFormat::AddrBin),
            _ => Err(TraceError::UnknownFormat {
                what: format!(
                    "cannot detect the trace format of {}: no native magic and \
                     unrecognised extension {ext:?} — pass the format explicitly",
                    path.display()
                ),
            }),
        }
    }
}

impl fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Umbrella error for external-trace ingestion: wraps the per-format
/// decode errors plus path-carrying I/O and detection failures.
#[derive(Debug)]
pub enum TraceError {
    /// I/O failure on `path`.
    Io {
        /// The file being read.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// Native-format decode failure ([`file::TraceFileError`]).
    Native(file::TraceFileError),
    /// ChampSim decode failure ([`champsim::ChampSimError`]).
    ChampSim(champsim::ChampSimError),
    /// Address-trace decode failure ([`addr::AddrTraceError`]).
    Addr(addr::AddrTraceError),
    /// The format name or file could not be identified.
    UnknownFormat {
        /// Human-readable diagnosis.
        what: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { path, error } => {
                write!(f, "cannot read trace {}: {error}", path.display())
            }
            TraceError::Native(e) => write!(f, "{e}"),
            TraceError::ChampSim(e) => write!(f, "{e}"),
            TraceError::Addr(e) => write!(f, "{e}"),
            TraceError::UnknownFormat { what } => f.write_str(what),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io { error, .. } => Some(error),
            TraceError::Native(e) => Some(e),
            TraceError::ChampSim(e) => Some(e),
            TraceError::Addr(e) => Some(e),
            TraceError::UnknownFormat { .. } => None,
        }
    }
}

impl From<file::TraceFileError> for TraceError {
    fn from(e: file::TraceFileError) -> Self {
        TraceError::Native(e)
    }
}

impl From<champsim::ChampSimError> for TraceError {
    fn from(e: champsim::ChampSimError) -> Self {
        TraceError::ChampSim(e)
    }
}

impl From<addr::AddrTraceError> for TraceError {
    fn from(e: addr::AddrTraceError) -> Self {
        TraceError::Addr(e)
    }
}

/// A file-backed workload: path + format + display name. Plain data
/// (`Clone`, `PartialEq`), so it embeds in
/// [`BenchmarkSpec`](crate::BenchmarkSpec) and survives the experiment
/// grid's cloning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternalSpec {
    /// The trace file.
    pub path: PathBuf,
    /// Its on-disk format.
    pub format: TraceFormat,
    /// Benchmark name used in reports (defaults to the file stem).
    pub name: String,
}

impl ExternalSpec {
    /// Describes `path` as a `format` trace, named after its file stem.
    pub fn new(path: impl Into<PathBuf>, format: TraceFormat) -> Self {
        let path = path.into();
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("external-trace")
            .to_string();
        ExternalSpec { path, format, name }
    }

    /// Like [`new`](Self::new), sniffing the format with
    /// [`TraceFormat::detect`].
    ///
    /// # Errors
    ///
    /// Returns detection and probe-I/O errors.
    pub fn detect(path: impl Into<PathBuf>) -> Result<Self, TraceError> {
        let path = path.into();
        let format = TraceFormat::detect(&path)?;
        Ok(ExternalSpec::new(path, format))
    }

    /// Overrides the report name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Loads the trace into a looping [`ReplaySource`].
    ///
    /// Decoded traces go through the process-global
    /// [`ArtifactStore`], keyed by (path, format,
    /// file length, mtime): an experiment grid — or many `bosim serve`
    /// worker shards — replaying the same file in many cells decodes it
    /// once and shares one allocation. Rewriting the file on disk
    /// invalidates the entry, and entries evicted by the store's size
    /// bound spill to a cache directory instead of re-decoding. See the
    /// [`artifact`](crate::artifact) module docs.
    ///
    /// # Errors
    ///
    /// Returns the wrapped per-format decode error; empty traces are
    /// rejected by every decoder.
    pub fn load(&self) -> Result<ReplaySource, TraceError> {
        Ok(ReplaySource::from_shared(&self.name, self.load_shared()?))
    }

    /// The cached-decode backend of [`load`](Self::load): the
    /// process-global [`ArtifactStore`].
    fn load_shared(&self) -> Result<Arc<Vec<crate::MicroOp>>, TraceError> {
        ArtifactStore::global().load(self)
    }
}

/// One uncached source-format decode of `path` — the expensive path the
/// [`ArtifactStore`] bounds to once per file
/// generation per process.
///
/// # Errors
///
/// Returns the wrapped per-format decode error; empty traces are
/// rejected by every decoder.
pub(crate) fn decode_file(
    path: &Path,
    format: TraceFormat,
) -> Result<Vec<crate::MicroOp>, TraceError> {
    let open = || {
        std::fs::File::open(path).map_err(|e| TraceError::Io {
            path: path.to_path_buf(),
            error: e,
        })
    };
    Ok(match format {
        TraceFormat::Native => {
            let mut buf = Vec::new();
            std::io::Read::read_to_end(&mut open()?, &mut buf).map_err(|e| TraceError::Io {
                path: path.to_path_buf(),
                error: e,
            })?;
            let uops = file::decode(&buf)?;
            if uops.is_empty() {
                return Err(file::TraceFileError::Corrupt {
                    what: "empty trace",
                    record: 0,
                    offset: file::HEADER_BYTES,
                }
                .into());
            }
            uops
        }
        TraceFormat::ChampSim => champsim::decode(std::io::BufReader::new(open()?))?,
        TraceFormat::AddrText => addr::lower(&addr::parse_text(open()?)?),
        TraceFormat::AddrBin => addr::lower(&addr::parse_binary(std::io::BufReader::new(open()?))?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{capture, TraceSource};
    use crate::suite;

    #[test]
    fn format_names_round_trip() {
        for f in TraceFormat::ALL {
            assert_eq!(TraceFormat::from_name(f.name()).unwrap(), f);
        }
        assert!(matches!(
            TraceFormat::from_name("xml"),
            Err(TraceError::UnknownFormat { .. })
        ));
    }

    #[test]
    fn detection_prefers_native_magic_over_extension() {
        let dir = std::env::temp_dir();
        // A native-format file with a champsim extension: magic wins.
        let path = dir.join(format!(
            "bosim_ingest_magic_{}.champsim",
            std::process::id()
        ));
        let uops = capture(&mut suite::benchmark("462").unwrap().build(), 10);
        std::fs::write(&path, file::encode(&uops)).unwrap();
        assert_eq!(TraceFormat::detect(&path).unwrap(), TraceFormat::Native);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn detection_falls_back_to_extension() {
        let dir = std::env::temp_dir();
        for (ext, want) in [
            ("champsim", TraceFormat::ChampSim),
            ("addr", TraceFormat::AddrText),
            ("addrbin", TraceFormat::AddrBin),
        ] {
            let path = dir.join(format!("bosim_ingest_ext_{}.{ext}", std::process::id()));
            std::fs::write(&path, b"R 0x1000\n").unwrap();
            assert_eq!(TraceFormat::detect(&path).unwrap(), want, "{ext}");
            let _ = std::fs::remove_file(&path);
        }
        let path = dir.join(format!(
            "bosim_ingest_ext_{}.unknowable",
            std::process::id()
        ));
        std::fs::write(&path, b"????").unwrap();
        let err = TraceFormat::detect(&path).unwrap_err();
        assert!(err.to_string().contains("cannot detect"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn external_spec_loads_every_format() {
        let dir = std::env::temp_dir();
        let uops = capture(&mut suite::benchmark("470").unwrap().build(), 500);

        let pid = std::process::id();
        let native = dir.join(format!("bosim_ingest_all_{pid}.btrace"));
        std::fs::write(&native, file::encode(&uops)).unwrap();
        let cs = dir.join(format!("bosim_ingest_all_{pid}.champsim"));
        std::fs::write(&cs, champsim::encode(&uops)).unwrap();
        let at = dir.join(format!("bosim_ingest_all_{pid}.addr"));
        let accesses = addr::accesses_of(&uops);
        std::fs::write(&at, addr::encode_text(&accesses)).unwrap();
        let ab = dir.join(format!("bosim_ingest_all_{pid}.addrbin"));
        std::fs::write(&ab, addr::encode_binary(&accesses)).unwrap();

        for path in [&native, &cs, &at, &ab] {
            let spec = ExternalSpec::detect(path).expect("detectable");
            let mut src = spec.load().expect("loads");
            assert!(src.next_uop().pc > 0, "{}", spec.format);
            assert_eq!(src.name(), format!("bosim_ingest_all_{pid}"));
        }
        // Name override sticks.
        let spec = ExternalSpec::new(&cs, TraceFormat::ChampSim).named("mcf-server");
        assert_eq!(spec.load().unwrap().name(), "mcf-server");
        for p in [native, cs, at, ab] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn decode_cache_shares_and_invalidates() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("bosim_ingest_cache_{}.addr", std::process::id()));
        std::fs::write(&path, "R 0x1000\n").unwrap();
        let spec = ExternalSpec::new(&path, TraceFormat::AddrText);
        let a = spec.load_shared().unwrap();
        let b = spec.load_shared().unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same file must decode once");
        // Rewriting the file (different length → different key) must
        // invalidate the entry.
        std::fs::write(&path, "R 0x1000\nW 0x2000\n").unwrap();
        let c = spec.load_shared().unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "rewritten file must re-decode");
        assert_eq!(c.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn io_errors_carry_the_path() {
        let err = ExternalSpec::new("/nonexistent/missing.champsim", TraceFormat::ChampSim)
            .load()
            .unwrap_err();
        // The per-format loader reports the raw io error; detection
        // reports the path. Both display sanely.
        assert!(!err.to_string().is_empty());
        let err = ExternalSpec::detect("/nonexistent/missing.champsim").unwrap_err();
        assert!(err.to_string().contains("missing.champsim"), "{err}");
    }
}
