//! Synthetic benchmark construction.
//!
//! The paper evaluates on SPEC CPU2006 traces, which are proprietary. As a
//! substitution (see `DESIGN.md` §1) each benchmark is modelled by a
//! [`BenchmarkSpec`]: a weighted mixture of access-pattern *kernels*
//! (sequential/strided streams, pointer chases, gathers, compute loops,
//! branchy code, write scans) reproducing the pattern class the paper
//! attributes to that benchmark.
//!
//! Specs are plain data (`Clone`, `Debug`); [`BenchmarkSpec::build`]
//! instantiates a fresh deterministic [`SynthSource`] for every run.

use crate::ingest::{ExternalSpec, TraceError};
use crate::kernels::KernelState;
use crate::record::MicroOp;
use crate::source::TraceSource;

/// Configuration of one access-pattern kernel.
///
/// All sizes are in bytes; stride patterns are in 64-byte lines.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelCfg {
    /// Interleaved constant-stride load streams.
    Stream(StreamCfg),
    /// Dependent pointer chasing over a pseudo-random permutation.
    Chase(ChaseCfg),
    /// Indexed gathers: sequential index loads + dependent random loads.
    Gather(GatherCfg),
    /// Compute-dominated loop over a cache-resident buffer.
    Compute(ComputeCfg),
    /// Compute with hard-to-predict conditional branches.
    Branchy(BranchyCfg),
    /// Sequential write scan (the §5.1 cache-thrashing micro-benchmark).
    ScanWrite(ScanWriteCfg),
}

/// Interleaved constant-stride streams.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCfg {
    /// Number of concurrently advancing streams (round-robin interleaved).
    pub streams: u32,
    /// Bytes of virtual address space per stream (wraps around).
    pub region_bytes: u64,
    /// Line-stride pattern applied cyclically, e.g. `[1]` is a sequential
    /// stream, `[3, 2]` produces the lbm-like +5-lines-per-2-accesses
    /// pattern, `[29, 29, 30]` the GemsFDTD-like ~29.33 period.
    pub pattern: Vec<i64>,
    /// Loads issued within each touched line before advancing to the next
    /// pattern step (real code reads several words per line; only the
    /// first access misses the DL1). Must be ≥ 1.
    pub loads_per_line: u32,
    /// Independent ALU/FP ops emitted after each load (compute intensity).
    pub compute_per_load: u32,
    /// Use FP ops (latency 3) instead of Int ops for the compute filler.
    pub fp: bool,
    /// Emit a store to the loaded line every N loads (0 = never).
    pub store_every: u32,
}

/// Dependent pointer chase.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaseCfg {
    /// Bytes of the chased region (rounded up to a power-of-two of lines).
    pub region_bytes: u64,
    /// Independent chains; 1 = fully serialised (mcf-like), more = MLP.
    pub chains: u32,
    /// ALU ops between dependent loads.
    pub compute_per_load: u32,
    /// Emit a poorly-predictable branch every N loads (0 = never).
    pub branch_every: u32,
}

/// Indexed gather (`A[B[i]]`).
#[derive(Debug, Clone, PartialEq)]
pub struct GatherCfg {
    /// Sequentially-read index array size in bytes.
    pub index_region_bytes: u64,
    /// Randomly-gathered data region size in bytes.
    pub data_region_bytes: u64,
    /// ALU ops after each index+data pair.
    pub compute_per_pair: u32,
}

/// Compute-dominated kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeCfg {
    /// µops per loop iteration (excluding the loop branch).
    pub ops_per_iter: u32,
    /// Per-mille of compute ops that are FP.
    pub fp_permille: u32,
    /// Per-mille of compute ops that are divides (long latency).
    pub div_permille: u32,
    /// Dependency chain length (higher = less ILP).
    pub chain_len: u32,
    /// Cache-resident buffer touched by occasional loads.
    pub resident_bytes: u64,
    /// One load every N ops (0 = never).
    pub load_every: u32,
    /// Distinct code blocks cycled through (instruction footprint knob).
    pub code_blocks: u32,
}

/// Branchy kernel with data-dependent branches.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchyCfg {
    /// ALU ops between conditional branches.
    pub ops_per_branch: u32,
    /// Per-mille probability that a data-dependent branch is taken.
    pub taken_permille: u32,
    /// Per-mille of branches that are well-predictable (loop-like).
    pub predictable_permille: u32,
    /// Resident buffer for the occasional data loads.
    pub resident_bytes: u64,
    /// One load every N ops (0 = never).
    pub load_every: u32,
    /// Instruction footprint knob.
    pub code_blocks: u32,
}

/// Sequential write scan, the cache-thrashing micro-benchmark of §5.1:
/// "thrashes the L3 cache by writing a huge array, going through the array
/// quickly and sequentially".
#[derive(Debug, Clone, PartialEq)]
pub struct ScanWriteCfg {
    /// Bytes of the written array.
    pub region_bytes: u64,
    /// Stores per iteration.
    pub stores_per_iter: u32,
    /// ALU ops per store.
    pub compute_per_store: u32,
}

/// How a benchmark alternates between its kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Fine-grained weighted interleave: kernel `i` contributes
    /// `weights[i]` consecutive iterations per round.
    Interleaved(Vec<u32>),
    /// Coarse phases: `(kernel index, iterations)` entries, looped.
    Phased(Vec<(usize, u64)>),
}

/// A complete benchmark description: either a synthetic kernel mixture
/// or a pointer to an external trace file.
///
/// Synthetic specs are what the 29-benchmark suite builds; file-backed
/// specs come from [`BenchmarkSpec::from_trace`] and flow through the
/// same experiment machinery (the [`external`](Self::external) field
/// short-circuits [`source`](Self::source) to the file loader).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Full name, e.g. `"433.milc-like"`.
    pub name: String,
    /// Short SPEC-style id used on figure axes, e.g. `"433"`.
    pub short: String,
    /// The kernels of the mixture (empty for file-backed specs).
    pub kernels: Vec<KernelCfg>,
    /// Kernel schedule (ignored for file-backed specs).
    pub schedule: Schedule,
    /// Seed for all pseudo-random decisions of the generators.
    pub seed: u64,
    /// External trace backing this benchmark; when set, the kernels and
    /// schedule are ignored and [`source`](Self::source) replays the
    /// file.
    pub external: Option<ExternalSpec>,
}

/// Virtual-address layout constants for generated benchmarks.
pub mod layout {
    /// Code base for kernel `k`.
    pub fn code_base(kernel: usize) -> u64 {
        0x0040_0000 + kernel as u64 * 0x0100_0000
    }

    /// Data region base for kernel `k` (regions are 64 GiB apart).
    pub fn data_base(kernel: usize) -> u64 {
        0x0100_0000_0000 + kernel as u64 * 0x0010_0000_0000
    }

    /// Secondary data region (e.g. gather targets) for kernel `k`.
    pub fn data_base2(kernel: usize) -> u64 {
        data_base(kernel) + 0x0008_0000_0000
    }

    /// First architectural register of kernel `k`'s private window.
    pub fn reg_base(kernel: usize) -> u8 {
        (kernel as u8) * 8
    }
}

impl BenchmarkSpec {
    /// Describes a file-backed benchmark replaying `external`. The
    /// benchmark name and short label are the spec's name.
    pub fn from_trace(external: ExternalSpec) -> Self {
        BenchmarkSpec {
            name: external.name.clone(),
            short: external.name.clone(),
            kernels: Vec::new(),
            schedule: Schedule::Interleaved(Vec::new()),
            seed: 0,
            external: Some(external),
        }
    }

    /// Instantiates the trace source for this spec: the file replayer
    /// for file-backed specs, a fresh deterministic [`SynthSource`]
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Returns the trace load/decode error of a file-backed spec
    /// (synthetic specs cannot fail here — they panic on malformed
    /// kernel configurations, see [`build`](Self::build)).
    pub fn source(&self) -> Result<Box<dyn TraceSource>, TraceError> {
        match &self.external {
            Some(ext) => Ok(Box::new(ext.load()?)),
            None => Ok(Box::new(self.build())),
        }
    }

    /// Instantiates a fresh deterministic synthetic trace source for
    /// this spec. Prefer [`source`](Self::source), which also handles
    /// file-backed specs.
    ///
    /// # Panics
    ///
    /// Panics if the spec is file-backed, or malformed (no kernels, more
    /// than 8 kernels, an empty schedule, or a schedule referencing a
    /// missing kernel).
    pub fn build(&self) -> SynthSource {
        assert!(
            self.external.is_none(),
            "file-backed benchmark {} has no synthetic source — use source()",
            self.name
        );
        assert!(!self.kernels.is_empty(), "benchmark needs kernels");
        assert!(
            self.kernels.len() <= 8,
            "at most 8 kernels per benchmark (register windows)"
        );
        match &self.schedule {
            Schedule::Interleaved(w) => {
                assert_eq!(w.len(), self.kernels.len(), "one weight per kernel");
                assert!(w.iter().any(|&x| x > 0), "all-zero weights");
            }
            Schedule::Phased(p) => {
                assert!(!p.is_empty(), "empty phase list");
                for &(k, n) in p {
                    assert!(k < self.kernels.len(), "phase references kernel {k}");
                    assert!(n > 0, "zero-length phase");
                }
            }
        }
        let kernels: Vec<KernelState> = self
            .kernels
            .iter()
            .enumerate()
            .map(|(i, cfg)| KernelState::new(cfg, i, self.seed ^ (i as u64) << 32))
            .collect();
        // The scheduler advances its cursor *before* emitting a batch,
        // so start one position before the first entry: a phased
        // benchmark must begin with its first listed phase. (The
        // interleaved cursor keeps its historical start for trace
        // stability; weights are order-insensitive anyway.)
        let sched_pos = match &self.schedule {
            Schedule::Interleaved(_) => 0,
            Schedule::Phased(p) => p.len() - 1,
        };
        SynthSource {
            name: self.name.clone(),
            kernels,
            schedule: self.schedule.clone(),
            sched_pos,
            sched_left: 0,
            buffer: Vec::new(),
            buf_pos: 0,
        }
    }
}

/// A deterministic synthetic trace source built from a [`BenchmarkSpec`].
#[derive(Debug)]
pub struct SynthSource {
    name: String,
    kernels: Vec<KernelState>,
    schedule: Schedule,
    sched_pos: usize,
    sched_left: u64,
    buffer: Vec<MicroOp>,
    buf_pos: usize,
}

impl SynthSource {
    fn refill(&mut self) {
        self.buffer.clear();
        self.buf_pos = 0;
        // Pick the kernel for the next iteration batch.
        let k = match &self.schedule {
            Schedule::Interleaved(weights) => {
                if self.sched_left == 0 {
                    // advance to next kernel with non-zero weight
                    loop {
                        self.sched_pos = (self.sched_pos + 1) % weights.len();
                        if weights[self.sched_pos] > 0 {
                            self.sched_left = weights[self.sched_pos] as u64;
                            break;
                        }
                    }
                }
                self.sched_left -= 1;
                self.sched_pos
            }
            Schedule::Phased(phases) => {
                if self.sched_left == 0 {
                    self.sched_pos = (self.sched_pos + 1) % phases.len();
                    self.sched_left = phases[self.sched_pos].1;
                }
                self.sched_left -= 1;
                phases[self.sched_pos].0
            }
        };
        self.kernels[k].emit(&mut self.buffer);
        debug_assert!(!self.buffer.is_empty(), "kernel emitted nothing");
    }
}

impl TraceSource for SynthSource {
    fn next_uop(&mut self) -> MicroOp {
        if self.buf_pos >= self.buffer.len() {
            self.refill();
        }
        let u = self.buffer[self.buf_pos];
        self.buf_pos += 1;
        u
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::UopKind;
    use crate::source::capture;

    fn tiny_stream_spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "test.stream".into(),
            short: "tst".into(),
            kernels: vec![KernelCfg::Stream(StreamCfg {
                streams: 1,
                region_bytes: 1 << 20,
                pattern: vec![1],
                loads_per_line: 1,
                compute_per_load: 2,
                fp: false,
                store_every: 0,
            })],
            schedule: Schedule::Interleaved(vec![1]),
            seed: 1,
            external: None,
        }
    }

    #[test]
    fn file_backed_spec_sources_the_file() {
        use crate::ingest::{ExternalSpec, TraceFormat};
        let path = std::env::temp_dir().join(format!(
            "bosim_synth_external_{}.btrace",
            std::process::id()
        ));
        let uops = capture(&mut tiny_stream_spec().build(), 100);
        std::fs::write(&path, crate::file::encode(&uops)).unwrap();
        let spec = BenchmarkSpec::from_trace(ExternalSpec::new(&path, TraceFormat::Native));
        assert_eq!(
            spec.name,
            format!("bosim_synth_external_{}", std::process::id())
        );
        let mut src = spec.source().expect("loads");
        assert_eq!(capture(src.as_mut(), 100), uops);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "no synthetic source")]
    fn build_panics_on_file_backed_specs() {
        use crate::ingest::{ExternalSpec, TraceFormat};
        let spec =
            BenchmarkSpec::from_trace(ExternalSpec::new("/tmp/none.btrace", TraceFormat::Native));
        let _ = spec.build();
    }

    #[test]
    fn build_is_deterministic() {
        let spec = tiny_stream_spec();
        let a = capture(&mut spec.build(), 1000);
        let b = capture(&mut spec.build(), 1000);
        assert_eq!(a, b);
    }

    #[test]
    fn stream_addresses_are_sequential_lines() {
        let spec = tiny_stream_spec();
        let uops = capture(&mut spec.build(), 2000);
        let lines: Vec<u64> = uops
            .iter()
            .filter(|u| u.is_load())
            .map(|u| u.mem.unwrap().vaddr.0 >> 6)
            .collect();
        assert!(lines.len() > 100);
        for w in lines.windows(2) {
            assert_eq!(w[1], w[0] + 1, "unit line stride expected");
        }
    }

    #[test]
    fn loop_branches_are_present() {
        let spec = tiny_stream_spec();
        let uops = capture(&mut spec.build(), 500);
        assert!(uops.iter().any(|u| u.kind == UopKind::CondBranch));
    }

    #[test]
    fn interleaved_schedule_alternates_kernels() {
        let mut spec = tiny_stream_spec();
        spec.kernels.push(KernelCfg::Compute(ComputeCfg {
            ops_per_iter: 8,
            fp_permille: 0,
            div_permille: 0,
            chain_len: 2,
            resident_bytes: 4096,
            load_every: 0,
            code_blocks: 1,
        }));
        spec.schedule = Schedule::Interleaved(vec![1, 1]);
        let uops = capture(&mut spec.build(), 400);
        // Two distinct code regions must both appear.
        let k0 = layout::code_base(0);
        let k1 = layout::code_base(1);
        assert!(uops.iter().any(|u| u.pc >= k0 && u.pc < k0 + 0x0100_0000));
        assert!(uops.iter().any(|u| u.pc >= k1 && u.pc < k1 + 0x0100_0000));
    }

    #[test]
    fn phased_schedule_starts_with_its_first_phase() {
        let mut spec = tiny_stream_spec();
        spec.kernels.push(KernelCfg::Compute(ComputeCfg {
            ops_per_iter: 8,
            fp_permille: 0,
            div_permille: 0,
            chain_len: 2,
            resident_bytes: 4096,
            load_every: 0,
            code_blocks: 1,
        }));
        spec.schedule = Schedule::Phased(vec![(1, 5), (0, 5)]);
        let uops = capture(&mut spec.build(), 30);
        // Kernel 1 (compute) is the first listed phase: its code region
        // must appear before kernel 0's.
        let k0 = layout::code_base(0);
        let k1 = layout::code_base(1);
        let first_k0 = uops.iter().position(|u| u.pc >= k0 && u.pc < k1);
        let first_k1 = uops.iter().position(|u| u.pc >= k1);
        assert!(first_k1.expect("phase 0 emitted") < first_k0.unwrap_or(usize::MAX));
    }

    #[test]
    #[should_panic]
    fn bad_schedule_panics() {
        let mut spec = tiny_stream_spec();
        spec.schedule = Schedule::Phased(vec![(3, 10)]);
        let _ = spec.build();
    }
}
