//! ChampSim-compatible binary instruction traces.
//!
//! ChampSim's trace format — one fixed 64-byte record per committed
//! instruction — is the lingua franca of prefetching research (the DPC
//! championships, Pythia's artifact, and most recent prefetcher papers
//! distribute workloads this way). This module decodes that format into
//! the simulator's [`MicroOp`] stream, so `bosim` can replay real
//! captured workloads next to its synthetic suite.
//!
//! # On-disk layout (little endian, 64 bytes per record)
//!
//! ```text
//! offset  size  field
//!      0     8  ip                        instruction virtual address
//!      8     1  is_branch                 0 or 1
//!      9     1  branch_taken              0 or 1
//!     10     2  destination_registers[2]  0 = unused
//!     12     4  source_registers[4]       0 = unused
//!     16    16  destination_memory[2]     u64 vaddrs, 0 = unused
//!     32    32  source_memory[4]          u64 vaddrs, 0 = unused
//! ```
//!
//! There is no header: a file is a bare record sequence (ChampSim pipes
//! traces through `xz`/`gzip`; decompress before feeding them here).
//!
//! # Lowering to µops
//!
//! A record expands to one µop per memory operand plus at most one
//! non-memory µop, all sharing the record's `ip`:
//!
//! * each `source_memory` entry → a [`UopKind::Load`],
//! * each `destination_memory` entry → a [`UopKind::Store`],
//! * `is_branch` → a [`UopKind::CondBranch`] whose taken target is the
//!   next record's `ip` (ChampSim records carry no explicit target; the
//!   next committed instruction *is* the target when taken),
//! * a record with no memory operands and no branch → a single
//!   [`UopKind::Int`] µop carrying the register dependences.
//!
//! Registers: ChampSim uses byte register ids with `0` = unused; ids map
//! into the simulator's [`NUM_REGS`]-register namespace as
//! `(id - 1) % NUM_REGS`. Decode errors ([`ChampSimError`]) name the
//! absolute byte offset of the offending record.
//!
//! # Example
//!
//! ```
//! use bosim_trace::{champsim, suite, capture, TraceSource};
//!
//! // Capture a synthetic prefix, write it as a ChampSim trace, reload.
//! let uops = capture(&mut suite::benchmark("462").unwrap().build(), 1000);
//! let bytes = champsim::encode(&uops);
//! let decoded = champsim::decode(&bytes[..]).unwrap();
//! let mut replay = bosim_trace::ReplaySource::new("462.champsim", decoded);
//! assert!(replay.next_uop().pc > 0);
//! ```

use crate::record::{BranchInfo, MemRef, MicroOp, Reg, UopKind, NUM_REGS};
use crate::source::ReplaySource;
use bosim_types::VirtAddr;
use std::fmt;
use std::io::Read;
use std::path::Path;

/// Size of one ChampSim instruction record.
pub const RECORD_BYTES: usize = 64;

const NUM_DEST_REGS: usize = 2;
const NUM_SRC_REGS: usize = 4;
const NUM_DEST_MEM: usize = 2;
const NUM_SRC_MEM: usize = 4;

/// Errors produced while decoding a ChampSim trace.
#[derive(Debug)]
pub enum ChampSimError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The byte stream ended inside a record.
    Truncated {
        /// Byte offset at which the partial record starts.
        offset: u64,
        /// Bytes of the partial record that were present.
        have: usize,
    },
    /// A flag byte held a value other than 0 or 1.
    BadFlag {
        /// Which flag (`"is_branch"` or `"branch_taken"`).
        field: &'static str,
        /// The offending value.
        value: u8,
        /// Absolute byte offset of the flag byte.
        offset: u64,
    },
    /// The stream contained no records.
    Empty,
}

impl fmt::Display for ChampSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChampSimError::Io(e) => write!(f, "champsim trace i/o error: {e}"),
            ChampSimError::Truncated { offset, have } => write!(
                f,
                "champsim trace truncated: partial record at byte offset {offset} \
                 ({have} of {RECORD_BYTES} bytes)"
            ),
            ChampSimError::BadFlag {
                field,
                value,
                offset,
            } => write!(
                f,
                "champsim record corrupt: {field} byte {value:#04x} at byte offset \
                 {offset} (must be 0 or 1)"
            ),
            ChampSimError::Empty => write!(f, "champsim trace contains no records"),
        }
    }
}

impl std::error::Error for ChampSimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChampSimError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ChampSimError {
    fn from(e: std::io::Error) -> Self {
        ChampSimError::Io(e)
    }
}

/// One decoded ChampSim instruction record (pre-lowering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChampSimRecord {
    /// Instruction virtual address.
    pub ip: u64,
    /// The instruction is a branch.
    pub is_branch: bool,
    /// The branch was taken (meaningful when `is_branch`).
    pub branch_taken: bool,
    /// Destination register ids (0 = unused).
    pub dest_regs: [u8; NUM_DEST_REGS],
    /// Source register ids (0 = unused).
    pub src_regs: [u8; NUM_SRC_REGS],
    /// Written memory vaddrs (0 = unused).
    pub dest_mem: [u64; NUM_DEST_MEM],
    /// Read memory vaddrs (0 = unused).
    pub src_mem: [u64; NUM_SRC_MEM],
}

impl ChampSimRecord {
    /// Parses one 64-byte record starting at absolute byte `offset`
    /// (used only for error reporting).
    ///
    /// # Errors
    ///
    /// Returns [`ChampSimError::BadFlag`] on a flag byte outside 0..=1.
    pub fn parse(bytes: &[u8; RECORD_BYTES], offset: u64) -> Result<Self, ChampSimError> {
        let flag = |field, value: u8, at: u64| -> Result<bool, ChampSimError> {
            match value {
                0 => Ok(false),
                1 => Ok(true),
                _ => Err(ChampSimError::BadFlag {
                    field,
                    value,
                    offset: at,
                }),
            }
        };
        let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes")); // bosim-lint: allow(P002, caller slices exactly 8 bytes)
        let mut dest_mem = [0u64; NUM_DEST_MEM];
        for (i, m) in dest_mem.iter_mut().enumerate() {
            *m = u64_at(16 + i * 8);
        }
        let mut src_mem = [0u64; NUM_SRC_MEM];
        for (i, m) in src_mem.iter_mut().enumerate() {
            *m = u64_at(32 + i * 8);
        }
        Ok(ChampSimRecord {
            ip: u64_at(0),
            is_branch: flag("is_branch", bytes[8], offset + 8)?,
            branch_taken: flag("branch_taken", bytes[9], offset + 9)?,
            dest_regs: [bytes[10], bytes[11]],
            src_regs: [bytes[12], bytes[13], bytes[14], bytes[15]],
            dest_mem,
            src_mem,
        })
    }

    /// Serialises the record to its 64-byte on-disk form.
    pub fn to_bytes(&self) -> [u8; RECORD_BYTES] {
        let mut b = [0u8; RECORD_BYTES];
        b[0..8].copy_from_slice(&self.ip.to_le_bytes());
        b[8] = self.is_branch as u8;
        b[9] = self.branch_taken as u8;
        b[10] = self.dest_regs[0];
        b[11] = self.dest_regs[1];
        b[12..16].copy_from_slice(&self.src_regs);
        for (i, m) in self.dest_mem.iter().enumerate() {
            b[16 + i * 8..24 + i * 8].copy_from_slice(&m.to_le_bytes());
        }
        for (i, m) in self.src_mem.iter().enumerate() {
            b[32 + i * 8..40 + i * 8].copy_from_slice(&m.to_le_bytes());
        }
        b
    }
}

/// Streams records out of `reader` (no intermediate whole-file buffer).
///
/// # Errors
///
/// Returns [`ChampSimError::Truncated`] naming the byte offset of a
/// partial trailing record, [`ChampSimError::BadFlag`] for corrupt flag
/// bytes, and [`ChampSimError::Empty`] for a record-less stream.
pub fn decode_records(mut reader: impl Read) -> Result<Vec<ChampSimRecord>, ChampSimError> {
    let mut records = Vec::new();
    let mut buf = [0u8; RECORD_BYTES];
    let mut offset: u64 = 0;
    loop {
        // Fill one record, tolerating short reads (pipes, BufReader).
        let mut have = 0;
        while have < RECORD_BYTES {
            let n = reader.read(&mut buf[have..])?;
            if n == 0 {
                break;
            }
            have += n;
        }
        if have == 0 {
            break;
        }
        if have < RECORD_BYTES {
            return Err(ChampSimError::Truncated { offset, have });
        }
        records.push(ChampSimRecord::parse(&buf, offset)?);
        offset += RECORD_BYTES as u64;
    }
    if records.is_empty() {
        return Err(ChampSimError::Empty);
    }
    Ok(records)
}

fn map_reg(id: u8) -> Option<Reg> {
    if id == 0 {
        None
    } else {
        Some(Reg((id - 1) % NUM_REGS as u8))
    }
}

/// Lowers decoded records to the simulator's µop stream (see the
/// [module docs](self) for the expansion rules).
pub fn lower(records: &[ChampSimRecord]) -> Vec<MicroOp> {
    let mut out = Vec::with_capacity(records.len() * 2);
    for (i, r) in records.iter().enumerate() {
        let dst = r.dest_regs.iter().copied().find_map(map_reg);
        let mut srcs_it = r.src_regs.iter().copied().filter_map(map_reg);
        let srcs = [srcs_it.next(), srcs_it.next()];
        let mut emitted_mem = false;
        for &vaddr in r.src_mem.iter().filter(|&&m| m != 0) {
            out.push(MicroOp {
                pc: r.ip,
                kind: UopKind::Load,
                dst,
                srcs,
                mem: Some(MemRef {
                    vaddr: VirtAddr(vaddr),
                    size: 8,
                }),
                branch: None,
            });
            emitted_mem = true;
        }
        for &vaddr in r.dest_mem.iter().filter(|&&m| m != 0) {
            out.push(MicroOp {
                pc: r.ip,
                kind: UopKind::Store,
                dst: None,
                srcs,
                mem: Some(MemRef {
                    vaddr: VirtAddr(vaddr),
                    size: 8,
                }),
                branch: None,
            });
            emitted_mem = true;
        }
        if r.is_branch {
            // The taken target is the next committed instruction's ip;
            // for the final record (or a fallthrough next ip) the branch
            // still trains the predictor on its direction.
            let target = records.get(i + 1).map(|n| n.ip).unwrap_or(r.ip + 4);
            out.push(MicroOp {
                pc: r.ip,
                kind: UopKind::CondBranch,
                dst: None,
                srcs,
                mem: None,
                branch: Some(BranchInfo {
                    taken: r.branch_taken,
                    target,
                }),
            });
        } else if !emitted_mem {
            out.push(MicroOp {
                pc: r.ip,
                kind: UopKind::Int,
                dst,
                srcs,
                mem: None,
                branch: None,
            });
        }
    }
    out
}

/// Decodes a ChampSim byte stream straight to µops.
///
/// # Errors
///
/// Propagates [`decode_records`] errors.
pub fn decode(reader: impl Read) -> Result<Vec<MicroOp>, ChampSimError> {
    Ok(lower(&decode_records(reader)?))
}

/// Loads a ChampSim trace file into a looping [`ReplaySource`] named
/// `name`.
///
/// # Errors
///
/// Returns I/O and decode errors (see [`ChampSimError`]).
pub fn load_replay(path: &Path, name: &str) -> Result<ReplaySource, ChampSimError> {
    let file = std::fs::File::open(path)?;
    let uops = decode(std::io::BufReader::new(file))?;
    Ok(ReplaySource::new(name, uops))
}

/// Encodes a µop stream as ChampSim records — the inverse of
/// [`decode`], up to the lossiness of the format: every µop kind that
/// ChampSim cannot express (FP, multiplies, jumps, ...) flattens to a
/// plain instruction record, and consecutive µops sharing a `pc` fold
/// into one record's memory-operand slots. Used by `bosim gen` and the
/// round-trip tests.
pub fn encode(uops: &[MicroOp]) -> Vec<u8> {
    let mut out = Vec::with_capacity(uops.len() * RECORD_BYTES);
    let mut i = 0;
    while i < uops.len() {
        let pc = uops[i].pc;
        let mut rec = ChampSimRecord {
            ip: pc,
            is_branch: false,
            branch_taken: false,
            dest_regs: [0; NUM_DEST_REGS],
            src_regs: [0; NUM_SRC_REGS],
            dest_mem: [0; NUM_DEST_MEM],
            src_mem: [0; NUM_SRC_MEM],
        };
        let (mut loads, mut stores) = (0, 0);
        // Fold the run of same-pc µops into one record, stopping when a
        // slot class would overflow (the remainder starts a new record
        // with the same ip — ChampSim tooling accepts repeated ips).
        while i < uops.len() && uops[i].pc == pc {
            let u = &uops[i];
            match u.kind {
                UopKind::Load if u.mem.is_some() => {
                    if loads == NUM_SRC_MEM {
                        break;
                    }
                    rec.src_mem[loads] = u.mem.expect("guarded").vaddr.0; // bosim-lint: allow(P002, loads counted only for uops with mem info)
                    loads += 1;
                }
                UopKind::Store if u.mem.is_some() => {
                    if stores == NUM_DEST_MEM {
                        break;
                    }
                    rec.dest_mem[stores] = u.mem.expect("guarded").vaddr.0; // bosim-lint: allow(P002, stores counted only for uops with mem info)
                    stores += 1;
                }
                k if k.is_branch() => {
                    if rec.is_branch {
                        break;
                    }
                    rec.is_branch = true;
                    rec.branch_taken = u
                        .branch
                        .map(|b| b.taken)
                        .unwrap_or(k != UopKind::CondBranch);
                }
                _ => {}
            }
            if let Some(d) = u.dst {
                if rec.dest_regs[0] == 0 {
                    rec.dest_regs[0] = d.0 + 1;
                }
            }
            for (slot, s) in rec.src_regs.iter_mut().zip(u.srcs.iter()) {
                if *slot == 0 {
                    if let Some(s) = s {
                        *slot = s.0 + 1;
                    }
                }
            }
            i += 1;
        }
        out.extend_from_slice(&rec.to_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{capture, TraceSource};
    use crate::suite;

    fn record(ip: u64) -> ChampSimRecord {
        ChampSimRecord {
            ip,
            is_branch: false,
            branch_taken: false,
            dest_regs: [0; 2],
            src_regs: [0; 4],
            dest_mem: [0; 2],
            src_mem: [0; 4],
        }
    }

    #[test]
    fn record_bytes_round_trip() {
        let r = ChampSimRecord {
            ip: 0xDEAD_BEEF_0000_1234,
            is_branch: true,
            branch_taken: true,
            dest_regs: [3, 0],
            src_regs: [1, 2, 0, 255],
            dest_mem: [0x1000, 0],
            src_mem: [0x2000, 0x3000, 0, 0],
        };
        let parsed = ChampSimRecord::parse(&r.to_bytes(), 0).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn loads_stores_and_branches_lower() {
        let mut a = record(0x400000);
        a.src_mem[0] = 0x10_0000;
        a.src_mem[1] = 0x10_0040;
        a.dest_mem[0] = 0x20_0000;
        a.dest_regs[0] = 5;
        let mut b = record(0x400004);
        b.is_branch = true;
        b.branch_taken = true;
        let c = record(0x400100);
        let uops = lower(&[a, b, c]);
        // a → 2 loads + 1 store; b → branch; c → plain int.
        assert_eq!(uops.len(), 5);
        assert_eq!(uops[0].kind, UopKind::Load);
        assert_eq!(uops[0].dst, Some(Reg(4))); // champsim id 5 → reg 4
        assert_eq!(uops[1].mem.unwrap().vaddr.0, 0x10_0040);
        assert_eq!(uops[2].kind, UopKind::Store);
        assert_eq!(uops[3].kind, UopKind::CondBranch);
        // Taken target = next record's ip.
        assert_eq!(uops[3].branch.unwrap().target, 0x400100);
        assert_eq!(uops[4].kind, UopKind::Int);
    }

    #[test]
    fn truncated_stream_names_the_byte_offset() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&record(1).to_bytes());
        bytes.extend_from_slice(&record(2).to_bytes()[..17]);
        match decode_records(&bytes[..]) {
            Err(ChampSimError::Truncated { offset, have }) => {
                assert_eq!(offset, 64);
                assert_eq!(have, 17);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_flag_byte_names_field_and_offset() {
        let mut bytes = record(1).to_bytes().to_vec();
        bytes.extend_from_slice(&record(2).to_bytes());
        bytes[64 + 9] = 7; // second record's branch_taken
        match decode_records(&bytes[..]) {
            Err(ChampSimError::BadFlag {
                field,
                value,
                offset,
            }) => {
                assert_eq!(field, "branch_taken");
                assert_eq!(value, 7);
                assert_eq!(offset, 64 + 9);
            }
            other => panic!("unexpected {other:?}"),
        }
        let msg = decode_records(&bytes[..]).unwrap_err().to_string();
        assert!(msg.contains("byte offset 73"), "{msg}");
    }

    #[test]
    fn empty_stream_is_rejected() {
        assert!(matches!(decode_records(&[][..]), Err(ChampSimError::Empty)));
    }

    #[test]
    fn synthetic_round_trip_preserves_memory_and_control_flow() {
        let uops = capture(&mut suite::benchmark("470").unwrap().build(), 5_000);
        let decoded = decode(&encode(&uops)[..]).unwrap();
        let count = |v: &[MicroOp], f: fn(&MicroOp) -> bool| v.iter().filter(|u| f(u)).count();
        // The format is lossy on compute kinds, exact on memory + branches.
        assert_eq!(
            count(&uops, |u| u.is_load()),
            count(&decoded, |u| u.is_load())
        );
        assert_eq!(
            count(&uops, |u| u.is_store()),
            count(&decoded, |u| u.is_store())
        );
        assert_eq!(
            count(&uops, |u| u.kind.is_branch()),
            count(&decoded, |u| u.kind.is_branch())
        );
        let addrs = |v: &[MicroOp]| -> Vec<u64> {
            v.iter().filter_map(|u| u.mem.map(|m| m.vaddr.0)).collect()
        };
        assert_eq!(addrs(&uops), addrs(&decoded));
    }

    #[test]
    fn file_round_trip() {
        let path =
            std::env::temp_dir().join(format!("bosim_champsim_{}.champsim", std::process::id()));
        let uops = capture(&mut suite::benchmark("462").unwrap().build(), 2_000);
        std::fs::write(&path, encode(&uops)).unwrap();
        let replay = load_replay(&path, "462.champsim").unwrap();
        assert!(replay.lap_len() > 0);
        assert_eq!(replay.name(), "462.champsim");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ChampSimError::Truncated {
            offset: 128,
            have: 10,
        };
        assert!(e.to_string().contains("byte offset 128"), "{e}");
        assert!(ChampSimError::Empty.to_string().contains("no records"));
    }
}
