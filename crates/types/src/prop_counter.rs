//! Proportional counters (§5.2 of the paper).
//!
//! "We have one counter per insertion policy. ... if the counter value
//! could increase without limitation, this mechanism would be unable to
//! adapt to application behavior changes. Hence we limit the counter value,
//! which cannot exceed CMAX. When any counter reaches CMAX, all counter
//! values are halved at the same time. This mechanism, which we call
//! proportional counters, gives more weight to recent events."
//!
//! The same mechanism is reused by the L3 per-core miss-rate estimator
//! (§5.2) and by the memory-controller fairness scheduler (§5.3, 7-bit
//! counters).

/// A bank of saturating counters that are all halved together whenever any
/// of them reaches its maximum, giving exponentially more weight to recent
/// events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProportionalCounters {
    values: Vec<u32>,
    cmax: u32,
}

impl ProportionalCounters {
    /// Creates `n` counters of `bits` width (CMAX = 2^bits - 1), all zero.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `bits` is 0 or larger than 31.
    pub fn new(n: usize, bits: u32) -> Self {
        assert!(n > 0, "need at least one counter");
        assert!((1..=31).contains(&bits), "bits must be in 1..=31");
        ProportionalCounters {
            values: vec![0; n],
            cmax: (1 << bits) - 1,
        }
    }

    /// Number of counters in the bank.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the bank is empty (never: construction requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The saturation value CMAX.
    pub fn cmax(&self) -> u32 {
        self.cmax
    }

    /// Current value of counter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        self.values[i]
    }

    /// Increments counter `i`; if it reaches CMAX, all counters are halved
    /// simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn increment(&mut self, i: usize) {
        self.values[i] += 1;
        if self.values[i] >= self.cmax {
            for v in &mut self.values {
                *v >>= 1;
            }
        }
    }

    /// Index of the counter with the lowest value (ties broken by lowest
    /// index, deterministically).
    pub fn argmin(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.values.iter().enumerate() {
            if v < self.values[best] {
                best = i;
            }
        }
        let _ = best;
        self.values
            .iter()
            .enumerate()
            .min_by_key(|&(i, &v)| (v, i))
            .map(|(i, _)| i)
            .expect("bank is non-empty") // bosim-lint: allow(P002, bank width is validated non-zero at construction)
    }

    /// The maximum counter value in the bank.
    pub fn max_value(&self) -> u32 {
        *self.values.iter().max().expect("bank is non-empty") // bosim-lint: allow(P002, bank width is validated non-zero at construction)
    }

    /// The miss-rate test of §5.2: counter `i` is "low" if its value is
    /// less than 1/4 of the maximum of all counter values.
    #[inline]
    pub fn is_low(&self, i: usize) -> bool {
        self.values[i] < self.max_value() / 4
    }

    /// Difference `get(a) - get(b)` as a signed value (used by the §5.3
    /// urgent-mode test "difference ... exceeds 31").
    #[inline]
    pub fn diff(&self, a: usize, b: usize) -> i64 {
        self.values[a] as i64 - self.values[b] as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_accumulate() {
        let mut c = ProportionalCounters::new(3, 12);
        c.increment(1);
        c.increment(1);
        c.increment(2);
        assert_eq!(c.get(0), 0);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.get(2), 1);
    }

    #[test]
    fn halving_fires_at_cmax() {
        let mut c = ProportionalCounters::new(2, 4); // CMAX = 15
        for _ in 0..14 {
            c.increment(0);
        }
        assert_eq!(c.get(0), 14);
        c.increment(1); // no halving
        assert_eq!(c.get(1), 1);
        c.increment(0); // reaches 15 => halve all
        assert_eq!(c.get(0), 7);
        assert_eq!(c.get(1), 0);
    }

    #[test]
    fn argmin_prefers_lowest_index_on_tie() {
        let mut c = ProportionalCounters::new(4, 8);
        c.increment(0);
        c.increment(2);
        // counters: [1,0,1,0] -> argmin = 1
        assert_eq!(c.argmin(), 1);
    }

    #[test]
    fn is_low_quarter_rule() {
        let mut c = ProportionalCounters::new(2, 12);
        for _ in 0..100 {
            c.increment(0);
        }
        for _ in 0..10 {
            c.increment(1);
        }
        // max = 100; 10 < 25 => low
        assert!(c.is_low(1));
        assert!(!c.is_low(0));
    }

    #[test]
    fn proportion_preserved_after_halving() {
        let mut c = ProportionalCounters::new(2, 6); // CMAX = 63
                                                     // Increment 0 twice as often as 1; ratio survives halving roughly.
        for _ in 0..200 {
            c.increment(0);
            c.increment(0);
            c.increment(1);
        }
        let (a, b) = (c.get(0) as f64, c.get(1) as f64);
        assert!(a > b, "a={a} b={b}");
    }

    #[test]
    #[should_panic]
    fn zero_counters_panics() {
        ProportionalCounters::new(0, 8);
    }
}
