//! Request metadata shared across the memory hierarchy.
//!
//! As a request travels through the hierarchy, "some metadata (a few bits)
//! is associated with each request ... indicating its type (prefetch or
//! demand miss, instruction or data) and in which cache levels the block
//! will have to be inserted" (§5.4). [`ReqClass`] carries the type part;
//! level bookkeeping lives with the requests themselves in `bosim`.

use core::fmt;

/// Identifies one of the (up to four) simulated cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u8);

impl CoreId {
    /// Convenience accessor as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// What kind of access the core performed at the L1 level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data load.
    Load,
    /// Data store.
    Store,
    /// Instruction fetch.
    IFetch,
}

impl AccessKind {
    /// True for loads and stores.
    #[inline]
    pub fn is_data(self) -> bool {
        !matches!(self, AccessKind::IFetch)
    }
}

/// Classification of a request in the uncore.
///
/// The memory controller "does not distinguish between demand and prefetch
/// read requests" (§5.3) but caches and statistics do: prefetch requests
/// have the lowest priority for L3 access and may be cancelled at any time
/// (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqClass {
    /// Demand miss (instruction or data).
    Demand,
    /// Prefetch issued by the L1D-site prefetcher.
    L1Prefetch,
    /// Prefetch issued by the L2-site prefetcher.
    L2Prefetch,
    /// Prefetch issued by the L3-site prefetcher (fills the shared L3
    /// only; it has no core to forward to).
    L3Prefetch,
}

impl ReqClass {
    /// True for any prefetch class.
    #[inline]
    pub fn is_prefetch(self) -> bool {
        !matches!(self, ReqClass::Demand)
    }
}

/// The cache levels of the simulated hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemLevel {
    /// First-level instruction cache.
    Il1,
    /// First-level data cache.
    Dl1,
    /// Private second-level cache.
    L2,
    /// Shared third-level cache.
    L3,
    /// Main memory.
    Dram,
}

impl fmt::Display for MemLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemLevel::Il1 => "IL1",
            MemLevel::Dl1 => "DL1",
            MemLevel::L2 => "L2",
            MemLevel::L3 => "L3",
            MemLevel::Dram => "DRAM",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_class_prefetch_predicate() {
        assert!(!ReqClass::Demand.is_prefetch());
        assert!(ReqClass::L1Prefetch.is_prefetch());
        assert!(ReqClass::L2Prefetch.is_prefetch());
        assert!(ReqClass::L3Prefetch.is_prefetch());
    }

    #[test]
    fn access_kind_data_predicate() {
        assert!(AccessKind::Load.is_data());
        assert!(AccessKind::Store.is_data());
        assert!(!AccessKind::IFetch.is_data());
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(CoreId(2).to_string(), "core2");
        assert_eq!(MemLevel::L2.to_string(), "L2");
    }
}
