//! Common foundation types for the `bosim` micro-architecture simulator.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * strongly-typed addresses ([`VirtAddr`], [`PhysAddr`], [`LineAddr`]) and
//!   page geometry ([`PageSize`]),
//! * request metadata ([`CoreId`], [`AccessKind`], [`ReqClass`]),
//! * the simulated clock ([`Cycle`]),
//! * a small deterministic mixing function ([`mix64`]) used for the
//!   randomising virtual-to-physical hash and table index hashing.
//!
//! The simulator reproduces the system of *Best-Offset Hardware
//! Prefetching* (Michaud, HPCA 2016). Cache lines are 64 bytes everywhere,
//! as in the paper (Table 1).
//!
//! # Examples
//!
//! ```
//! use bosim_types::{LineAddr, PageSize};
//!
//! let line = LineAddr::from_byte_addr(0x4_1234_5678);
//! let page = PageSize::K4;
//! // Offset prefetchers never cross page boundaries.
//! let next = line.checked_offset(3, page);
//! assert!(next.is_some());
//! assert_eq!(next.unwrap().0, line.0 + 3);
//! ```

#![warn(missing_docs)]

mod addr;
mod prop_counter;
mod req;
mod rng;

pub use addr::{LineAddr, PageSize, PhysAddr, VirtAddr, LINE_BYTES, LINE_SHIFT};
pub use prop_counter::ProportionalCounters;
pub use req::{AccessKind, CoreId, MemLevel, ReqClass};
pub use rng::{mix64, SplitMix64};

/// The simulated clock, counted in core cycles.
///
/// The paper assumes a fixed clock frequency (Table 1), so a single global
/// cycle count is sufficient; DRAM bus cycles are 4 core cycles.
pub type Cycle = u64;

/// Number of core cycles per DRAM bus cycle (Table 1: "bus cycle = 4 core
/// cycles").
pub const CORE_CYCLES_PER_BUS_CYCLE: Cycle = 4;
