//! Deterministic mixing and pseudo-random generation.
//!
//! The baseline "simulates virtual-to-physical address translation by
//! applying a randomizing hash function on the virtual page number" (§5.1).
//! [`mix64`] is that hash; [`SplitMix64`] is a tiny deterministic generator
//! used where a full `rand` dependency would be overkill (e.g. the BIP
//! insertion coin-flips).

/// SplitMix64 finaliser: a high-quality 64-bit mixing function.
///
/// Used as the randomising virtual-to-physical page hash and for cache
/// index hashing. Deterministic: simulator runs are exactly reproducible.
///
/// ```
/// use bosim_types::mix64;
/// assert_eq!(mix64(42), mix64(42));
/// assert_ne!(mix64(42), mix64(43));
/// ```
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A minimal deterministic pseudo-random generator (SplitMix64 stream).
///
/// Not cryptographic; used for replacement-policy coin flips and synthetic
/// workload perturbations where reproducibility matters more than quality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Multiply-shift; bias is negligible for simulator purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli draw: true with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[inline]
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_below(den) < num
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x005E_ED0F_BEEF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        // Adjacent inputs should differ in many bits (avalanche sanity).
        assert!((a ^ b).count_ones() > 16);
    }

    #[test]
    fn splitmix_sequence_is_reproducible() {
        let mut g1 = SplitMix64::new(7);
        let mut g2 = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(g1.next_u64(), g2.next_u64());
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut g = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(g.next_below(13) < 13);
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut g = SplitMix64::new(3);
        let hits = (0..100_000).filter(|_| g.chance(1, 32)).count();
        // Expect ~3125; allow generous slack.
        assert!((2500..3800).contains(&hits), "hits={hits}");
    }

    #[test]
    #[should_panic]
    fn next_below_zero_bound_panics() {
        SplitMix64::new(1).next_below(0);
    }
}
