//! Address newtypes and page geometry.
//!
//! The simulator works almost exclusively on *physical line addresses*
//! ([`LineAddr`]): byte address divided by the 64-byte line size. The L2
//! prefetchers of the paper (§5.6) "work on physical line addresses" and
//! "generate prefetch addresses from core request addresses, by modifying
//! the page-offset bits, keeping physical page numbers unchanged" — which
//! is exactly what [`LineAddr::checked_offset`] implements.

use core::fmt;

/// Cache line size in bytes (Table 1: "cache line 64 bytes").
pub const LINE_BYTES: u64 = 64;

/// log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 6;

/// A virtual byte address as produced by the core.
///
/// The DL1 stride prefetcher (§5.5) trains on virtual addresses; everything
/// beyond the TLB works on [`PhysAddr`] / [`LineAddr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

/// A physical byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

/// A physical *line* address: the byte address shifted right by
/// [`LINE_SHIFT`].
///
/// All caches, prefetchers and the DRAM mapping operate on line addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

/// Memory page size.
///
/// The paper evaluates 4KB pages and 4MB superpages (§5, Table 1). Offset
/// prefetchers never prefetch across a page boundary (§4.2), so the page
/// size bounds the useful offset range: 63 lines for 4KB pages, 65535 for
/// 4MB pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageSize {
    /// 4 KiB pages (64 lines per page).
    K4,
    /// 4 MiB superpages (65536 lines per page).
    M4,
}

impl VirtAddr {
    /// The virtual page number under the given page size.
    #[inline]
    pub fn page_number(self, size: PageSize) -> u64 {
        self.0 >> size.page_shift()
    }

    /// The byte offset within the page.
    #[inline]
    pub fn page_offset(self, size: PageSize) -> u64 {
        self.0 & (size.page_bytes() - 1)
    }

    /// The virtual line address (used by the DL1 stride prefetcher filter).
    #[inline]
    pub fn line(self) -> u64 {
        self.0 >> LINE_SHIFT
    }
}

impl PhysAddr {
    /// The physical line address containing this byte address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }
}

impl LineAddr {
    /// Builds a line address from a physical byte address.
    ///
    /// ```
    /// use bosim_types::LineAddr;
    /// assert_eq!(LineAddr::from_byte_addr(0x1000).0, 0x40);
    /// ```
    #[inline]
    pub fn from_byte_addr(byte_addr: u64) -> Self {
        LineAddr(byte_addr >> LINE_SHIFT)
    }

    /// The physical byte address of the first byte of the line.
    #[inline]
    pub fn to_byte_addr(self) -> PhysAddr {
        PhysAddr(self.0 << LINE_SHIFT)
    }

    /// The physical page number of the page containing this line.
    #[inline]
    pub fn page_number(self, size: PageSize) -> u64 {
        self.0 >> size.line_shift()
    }

    /// The line's index within its page (0-based).
    #[inline]
    pub fn line_in_page(self, size: PageSize) -> u64 {
        self.0 & (size.lines_per_page() - 1)
    }

    /// Returns `true` if `self` and `other` lie in the same memory page.
    #[inline]
    pub fn same_page(self, other: LineAddr, size: PageSize) -> bool {
        self.page_number(size) == other.page_number(size)
    }

    /// Applies a (possibly negative) line offset, returning `None` when the
    /// result would cross a page boundary.
    ///
    /// This is the page-bound arithmetic of §4.4: the adders "need only
    /// produce the position of a line inside a page", and the page number
    /// bits are copied unchanged.
    ///
    /// ```
    /// use bosim_types::{LineAddr, PageSize};
    /// let last = LineAddr(63); // last line of the first 4KB page
    /// assert_eq!(last.checked_offset(1, PageSize::K4), None);
    /// assert_eq!(last.checked_offset(-63, PageSize::K4), Some(LineAddr(0)));
    /// ```
    #[inline]
    pub fn checked_offset(self, offset: i64, size: PageSize) -> Option<LineAddr> {
        let pos = self.line_in_page(size) as i64;
        let lines = size.lines_per_page() as i64;
        let new = pos + offset;
        if new < 0 || new >= lines {
            None
        } else {
            let page_base = self.0 & !(size.lines_per_page() - 1);
            Some(LineAddr(page_base | new as u64))
        }
    }
}

impl PageSize {
    /// log2 of the page size in bytes (12 for 4KB, 22 for 4MB).
    #[inline]
    pub fn page_shift(self) -> u32 {
        match self {
            PageSize::K4 => 12,
            PageSize::M4 => 22,
        }
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_bytes(self) -> u64 {
        1 << self.page_shift()
    }

    /// log2 of the number of lines per page.
    #[inline]
    pub fn line_shift(self) -> u32 {
        self.page_shift() - LINE_SHIFT
    }

    /// Number of 64-byte lines per page (64 for 4KB, 65536 for 4MB).
    ///
    /// ```
    /// use bosim_types::PageSize;
    /// assert_eq!(PageSize::K4.lines_per_page(), 64);
    /// assert_eq!(PageSize::M4.lines_per_page(), 65536);
    /// ```
    #[inline]
    pub fn lines_per_page(self) -> u64 {
        1 << self.line_shift()
    }

    /// Human-readable label used by the figure harnesses ("4KB" / "4MB").
    pub fn label(self) -> &'static str {
        match self {
            PageSize::K4 => "4KB",
            PageSize::M4 => "4MB",
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl fmt::LowerHex for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for LineAddr {
    fn from(v: u64) -> Self {
        LineAddr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn line_from_byte_addr_strips_offset() {
        for b in 0..64 {
            assert_eq!(LineAddr::from_byte_addr(0x40 * 7 + b), LineAddr(7));
        }
    }

    #[test]
    fn page_geometry_4k() {
        let s = PageSize::K4;
        assert_eq!(s.page_bytes(), 4096);
        assert_eq!(s.lines_per_page(), 64);
        assert_eq!(LineAddr(64).page_number(s), 1);
        assert_eq!(LineAddr(64).line_in_page(s), 0);
        assert_eq!(LineAddr(127).line_in_page(s), 63);
    }

    #[test]
    fn page_geometry_4m() {
        let s = PageSize::M4;
        assert_eq!(s.page_bytes(), 4 << 20);
        assert_eq!(s.lines_per_page(), 65536);
    }

    #[test]
    fn checked_offset_within_page() {
        let line = LineAddr(10);
        assert_eq!(line.checked_offset(5, PageSize::K4), Some(LineAddr(15)));
        assert_eq!(line.checked_offset(-10, PageSize::K4), Some(LineAddr(0)));
    }

    #[test]
    fn checked_offset_rejects_page_crossing() {
        let line = LineAddr(60);
        assert_eq!(line.checked_offset(4, PageSize::K4), None);
        assert_eq!(line.checked_offset(-61, PageSize::K4), None);
        // Same offset fits easily inside a 4MB page.
        assert_eq!(line.checked_offset(4, PageSize::M4), Some(LineAddr(64)));
    }

    #[test]
    fn virt_addr_page_number_and_offset() {
        let v = VirtAddr(0x0123_4567);
        assert_eq!(v.page_number(PageSize::K4), 0x0123_4567 >> 12);
        assert_eq!(v.page_offset(PageSize::K4), 0x567);
    }

    /// `checked_offset` never crosses a page and is exact when it
    /// succeeds. Deterministic pseudo-random cases.
    #[test]
    fn prop_checked_offset_preserves_page() {
        let mut rng = SplitMix64::new(42);
        for case in 0..512u64 {
            let size = if case % 2 == 0 {
                PageSize::M4
            } else {
                PageSize::K4
            };
            let l = LineAddr(rng.next_u64() % (1 << 40));
            let off = (rng.next_u64() % 140_000) as i64 - 70_000;
            if let Some(n) = l.checked_offset(off, size) {
                assert!(n.same_page(l, size));
                assert_eq!(n.0 as i64 - l.0 as i64, off);
            } else {
                // Offset must genuinely fall outside the page.
                let pos = l.line_in_page(size) as i64 + off;
                assert!(pos < 0 || pos >= size.lines_per_page() as i64);
            }
        }
    }

    #[test]
    fn prop_line_byte_roundtrip() {
        let mut rng = SplitMix64::new(43);
        for _ in 0..256 {
            let l = LineAddr(rng.next_u64() % (1 << 40));
            assert_eq!(l.to_byte_addr().line(), l);
        }
    }
}
