//! A small Rust-source lexer.
//!
//! `bosim-lint` does not parse Rust — it tokenises it. The rules the
//! workspace needs (no `HashMap` in determinism-sensitive crates, no
//! `unwrap()` in library code, schema-marked struct fields) are all
//! decidable from the token stream plus brace balancing, which keeps the
//! lint zero-dependency and fast, in the same hand-rolled spirit as the
//! workspace's TOML-subset parser and `Json` emitter.
//!
//! The lexer understands everything that could *hide* a token from a
//! naive text search: line and (nested) block comments, string literals
//! with escapes, raw strings (`r#"…"#`), byte strings, character
//! literals vs. lifetimes, and raw identifiers (`r#match`). Comments are
//! kept as tokens — the pragma and schema machinery reads them.

/// One lexed token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (raw identifiers lose their `r#`).
    Ident(String),
    /// A single punctuation character (`.`, `!`, `{`, …).
    Punct(char),
    /// A string literal (cooked or raw; contents as written, unescaped).
    Str(String),
    /// A character literal.
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A numeric literal.
    Num,
    /// A `// …` comment (text after the slashes, untrimmed).
    LineComment(String),
    /// A `/* … */` comment (inner text, nesting preserved).
    BlockComment(String),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// True for line and block comments.
    pub fn is_comment(&self) -> bool {
        matches!(self.tok, Tok::LineComment(_) | Tok::BlockComment(_))
    }
}

/// Tokenises `src`. The lexer is total: any byte sequence produces a
/// token stream (unterminated literals run to end of input), so a
/// syntactically broken file degrades to odd tokens rather than an
/// error — the compiler, not the linter, owns syntax diagnostics.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.push(Token { tok, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_lit(line);
                }
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(line),
                'r' if self.peek(1) == Some('#') && is_ident_start(self.peek(2)) => {
                    // Raw identifier: r#match → match.
                    self.bump();
                    self.bump();
                    self.ident(line);
                }
                '\'' => self.quote(line),
                c if is_ident_start(Some(c)) => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Tok::LineComment(text), line);
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(Tok::BlockComment(text), line);
    }

    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push('\\');
                        text.push(esc);
                    }
                }
                '"' => break,
                c => text.push(c),
            }
        }
        self.push(Tok::Str(text), line);
    }

    /// At `r`/`b`: does a raw (byte) string `r#*"` start here?
    fn raw_string_ahead(&self) -> bool {
        let mut i = 1;
        if self.peek(0) == Some('b') {
            if self.peek(1) != Some('r') {
                return false;
            }
            i = 2;
        }
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn raw_string(&mut self, line: u32) {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        text.push('"');
                        for _ in 0..k {
                            text.push('#');
                            self.bump();
                        }
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(Tok::Str(text), line);
    }

    fn char_lit(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(Tok::Char, line);
    }

    /// At `'`: a character literal or a lifetime?
    fn quote(&mut self, line: u32) {
        let next = self.peek(1);
        // `'\…'` is always a char; `'x'` (closing quote two ahead) is a
        // char; anything else starting with an identifier char is a
        // lifetime (`'a`, `'static`).
        if next == Some('\\') {
            self.char_lit(line);
        } else if is_ident_start(next) && self.peek(2) != Some('\'') {
            self.bump();
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            self.push(Tok::Lifetime, line);
        } else {
            self.char_lit(line);
        }
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while is_ident_continue(self.peek(0)) {
            // is_ident_continue ⇒ a char is present.
            if let Some(c) = self.bump() {
                text.push(c);
            }
        }
        self.push(Tok::Ident(text), line);
    }

    fn number(&mut self, line: u32) {
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `1..n` does not.
                self.bump();
            } else if (c == '+' || c == '-')
                && matches!(self.chars.get(self.pos.wrapping_sub(1)), Some('e' | 'E'))
            {
                // Exponent sign: 1.5e-3.
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Num, line);
    }
}

fn is_ident_start(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphabetic() || c == '_')
}

fn is_ident_continue(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_hide_tokens() {
        let src = "// HashMap here\n/* and /* nested */ HashSet */\nlet x = 1;";
        assert_eq!(idents(src), ["let", "x"]);
        let toks = lex(src);
        assert!(toks[0].is_comment());
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn strings_hide_tokens_and_raw_strings_terminate() {
        assert_eq!(idents(r#"let s = "unwrap() inside";"#), ["let", "s"]);
        let src = "let s = r#\"quote \" inside\"#; let t = 2;";
        assert_eq!(idents(src), ["let", "s", "let", "t"]);
        let toks = lex("r\"raw\"");
        assert_eq!(toks[0].tok, Tok::Str("raw".into()));
    }

    #[test]
    fn string_contents_are_captured() {
        let toks = lex(r#"("ipc", Json::from(x))"#);
        assert!(toks.iter().any(|t| t.tok == Tok::Str("ipc".into())));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = toks.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = toks.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
        // Escaped char literals and 'static lifetimes both lex.
        let toks = lex(r"('\n', &'static str)");
        assert!(toks.iter().any(|t| t.tok == Tok::Char));
        assert!(toks.iter().any(|t| t.tok == Tok::Lifetime));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = lex("for i in 1..10 {}");
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
        assert_eq!(lex("1.5e-3;").len(), 2); // Num, ';'
    }

    #[test]
    fn raw_identifiers_lose_the_prefix() {
        assert_eq!(idents("r#match"), ["match"]);
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "/* a\nb\nc */ x";
        let toks = lex(src);
        assert_eq!(toks[1].tok, Tok::Ident("x".into()));
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        assert_eq!(idents(r#"(b"unwrap()", b'x')"#), Vec::<String>::new());
    }
}
