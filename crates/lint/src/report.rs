//! Lint output: the human table and the machine-readable JSON report.

use crate::rules::{Violation, ALL};
use bosim_stats::{Align, Json, Table};
use std::collections::BTreeMap;

/// The outcome of linting a workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Every violation, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Schema-marked structs checked.
    pub schemas_checked: usize,
}

impl LintReport {
    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation counts per rule id, only for rules that fired.
    pub fn counts(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for v in &self.violations {
            *counts.entry(v.rule.id()).or_insert(0) += 1;
        }
        counts
    }

    /// The aligned human-readable violation table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(["rule", "", "location", "message"]);
        t.align([Align::Left, Align::Left, Align::Left, Align::Left]);
        for v in &self.violations {
            t.row([
                v.rule.id().to_string(),
                v.rule.slug().to_string(),
                format!("{}:{}", v.file, v.line),
                v.message.clone(),
            ]);
        }
        t
    }

    /// The machine-readable report (`target/reports/lint.json` in CI).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("tool", Json::from("bosim-lint")),
            ("files_scanned", Json::from(self.files_scanned)),
            ("schemas_checked", Json::from(self.schemas_checked)),
            ("clean", Json::from(self.is_clean())),
            (
                "counts",
                Json::obj(self.counts().into_iter().map(|(id, n)| (id, Json::from(n)))),
            ),
            (
                "violations",
                Json::arr(self.violations.iter().map(|v| {
                    Json::obj([
                        ("rule", Json::from(v.rule.id())),
                        ("slug", Json::from(v.rule.slug())),
                        ("file", Json::from(v.file.as_str())),
                        ("line", Json::from(u64::from(v.line))),
                        ("message", Json::from(v.message.as_str())),
                    ])
                })),
            ),
        ])
    }
}

/// The rule catalogue as a table (`bosim-lint --rules`).
pub fn rules_table() -> Table {
    let mut t = Table::new(["rule", "", "description"]);
    t.align([Align::Left, Align::Left, Align::Left]);
    for r in ALL {
        t.row([
            r.id().to_string(),
            r.slug().to_string(),
            r.describe().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn report() -> LintReport {
        LintReport {
            violations: vec![Violation {
                rule: Rule::P001,
                file: "crates/x/src/a.rs".into(),
                line: 7,
                message: ".unwrap() in library code".into(),
            }],
            files_scanned: 3,
            schemas_checked: 1,
        }
    }

    #[test]
    fn json_report_shape() {
        let j = report().to_json().to_string();
        assert!(j.contains("\"tool\":\"bosim-lint\""), "{j}");
        assert!(j.contains("\"clean\":false"));
        assert!(j.contains("\"P001\":1"));
        assert!(j.contains("\"file\":\"crates/x/src/a.rs\""));
        assert!(j.contains("\"line\":7"));
    }

    #[test]
    fn table_lists_locations() {
        let t = report().table().to_tsv();
        assert!(t.contains("crates/x/src/a.rs:7"), "{t}");
        assert!(t.contains("P001"));
    }

    #[test]
    fn rules_table_covers_every_rule() {
        let t = rules_table().to_tsv();
        for r in ALL {
            assert!(t.contains(r.id()), "{} missing from --rules", r.id());
        }
    }
}
