//! S-rules: schema-marked counter structs stay in sync with the
//! report-JSON writers and the documented schema tables.
//!
//! A struct marked `// bosim-lint: schema(<label>)` declares: *every
//! public field of this struct is part of the machine-readable report
//! surface*. The check is deliberately lexical, matching the rest of
//! the lint: each field name must appear (a) as a string literal in
//! non-test library code of the same crate — the JSON key the writer
//! emits — and (b) backtick-quoted in `docs/ARCHITECTURE.md`, where
//! the schema tables live. Renaming a counter without updating the
//! writer or the docs, or adding one without reporting it, fails CI.

use crate::engine::SchemaStruct;
use crate::rules::{Rule, Violation};
use std::collections::{BTreeMap, BTreeSet};

/// Cross-checks every schema struct against the JSON-key corpus and
/// the architecture docs.
///
/// `strings` maps crate name → string literals seen in that crate's
/// non-test library code; `docs` is the text of
/// `docs/ARCHITECTURE.md` (empty when unreadable — every field then
/// fails S002, which is the right failure mode for missing docs).
pub fn check(
    schemas: &[SchemaStruct],
    strings: &BTreeMap<String, BTreeSet<String>>,
    docs: &str,
) -> Vec<Violation> {
    let empty = BTreeSet::new();
    let mut out = Vec::new();
    for s in schemas {
        let keys = strings.get(&s.krate).unwrap_or(&empty);
        for field in &s.fields {
            if !keys.contains(field) {
                out.push(Violation {
                    rule: Rule::S001,
                    file: s.file.clone(),
                    line: s.line,
                    message: format!(
                        "{}.{field} (schema {}) is never emitted as a JSON key in \
                         crate `{}` — report writers must carry every counter",
                        s.name, s.label, s.krate
                    ),
                });
            }
            if !docs.contains(&format!("`{field}`")) {
                out.push(Violation {
                    rule: Rule::S002,
                    file: s.file.clone(),
                    line: s.line,
                    message: format!(
                        "{}.{field} (schema {}) is missing from the docs/ARCHITECTURE.md \
                         schema tables",
                        s.name, s.label
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> SchemaStruct {
        SchemaStruct {
            label: "demo".into(),
            name: "Demo".into(),
            krate: "adapt".into(),
            file: "crates/adapt/src/a.rs".into(),
            line: 3,
            fields: vec!["ipc".into(), "cycles".into()],
        }
    }

    #[test]
    fn in_sync_struct_is_clean() {
        let strings = BTreeMap::from([(
            "adapt".to_string(),
            BTreeSet::from(["ipc".to_string(), "cycles".to_string()]),
        )]);
        let docs = "| `ipc` | instructions per cycle |\n| `cycles` | measured cycles |";
        assert!(check(&[demo()], &strings, docs).is_empty());
    }

    #[test]
    fn missing_json_key_and_missing_docs_fire_separately() {
        let strings = BTreeMap::from([("adapt".to_string(), BTreeSet::from(["ipc".to_string()]))]);
        let docs = "only `ipc` is documented";
        let v = check(&[demo()], &strings, docs);
        let rules: Vec<Rule> = v.iter().map(|v| v.rule).collect();
        assert_eq!(rules, [Rule::S001, Rule::S002]);
        assert!(v[0].message.contains("Demo.cycles"));
    }

    #[test]
    fn keys_in_another_crate_do_not_satisfy_the_writer_check() {
        let strings = BTreeMap::from([(
            "bench".to_string(),
            BTreeSet::from(["ipc".to_string(), "cycles".to_string()]),
        )]);
        let v = check(&[demo()], &strings, "`ipc` `cycles`");
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == Rule::S001));
    }
}
