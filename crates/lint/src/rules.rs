//! The rule catalogue.
//!
//! Three families, mirroring the invariants the simulator's correctness
//! argument rests on (see `docs/ANALYSIS.md` for the full rationale):
//!
//! * **D-rules** — determinism: the golden-stats guarantee (naive and
//!   fast-forward paths produce bit-identical `SimResult`s) and
//!   byte-stable reports are only meaningful if no ambient
//!   nondeterminism (hash iteration order, wall clocks, unseeded
//!   randomness) can reach them.
//! * **P-rules** — panic-freedom: library code reports failures as
//!   typed errors; panics are reserved for documented internal
//!   invariants, each carrying an allow-pragma with its justification.
//! * **S-rules** — schema sync: every field of a schema-marked counter
//!   struct must be emitted by the report-JSON writers and documented
//!   in the `docs/ARCHITECTURE.md` schema tables.
//!
//! `L001` polices the lint's own pragma syntax so suppressions cannot
//! silently rot.

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `HashMap`/`HashSet` in a determinism-sensitive crate.
    D001,
    /// `Instant::now`/`SystemTime::now` outside the timing modules.
    D002,
    /// Unseeded randomness (`RandomState`, `thread_rng`, …).
    D003,
    /// `std::thread` spawning in a determinism-sensitive crate outside
    /// the barrier module.
    D004,
    /// `.unwrap()` in library code.
    P001,
    /// `.expect(…)` in library code.
    P002,
    /// `panic!`/`todo!`/`unimplemented!` in library code.
    P003,
    /// Schema-marked struct field missing from the crate's JSON writer.
    S001,
    /// Schema-marked struct field missing from the docs schema table.
    S002,
    /// Malformed `bosim-lint:` pragma (unknown rule, missing reason).
    L001,
}

/// Every rule, in report order.
pub const ALL: [Rule; 10] = [
    Rule::D001,
    Rule::D002,
    Rule::D003,
    Rule::D004,
    Rule::P001,
    Rule::P002,
    Rule::P003,
    Rule::S001,
    Rule::S002,
    Rule::L001,
];

impl Rule {
    /// The stable identifier used in pragmas and reports.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::P001 => "P001",
            Rule::P002 => "P002",
            Rule::P003 => "P003",
            Rule::S001 => "S001",
            Rule::S002 => "S002",
            Rule::L001 => "L001",
        }
    }

    /// A short human label for tables.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::D001 => "hash-iteration",
            Rule::D002 => "wall-clock",
            Rule::D003 => "unseeded-rng",
            Rule::D004 => "thread-confinement",
            Rule::P001 => "unwrap",
            Rule::P002 => "expect",
            Rule::P003 => "panic",
            Rule::S001 => "schema-json",
            Rule::S002 => "schema-docs",
            Rule::L001 => "bad-pragma",
        }
    }

    /// One-line description shown by `bosim-lint --rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::D001 => {
                "HashMap/HashSet in a determinism-sensitive crate: iteration \
                 order is randomised per process and may feed sim results"
            }
            Rule::D002 => {
                "Instant::now/SystemTime::now outside the bench-timing and \
                 decode-cache modules: wall clocks must never steer simulation"
            }
            Rule::D003 => {
                "unseeded randomness (RandomState, thread_rng, getrandom): \
                 all stochastic behaviour must flow from an explicit seed"
            }
            Rule::D004 => {
                "std::thread spawning in a determinism-sensitive crate outside \
                 crates/sim/src/barrier.rs: ad-hoc threading can leak scheduling \
                 order into results — use the barrier rendezvous, or justify \
                 with an allow-pragma"
            }
            Rule::P001 => ".unwrap() in library code (use typed errors or an allow-pragma)",
            Rule::P002 => ".expect(…) in library code (use typed errors or an allow-pragma)",
            Rule::P003 => "panic!/todo!/unimplemented! in library code",
            Rule::S001 => "schema-marked struct field never emitted as a JSON key in its crate",
            Rule::S002 => "schema-marked struct field missing from the docs/ARCHITECTURE.md tables",
            Rule::L001 => "malformed bosim-lint pragma (unknown rule id or missing reason)",
        }
    }

    /// Parses a rule id as written in an allow-pragma.
    pub fn parse(s: &str) -> Option<Rule> {
        ALL.into_iter().find(|r| r.id() == s)
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated rule.
    pub rule: Rule,
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// What fired, with enough context to fix it.
    pub message: String,
}
