//! `bosim-lint`: self-hosted static analysis for the bosim workspace.
//!
//! The simulator's correctness story rests on properties the compiler
//! does not check: bit-identical results across the naive and
//! fast-forward paths (golden stats), byte-stable reports, panic-free
//! library crates, and — ahead of the parallel tick engine — data-race
//! freedom in the threaded experiment runner. This crate enforces the
//! statically checkable part with a hand-rolled Rust lexer in the same
//! zero-dependency style as the workspace's TOML-subset parser and
//! [`Json`](bosim_stats::Json) emitter:
//!
//! * **D-rules** — no `HashMap`/`HashSet` in determinism-sensitive
//!   crates, no wall clocks outside the timing modules, no unseeded
//!   randomness ([`engine`]).
//! * **P-rules** — no `unwrap()`/`expect()`/`panic!` in library code;
//!   documented invariants carry
//!   `// bosim-lint: allow(<RULE>, <reason>)` pragmas.
//! * **S-rules** — schema-marked counter structs stay in sync with the
//!   report-JSON writers and `docs/ARCHITECTURE.md` ([`schema`]).
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p bosim-lint            # human table, exit 1 on violations
//! cargo run -p bosim-lint -- --json target/reports/lint.json
//! cargo run -p bosim-lint -- --rules # the rule catalogue
//! ```
//!
//! `docs/ANALYSIS.md` documents every rule with its rationale. The
//! Miri and ThreadSanitizer CI jobs configured in
//! `.github/workflows/` cover the dynamic half of the same story.

#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod schema;
pub mod walk;

pub use engine::{FileKind, SourceFile};
pub use report::{rules_table, LintReport};
pub use rules::{Rule, Violation};

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

/// Lints the workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml`).
///
/// # Errors
///
/// Propagates I/O failures while reading source trees. A missing
/// `docs/ARCHITECTURE.md` is not an I/O error: the S-rules then report
/// every schema field as undocumented.
pub fn run(root: &Path) -> io::Result<LintReport> {
    let sources = walk::workspace_sources(root)?;
    let docs = std::fs::read_to_string(root.join("docs/ARCHITECTURE.md")).unwrap_or_default();
    Ok(lint_sources(&sources, &docs))
}

/// Lints an in-memory set of `(workspace-relative path, contents)`
/// sources against the given architecture docs — the pure core of
/// [`run`], used directly by the fixture tests.
pub fn lint_sources(sources: &[(String, String)], docs: &str) -> LintReport {
    let mut violations = Vec::new();
    let mut schemas = Vec::new();
    let mut strings: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut files_scanned = 0usize;
    for (path, contents) in sources {
        let Some(file) = SourceFile::classify(path) else {
            continue;
        };
        files_scanned += 1;
        let mut analysis = engine::analyze(&file, contents);
        violations.append(&mut analysis.violations);
        schemas.append(&mut analysis.schemas);
        strings
            .entry(file.krate)
            .or_default()
            .extend(analysis.strings);
    }
    violations.extend(schema::check(&schemas, &strings, docs));
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    LintReport {
        violations,
        files_scanned,
        schemas_checked: schemas.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, body: &str) -> (String, String) {
        (path.to_string(), body.to_string())
    }

    #[test]
    fn end_to_end_over_in_memory_sources() {
        let sources = vec![
            src(
                "crates/cache/src/bad.rs",
                "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }",
            ),
            src(
                "crates/adapt/src/schema.rs",
                "// bosim-lint: schema(demo)\npub struct D { pub ipc: f64 }\n\
                 pub fn k() -> &'static str { \"ipc\" }",
            ),
        ];
        let report = lint_sources(&sources, "| `ipc` |");
        assert_eq!(report.files_scanned, 2);
        assert_eq!(report.schemas_checked, 1);
        let rules: Vec<Rule> = report.violations.iter().map(|v| v.rule).collect();
        assert_eq!(rules, [Rule::P001]);
    }

    #[test]
    fn schema_desync_is_reported() {
        let sources = vec![src(
            "crates/adapt/src/schema.rs",
            "// bosim-lint: schema(demo)\npub struct D { pub brand_new_counter: u64 }",
        )];
        let report = lint_sources(&sources, "");
        let rules: Vec<Rule> = report.violations.iter().map(|v| v.rule).collect();
        assert_eq!(rules, [Rule::S001, Rule::S002]);
    }
}
