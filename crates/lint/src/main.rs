//! The `bosim-lint` binary: lint the workspace, print the violation
//! table, optionally write the JSON report, exit non-zero on findings.
//!
//! ```text
//! bosim-lint [--root DIR] [--json FILE] [--rules] [--quiet]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    rules: bool,
    quiet: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: None,
        rules: false,
        quiet: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = it
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--root needs a directory argument")?;
            }
            "--json" => {
                args.json = Some(
                    it.next()
                        .map(PathBuf::from)
                        .ok_or("--json needs a file path")?,
                );
            }
            "--rules" => args.rules = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => {
                return Err(
                    "usage: bosim-lint [--root DIR] [--json FILE] [--rules] [--quiet]".to_string(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("bosim-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.rules {
        print!("{}", bosim_lint::rules_table().to_markdown());
        return ExitCode::SUCCESS;
    }
    let report = match bosim_lint::run(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bosim-lint: cannot lint {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.json {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("bosim-lint: cannot create {}: {e}", dir.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(path, report.to_json().to_pretty()) {
            eprintln!("bosim-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !report.is_clean() && !args.quiet {
        print!("{}", report.table().to_markdown());
        println!();
    }
    let counts: Vec<String> = report
        .counts()
        .into_iter()
        .map(|(id, n)| format!("{id}×{n}"))
        .collect();
    if !args.quiet || !report.is_clean() {
        println!(
            "bosim-lint: {} file(s), {} schema struct(s), {} violation(s){}{}",
            report.files_scanned,
            report.schemas_checked,
            report.violations.len(),
            if counts.is_empty() { "" } else { ": " },
            counts.join(" ")
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
