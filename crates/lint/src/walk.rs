//! Workspace file discovery.
//!
//! Walks the source trees the lint owns (`crates/`, `tests/`,
//! `examples/`) in **sorted** directory order — the lint holds itself
//! to its own D-rules, so its output must be byte-stable across runs
//! and filesystems.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Returns every `.rs` file under the workspace's lintable trees, as
/// `(workspace-relative path, contents)`, sorted by path.
///
/// # Errors
///
/// Propagates I/O failures reading directories or files; a missing
/// tree (e.g. no `examples/`) is skipped, not an error.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for tree in ["crates", "tests", "examples"] {
        let dir = root.join(tree);
        if dir.is_dir() {
            visit(&dir, root, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn visit(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // `target/` can appear inside crate dirs on some setups.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            visit(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = relative(&path, root);
            let contents = fs::read_to_string(&path)?;
            out.push((rel, contents));
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated rendering of `path`.
fn relative(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_this_workspace_sorted() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_sources(&root).expect("workspace readable");
        let paths: Vec<&str> = files.iter().map(|(p, _)| p.as_str()).collect();
        assert!(paths.contains(&"crates/lint/src/walk.rs"), "{paths:?}");
        assert!(paths.contains(&"tests/tests/golden_stats.rs"));
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted, "walk order must be deterministic");
    }
}
